"""F6 — the Lemma 3.6 ablation: taming high-arity quantified relations.

Section 3.3's difficulty: ESO^k bounds individual variables but not
relation-variable arities, so the naive guess-the-relation evaluator pays
``2^(n^arity)``.  Lemma 3.6's observation — only the atom patterns
matter — is realized twice in this library, and this bench measures both
against the naive enumeration bound:

* explicit view rewriting: quantified arity drops to ≤ k, views and
  consistency axioms stay linear/quadratic in the expression;
* lazy grounding: propositional variables exist only for referenced
  ground patterns, so CNF size is ``O(|e| · n^k)`` with or without the
  syntactic rewrite.
"""

import math
import time

from repro.core.eso_eval import eso_decide, grounded_cnf
from repro.core.eso_rewrite import rewrite_eso
from repro.complexity.fit import fit_polynomial
from repro.logic.analysis import max_so_arity
from repro.logic.parser import parse_formula
from repro.workloads.graphs import random_graph

from benchmarks._harness import emit, emit_record, series_table

ARITIES = [2, 4, 6, 8]


def _query(arity: int):
    """``∃S/arity``: an S-pattern constraint over two variables."""
    xs = ", ".join(["x", "y"] * (arity // 2))
    ys = ", ".join(["y", "x"] * (arity // 2))
    return parse_formula(
        f"exists2 S/{arity}. forall x. forall y. "
        f"(~E(x, y) | S({xs}) | ~S({ys}))"
    )


def _point(arity: int, n: int = 4):
    db = random_graph(n, 0.4, seed=7)
    phi = _query(arity)
    rewritten = rewrite_eso(phi)
    cnf, _ = grounded_cnf(phi, db, use_rewrite=True)
    start = time.perf_counter()
    outcome = eso_decide(phi, db)
    seconds = time.perf_counter() - start
    return phi, rewritten, cnf, outcome, seconds, n


def bench_eso_rewrite_ablation(benchmark):
    rows, cnf_vars = [], []
    for arity in ARITIES:
        phi, rewritten, cnf, outcome, seconds, n = _point(arity)
        naive_tuple_space = n**arity
        cnf_vars.append(cnf.num_vars)
        rows.append(
            (
                arity,
                max_so_arity(rewritten.formula),
                len(rewritten.views),
                cnf.num_vars,
                naive_tuple_space,
                f"2^{naive_tuple_space}",
                f"{seconds:.4f}",
            )
        )
        # the lemma's claims, per instance
        assert max_so_arity(phi) == arity
        assert max_so_arity(rewritten.formula) <= 2
        assert cnf.num_vars < naive_tuple_space or arity == 2
    benchmark(_point, ARITIES[1])

    fit = fit_polynomial(ARITIES, cnf_vars)
    body = (
        series_table(
            (
                "S arity",
                "view arity",
                "#views",
                "cnf vars",
                "n^arity",
                "naive guesses",
                "seconds",
            ),
            rows,
        )
        + f"\n\ncnf vars vs quantified arity: degree {fit.coefficient:.2f} "
        "(flat — only the k-variable patterns matter)"
        + "\nnaive enumeration would search 2^(n^arity) relations"
    )
    emit("F6", "Lemma 3.6 ablation: arity reduction beats naive guessing", body)
    emit_record(
        "F6",
        "arity reduction: CNF size vs quantified relation arity",
        parameters=[float(a) for a in ARITIES],
        seconds=[float(r[6]) for r in rows],
        counters=[
            {
                "view_arity": float(r[1]),
                "num_views": float(r[2]),
                "cnf_vars": float(r[3]),
                "naive_tuple_space": float(r[4]),
            }
            for r in rows
        ],
        fit_counters=("cnf_vars",),
        meta={"database_size": 4},
    )

    # encoding size must NOT scale with the quantified arity
    assert cnf_vars[-1] <= 4 * cnf_vars[0] + 64
