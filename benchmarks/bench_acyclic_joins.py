"""F7 — the Section 1 precedent: acyclic joins avoid large intermediates.

"The fundamental reason that acyclic joins are easier to evaluate than
cyclic joins [BFMY83, Yan81] is that they can be evaluated without large
intermediate results."  We run chain joins (acyclic) three ways —
cross-product-first, Yannakakis' semijoin algorithm, and the
bounded-variable plan — and confirm the two intermediate-conscious
methods agree and stay small while the cross product explodes; and that
the GYO test correctly separates the paper's cyclic company query from
its acyclic prefix.
"""

import time

from repro.algebra import ArityTracker, compile_naive_conjunctive
from repro.algebra.acyclic import YannakakisStats, is_acyclic, yannakakis
from repro.core.fo_eval import BoundedEvaluator
from repro.core.interp import EvalStats
from repro.logic.builders import and_, atom, exists
from repro.workloads.graphs import random_graph

from benchmarks._harness import emit, emit_record, series_table

WIDTHS = [2, 3, 4]
GRAPH = random_graph(8, 0.3, seed=31)


def _atoms(width):
    names = [f"v{i}" for i in range(width + 1)]
    return [atom("E", names[i], names[i + 1]) for i in range(width)], names


def _point(width: int):
    atoms, names = _atoms(width)
    out = (names[0], names[-1])
    middles = names[1:-1]
    formula = exists(middles, and_(*atoms)) if middles else atoms[0]

    cross_tracker = ArityTracker()
    q = compile_naive_conjunctive(formula, out)
    cross_rows = set(q.evaluate(GRAPH, cross_tracker).rows)

    yk_stats = YannakakisStats()
    start = time.perf_counter()
    yk_rows = yannakakis(atoms, GRAPH, out, yk_stats)
    yk_seconds = time.perf_counter() - start

    bounded_stats = EvalStats()
    bounded = set(
        BoundedEvaluator(GRAPH, stats=bounded_stats).answer(formula, out).tuples
    )
    assert cross_rows == yk_rows == bounded
    return cross_tracker, yk_stats, yk_seconds, bounded_stats


def bench_acyclic_joins(benchmark):
    rows = []
    cross_series, yk_series = [], []
    for width in WIDTHS:
        cross, yk, yk_seconds, bounded = _point(width)
        cross_series.append(cross.max_rows)
        yk_series.append(max(yk.max_intermediate_rows, 1))
        rows.append(
            (
                width,
                cross.max_rows,
                yk.max_intermediate_rows,
                yk.semijoins,
                bounded.max_intermediate_rows,
                f"{yk_seconds:.4f}",
            )
        )
    benchmark(_point, WIDTHS[-1])

    # the GYO boundary on the paper's own queries
    company_chain = [
        atom("EMP", "e", "d"),
        atom("MGR", "d", "m"),
        atom("SCY", "m", "s"),
        atom("SAL", "s", "t"),
        atom("SAL", "e", "u"),
        atom("LT", "u", "t"),
    ]
    assert not is_acyclic(company_chain)
    assert is_acyclic(company_chain[:4])

    cross_growth = cross_series[-1] / cross_series[0]
    yk_growth = yk_series[-1] / yk_series[0]
    body = (
        series_table(
            (
                "chain width",
                "cross max rows",
                "yannakakis max rows",
                "semijoins",
                "FO^k max rows",
                "yk seconds",
            ),
            rows,
        )
        + f"\n\ncross-product peak grows x{cross_growth:.1f} over the sweep; "
        f"Yannakakis peak x{yk_growth:.1f}"
        + "\nGYO: the intro's full company query is *cyclic* (the LT "
        "comparison closes a loop) while its EMP-MGR-SCY-SAL prefix is "
        "acyclic — bounded-variable evaluation covers both"
    )
    emit("F7", "acyclic joins: the Yannakakis precedent", body)
    emit_record(
        "F7",
        "chain joins three ways: peak intermediate rows",
        parameters=[float(w) for w in WIDTHS],
        seconds=[float(r[5]) for r in rows],
        counters=[
            {
                "cross_max_rows": float(r[1]),
                "yannakakis_max_rows": float(r[2]),
                "semijoins": float(r[3]),
                "bounded_max_rows": float(r[4]),
            }
            for r in rows
        ],
        fit_counters=("cross_max_rows", "yannakakis_max_rows"),
        meta={"graph_size": 8},
    )

    assert cross_growth > 3 * yk_growth