"""T2-FO — Table 2: combined complexity of FO^k is polynomial (Prop 3.1).

Two sweeps over the bounded evaluator with k = 3:

* data sweep: fixed query, growing database — cost must fit a low-degree
  polynomial in n (the table row's PTIME upper bound, combined with
  Prop 3.2's completeness which bench F4 exercises);
* expression sweep: fixed database, growing FO^3 expressions (the path
  queries of Section 2.2) — cost polynomial in |e| as well.

The deterministic work counter (table operations) is fitted; wall-clock
is reported alongside.
"""

import time

from repro.core.fo_eval import BoundedEvaluator
from repro.core.interp import EvalStats
from repro.complexity.fit import classify_growth, fit_polynomial
from repro.complexity.measure import run_sweep
from repro.obs import Tracer, render_hot_spans
from repro.workloads.formulas import path_query_fo3
from repro.workloads.graphs import random_graph

from benchmarks._harness import emit, emit_record, emit_trace, series_table

DATA_SIZES = [4, 8, 12, 16, 20]
PATH_LENGTHS = [2, 4, 8, 12, 16]


def _data_point(n: int):
    db = random_graph(n, 0.3, seed=n)
    q = path_query_fo3(4)
    stats = EvalStats()
    start = time.perf_counter()
    BoundedEvaluator(db, stats=stats, k_limit=3).answer(
        q.formula, q.output_vars
    )
    return time.perf_counter() - start, stats


def _traced_data_point(n, tracer):
    # same workload as _data_point, but traced — run_sweep passes a
    # fresh tracer per timed run so each point carries its own spans
    db = random_graph(int(n), 0.3, seed=int(n))
    q = path_query_fo3(4)
    stats = EvalStats()
    BoundedEvaluator(db, stats=stats, k_limit=3, tracer=tracer).answer(
        q.formula, q.output_vars
    )
    return {"table_ops": float(stats.table_ops)}


def _expression_point(length: int):
    db = random_graph(9, 0.3, seed=1)
    q = path_query_fo3(length)
    stats = EvalStats()
    start = time.perf_counter()
    BoundedEvaluator(db, stats=stats, k_limit=3).answer(
        q.formula, q.output_vars
    )
    return time.perf_counter() - start, stats, q.formula.size()


def bench_table2_fo_combined(benchmark):
    data_rows, data_work = [], []
    data_seconds, data_counters = [], []
    for n in DATA_SIZES:
        seconds, stats = _data_point(n)
        data_work.append(stats.table_ops + stats.max_intermediate_rows)
        data_seconds.append(seconds)
        data_counters.append(
            {
                "table_ops": float(stats.table_ops),
                "max_intermediate_rows": float(stats.max_intermediate_rows),
            }
        )
        data_rows.append(
            (n, stats.table_ops, stats.max_intermediate_rows, f"{seconds:.4f}")
        )
    expr_rows, expr_work, expr_sizes = [], [], []
    for length in PATH_LENGTHS:
        seconds, stats, size = _expression_point(length)
        expr_sizes.append(size)
        expr_work.append(stats.table_ops + stats.max_intermediate_rows)
        expr_rows.append(
            (length, size, stats.table_ops, f"{seconds:.4f}")
        )
    benchmark(_data_point, DATA_SIZES[-1])

    # traced sweep over the same workload: per-point span traces let the
    # bench attribute each point's time to connective phases
    traced = run_sweep(
        "t2-fo-data",
        DATA_SIZES,
        _traced_data_point,
        tracer_factory=Tracer,
    )
    largest = traced.points[-1]
    trace_path = emit_trace("T2-FO", largest.trace)

    data_kind, data_fit, _ = classify_growth(DATA_SIZES, data_work)
    expr_fit = fit_polynomial(expr_sizes, expr_work)
    body = (
        "data sweep (path-4 query, FO^3):\n"
        + series_table(("n", "table ops", "max rows", "seconds"), data_rows)
        + f"\n  -> {data_kind}, degree {data_fit.coefficient:.2f} "
        f"(claim: PTIME; bound n^k = n^3)\n\n"
        "expression sweep (n = 9 fixed):\n"
        + series_table(("path len", "|e|", "table ops", "seconds"), expr_rows)
        + f"\n  -> polynomial in |e|, degree {expr_fit.coefficient:.2f}\n\n"
        f"phase attribution at n = {DATA_SIZES[-1]} "
        f"(full trace: {trace_path}):\n"
        + render_hot_spans(largest.trace, k=5)
    )
    emit("T2-FO", "combined complexity of FO^k is polynomial", body)
    emit_record(
        "T2-FO-DATA",
        "FO^3 data sweep: table ops and row high-water",
        parameters=[float(n) for n in DATA_SIZES],
        seconds=data_seconds,
        counters=data_counters,
        fit_counters=("table_ops", "max_intermediate_rows"),
        meta={"query": "path-4", "k_limit": 3},
    )

    assert data_kind == "polynomial" and data_fit.coefficient <= 4.0
    assert expr_fit.coefficient <= 2.5
