"""SERVE — the query-service load drill: robustness counters under fire.

Two halves:

1. **Deterministic drill** (the gated half): the ``SERVE`` perf
   experiment drives a full :class:`repro.serve.service.QueryService`
   through a scripted request mix — transient faults (retried),
   persistent faults (retries exhausted, breaker trips), an
   impossible row budget (degradation ladder), and a shed burst that
   arrives while every concurrency slot is held.  Every counter is
   exact-reproducible, so the run is recorded as ``SERVE`` and gated
   against ``BENCH_SERVE.json`` by ``repro perf compare``.

2. **Concurrent load generator** (reported, not gated): a burst of
   concurrent requests against an inline service, reporting latency
   quantiles and queue-wait from the service's own histograms.
   Wall-clock numbers are environment noise by definition — they go in
   the text block only, never into gated counters.

The drill's asserted claims are the acceptance criteria of the serve
layer: every request resolves to a correct answer or a structured
error (no lost requests), injected faults are retried, the breaker
trips, the ladder degrades, and the shed count is exactly the burst
overflow.
"""

import asyncio
import functools

from repro.complexity.measure import run_sweep
from repro.perf.experiments import serve_workload

from benchmarks._harness import bench_jobs, emit, emit_record, series_table

SIZES = [6, 8, 10]

#: The scripted drill shape (kept in sync with the SERVE experiment's
#: registered options — the baseline is recorded under these).
REQUESTS, MAX_QUEUE, BURST = 18, 4, 8

#: Concurrent-load half: requests fired at once at the largest size.
LOAD_REQUESTS = 32


def _drill_workload(parameter: float) -> dict:
    return serve_workload(
        parameter, requests=REQUESTS, max_queue=MAX_QUEUE, burst=BURST
    )


def _concurrent_load(n: int, requests: int) -> dict:
    """Fire ``requests`` concurrent calls; return latency/wait readings."""
    from repro.perf.experiments import TC_QUERY
    from repro.serve.service import QueryService
    from repro.workloads.graphs import random_graph

    service = QueryService(max_concurrency=2, max_queue=requests)
    service.register_database("g", random_graph(n, 0.3, seed=n))
    service.prepare("tc", TC_QUERY, ("u", "v"))

    async def drive():
        await asyncio.gather(
            *[
                service.call(f"t{i % 4}", "tc", "g", request_seed=i)
                for i in range(requests)
            ]
        )

    asyncio.run(drive())
    snap = service.registry.snapshot()
    service.close()
    return {
        "latency": snap["serve.latency_seconds"],
        "queue_wait": snap["serve.queue_wait_seconds"],
        "ok": snap["serve.ok"],
    }


def _obs_overhead(n: int, requests: int) -> dict:
    """Measure the observability tax: traced vs untraced drive time,
    /metrics render cost, and the recorder/trace-store footprint.

    Wall-clock readings by definition — they go in the text block only.
    The one asserted claim is structural: the exposition parses and is
    non-empty, so a scrape of a loaded service always yields samples.
    """
    import time

    from repro.obs.expo import parse_exposition
    from repro.perf.experiments import TC_QUERY
    from repro.serve.service import QueryService
    from repro.workloads.graphs import random_graph

    def build() -> QueryService:
        service = QueryService(max_concurrency=2, max_queue=requests)
        service.register_database("g", random_graph(n, 0.3, seed=n))
        service.prepare("tc", TC_QUERY, ("u", "v"))
        return service

    def drive(service: QueryService, trace: bool) -> float:
        async def go():
            await asyncio.gather(
                *[
                    service.call(
                        f"t{i % 4}", "tc", "g", request_seed=i, trace=trace
                    )
                    for i in range(requests)
                ]
            )

        start = time.perf_counter()
        asyncio.run(go())
        return time.perf_counter() - start

    plain_service = build()
    plain = drive(plain_service, False)
    plain_service.close()

    service = build()
    traced = drive(service, True)
    renders = 50
    start = time.perf_counter()
    for _ in range(renders):
        text = service.metrics_text()
    render = (time.perf_counter() - start) / renders
    samples = parse_exposition(text)
    assert samples, "a loaded service must expose at least one sample"
    result = {
        "plain": plain,
        "traced": traced,
        "render": render,
        "samples": len(samples),
        "flight": service.flight.recorded,
        "traces": len(service.traces),
    }
    service.close()
    return result


def _compile_amortization(n: int, calls: int) -> dict:
    """Prepared-query plan compilation: build cost at ``prepare()`` vs
    the steady-state hit path, against an interpreted twin service.

    Wall-clock readings — text block only; the gated drill above runs
    without the compiler and is untouched.  The asserted claims are
    structural: ``prepare()`` compiles at least one plan up front, the
    calls that follow are served from the plan cache (hits, no further
    builds), and compiled answers match the interpreted twin's.
    """
    import time

    from repro.perf.experiments import TC_QUERY
    from repro.serve.service import QueryService
    from repro.workloads.graphs import random_graph

    def build(compile_flag: bool) -> QueryService:
        service = QueryService(
            max_concurrency=2, max_queue=calls, compile=compile_flag
        )
        service.register_database("g", random_graph(n, 0.3, seed=n))
        return service

    def one_call(service: QueryService, seed: int):
        async def go():
            return await service.call("t0", "tc", "g", request_seed=seed)

        start = time.perf_counter()
        response = asyncio.run(go())
        return time.perf_counter() - start, response

    compiled = build(True)
    start = time.perf_counter()
    info = compiled.prepare("tc", TC_QUERY, ("u", "v"))
    prepare_s = time.perf_counter() - start
    assert info.get("compiled_plans", 0) >= 1, info

    interpreted = build(False)
    interpreted.prepare("tc", TC_QUERY, ("u", "v"))

    first_s, first_resp = one_call(compiled, 0)
    compiled_steady = min(
        one_call(compiled, 1 + i)[0] for i in range(calls)
    )
    interp_steady = min(
        one_call(interpreted, 1 + i)[0] for i in range(calls)
    )
    _, interp_resp = one_call(interpreted, 0)
    assert set(first_resp.rows) == set(interp_resp.rows)

    snap = compiled.registry.snapshot()
    builds = snap.get("compile.builds", 0)
    build_ms = snap.get("compile.build_ms", {}).get("sum", 0.0)
    hits = snap.get("compile.hits", 0)
    assert hits >= 1, snap
    compiled.close()
    interpreted.close()

    saving = interp_steady - compiled_steady
    return {
        "prepare": prepare_s,
        "builds": builds,
        "build_ms": build_ms,
        "hits": hits,
        "first": first_s,
        "steady": compiled_steady,
        "interp": interp_steady,
        # calls until prepare()'s build cost is paid back by the
        # steady-state saving (inf when the saving is in the noise)
        "break_even": (
            (build_ms / 1000.0) / saving if saving > 1e-9 else float("inf")
        ),
    }


def bench_serve_drill(benchmark):
    """The gated robustness drill across database sizes."""
    jobs = bench_jobs()
    sweep = run_sweep(
        "SERVE", SIZES, _drill_workload, repetitions=1, warmup=False,
        parallel=jobs,
    )
    rows = []
    for point in sweep.points:
        assert point.ok, point
        # no lost requests: every admitted or shed request resolved
        assert point.counter("ok") + point.counter("failed") == point.counter(
            "requests"
        )
        # the burst overflow — and only it — was shed
        assert point.counter("shed") == float(BURST)
        # injected faults were retried, the persistent tenant tripped
        # its breaker, and the tight tenant walked the ladder
        assert point.counter("retries") >= 1
        assert point.counter("breaker_trips") >= 1
        assert point.counter("degraded") >= 1
        rows.append(
            (
                int(point.parameter),
                int(point.counter("requests")),
                int(point.counter("ok")),
                int(point.counter("shed")),
                int(point.counter("retries")),
                int(point.counter("degraded")),
                int(point.counter("breaker_trips")),
                int(point.counter("answer_rows")),
            )
        )
    # determinism is the gate's precondition: a second run of one point
    # must reproduce every counter exactly
    repeat = _drill_workload(SIZES[-1])
    last = sweep.points[-1]
    assert {k: v for k, v in last.counters} == repeat, (
        last.counters,
        repeat,
    )
    benchmark(_drill_workload, SIZES[-1])

    load = _concurrent_load(SIZES[-1], LOAD_REQUESTS)
    latency, wait = load["latency"], load["queue_wait"]
    obs = _obs_overhead(SIZES[-1], LOAD_REQUESTS)
    tax = obs["traced"] / max(obs["plain"], 1e-9)
    amort = _compile_amortization(SIZES[-1], 12)
    body = (
        series_table(
            (
                "n", "requests", "ok", "shed", "retries", "degraded",
                "breaker trips", "answer rows",
            ),
            rows,
        )
        + "\n\nevery request resolved: correct answer, or structured "
        "Overloaded/ResourceExhausted — none lost, none wrong"
        + f"\nshed per point is exactly the burst overflow ({BURST}); "
        "counters are exact-reproducible (re-run checked)"
        + f"\n\nconcurrent load (n={SIZES[-1]}, {LOAD_REQUESTS} requests "
        f"at once, {int(load['ok'])} ok; wall-clock, not gated):"
        + f"\n  latency  p50={latency['p50']:.4f}s "
        f"p95={latency['p95']:.4f}s p99={latency['p99']:.4f}s"
        + f"\n  queue wait  p50={wait['p50']:.4f}s p95={wait['p95']:.4f}s"
        + f"\n\nobservability tax (n={SIZES[-1]}, {LOAD_REQUESTS} requests; "
        "wall-clock, not gated):"
        + f"\n  drive untraced={obs['plain']:.4f}s "
        f"traced={obs['traced']:.4f}s (x{tax:.2f} with full span shipping)"
        + f"\n  /metrics render {obs['render'] * 1000:.3f} ms/scrape, "
        f"{obs['samples']} samples parsed back"
        + f"\n  flight events recorded={obs['flight']}, "
        f"traces retained={obs['traces']}"
        + (
            f"\n\nprepared-query compile amortization (n={SIZES[-1]}; "
            "wall-clock, not gated):"
            + f"\n  prepare() compiled {int(amort['builds'])} plan(s) in "
            f"{amort['build_ms']:.3f} ms ({amort['prepare'] * 1000:.3f} ms "
            "total prepare)"
            + f"\n  calls: first={amort['first'] * 1000:.3f} ms, "
            f"steady={amort['steady'] * 1000:.3f} ms compiled vs "
            f"{amort['interp'] * 1000:.3f} ms interpreted "
            f"({int(amort['hits'])} plan-cache hits, 0 rebuilds)"
            + (
                f"\n  build cost amortized after ~{amort['break_even']:.1f} "
                "call(s)"
                if amort["break_even"] != float("inf")
                else "\n  steady-state saving within noise at this size"
            )
        )
        + ("" if jobs == 1 else f"\nsweep ran with {jobs} worker processes")
    )
    emit("SERVE", "query service robustness drill + concurrent load", body)
    emit_record(
        "SERVE",
        "Query service robustness drill: deterministic serve counters",
        sweep=sweep,
        fit_counters=("ok", "answer_rows"),
        meta={
            "requests": REQUESTS,
            "max_queue": MAX_QUEUE,
            "burst": BURST,
            "load_requests": LOAD_REQUESTS,
        },
    )
