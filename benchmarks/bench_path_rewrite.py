"""F2 — the Section 2.2 path-query rewrite: n+1 variables vs three.

``φ_n(x, y)`` ("a path of length n from x to y") written naively needs
n+1 variables; by reusing variables it lives in FO^3.  Evaluated with the
bounded engine, the naive form's intermediates grow with n (arity n+1 in
the worst join order) while the FO^3 form stays at arity ≤ 3 — and the
automatic minimizer turns the former into the latter.
"""

import time

from repro.core.fo_eval import BoundedEvaluator
from repro.core.interp import EvalStats
from repro.complexity.fit import fit_polynomial
from repro.optimize import minimize_variables
from repro.logic.variables import variable_width
from repro.workloads.formulas import path_query_fo3, path_query_naive
from repro.workloads.graphs import random_graph

from benchmarks._harness import emit, emit_record, series_table

LENGTHS = [2, 3, 4, 5]
GRAPH = random_graph(10, 0.25, seed=77)


def _evaluate(formula):
    stats = EvalStats()
    start = time.perf_counter()
    relation = BoundedEvaluator(GRAPH, stats=stats).answer(
        formula, ("x", "y")
    )
    return relation, stats, time.perf_counter() - start


def bench_path_rewrite(benchmark):
    rows = []
    naive_peaks, fo3_peaks = [], []
    for n in LENGTHS:
        naive_formula = path_query_naive(n).formula
        fo3_formula = path_query_fo3(n).formula
        minimized = minimize_variables(naive_formula)
        r_naive, s_naive, t_naive = _evaluate(naive_formula)
        r_fo3, s_fo3, t_fo3 = _evaluate(fo3_formula)
        r_min, s_min, t_min = _evaluate(minimized)
        assert r_naive == r_fo3 == r_min
        naive_peaks.append(s_naive.max_intermediate_rows)
        fo3_peaks.append(s_fo3.max_intermediate_rows)
        rows.append(
            (
                n,
                variable_width(naive_formula),
                s_naive.max_intermediate_arity,
                s_naive.max_intermediate_rows,
                variable_width(minimized),
                s_min.max_intermediate_arity,
                s_fo3.max_intermediate_rows,
                f"{t_naive:.4f}",
                f"{t_fo3:.4f}",
            )
        )
        assert variable_width(minimized) == 3
        assert s_fo3.max_intermediate_arity <= 3
        assert s_min.max_intermediate_arity <= 3
    benchmark(_evaluate, path_query_fo3(LENGTHS[-1]).formula)

    fo3_fit = fit_polynomial(LENGTHS, [max(p, 1) for p in fo3_peaks])
    body = (
        series_table(
            (
                "n",
                "naive k",
                "naive arity",
                "naive rows",
                "min k",
                "min arity",
                "fo3 rows",
                "naive s",
                "fo3 s",
            ),
            rows,
        )
        + f"\n\nFO^3 peak rows vs n: degree {fo3_fit.coefficient:.2f} "
        "(flat — the n^3 cap does not depend on path length)"
        + "\nthe minimizer reproduces the paper's 3-variable rewrite at "
        "every n"
    )
    emit("F2", "path queries: n+1 variables vs the FO^3 rewrite", body)
    emit_record(
        "F2",
        "path queries: naive vs FO^3 peak intermediate rows",
        parameters=[float(n) for n in LENGTHS],
        seconds=[float(r[7]) for r in rows],
        counters=[
            {
                "naive_width": float(r[1]),
                "naive_max_rows": float(r[3]),
                "minimized_width": float(r[4]),
                "fo3_max_rows": float(r[6]),
            }
            for r in rows
        ],
        fit_counters=("naive_max_rows", "fo3_max_rows"),
        meta={"graph_size": 10},
    )
