"""T2-FP — Table 2: combined complexity of FP^k (NP ∩ co-NP, Thm 3.5).

What is measurable about an NP∩co-NP bound:

1. certificates are small — the total guessed tuples of the Theorem 3.5
   certificate stay within a fixed polynomial envelope (~ l · n^k) across
   a data sweep, for membership *and* (via the dual query) non-membership;
2. verification is fast — the verifier's work grows polynomially in n.

Both are swept on the ν/µ "P infinitely often on every path" property.

A third bench pits the SEMINAIVE fixpoint strategy against NAIVE on
transitive closure — the workload semi-naive evaluation exists for.
"""

import functools
import time

from repro.core.certificates import (
    certificate_size,
    extract_membership,
    extract_non_membership,
    verify_membership,
    verify_non_membership,
)
from repro.core.fp_eval import FixpointStrategy, solve_query
from repro.core.interp import EvalStats
from repro.core.naive_eval import naive_answer
from repro.complexity.fit import classify_growth
from repro.complexity.measure import run_sweep
from repro.logic.parser import parse_formula
from repro.workloads.graphs import labeled_graph, path_graph, random_graph

from benchmarks._harness import bench_jobs, emit, emit_record, series_table

SIZES = [3, 4, 5, 6, 7]
FAIR = parse_formula(
    "[gfp S(x). [lfp T(z). forall y. (~E(z, y) | (P(y) & S(y)) | T(y))](x)](u)"
)

#: Path lengths for the transitive-closure strategy shoot-out: a path
#: graph maximizes fixpoint depth (n-1 rounds), the semi-naive sweet spot.
TC_SIZES = [6, 10, 14, 18]
TC_QUERY = "[lfp S(x, y). E(x, y) | exists z. (E(x, z) & S(z, y))](u, v)"

#: The packed-kernel shoot-out runs one size further: the packed
#: advantage grows with the n²-bit mask width, and n=26 is still far
#: inside the per-point deadline on both backends.
PACKED_TC_SIZES = TC_SIZES + [26]


def _tc_workload(
    parameter: float, strategy: str = "naive", backend: str = None
) -> dict:
    """Transitive closure of a path graph under one fixpoint strategy.

    Module-level (picklable) so ``REPRO_BENCH_JOBS`` can parallelize the
    sweep; parses the query per call so no formula objects cross process
    boundaries.
    """
    n = int(parameter)
    stats = EvalStats()
    answer = solve_query(
        parse_formula(TC_QUERY),
        path_graph(n),
        ("u", "v"),
        strategy=FixpointStrategy(strategy),
        stats=stats,
        backend=backend,
    )
    return {
        "answer_rows": float(len(answer)),
        "iterations": float(stats.fixpoint_iterations),
        "body_evals": float(stats.body_evaluations),
        "delta_rounds": float(stats.notes.get("seminaive_delta_rounds", 0)),
    }


def bench_table2_fp_seminaive_vs_naive(benchmark):
    """Semi-naive vs naive LFP ascent on path-graph transitive closure.

    Naive ascent re-joins ``E`` against the whole accumulated closure
    every round (``Θ(n)`` rounds of ``Θ(n²)``-row work); semi-naive joins
    only against the previous round's delta.  The speedup at each ``n``
    is recorded in the bench output — the differential test suite, not
    this bench, owns the equivalence guarantee, but tuple counts are
    cross-checked here too.
    """
    jobs = bench_jobs()
    sweeps = {
        strategy: run_sweep(
            f"tc-{strategy}",
            TC_SIZES,
            functools.partial(_tc_workload, strategy=strategy),
            repetitions=3,
            parallel=jobs,
        )
        for strategy in ("naive", "seminaive")
    }
    rows = []
    for naive_pt, semi_pt in zip(
        sweeps["naive"].points, sweeps["seminaive"].points
    ):
        assert naive_pt.ok and semi_pt.ok, (naive_pt, semi_pt)
        # same closure, and the semi-naive run really ran delta rounds
        assert naive_pt.counter("answer_rows") == semi_pt.counter(
            "answer_rows"
        )
        assert semi_pt.counter("delta_rounds") >= 1
        rows.append(
            (
                int(naive_pt.parameter),
                int(naive_pt.counter("answer_rows")),
                f"{naive_pt.seconds:.5f}",
                f"{semi_pt.seconds:.5f}",
                f"{naive_pt.seconds / semi_pt.seconds:.2f}x",
            )
        )
    benchmark(functools.partial(_tc_workload, strategy="seminaive"), TC_SIZES[-1])
    largest = rows[-1]
    body = (
        series_table(
            ("n", "closure rows", "naive s", "seminaive s", "speedup"),
            rows,
        )
        + f"\n\nlargest n={largest[0]}: naive {largest[2]}s vs semi-naive "
        f"{largest[3]}s ({largest[4]}) — recorded, not asserted; both "
        f"strategies agree tuple-for-tuple (checked per point)"
        + ("" if jobs == 1 else f"\nsweep ran with {jobs} worker processes")
    )
    emit(
        "T2-FP-SEMINAIVE",
        "semi-naive vs naive LFP ascent on transitive closure",
        body,
    )
    emit_record(
        "T2-FP-SEMINAIVE",
        "semi-naive LFP ascent on transitive closure",
        sweep=sweeps["seminaive"],
        fit_counters=("answer_rows", "iterations"),
        meta={"strategy": "seminaive", "versus": "naive"},
    )


def bench_table2_fp_packed_vs_sparse(benchmark):
    """Packed ``n^k``-bit kernel vs the sparse reference on transitive
    closure (semi-naive ascent both sides).

    The packed backend turns the per-round union/difference/join work
    into whole-integer bit operations, so its advantage grows with the
    ``n²``-bit mask size.  Wall-clock speedup per point is recorded in
    the bench output; the equivalence guarantee is owned by the
    backend-differential test suite, but answer and iteration counters
    are cross-checked here too — they must be representation-independent.
    """
    jobs = bench_jobs()
    sweeps = {
        backend: run_sweep(
            f"tc-{backend}",
            PACKED_TC_SIZES,
            functools.partial(
                _tc_workload, strategy="seminaive", backend=backend
            ),
            repetitions=5,
            parallel=jobs,
        )
        for backend in ("sparse", "packed")
    }
    rows = []
    for sparse_pt, packed_pt in zip(
        sweeps["sparse"].points, sweeps["packed"].points
    ):
        assert sparse_pt.ok and packed_pt.ok, (sparse_pt, packed_pt)
        # identical answers and identical engine counters: the backend
        # changes the representation, never the computation
        for key in ("answer_rows", "iterations", "body_evals", "delta_rounds"):
            assert sparse_pt.counter(key) == packed_pt.counter(key), key
        rows.append(
            (
                int(sparse_pt.parameter),
                int(sparse_pt.counter("answer_rows")),
                f"{sparse_pt.seconds:.5f}",
                f"{packed_pt.seconds:.5f}",
                f"{sparse_pt.seconds / packed_pt.seconds:.2f}x",
            )
        )
    benchmark(
        functools.partial(_tc_workload, strategy="seminaive", backend="packed"),
        PACKED_TC_SIZES[-1],
    )
    largest = rows[-1]
    body = (
        series_table(
            ("n", "closure rows", "sparse s", "packed s", "speedup"),
            rows,
        )
        + f"\n\nlargest n={largest[0]}: sparse {largest[2]}s vs packed "
        f"{largest[3]}s ({largest[4]}) — recorded, not asserted; both "
        f"backends agree on answers and counters (checked per point)"
        + ("" if jobs == 1 else f"\nsweep ran with {jobs} worker processes")
    )
    emit(
        "T2-FP-PACKED",
        "packed n^k-bit kernel vs sparse tables on transitive closure",
        body,
    )
    emit_record(
        "T2-FP-PACKED",
        "packed n^k-bit kernel on transitive closure",
        sweep=sweeps["packed"],
        fit_counters=("answer_rows", "iterations"),
        meta={"backend": "packed", "versus": "sparse"},
    )


def _database(n: int):
    return labeled_graph(
        random_graph(n, 0.35, seed=n + 100), {"P": list(range(0, n, 2))}
    )


def _sweep_point(n: int):
    db = _database(n)
    answer = naive_answer(FAIR, db, ("u",))
    member = next(iter(sorted(answer.tuples)), None)
    outside = next(
        ((v,) for v in range(n) if (v,) not in answer), None
    )
    sizes, verify_work = [], []
    if member is not None:
        cert = extract_membership(FAIR, db, ("u",), member)
        sizes.append(certificate_size(cert))
        stats = EvalStats()
        start = time.perf_counter()
        assert verify_membership(cert, FAIR, db, stats=stats)
        verify_work.append(
            (time.perf_counter() - start, stats.table_ops)
        )
    if outside is not None:
        cert = extract_non_membership(FAIR, db, ("u",), outside)
        sizes.append(certificate_size(cert))
        stats = EvalStats()
        start = time.perf_counter()
        assert verify_non_membership(cert, FAIR, db, stats=stats)
        verify_work.append((time.perf_counter() - start, stats.table_ops))
    return sizes, verify_work


def bench_table2_fp_certificates(benchmark):
    rows, max_sizes, verify_ops = [], [], []
    cert_seconds, cert_counters = [], []
    k, fixpoints = 3, 2
    for n in SIZES:
        sizes, verify_work = _sweep_point(n)
        envelope = 2 * fixpoints * n**k
        biggest = max(sizes) if sizes else 0
        ops = max((w for _, w in verify_work), default=0)
        seconds = max((s for s, _ in verify_work), default=0.0)
        max_sizes.append(max(biggest, 1))
        verify_ops.append(max(ops, 1))
        cert_seconds.append(seconds)
        cert_counters.append(
            {
                "cert_tuples": float(biggest),
                "envelope": float(envelope),
                "verify_ops": float(ops),
            }
        )
        rows.append((n, biggest, envelope, ops, f"{seconds:.4f}"))
        assert biggest <= envelope, (n, biggest, envelope)
    benchmark(_sweep_point, SIZES[2])

    from repro.complexity.fit import fit_polynomial

    size_fit = fit_polynomial(SIZES, max_sizes)
    verify_fit = fit_polynomial(SIZES, verify_ops)
    body = (
        series_table(
            ("n", "cert tuples", "l*n^k envelope", "verify ops", "verify s"),
            rows,
        )
        + f"\n\ncertificate size vs n: within the l*n^k envelope at every "
        f"n; fitted degree {size_fit.coefficient:.2f} (claim: poly — NP side)"
        + f"\nverification work vs n: fitted degree "
        f"{verify_fit.coefficient:.2f} (claim: poly-time verifier)"
        + "\nnon-membership certified via the dual query (co-NP side)"
    )
    emit("T2-FP", "FP^k certificates are small and quickly verifiable", body)
    emit_record(
        "T2-FP-CERT",
        "FP^k certificate sizes and verification work",
        parameters=[float(n) for n in SIZES],
        seconds=cert_seconds,
        counters=cert_counters,
        fit_counters=("cert_tuples", "verify_ops"),
        meta={"k": k, "fixpoints": fixpoints},
    )

    # the meaningful bound is the per-point envelope (asserted in the loop);
    # the fitted degrees are reported and loosely sanity-checked — random
    # graph structure makes the series too jagged for model selection
    assert size_fit.coefficient <= k + 2.0
    assert verify_fit.coefficient <= 6.0


def bench_table3_fp_expression(benchmark):
    """Table 3 row FP: expression complexity matches combined (NP∩co-NP).

    Fixed database, growing alternating ν/µ expressions: certificate
    sizes stay within the ``l·n^k`` envelope — linear in the expression's
    alternation depth l, not exponential.
    """
    from repro.core.alternation import alternation_answer_with_trace
    from repro.workloads.formulas import alternating_fixpoint_family

    db = _database(5)
    depth_db = db
    rows = []
    sizes = []
    depths = [1, 2, 3, 4]
    for depth in depths:
        q = alternating_fixpoint_family(depth)
        working_db = depth_db
        # the family needs labels P1..P<depth>
        from repro.workloads.graphs import labeled_graph, random_graph

        working_db = labeled_graph(
            random_graph(5, 0.35, seed=4),
            {f"P{i}": [0, 2] for i in range(1, depth + 1)},
        )
        _, cert = alternation_answer_with_trace(q.formula, working_db, ())
        envelope = 2 * depth * working_db.size() ** 3
        size = cert.total_guessed_tuples()
        sizes.append(max(size, 1))
        rows.append((depth, q.formula.size(), size, envelope))
        assert size <= envelope
    benchmark(
        lambda: alternation_answer_with_trace(
            alternating_fixpoint_family(3).formula,
            _expression_db(),
            (),
        )
    )
    body = (
        series_table(
            ("alt depth l", "|e| nodes", "cert tuples", "l*n^k envelope"),
            rows,
        )
        + "\n\nfixed database, growing expressions: certificate size "
        "scales with l, inside the l*n^k envelope at every depth"
    )
    emit(
        "T3-FP",
        "FP^k expression complexity: certificates stay l*n^k on a fixed B",
        body,
    )
    emit_record(
        "T3-FP",
        "FP^k expression complexity: certificate size vs alternation depth",
        parameters=[float(d) for d in depths],
        seconds=[0.0] * len(depths),
        counters=[
            {
                "expr_nodes": float(expr),
                "cert_tuples": float(size),
                "envelope": float(env),
            }
            for _, expr, size, env in rows
        ],
        fit_counters=("cert_tuples",),
        meta={"database_size": 5},
    )


def _expression_db():
    from repro.workloads.graphs import labeled_graph, random_graph

    return labeled_graph(
        random_graph(5, 0.35, seed=4),
        {f"P{i}": [0, 2] for i in range(1, 4)},
    )
