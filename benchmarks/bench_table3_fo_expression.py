"""T3-FO — Table 3: expression complexity of FO^k drops to ALOGTIME.

For a *fixed* database, Lemma 4.2 turns FO^k evaluation into membership
in a parenthesis language, recognizable in ALOGTIME (Thm 4.1 + [Bus87]).
Sequentially observable: one linear pass over the expression with
constant-size table lookups.  We sweep expression length over the fixed
two-element database and measure:

* the grammar-route recognizer: tokens scanned == input length,
  reductions ≤ input length (single pass, linear);
* the Theorem 4.4 direction: Boolean formula value problem instances
  embedded as FO^1 sentences evaluate in time linear in |e|.
"""

import time

from repro.complexity.fit import fit_polynomial
from repro.database import Database
from repro.grammar import build_fo_grammar
from repro.grammar.recognizer import RecognizerStats, recognize_parenthesis
from repro.logic.builders import and_, atom, exists, not_
from repro.logic.syntax import And, Exists, Var
from repro.reductions import (
    bfvp_database,
    bfvp_to_fo_query,
    eval_boolean_formula,
    random_boolean_formula,
)

from benchmarks._harness import emit, emit_record, series_table

FIXED_DB = Database.from_tuples(
    range(2), {"E": (2, [(0, 1)]), "P": (1, [(0,)])}
)
DEPTHS = [3, 5, 7, 9, 11]


def _grammar_formula(levels: int):
    """Nested ∃/∧ formula of growing size over x1, x2."""
    phi = atom("P", "x1")
    for i in range(levels):
        inner = And((atom("E", "x1", "x2"), phi))
        phi = Exists(Var("x2"), inner) if i % 2 == 0 else And(
            (atom("P", "x1"), Exists(Var("x2"), inner))
        )
    return phi


def _grammar_point(levels: int, fg):
    phi = _grammar_formula(levels)
    stats = RecognizerStats()
    start = time.perf_counter()
    value = None
    for index in range(len(fg.relations)):
        word = fg.word_for(phi, index)
        if recognize_parenthesis(fg.grammar, word, stats):
            value = index
            break
    seconds = time.perf_counter() - start
    assert value is not None
    return len(fg.word_for(phi, 0)), stats, seconds


def bench_table3_fo_expression(benchmark):
    fg = build_fo_grammar(FIXED_DB, k=2)
    rows, lengths, scans = [], [], []
    for depth in DEPTHS:
        word_len, stats, seconds = _grammar_point(depth, fg)
        lengths.append(word_len)
        scans.append(stats.tokens_scanned)
        rows.append(
            (depth, word_len, stats.tokens_scanned, stats.reductions,
             f"{seconds:.4f}")
        )
        assert stats.reductions <= stats.tokens_scanned
    benchmark(_grammar_point, DEPTHS[2], fg)

    scan_fit = fit_polynomial(lengths, scans)

    # Theorem 4.4 direction: BFVP → FO^1 over the fixed database
    bfvp_rows = []
    bfvp_sizes, bfvp_ops = [], []
    db = bfvp_database()
    for depth in (3, 5, 7, 9):
        formula = random_boolean_formula(depth, seed=depth)
        q = bfvp_to_fo_query(formula)
        from repro.core.interp import EvalStats
        from repro.core.fo_eval import BoundedEvaluator

        stats = EvalStats()
        got = (
            BoundedEvaluator(db, stats=stats).answer(q.formula, ()).as_bool()
        )
        assert got == eval_boolean_formula(formula)
        bfvp_sizes.append(q.formula.size())
        bfvp_ops.append(stats.table_ops)
        bfvp_rows.append((depth, q.formula.size(), stats.table_ops, got))
    ops_fit = fit_polynomial(bfvp_sizes, bfvp_ops)

    body = (
        "grammar route (fixed B, k = 2, "
        f"{len(fg.grammar.productions)} productions):\n"
        + series_table(
            ("depth", "word len", "tokens scanned", "reductions", "seconds"),
            rows,
        )
        + f"\n  -> scans vs |word|: degree {scan_fit.coefficient:.2f} "
        "(claim: single linear pass)\n\n"
        "Theorem 4.4 route (BFVP as FO^1 over B1):\n"
        + series_table(("depth", "|e| nodes", "table ops", "value"), bfvp_rows)
        + f"\n  -> table ops vs |e|: degree {ops_fit.coefficient:.2f} "
        "(claim: linear in the expression)"
    )
    emit("T3-FO", "expression complexity of FO^k: one linear pass", body)
    emit_record(
        "T3-FO",
        "parenthesis-language route: scans and reductions per word",
        parameters=[float(d) for d in DEPTHS],
        seconds=[float(r[4]) for r in rows],
        counters=[
            {
                "word_len": float(r[1]),
                "tokens_scanned": float(r[2]),
                "reductions": float(r[3]),
            }
            for r in rows
        ],
        fit_counters=("tokens_scanned",),
        meta={"k": 2},
    )

    assert 0.8 <= scan_fit.coefficient <= 1.3
    assert ops_fit.coefficient <= 1.3
