"""The benchmark suite: one module per experiment in DESIGN.md §4.

Run with ``pytest benchmarks/ --benchmark-only``; each bench prints its
measured series (also saved under ``benchmarks/out/``) and asserts the
paper's qualitative claim.
"""
