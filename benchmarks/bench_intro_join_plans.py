"""F1 — the introduction example: intermediate-arity minimization.

EMP/MGR/SCY/SAL with "earn less than the manager's secretary": the naive
cross-product plan materializes a 12-ary intermediate whose size explodes
with the company, while the bounded join plan (arity ≤ 3) scales gently.
The reproduction target is the *shape*: the bounded plan wins, the gap
widens with n, and the crossover is immediate.
"""

import time

from repro.algebra import dynamic_cost
from repro.complexity.fit import classify_growth
from repro.workloads.company import (
    company_database,
    earns_less_bounded_algebra,
    earns_less_naive_algebra,
)

from benchmarks._harness import emit, emit_record, series_table

COMPANY_SIZES = [4, 6, 8, 10]


def _point(num_employees: int):
    db = company_database(
        num_employees=num_employees,
        num_departments=max(2, num_employees // 3),
        seed=num_employees,
    )
    start = time.perf_counter()
    naive_table, naive_cost = dynamic_cost(earns_less_naive_algebra(), db)
    naive_seconds = time.perf_counter() - start
    start = time.perf_counter()
    bounded_table, bounded_cost = dynamic_cost(
        earns_less_bounded_algebra(), db
    )
    bounded_seconds = time.perf_counter() - start
    assert set(naive_table.rows) == set(bounded_table.rows)
    return naive_cost, naive_seconds, bounded_cost, bounded_seconds


def bench_intro_join_plans(benchmark):
    rows, naive_rows_series, bounded_rows_series = [], [], []
    for n in COMPANY_SIZES:
        naive_cost, naive_s, bounded_cost, bounded_s = _point(n)
        naive_rows_series.append(naive_cost.max_intermediate_rows)
        bounded_rows_series.append(max(bounded_cost.max_intermediate_rows, 1))
        rows.append(
            (
                n,
                naive_cost.max_intermediate_arity,
                naive_cost.max_intermediate_rows,
                f"{naive_s:.4f}",
                bounded_cost.max_intermediate_arity,
                bounded_cost.max_intermediate_rows,
                f"{bounded_s:.4f}",
            )
        )
        assert bounded_cost.dominates(naive_cost)
    benchmark(_point, COMPANY_SIZES[0])

    naive_kind, naive_fit, _ = classify_growth(
        COMPANY_SIZES, naive_rows_series
    )
    body = (
        series_table(
            (
                "employees",
                "naive arity",
                "naive max rows",
                "naive s",
                "join arity",
                "join max rows",
                "join s",
            ),
            rows,
        )
        + f"\n\nnaive max rows vs employees: {naive_kind}, "
        + (
            f"degree {naive_fit.coefficient:.1f}"
            if naive_kind == "polynomial"
            else f"base {naive_fit.base:.1f}"
        )
        + "\nbounded plan max arity is 3 at every size; it dominates on "
        "every instance"
    )
    emit("F1", "intro example: 12-ary cross product vs arity-3 joins", body)
    emit_record(
        "F1",
        "company example: naive vs bounded join-plan row high-water",
        parameters=[float(n) for n in COMPANY_SIZES],
        seconds=[float(r[3]) for r in rows],
        counters=[
            {
                "naive_max_rows": float(r[2]),
                "naive_arity": float(r[1]),
                "bounded_max_rows": float(r[5]),
                "bounded_arity": float(r[4]),
            }
            for r in rows
        ],
        fit_counters=("naive_max_rows", "bounded_max_rows"),
    )

    gap_small = naive_rows_series[0] / bounded_rows_series[0]
    gap_large = naive_rows_series[-1] / bounded_rows_series[-1]
    assert gap_large > gap_small  # the gap widens with the data
