"""Shared helpers for the benchmark suite.

Every bench regenerates one experiment from DESIGN.md's per-experiment
index.  Results are printed and written to ``benchmarks/out/<id>.txt``
(each run overwrites the previous block, so the file always holds the
latest run) so EXPERIMENTS.md can quote them; shape claims (polynomial
vs exponential, who wins) are asserted so a regression breaks the bench.

Alongside the text block, every bench also appends a machine-readable
:class:`repro.obs.runstore.RunRecord` to the content-addressed store
under ``benchmarks/out/records/`` via :func:`emit_record` — the durable
input of the ``repro perf compare`` regression gate (see
``docs/benchmarking.md``).
"""

from __future__ import annotations

import os
from typing import Mapping, Optional, Sequence, Tuple

from repro.guard.budget import Budget

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

#: Where :func:`emit_record` archives run records (the CLI's default too).
RECORDS_DIR = os.path.join(OUT_DIR, "records")

#: Environment variable overriding the per-point deadline (seconds).
DEADLINE_ENV = "REPRO_BENCH_DEADLINE"

#: Default per-point deadline: generous for any healthy bench point, but
#: a diverging configuration is cut off instead of hanging the suite.
DEFAULT_POINT_DEADLINE = 60.0

#: Environment variable selecting the sweep worker-process count.
JOBS_ENV = "REPRO_BENCH_JOBS"

#: Environment variable selecting the table backend for bench workloads
#: (the same variable the engines consult — see
#: :mod:`repro.kernel.backend`).
BACKEND_ENV = "REPRO_BENCH_BACKEND"


def bench_backend(default: str = "sparse") -> str:
    """The table backend for bench workloads (``sparse`` or ``packed``).

    Reads ``REPRO_BENCH_BACKEND``; an unknown value falls back to
    ``default`` rather than failing the whole suite.  Benches that
    compare the backends against each other pin theirs explicitly and
    ignore this.
    """
    value = os.environ.get(BACKEND_ENV, default).strip().lower()
    return value if value in ("sparse", "packed") else default


def bench_jobs(default: int = 1) -> int:
    """Worker processes for sweep-based benches (``run_sweep(parallel=)``).

    Defaults to serial — parallel workers share cores, so per-point
    wall-clock comparisons are only meaningful at ``1``.  Set
    ``REPRO_BENCH_JOBS`` to fan points out when total sweep throughput
    matters more than clean per-point times; outcomes and counters are
    identical either way.
    """
    try:
        jobs = int(os.environ.get(JOBS_ENV, default))
    except ValueError:
        return default
    return max(1, jobs)


def point_deadline(deadline_seconds: Optional[float] = None) -> Optional[float]:
    """The effective per-point deadline in seconds (``None`` = disabled).

    Resolution order: explicit argument, then ``REPRO_BENCH_DEADLINE``,
    then :data:`DEFAULT_POINT_DEADLINE`; non-positive disables.
    """
    if deadline_seconds is None:
        try:
            deadline_seconds = float(
                os.environ.get(DEADLINE_ENV, DEFAULT_POINT_DEADLINE)
            )
        except ValueError:
            deadline_seconds = DEFAULT_POINT_DEADLINE
    return deadline_seconds if deadline_seconds > 0 else None


def point_budget(deadline_seconds: Optional[float] = None) -> Budget:
    """The per-sweep-point budget for bench workloads.

    Benches thread this into their workloads' ``EvalOptions`` so every
    point is individually deadlined; :func:`repro.complexity.run_sweep`
    then records an over-deadline point as ``outcome="timeout"`` and the
    sweep keeps going.  ``REPRO_BENCH_DEADLINE`` overrides the default
    (``0`` disables the deadline entirely).
    """
    deadline = point_deadline(deadline_seconds)
    if deadline is None:
        return Budget()
    return Budget(deadline_seconds=deadline)


def emit(experiment_id: str, title: str, body: str) -> None:
    """Print one experiment's result block and persist it.

    The output file is overwritten on every run — it is a regenerable
    artifact, not a log.  The header carries the environment fingerprint
    and the effective per-point deadline so a quoted block is
    self-describing about where and under what budget it was measured.
    """
    from repro.obs.runstore import env_fingerprint, format_fingerprint

    deadline = point_deadline()
    banner = f"[{experiment_id}] {title}"
    header = (
        f"{banner}\n"
        f"# env: {format_fingerprint(env_fingerprint())}\n"
        f"# deadline: "
        + (f"{deadline:g}s per point" if deadline is not None else "none")
    )
    block = f"{header}\n{'-' * len(banner)}\n{body}\n"
    print("\n" + block)
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{experiment_id}.txt")
    with open(path, "w") as handle:
        handle.write(block)


def emit_record(
    experiment_id: str,
    title: str,
    sweep=None,
    parameters: Optional[Sequence[float]] = None,
    seconds: Optional[Sequence[float]] = None,
    counters: Optional[Sequence[Mapping[str, float]]] = None,
    outcomes: Optional[Sequence[str]] = None,
    fit_counters: Sequence[str] = (),
    meta: Optional[Mapping[str, object]] = None,
    include_spans: bool = False,
    store_root: Optional[str] = None,
) -> Tuple[str, str]:
    """Archive this bench run as a machine-readable record.

    Pass either a :class:`repro.complexity.measure.SweepResult` as
    ``sweep`` or parallel ``parameters``/``seconds``/``counters`` series
    for hand-rolled loops.  Appends to the content-addressed store under
    ``benchmarks/out/records/`` and seeds ``BENCH_<id>.json`` if the
    experiment has no baseline yet (a committed baseline is only ever
    replaced deliberately, via ``repro perf record --baseline``).
    Returns ``(digest, path)``.
    """
    from repro.obs.runstore import RunStore, build_record, record_from_sweep

    deadline = point_deadline()
    if sweep is not None:
        record = record_from_sweep(
            experiment_id,
            title,
            sweep,
            fit_counters=fit_counters,
            deadline=deadline,
            meta=meta,
            include_spans=include_spans,
        )
    else:
        record = build_record(
            experiment_id,
            title,
            parameters=list(parameters or ()),
            seconds=list(seconds or ()),
            counters=list(counters) if counters is not None else None,
            outcomes=list(outcomes) if outcomes is not None else None,
            fit_counters=fit_counters,
            deadline=deadline,
            meta=meta,
        )
    store = RunStore(store_root or RECORDS_DIR)
    digest, path = store.save(record)
    if store.load_baseline(experiment_id) is None:
        store.save_baseline(record)
    return digest, path


def load_baseline(experiment_id: str, store_root: Optional[str] = None):
    """The committed baseline record for an experiment, or ``None``."""
    from repro.obs.runstore import RunStore

    return RunStore(store_root or RECORDS_DIR).load_baseline(experiment_id)


def emit_trace(experiment_id: str, tracer) -> str:
    """Persist a span trace next to the experiment's text output.

    Writes ``benchmarks/out/<id>.trace.jsonl`` (overwriting, like
    :func:`emit`) and returns the path.  ``tracer`` is a recording
    :class:`repro.obs.Tracer`.
    """
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{experiment_id}.trace.jsonl")
    with open(path, "w") as handle:
        handle.write(tracer.export_jsonl() + "\n")
    return path


def series_table(
    header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """A small fixed-width table renderer for bench output."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    def fmt(row):
        return "  ".join(str(v).rjust(w) for v, w in zip(row, widths))

    lines = [fmt(header)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
