"""Shared helpers for the benchmark suite.

Every bench regenerates one experiment from DESIGN.md's per-experiment
index.  Results are printed and written to ``benchmarks/out/<id>.txt``
(each run overwrites the previous block, so the file always holds the
latest run) so EXPERIMENTS.md can quote them; shape claims (polynomial
vs exponential, who wins) are asserted so a regression breaks the bench.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from repro.guard.budget import Budget

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

#: Environment variable overriding the per-point deadline (seconds).
DEADLINE_ENV = "REPRO_BENCH_DEADLINE"

#: Default per-point deadline: generous for any healthy bench point, but
#: a diverging configuration is cut off instead of hanging the suite.
DEFAULT_POINT_DEADLINE = 60.0

#: Environment variable selecting the sweep worker-process count.
JOBS_ENV = "REPRO_BENCH_JOBS"


def bench_jobs(default: int = 1) -> int:
    """Worker processes for sweep-based benches (``run_sweep(parallel=)``).

    Defaults to serial — parallel workers share cores, so per-point
    wall-clock comparisons are only meaningful at ``1``.  Set
    ``REPRO_BENCH_JOBS`` to fan points out when total sweep throughput
    matters more than clean per-point times; outcomes and counters are
    identical either way.
    """
    try:
        jobs = int(os.environ.get(JOBS_ENV, default))
    except ValueError:
        return default
    return max(1, jobs)


def point_budget(deadline_seconds: Optional[float] = None) -> Budget:
    """The per-sweep-point budget for bench workloads.

    Benches thread this into their workloads' ``EvalOptions`` so every
    point is individually deadlined; :func:`repro.complexity.run_sweep`
    then records an over-deadline point as ``outcome="timeout"`` and the
    sweep keeps going.  ``REPRO_BENCH_DEADLINE`` overrides the default
    (``0`` disables the deadline entirely).
    """
    if deadline_seconds is None:
        deadline_seconds = float(
            os.environ.get(DEADLINE_ENV, DEFAULT_POINT_DEADLINE)
        )
    if deadline_seconds <= 0:
        return Budget()
    return Budget(deadline_seconds=deadline_seconds)


def emit(experiment_id: str, title: str, body: str) -> None:
    """Print one experiment's result block and persist it.

    The output file is overwritten on every run — it is a regenerable
    artifact, not a log.
    """
    banner = f"[{experiment_id}] {title}"
    block = f"{banner}\n{'-' * len(banner)}\n{body}\n"
    print("\n" + block)
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{experiment_id}.txt")
    with open(path, "w") as handle:
        handle.write(block)


def emit_trace(experiment_id: str, tracer) -> str:
    """Persist a span trace next to the experiment's text output.

    Writes ``benchmarks/out/<id>.trace.jsonl`` (overwriting, like
    :func:`emit`) and returns the path.  ``tracer`` is a recording
    :class:`repro.obs.Tracer`.
    """
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{experiment_id}.trace.jsonl")
    with open(path, "w") as handle:
        handle.write(tracer.export_jsonl() + "\n")
    return path


def series_table(
    header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """A small fixed-width table renderer for bench output."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    def fmt(row):
        return "  ".join(str(v).rjust(w) for v, w in zip(row, widths))

    lines = [fmt(header)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
