"""F3 — the Section 3.2 ablation: restart-everything vs reuse (Thm 3.5).

Two measurements on a directed path with source/sink labels:

1. **work contrast** (footnote 5 made visible): the dependent nested-lfp
   family re-solves its inner fixpoints on every outer iteration.  The
   NAIVE strategy's body-evaluation count grows multiplicatively with
   nesting depth l (the ``n^{k·l}`` behaviour); the warm-started MONOTONE
   strategy grows additively (``~l·n^k``).

2. **certificate compactness** (the Theorem 3.5 guarantee): on genuinely
   alternating ν/µ nests the under-approximation certificates stay within
   the ``l·n^k`` envelope even though deterministic *extraction* may pay
   the naive cost — finding certificates fast would put FP^k in PTIME,
   which the paper leaves open.

All strategies must agree with the reference semantics throughout.
"""

import time

from repro.core.alternation import alternation_answer_with_trace
from repro.core.fp_eval import FixpointStrategy, solve_query
from repro.core.interp import EvalStats
from repro.core.naive_eval import naive_answer
from repro.workloads.formulas import alternating_fixpoint_family, nested_lfp_family
from repro.workloads.graphs import labeled_graph, path_graph, random_graph

from benchmarks._harness import emit, emit_record, series_table

DEPTHS = [1, 2, 3]
N = 8
NEST_DB = labeled_graph(path_graph(N), {"P1": [0], "L": [N - 1]})


def _work_point(depth: int, strategy: FixpointStrategy):
    q = nested_lfp_family(depth)
    stats = EvalStats()
    start = time.perf_counter()
    relation = solve_query(
        q.formula, NEST_DB, ("w",), strategy=strategy, stats=stats
    )
    return relation, stats, time.perf_counter() - start


def bench_fp_alternation_ablation(benchmark):
    rows, naive_series, monotone_series = [], [], []
    for depth in DEPTHS:
        r_naive, s_naive, t_naive = _work_point(depth, FixpointStrategy.NAIVE)
        r_mono, s_mono, t_mono = _work_point(depth, FixpointStrategy.MONOTONE)
        assert r_naive == r_mono
        if depth <= 2:
            # the recursive reference interpreter costs ~n^{2l} on nested
            # parameterized fixpoints; cross-check the cheap depths only
            # (deeper strategy agreement is property-tested in the suite)
            assert r_naive == naive_answer(
                nested_lfp_family(depth).formula, NEST_DB, ("w",)
            )
        naive_series.append(s_naive.body_evaluations)
        monotone_series.append(s_mono.body_evaluations)
        rows.append(
            (
                depth,
                s_naive.body_evaluations,
                f"{t_naive:.4f}",
                s_mono.body_evaluations,
                s_mono.notes.get("warm_starts", 0),
                f"{t_mono:.4f}",
            )
        )
    benchmark(_work_point, 3, FixpointStrategy.MONOTONE)

    # certificate compactness on alternating ν/µ nests
    cert_rows = []
    alt_db = labeled_graph(
        random_graph(5, 0.35, seed=3),
        {f"P{i}": ([0, 2, 4] if i % 2 else [1, 3]) for i in range(1, 5)},
    )
    for depth in (1, 2, 3):
        q = alternating_fixpoint_family(depth)
        _, cert = alternation_answer_with_trace(q.formula, alt_db, ())
        envelope = 2 * depth * alt_db.size() ** 3
        size = cert.total_guessed_tuples()
        assert size <= envelope, (depth, size, envelope)
        cert_rows.append((depth, size, envelope))

    naive_growth = naive_series[-1] / naive_series[0]
    monotone_growth = monotone_series[-1] / monotone_series[0]
    body = (
        f"work contrast (nested dependent lfp on an {N}-path):\n"
        + series_table(
            (
                "depth l",
                "naive body evals",
                "naive s",
                "monotone evals",
                "warm starts",
                "mono s",
            ),
            rows,
        )
        + f"\n  naive work x{naive_growth:.1f} from l=1 to l={DEPTHS[-1]}; "
        f"warm-started x{monotone_growth:.1f} "
        "(claim: multiplicative vs additive in l)\n\n"
        "certificate compactness (alternating ν/µ family):\n"
        + series_table(("alt depth l", "cert tuples", "l*n^k envelope"), cert_rows)
    )
    emit("F3", "restart-everything vs reuse: the Theorem 3.5 ablation", body)
    emit_record(
        "F3",
        "nested-lfp ablation: naive vs warm-started body evaluations",
        parameters=[float(d) for d in DEPTHS],
        seconds=[float(r[2]) for r in rows],
        counters=[
            {
                "naive_body_evals": float(r[1]),
                "monotone_body_evals": float(r[3]),
                "warm_starts": float(r[4]),
            }
            for r in rows
        ],
        fit_counters=("naive_body_evals", "monotone_body_evals"),
        meta={"path_length": N},
    )

    assert naive_growth > 2.0 * monotone_growth
