"""F4 — Prop 3.2: Path Systems reduces to FO^3 combined complexity.

The reduction is the PTIME-completeness witness for Table 2's FO row.
Measured properties: the produced query stays at width 3, its size is
linear in the instance, evaluation through the bounded engine agrees
with the Datalog closure on every instance, and evaluation cost is
polynomial in the instance size.
"""

import time

from repro.complexity.fit import classify_growth, fit_polynomial
from repro.logic.printer import formula_length
from repro.logic.variables import variable_width
from repro.reductions import (
    path_system_database,
    path_system_query,
    random_path_system,
    solve_path_system,
)

from benchmarks._harness import emit, emit_record, series_table

SIZES = [4, 6, 8, 10, 12]


def _point(size: int):
    instance = random_path_system(
        size, num_rules=2 * size, num_sources=2, num_targets=2, seed=size
    )
    query = path_system_query(instance)
    db = path_system_database(instance)
    expected = solve_path_system(instance)
    start = time.perf_counter()
    got = query.holds(db)
    seconds = time.perf_counter() - start
    assert got == expected
    # third route: the paper's Datalog program through the semi-naive engine
    from repro.database import Database
    from repro.datalog import parse_program, semi_naive

    renamed = Database(
        db.domain, {"s": db.relation("S"), "q": db.relation("Q")}
    )
    closure = semi_naive(
        parse_program("p(X) :- s(X). p(X) :- q(X, Y, Z), p(Y), p(Z)."),
        renamed,
    )["p"]
    datalog_answer = bool(
        {row[0] for row in closure.tuples} & set(instance.targets)
    )
    assert datalog_answer == expected
    return query, seconds, got


def bench_path_systems_reduction(benchmark):
    rows, sizes, expr_lengths, times = [], [], [], []
    for size in SIZES:
        query, seconds, answer = _point(size)
        sizes.append(size)
        expr_lengths.append(formula_length(query.formula))
        times.append(max(seconds, 1e-6))
        rows.append(
            (
                size,
                variable_width(query.formula),
                formula_length(query.formula),
                answer,
                f"{seconds:.4f}",
            )
        )
        assert variable_width(query.formula) == 3
    benchmark(_point, SIZES[1])

    length_fit = fit_polynomial(sizes, expr_lengths)
    time_kind, time_fit, _ = classify_growth(sizes, times)
    body = (
        series_table(
            ("instance m", "width", "|e|", "solvable", "seconds"), rows
        )
        + f"\n\nquery size vs m: degree {length_fit.coefficient:.2f} "
        "(claim: O(m))"
        + f"\nevaluation time vs m: {time_kind}, degree "
        f"{time_fit.coefficient:.2f} (claim: polynomial — Answer_FO3 is "
        "PTIME)"
    )
    emit("F4", "Prop 3.2: Path Systems as FO^3 queries", body)
    emit_record(
        "F4",
        "Path Systems to FO^3: query width and size per instance",
        parameters=[float(s) for s in sizes],
        seconds=times,
        counters=[
            {
                "width": float(r[1]),
                "expr_length": float(r[2]),
                "solvable": float(bool(r[3])),
            }
            for r in rows
        ],
        fit_counters=("expr_length",),
        meta={"rules_per_size": 2, "sources": 2, "targets": 2},
    )

    assert length_fit.coefficient <= 1.4
    assert time_kind == "polynomial" or time_fit.coefficient <= 4.0
