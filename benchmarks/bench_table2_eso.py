"""T2-ESO — Table 2: combined complexity of ESO^k is NP-complete.

The measurable upper-bound content (Lemma 3.6 + Cor 3.7): after the
arity reduction, the grounded CNF has polynomially many variables and
clauses in |B| + |e|, so one NP oracle call (the DPLL solver) decides the
query.  We sweep 2-colorability over growing graphs and record encoding
sizes; the lower bound (NP-hardness already at data complexity) is
witnessed by the solver's answer flipping on odd/even cycles —
2-colorability itself being the classic NP-flavoured ESO query from
Fagin's characterization.
"""

import time

from repro.core.eso_eval import eso_decide, grounded_cnf
from repro.complexity.fit import classify_growth
from repro.guard.budget import resolve_guard
from repro.logic.parser import parse_formula
from repro.workloads.graphs import cycle_graph, random_graph

from benchmarks._harness import emit, emit_record, point_budget, series_table

SIZES = [4, 6, 8, 10, 12]
TWO_COLOR = parse_formula(
    "exists2 R/1. forall x. forall y. "
    "(~E(x, y) | (R(x) & ~R(y)) | (~R(x) & R(y)))"
)


def _point(n: int):
    db = random_graph(n, 0.25, seed=n)
    cnf, _ = grounded_cnf(TWO_COLOR, db)
    # per-point deadline: an exploding instance times out, not the suite
    guard = resolve_guard(point_budget())
    start = time.perf_counter()
    outcome = eso_decide(TWO_COLOR, db, guard=guard)
    return cnf, outcome, time.perf_counter() - start


def bench_table2_eso_encoding(benchmark):
    rows, variables, clauses = [], [], []
    point_seconds, point_counters = [], []
    for n in SIZES:
        cnf, outcome, seconds = _point(n)
        variables.append(cnf.num_vars)
        clauses.append(cnf.num_clauses)
        point_seconds.append(seconds)
        point_counters.append(
            {
                "cnf_vars": float(cnf.num_vars),
                "cnf_clauses": float(cnf.num_clauses),
                "two_colorable": float(bool(outcome.truth)),
            }
        )
        rows.append(
            (n, cnf.num_vars, cnf.num_clauses, outcome.truth, f"{seconds:.4f}")
        )
    benchmark(_point, SIZES[2])

    var_kind, var_fit, _ = classify_growth(SIZES, variables)
    clause_kind, clause_fit, _ = classify_growth(SIZES, clauses)
    # correctness spot-check on instances with known answers
    assert eso_decide(TWO_COLOR, cycle_graph(6)).truth
    assert not eso_decide(TWO_COLOR, cycle_graph(7)).truth

    body = (
        series_table(
            ("n", "cnf vars", "cnf clauses", "2-colorable", "seconds"), rows
        )
        + f"\n\ncnf variables vs n: {var_kind}, degree "
        f"{var_fit.coefficient:.2f} (claim: poly in |B|+|e|)"
        + f"\ncnf clauses vs n: {clause_kind}, degree "
        f"{clause_fit.coefficient:.2f}"
        + "\nodd cycles rejected, even cycles accepted (NP lower-bound "
        "family behaves)"
    )
    emit("T2-ESO", "ESO^k grounds to polynomial CNF, one SAT call decides", body)
    emit_record(
        "T2-ESO-ENC",
        "ESO^k grounding: CNF variable and clause counts",
        parameters=[float(n) for n in SIZES],
        seconds=point_seconds,
        counters=point_counters,
        fit_counters=("cnf_vars", "cnf_clauses"),
        meta={"query": "2-colorability", "edge_prob": 0.25},
    )

    assert var_kind == "polynomial" and var_fit.coefficient <= 3.0
    assert clause_kind == "polynomial" and clause_fit.coefficient <= 3.0
