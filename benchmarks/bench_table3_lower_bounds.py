"""T3-ESO/PFP — Table 3 lower bounds: hardness with a *fixed* database.

Theorem 4.5: SAT reduces to ESO^k expression complexity — the database
is irrelevant, the sentence is linear in the propositional formula.
Theorem 4.6: QBF reduces to PFP^2 expression complexity over the fixed
``B0 = ({0,1}, P={0})`` — the sentence is linear in the QBF.

We sweep instance sizes, check reduction-output linearity, and verify
agreement with the reference solvers; the evaluation cost of the QBF
reduction grows exponentially with the prefix length, exactly the
PSPACE-flavoured behaviour the table row predicts.
"""

import time

from repro.complexity.fit import classify_growth, fit_polynomial
from repro.logic.printer import formula_length
from repro.reductions import (
    qbf_database,
    qbf_to_pfp_query,
    random_qbf,
    sat_to_eso_query,
    solve_qbf,
)
from repro.sat.cnf import BoolAnd, BoolNot, BoolOr, BoolVar
from repro.workloads.graphs import path_graph

from benchmarks._harness import emit, emit_record, series_table

import random


def _random_cnf_formula(num_vars: int, num_clauses: int, seed: int):
    rng = random.Random(seed)
    names = [f"p{i}" for i in range(num_vars)]
    clauses = []
    for _ in range(num_clauses):
        lits = []
        for name in rng.sample(names, min(3, num_vars)):
            var = BoolVar(name)
            lits.append(var if rng.random() < 0.5 else BoolNot(var))
        clauses.append(BoolOr(tuple(lits)))
    return BoolAnd(tuple(clauses)), names


def bench_table3_sat_to_eso(benchmark):
    db = path_graph(3)  # any fixed database works — that's the theorem
    rows, input_sizes, output_sizes = [], [], []
    for num_vars in (3, 5, 7, 9):
        formula, _names = _random_cnf_formula(num_vars, 2 * num_vars, seed=num_vars)
        q = sat_to_eso_query(formula)
        from repro.sat.tseitin import to_cnf
        from repro.sat.dpll import solve

        cnf, _ = to_cnf(formula)
        expected = solve(cnf).satisfiable
        start = time.perf_counter()
        got = q.holds(db)
        seconds = time.perf_counter() - start
        assert got == expected
        input_size = 2 * num_vars * 3
        input_sizes.append(input_size)
        output_sizes.append(formula_length(q.formula))
        rows.append(
            (num_vars, input_size, formula_length(q.formula), got,
             f"{seconds:.4f}")
        )
    benchmark(lambda: sat_to_eso_query(
        _random_cnf_formula(5, 10, seed=0)[0]
    ).holds(db))

    size_fit = fit_polynomial(input_sizes, output_sizes)
    body = (
        "Theorem 4.5 (SAT -> ESO^k, fixed 3-element database):\n"
        + series_table(
            ("#props", "~|SAT|", "|ESO e|", "satisfiable", "seconds"), rows
        )
        + f"\n  -> reduction output vs input: degree "
        f"{size_fit.coefficient:.2f} (claim: linear)"
    )
    emit("T3-ESO", "SAT embeds into ESO^k expressions", body)
    emit_record(
        "T3-ESO",
        "SAT to ESO^k: reduction output size vs input size",
        parameters=[float(r[0]) for r in rows],
        seconds=[float(r[4]) for r in rows],
        counters=[
            {
                "input_size": float(r[1]),
                "expr_length": float(r[2]),
                "satisfiable": float(bool(r[3])),
            }
            for r in rows
        ],
        fit_counters=("expr_length",),
        meta={"database": "path_graph(3)"},
    )
    assert size_fit.coefficient <= 1.4


def bench_table3_qbf_to_pfp(benchmark):
    db = qbf_database()
    rows, prefix_lengths, expr_sizes, seconds_series = [], [], [], []
    for num_vars in (2, 3, 4, 5):
        qbf = random_qbf(num_vars, matrix_depth=3, seed=num_vars)
        q = qbf_to_pfp_query(qbf)
        expected = solve_qbf(qbf)
        start = time.perf_counter()
        got = q.holds(db)
        seconds = time.perf_counter() - start
        assert got == expected
        prefix_lengths.append(num_vars)
        expr_sizes.append(formula_length(q.formula))
        seconds_series.append(max(seconds, 1e-6))
        rows.append(
            (num_vars, formula_length(q.formula), got, f"{seconds:.4f}")
        )
    benchmark(
        lambda: qbf_to_pfp_query(random_qbf(3, seed=1)).holds(db)
    )

    size_fit = fit_polynomial(prefix_lengths, expr_sizes)
    time_kind, _, time_fit = classify_growth(prefix_lengths, seconds_series)
    body = (
        "Theorem 4.6 (QBF -> PFP^2 over fixed B0):\n"
        + series_table(("#vars", "|PFP e|", "value", "seconds"), rows)
        + f"\n  -> sentence size vs prefix: degree "
        f"{size_fit.coefficient:.2f} (claim: linear)"
        + f"\n  -> evaluation time: {time_kind} "
        f"(base {time_fit.base:.1f}/var) — the PSPACE-flavoured cost"
    )
    emit("T3-PFP", "QBF embeds into PFP^2 expressions over a fixed B0", body)
    emit_record(
        "T3-PFP",
        "QBF to PFP^2: sentence size and evaluation cost vs prefix",
        parameters=[float(p) for p in prefix_lengths],
        seconds=seconds_series,
        counters=[
            {
                "expr_length": float(r[1]),
                "value": float(bool(r[2])),
            }
            for r in rows
        ],
        fit_counters=("expr_length",),
        meta={"database": "B0"},
    )
    assert size_fit.coefficient <= 1.6
