"""T2-PFP — Table 2: combined complexity of PFP^k is PSPACE (Thm 3.8).

The PSPACE bound's observable content: the *live state* of the evaluator
(current iterates, one ≤ n^k relation per active fixpoint) stays
polynomial in n even when the *iteration count* grows much faster.  We
sweep a binary-counter-style pfp whose iteration count scales with 2^n
while its live state stays at n tuples.
"""

import time

from repro.core.naive_eval import naive_answer
from repro.core.pfp_eval import SpaceMeter, pfp_answer
from repro.complexity.fit import classify_growth
from repro.guard.budget import resolve_guard
from repro.logic.parser import parse_formula
from repro.workloads.graphs import labeled_graph, path_graph

from benchmarks._harness import emit, emit_record, point_budget, series_table

SIZES = [2, 3, 4, 5, 6, 7]

# a unary binary counter: position i flips when all lower positions are
# set; the sequence enumerates all 2^n subsets before converging/cycling,
# so iterations ~ 2^n while the live state is one unary relation
COUNTER = parse_formula(
    "[pfp X(x). (X(x) & ~forall y. (~LT(y, x) | X(y)))"
    " | (~X(x) & forall y. (~LT(y, x) | X(y)))](u)"
)


def _database(n: int):
    base = path_graph(n)
    lt = [(i, j) for i in range(n) for j in range(n) if i < j]
    from repro.database import Database, Relation

    return Database(
        base.domain,
        {"E": base.relation("E"), "LT": Relation(2, lt)},
    )


def _point(n: int):
    db = _database(n)
    meter = SpaceMeter()
    # per-point deadline: a diverging pfp cannot hang the bench suite
    guard = resolve_guard(point_budget())
    start = time.perf_counter()
    answer = pfp_answer(COUNTER, db, ("u",), meter=meter, guard=guard)
    seconds = time.perf_counter() - start
    return answer, meter, seconds


def bench_table2_pfp_space(benchmark):
    rows, live, iterations = [], [], []
    point_seconds = []
    for n in SIZES:
        answer, meter, seconds = _point(n)
        assert answer == naive_answer(COUNTER, _database(n), ("u",))
        live.append(max(meter.peak_live_tuples, 1))
        iterations.append(meter.total_iterations)
        point_seconds.append(seconds)
        rows.append(
            (n, meter.peak_live_tuples, meter.total_iterations, f"{seconds:.4f}")
        )
    benchmark(_point, SIZES[2])

    live_kind, live_fit, _ = classify_growth(SIZES, live)
    iter_kind, iter_fit, _ = classify_growth(SIZES, iterations)
    body = (
        series_table(("n", "peak live tuples", "iterations", "seconds"), rows)
        + f"\n\nlive state vs n: {live_kind}, degree "
        f"{live_fit.coefficient:.2f} (claim: <= n^k — the PSPACE bound)"
        + f"\niterations vs n: {iter_kind}"
        + (
            f", base {iter_fit.base:.2f} per element"
            if iter_kind == "exponential"
            else f", degree {iter_fit.coefficient:.2f}"
        )
        + " (allowed: up to 2^(n^k))"
    )
    emit("T2-PFP", "PFP^k: polynomial space, possibly exponential time", body)
    emit_record(
        "T2-PFP",
        "PFP^k binary counter: live space vs iteration count",
        parameters=[float(n) for n in SIZES],
        seconds=point_seconds,
        counters=[
            {
                "peak_live_tuples": float(r[1]),
                "iterations": float(r[2]),
            }
            for r in rows
        ],
        fit_counters=("peak_live_tuples", "iterations"),
    )

    assert live_kind == "polynomial" and live_fit.coefficient <= 2.0
    assert iter_kind == "exponential"
    assert iterations[-1] >= 2 ** (SIZES[-1] - 1)
