"""T1 — Table 1: unbounded languages pay exponentially in the expression.

The unbounded-FO row of Table 1 (PSPACE-complete expression/combined
complexity) is driven by intermediates whose arity grows with the
expression.  We sweep chain-join queries of width w over a fixed graph:
the naive (cross-product-first) plan materializes a (w+1)-ary relation —
cost ~ n^(w+1), i.e. *exponential in the expression parameter w* — while
the bounded-variable plan of Prop 3.1 stays polynomial (n^3) regardless
of w.  The crossover and the shape are the reproduction targets, not the
absolute milliseconds.
"""

import pytest

from repro.algebra import ArityTracker, compile_bounded, compile_naive_conjunctive
from repro.complexity.fit import classify_growth
from repro.optimize import minimize_variables
from repro.workloads.formulas import chain_join_query
from repro.workloads.graphs import random_graph

from benchmarks._harness import emit, emit_record, series_table

WIDTHS = [2, 3, 4, 5]
GRAPH = random_graph(7, 0.35, seed=13)


def _run_width(width: int):
    q = chain_join_query(width)
    naive_tracker = ArityTracker()
    naive_plan = compile_naive_conjunctive(q.formula, q.output_vars)
    naive_result = set(naive_plan.evaluate(GRAPH, naive_tracker).rows)

    bounded_tracker = ArityTracker()
    minimized = minimize_variables(q.formula)
    bounded_plan = compile_bounded(minimized, q.output_vars)
    bounded_result = set(bounded_plan.evaluate(GRAPH, bounded_tracker).rows)
    assert naive_result == bounded_result
    return naive_tracker, bounded_tracker


def bench_table1_expression_blowup(benchmark):
    rows = []
    naive_costs, bounded_costs, bounded_arities = [], [], []
    for width in WIDTHS:
        naive, bounded = _run_width(width)
        naive_costs.append(naive.total_rows_produced)
        bounded_costs.append(bounded.total_rows_produced)
        bounded_arities.append(bounded.max_arity)
        rows.append(
            (
                width,
                naive.max_arity,
                naive.total_rows_produced,
                bounded.max_arity,
                bounded.total_rows_produced,
            )
        )
    benchmark(_run_width, 3)

    naive_kind, naive_fit, _ = classify_growth(WIDTHS, naive_costs)
    bounded_kind, bounded_fit, _ = classify_growth(WIDTHS, bounded_costs)
    body = series_table(
        ("width", "naive arity", "naive rows", "FO^3 arity", "FO^3 rows"),
        rows,
    )
    body += (
        f"\n\nnaive rows vs width: {naive_kind} "
        f"(exp-rate {naive_fit.coefficient:.2f})"
        f"\nbounded rows vs width: growth factor "
        f"{bounded_costs[-1] / max(bounded_costs[0], 1):.2f}x over the sweep"
    )
    emit("T1", "unbounded evaluation is exponential in the expression", body)
    emit_record(
        "T1",
        "chain joins: naive vs bounded-variable row production",
        parameters=[float(w) for w in WIDTHS],
        seconds=[0.0] * len(WIDTHS),
        counters=[
            {
                "naive_arity": float(r[1]),
                "naive_rows": float(r[2]),
                "bounded_arity": float(r[3]),
                "bounded_rows": float(r[4]),
            }
            for r in rows
        ],
        fit_counters=("naive_rows", "bounded_rows"),
        meta={"graph_size": 7},
    )

    # shape assertions: the naive cost explodes with width, bounded doesn't
    assert naive_costs[-1] / naive_costs[0] > 20
    assert bounded_costs[-1] / max(bounded_costs[0], 1) < 10
    # every bounded intermediate stayed at arity <= 3 (the minimized width)
    assert all(arity <= 3 for arity in bounded_arities)
