"""F5 — Section 1's application: µ-calculus model checking through FP².

The paper's motivation for the FP^k bound: verifying an Lµ property of a
finite-state program is FP² query evaluation.  We sweep Kripke-structure
sizes with a genuinely alternating property (ν/µ fairness), check that
the direct fixpoint model checker and the bounded-variable query engine
agree everywhere, and confirm both scale polynomially in the program.
"""

import time

from repro.complexity.fit import classify_growth
from repro import EvalOptions, FixpointStrategy, evaluate
from repro.mucalculus import KripkeStructure, model_check, mu_to_fp_query, parse_mu

from benchmarks._harness import emit, emit_record, series_table

SIZES = [4, 6, 8, 10, 12]
PROPERTY = parse_mu("nu X. mu Y. <>((p & X) | Y)")


def _structure(n: int) -> KripkeStructure:
    return KripkeStructure.random(n, 0.3, ["p", "q"], seed=n, total=True)


def _point(n: int):
    K = _structure(n)
    start = time.perf_counter()
    direct = model_check(K, PROPERTY)
    direct_seconds = time.perf_counter() - start
    q = mu_to_fp_query(PROPERTY)
    db = K.to_database()
    start = time.perf_counter()
    result = evaluate(
        q.formula,
        db,
        ("x",),
        EvalOptions(strategy=FixpointStrategy.MONOTONE),
    )
    fp_seconds = time.perf_counter() - start
    via_fp = frozenset(t[0] for t in result.relation.tuples)
    assert via_fp == direct
    return direct, direct_seconds, fp_seconds, result.stats


def bench_mucalculus_model_checking(benchmark):
    rows, fp_times = [], []
    for n in SIZES:
        states, direct_s, fp_s, stats = _point(n)
        fp_times.append(max(fp_s, 1e-6))
        rows.append(
            (
                n,
                len(states),
                f"{direct_s:.4f}",
                f"{fp_s:.4f}",
                stats.fixpoint_iterations,
            )
        )
    benchmark(_point, SIZES[2])

    kind, fit, _ = classify_growth(SIZES, fp_times)
    q = mu_to_fp_query(PROPERTY)
    body = (
        f"property: {q.text()[:70]}...  (FP^2, width {q.width})\n"
        + series_table(
            ("states", "|answer|", "direct s", "FP2 s", "fp iterations"),
            rows,
        )
        + f"\n\nFP2 route time vs states: {kind}, degree "
        f"{fit.coefficient:.2f} — and identical answers to the direct "
        "model checker at every size"
    )
    emit("F5", "µ-calculus model checking as FP² evaluation", body)
    emit_record(
        "F5",
        "mu-calculus fairness property through the FP^2 route",
        parameters=[float(n) for n in SIZES],
        seconds=fp_times,
        counters=[
            {
                "answer_states": float(r[1]),
                "fixpoint_iterations": float(r[4]),
            }
            for r in rows
        ],
        fit_counters=("fixpoint_iterations",),
        meta={"property": "nu X. mu Y. <>((p & X) | Y)"},
    )

    assert kind == "polynomial" or fit.coefficient <= 4.0
