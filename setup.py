"""Shim so legacy (non-PEP 660) editable installs work offline.

The environment has setuptools but no ``wheel`` package, so modern
``pip install -e .`` fails at the wheel-building step; this file enables
``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup()
