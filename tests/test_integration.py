"""Integration tests: whole-paper scenarios across multiple subsystems."""

import pytest

from repro import (
    Database,
    EvalOptions,
    FixpointStrategy,
    Query,
    evaluate,
)
from repro.core.certificates import (
    extract_membership,
    extract_non_membership,
    verify_membership,
    verify_non_membership,
)
from repro.core.naive_eval import naive_answer
from repro.database.encoding import decode_database, encode_database
from repro.logic.parser import parse_formula
from repro.mucalculus import KripkeStructure, model_check, mu_to_fp_query, parse_mu
from repro.optimize import minimize_variables
from repro.reductions import (
    path_system_database,
    path_system_query,
    qbf_database,
    qbf_to_pfp_query,
    random_path_system,
    random_qbf,
    solve_path_system,
    solve_qbf,
)
from repro.workloads.company import (
    company_database,
    earns_less_bounded,
    earns_less_naive,
)
from repro.workloads.graphs import labeled_graph, random_graph


class TestIntroStory:
    """The paper's introduction, end to end: minimize variables, then
    evaluate with bounded intermediates, and get the same answer."""

    def test_company_pipeline(self):
        db = company_database(num_employees=10, num_departments=3, seed=11)
        naive_q = earns_less_naive()
        minimized = minimize_variables(naive_q.formula)
        optimized = Query(minimized, output_vars=("e",))
        assert optimized.width == 3

        result_naive = evaluate(naive_q.formula, db, ("e",))
        result_optimized = evaluate(minimized, db, ("e",))
        hand_written = evaluate(earns_less_bounded().formula, db, ("e",))
        assert (
            result_naive.relation
            == result_optimized.relation
            == hand_written.relation
        )
        # the optimized run really did keep intermediates at ≤ 3 columns
        assert result_optimized.stats.max_intermediate_arity <= 3
        assert result_naive.stats.max_intermediate_arity >= 5


class TestEncodingRoundTripThroughEvaluation:
    def test_query_answer_invariant_under_reencoding(self):
        db = labeled_graph(random_graph(5, 0.4, seed=2), {"P": [0, 1]})
        rebuilt = decode_database(encode_database(db))
        phi = parse_formula("[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)")
        assert evaluate(phi, db, ("u",)).relation == evaluate(
            phi, rebuilt, ("u",)
        ).relation


class TestTheorem35Story:
    """FP^k membership: evaluate, certify, verify — both directions."""

    def test_full_np_conp_cycle(self):
        db = Database.from_tuples(
            range(5),
            {
                "E": (2, [(0, 1), (1, 1), (1, 2), (3, 4)]),
                "P": (1, [(2,)]),
            },
        )
        phi = parse_formula(
            "[gfp S(x). [lfp T(z). forall y. "
            "(~E(z, y) | (P(y) & S(y)) | T(y))](x)](u)"
        )
        answer = naive_answer(phi, db, ("u",))
        for v in range(db.size()):
            row = (v,)
            if row in answer:
                cert = extract_membership(phi, db, ("u",), row)
                assert cert is not None
                assert verify_membership(cert, phi, db)
                assert extract_non_membership(phi, db, ("u",), row) is None
            else:
                cert = extract_non_membership(phi, db, ("u",), row)
                assert cert is not None
                assert verify_non_membership(cert, phi, db)


class TestModelCheckingStory:
    """Section 1's application: program verification as query evaluation."""

    def test_request_response_property(self):
        # "every request is eventually followed by a grant, along all paths"
        # AG(req -> AF grant) = nu X. (~req | mu Y. (grant | (<>true & [] Y))) & [] X
        text = (
            "nu X. (~req | mu Y. (grant | (<> tt & [] Y))) & [] X"
        )
        K = KripkeStructure.build(
            4,
            [(0, 1), (1, 2), (2, 0), (0, 3), (3, 3)],
            {"req": [0], "grant": [2], "tt": [0, 1, 2, 3]},
        )
        phi = parse_mu(text)
        direct = model_check(K, phi)
        q = mu_to_fp_query(phi)
        db = K.to_database()
        for strategy in FixpointStrategy:
            via_fp = evaluate(
                q.formula, db, ("x",), EvalOptions(strategy=strategy)
            ).relation
            assert frozenset(t[0] for t in via_fp.tuples) == direct
        # state 0 can get stuck in 3 forever without a grant
        assert 0 not in direct

    def test_verified_after_fixing_the_model(self):
        K = KripkeStructure.build(
            3,
            [(0, 1), (1, 2), (2, 0)],
            {"req": [0], "grant": [2], "tt": [0, 1, 2]},
        )
        phi = parse_mu(
            "nu X. (~req | mu Y. (grant | (<> tt & [] Y))) & [] X"
        )
        assert model_check(K, phi) == {0, 1, 2}


class TestLowerBoundStories:
    def test_ptime_hardness_instance_family(self):
        for seed in (0, 1, 2):
            ps = random_path_system(6, 10, num_sources=2, seed=seed)
            q = path_system_query(ps)
            assert q.width == 3
            assert q.holds(path_system_database(ps)) == solve_path_system(ps)

    def test_pspace_hardness_fixed_database(self):
        db = qbf_database()
        assert db.size() == 2  # the database never changes
        for seed in (0, 1, 2, 3):
            qbf = random_qbf(3, seed=seed)
            q = qbf_to_pfp_query(qbf)
            assert q.width == 2
            assert q.holds(db) == solve_qbf(qbf)


class TestStrategyConsistencyAtScale:
    def test_three_strategies_one_bigger_graph(self):
        db = labeled_graph(
            random_graph(7, 0.25, seed=21), {"P": [0, 3, 5], "Q": [1]}
        )
        phi = parse_formula(
            "[gfp S(x). [lfp T(z). (Q(z) & S(z)) | forall y. "
            "(~E(z, y) | (P(y) & T(y)))](x)](u)"
        )
        results = {
            strategy: evaluate(
                phi, db, ("u",), EvalOptions(strategy=strategy)
            ).relation
            for strategy in FixpointStrategy
        }
        values = list(results.values())
        assert values[0] == values[1] == values[2]
