"""The chaos drill: 200 requests under seeded fault injection.

The serve layer's acceptance criterion is a trichotomy — under
sustained chaos, every request must resolve to exactly one of

* a **correct** :class:`ServeResponse` (differentially checked against
  a direct in-process evaluation of the same prepared query),
* a structured :class:`~repro.errors.Overloaded` (shed or retried out),
* a structured :class:`~repro.errors.ResourceExhausted` (the tenant's
  own budget, after the degradation ladder ran dry).

No hangs (the whole drill runs under a hard ``wait_for`` timeout), no
wrong answers, no stray exception types, and the robustness counters
(retries, breaker trips, degradations) must all show up in ``stats()``.
"""

import asyncio

from repro.core.engine import Query
from repro.database.database import Database
from repro.errors import Overloaded, ResourceExhausted
from repro.guard.budget import Budget
from repro.guard.chaos import ChaosPolicy
from repro.serve.admission import TenantPolicy
from repro.serve.cli import TC_QUERY
from repro.serve.retry import RetryPolicy
from repro.serve.service import QueryService

REQUESTS = 200
DRILL_TIMEOUT = 120.0  # a hang, not slowness, is what this bounds


def _chaos_for(i):
    """The scripted fault mix, seeded by request index."""
    if i % 7 == 3:
        # persistent: every attempt fails → retries exhaust, breaker feels it
        return "flaky", ChaosPolicy(seed=i, fail_at=1)
    if i % 5 == 2:
        # transient: first attempt fails, the retry runs clean
        return "steady", [ChaosPolicy(seed=i, fail_at=1), None]
    if i % 9 == 4:
        # no injected fault, but an impossible row budget
        return "tight", None
    return "steady", None


def test_chaos_drill_trichotomy():
    db = Database.from_tuples(
        range(8), {"E": (2, [(i, i + 1) for i in range(7)])}
    )
    expected = sorted(
        Query.parse(TC_QUERY, ("u", "v")).run(db).relation.tuples
    )
    service = QueryService(
        max_concurrency=2,
        max_queue=32,
        retry=RetryPolicy(base_delay=0.0, jitter=0.0, seed=0),
    )
    service.register_database("g", db)
    service.prepare("tc", TC_QUERY, ("u", "v"))
    service.set_tenant("steady", TenantPolicy())
    service.set_tenant(
        "flaky", TenantPolicy(max_attempts=2, breaker_threshold=3)
    )
    service.set_tenant("tight", TenantPolicy(budget=Budget(max_rows=1)))

    async def one(i):
        tenant, chaos = _chaos_for(i)
        try:
            return await service.call(
                tenant, "tc", "g", request_seed=i, chaos=chaos
            )
        except (Overloaded, ResourceExhausted) as exc:
            return exc
        # anything else propagates and fails the drill

    async def drill():
        return await asyncio.wait_for(
            asyncio.gather(*[one(i) for i in range(REQUESTS)]),
            timeout=DRILL_TIMEOUT,
        )

    results = asyncio.run(drill())
    service.close()

    assert len(results) == REQUESTS  # nothing lost, nothing hung
    ok = [r for r in results if not isinstance(r, Exception)]
    overloaded = [r for r in results if isinstance(r, Overloaded)]
    exhausted = [r for r in results if isinstance(r, ResourceExhausted)]
    assert len(ok) + len(overloaded) + len(exhausted) == REQUESTS

    # zero wrong answers: every success is differentially correct
    for response in ok:
        assert sorted(response.rows) == expected

    # the scripted faults actually fired
    assert any(r.reason == "retries-exhausted" for r in overloaded)
    assert all(exc.kind == "rows" for exc in exhausted)
    assert len(exhausted) >= 1

    snap = service.registry.snapshot()
    assert snap["serve.requests"] == REQUESTS
    assert snap["serve.ok"] == len(ok)
    assert snap["serve.failed"] == len(overloaded) + len(exhausted)
    assert snap["serve.retries"] >= 1  # transient faults were retried
    assert snap["serve.breaker_trips"] >= 1  # the flaky tenant tripped
    assert snap["serve.degraded"] >= 1  # the tight tenant walked the ladder

    # the same counters surface through the /stats document
    stats = service.stats()
    assert stats["metrics"]["serve.retries"] == snap["serve.retries"]
    assert stats["breakers"]["flaky"]["trips"] >= 1


def test_chaos_drill_is_seed_deterministic():
    """Two identical drills produce identical robustness counters."""

    def run_once():
        db = Database.from_tuples(
            range(6), {"E": (2, [(i, i + 1) for i in range(5)])}
        )
        service = QueryService(
            max_concurrency=1,
            max_queue=64,
            retry=RetryPolicy(base_delay=0.0, jitter=0.0, seed=7),
        )
        service.register_database("g", db)
        service.prepare("tc", TC_QUERY, ("u", "v"))
        service.set_tenant(
            "flaky", TenantPolicy(max_attempts=2, breaker_threshold=2)
        )
        service.set_tenant("tight", TenantPolicy(budget=Budget(max_rows=1)))

        async def one(i):
            tenant, chaos = _chaos_for(i)
            try:
                await service.call(
                    tenant, "tc", "g", request_seed=i, chaos=chaos
                )
            except (Overloaded, ResourceExhausted):
                pass

        async def drill():
            await asyncio.gather(*[one(i) for i in range(40)])

        asyncio.run(drill())
        snap = service.registry.snapshot()
        service.close()
        return {
            key: snap["serve." + key]
            for key in (
                "requests", "ok", "failed", "retries",
                "degraded", "breaker_trips", "answer_rows",
            )
        }

    first, second = run_once(), run_once()
    assert first == second
    assert first["requests"] == 40
    assert first["retries"] >= 1
