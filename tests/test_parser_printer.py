"""Round-trip tests for the concrete syntax (parser + printer)."""

import pytest
from hypothesis import given

from repro.errors import SyntaxError_
from repro.logic.parser import parse_formula
from repro.logic.printer import format_formula, format_term, formula_length
from repro.logic.syntax import (
    And,
    Const,
    Equals,
    Exists,
    GFP,
    LFP,
    Not,
    Or,
    PFP,
    RelAtom,
    SOExists,
    Truth,
    Var,
)

from tests.conftest import fo_formulas


EXAMPLES = [
    "E(x, y)",
    "true",
    "false",
    "~P(x)",
    "P(x) & Q(y) & E(x, y)",
    "P(x) | Q(x)",
    "(P(x) | Q(x)) & E(x, x)",
    "x = y",
    "~(x = y)",
    "exists x. P(x)",
    "forall x. exists y. E(x, y)",
    "exists x. P(x) & Q(x)",          # quantifier takes maximal scope
    "(exists x. P(x)) & Q(x)",
    "[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)",
    "[gfp S(x). forall y. (~E(x, y) | S(y))](u)",
    "[pfp X(x). ~X(x)](u)",
    "[ifp X(x). P(x)](u)",
    "exists2 S/2. forall x. S(x, x)",
    "P(3)",
    "E(x, 'alice')",
]


class TestRoundTrip:
    @pytest.mark.parametrize("text", EXAMPLES)
    def test_examples_reparse_to_same_ast(self, text):
        ast = parse_formula(text)
        assert parse_formula(format_formula(ast)) == ast

    @given(fo_formulas())
    def test_property_roundtrip(self, phi):
        assert parse_formula(format_formula(phi)) == phi


class TestParsing:
    def test_quantifier_scope_is_maximal(self):
        phi = parse_formula("exists x. P(x) & Q(x)")
        assert isinstance(phi, Exists)
        assert isinstance(phi.sub, And)

    def test_parenthesized_quantifier_scope(self):
        phi = parse_formula("(exists x. P(x)) & Q(x)")
        assert isinstance(phi, And)

    def test_precedence_and_over_or(self):
        phi = parse_formula("P(x) | Q(x) & R(x)")
        assert isinstance(phi, Or)
        assert isinstance(phi.subs[1], And)

    def test_implication_desugars(self):
        phi = parse_formula("P(x) -> Q(x)")
        assert isinstance(phi, Or) and isinstance(phi.subs[0], Not)

    def test_biconditional_desugars(self):
        phi = parse_formula("P(x) <-> Q(x)")
        assert isinstance(phi, And)

    def test_inequality(self):
        phi = parse_formula("x != y")
        assert isinstance(phi, Not) and isinstance(phi.sub, Equals)

    def test_constants(self):
        phi = parse_formula("E(1, 'bob')")
        assert phi == RelAtom("E", (Const(1), Const("bob")))

    def test_nullary_atom(self):
        assert parse_formula("T()") == RelAtom("T", ())

    def test_fixpoint_structure(self):
        phi = parse_formula("[lfp S(x, y). E(x, y)](u, v)")
        assert isinstance(phi, LFP)
        assert phi.arity == 2
        assert phi.args == (Var("u"), Var("v"))

    def test_second_order(self):
        phi = parse_formula("exists2 R/3. R(x, y, z)")
        assert isinstance(phi, SOExists) and phi.arity == 3


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "P(x",
            "exists . P(x)",
            "P(x) &",
            "[lfp S(x). P(x)]",          # missing argument list
            "[lfp S(x, x). P(x)](u, v)",  # duplicate bound variable
            "exists2 S. P(x)",            # missing arity
            "x",                          # bare term is not a formula
            "P(x) Q(x)",
            "[nope S(x). P(x)](u)",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(SyntaxError_):
            parse_formula(bad)


class TestPrinter:
    def test_term_formatting(self):
        assert format_term(Var("x")) == "x"
        assert format_term(Const(7)) == "7"
        assert format_term(Const("a'b")) == r"'a\'b'"

    def test_formula_length_positive(self):
        assert formula_length(parse_formula("P(x)")) == 4

    def test_empty_connectives_print_as_constants(self):
        assert format_formula(And(())) == "true"
        assert format_formula(Or(())) == "false"
