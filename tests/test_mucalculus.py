"""Tests for the µ-calculus subpackage (the Section 1 application)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import EvalOptions, FixpointStrategy, evaluate
from repro.errors import SyntaxError_
from repro.mucalculus import (
    Box,
    Diamond,
    KripkeStructure,
    Mu,
    MuAnd,
    MuOr,
    Nu,
    Prop,
    PropNeg,
    RecVar,
    model_check,
    mu_to_fp_query,
    parse_mu,
)
from repro.mucalculus.model_check import holds_at
from repro.mucalculus.syntax import (
    check_closed,
    free_recursion_variables,
    mu_alternation_depth,
    propositions_used,
)
from repro.logic.variables import variable_width


@st.composite
def mu_formulas(draw, depth: int = 3):
    props = ["p", "q"]

    def build(remaining, bound):
        choice = draw(st.integers(0, 8 if remaining > 0 else 2))
        if choice == 0:
            return Prop(draw(st.sampled_from(props)))
        if choice == 1:
            return PropNeg(draw(st.sampled_from(props)))
        if choice == 2:
            if bound and draw(st.booleans()):
                return RecVar(draw(st.sampled_from(sorted(bound))))
            return Prop(draw(st.sampled_from(props)))
        if choice == 3:
            return MuAnd((build(remaining - 1, bound), build(remaining - 1, bound)))
        if choice == 4:
            return MuOr((build(remaining - 1, bound), build(remaining - 1, bound)))
        if choice == 5:
            return Diamond(build(remaining - 1, bound))
        if choice == 6:
            return Box(build(remaining - 1, bound))
        var = f"X{len(bound)}"
        node = Mu if choice == 7 else Nu
        return node(var, build(remaining - 1, bound | {var}))

    return build(depth, frozenset())


def structures(seed: int) -> KripkeStructure:
    return KripkeStructure.random(5, 0.35, ["p", "q"], seed=seed)


class TestSyntax:
    def test_free_recursion_variables(self):
        phi = Mu("X", MuOr((RecVar("X"), RecVar("Y"))))
        assert free_recursion_variables(phi) == {"Y"}
        with pytest.raises(SyntaxError_):
            check_closed(phi)

    def test_propositions_used(self):
        phi = parse_mu("mu X. p | <>(q & X)")
        assert propositions_used(phi) == {"p", "q"}

    def test_alternation_depth(self):
        assert mu_alternation_depth(parse_mu("mu X. p | <> X")) == 1
        assert (
            mu_alternation_depth(parse_mu("nu X. mu Y. <>((p & X) | Y)")) == 2
        )
        # independent nesting does not alternate
        assert (
            mu_alternation_depth(parse_mu("nu X. (mu Y. p | <> Y) & [] X"))
            == 1
        )


class TestParser:
    @pytest.mark.parametrize(
        "text",
        [
            "p",
            "~p",
            "p & q | p",
            "<> p",
            "[] (p | q)",
            "mu X. p | <> X",
            "nu X. p & [] X",
            "nu X. mu Y. <>((p & X) | Y)",
        ],
    )
    def test_accepts(self, text):
        parse_mu(text)

    @pytest.mark.parametrize(
        "bad", ["", "mu . p", "~ mu X. X", "p &", "mu X. ~X", "(p"]
    )
    def test_rejects(self, bad):
        with pytest.raises(SyntaxError_):
            parse_mu(bad)


class TestModelChecker:
    def test_liveness_reach_p(self):
        K = KripkeStructure.build(
            3, [(0, 1), (1, 2), (2, 2)], {"p": [2]}
        )
        reach_p = parse_mu("mu X. p | <> X")
        assert model_check(K, reach_p) == {0, 1, 2}

    def test_safety_always_p(self):
        K = KripkeStructure.build(
            3, [(0, 1), (1, 0), (2, 2)], {"p": [0, 1]}
        )
        always_p = parse_mu("nu X. p & [] X")
        assert model_check(K, always_p) == {0, 1}

    def test_box_on_deadlock_is_vacuous(self):
        K = KripkeStructure.build(2, [(0, 1)], {"p": []}, )
        assert holds_at(K, parse_mu("[] p"), 1)
        assert not holds_at(K, parse_mu("<> p"), 1)

    def test_fairness_formula(self):
        # p infinitely often along some path
        K = KripkeStructure.build(3, [(0, 1), (1, 0), (2, 2)], {"p": [0]})
        fair = parse_mu("nu X. mu Y. <>((p & X) | Y)")
        assert model_check(K, fair) == {0, 1}


class TestFP2Route:
    def test_translation_width_is_two(self):
        q = mu_to_fp_query(parse_mu("nu X. mu Y. <>((p & X) | Y)"))
        assert variable_width(q.formula) == 2
        assert q.width == 2

    @given(mu_formulas(), st.integers(0, 5))
    @settings(max_examples=20)
    def test_fp2_route_agrees_with_direct(self, phi, seed):
        K = structures(seed)
        direct = model_check(K, phi)
        q = mu_to_fp_query(phi)
        result = evaluate(q.formula, K.to_database(), ("x",))
        assert frozenset(t[0] for t in result.relation.tuples) == direct

    @given(st.integers(0, 4))
    @settings(max_examples=8)
    def test_all_strategies_agree_on_alternating_property(self, seed):
        K = structures(seed)
        phi = parse_mu("nu X. mu Y. <>((p & X) | Y)")
        direct = model_check(K, phi)
        q = mu_to_fp_query(phi)
        for strategy in FixpointStrategy:
            result = evaluate(
                q.formula,
                K.to_database(),
                ("x",),
                EvalOptions(strategy=strategy),
            )
            assert frozenset(t[0] for t in result.relation.tuples) == direct


class TestKripke:
    def test_to_database_schema(self):
        K = structures(0)
        db = K.to_database()
        assert db.schema.arity_of("E") == 2
        assert db.schema.arity_of("p") == 1

    def test_total_random_structures_have_no_deadlocks(self):
        K = KripkeStructure.random(6, 0.05, ["p"], seed=1, total=True)
        for s in range(K.num_states):
            assert K.successors(s)

    def test_label_clash_with_edge_rejected(self):
        from repro.errors import SchemaError

        K = KripkeStructure.build(1, [], {"E": [0]})
        with pytest.raises(SchemaError):
            K.to_database()
