"""Round-trip tests for the JSON interchange format."""

import pytest
from hypothesis import given

from repro.errors import SchemaError, SyntaxError_
from repro.logic.parser import parse_formula
from repro.logic.serialize import (
    database_dumps,
    database_loads,
    formula_dumps,
    formula_from_json,
    formula_loads,
    formula_to_json,
)

from tests.conftest import databases, fo_formulas

EXAMPLES = [
    "E(x, y) & ~P(x)",
    "exists x. forall y. (E(x, y) | x = y)",
    "[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)",
    "[gfp S(x, y). E(x, y)](u, v)",
    "[pfp X(x). ~X(x)](u)",
    "[ifp X(x). P(x)](u)",
    "exists2 R/2. forall x. R(x, x)",
    "P(3) & E(x, 'alice')",
    "true | false",
]


class TestFormulaRoundTrip:
    @pytest.mark.parametrize("text", EXAMPLES)
    def test_examples(self, text):
        phi = parse_formula(text)
        assert formula_loads(formula_dumps(phi)) == phi

    @given(fo_formulas())
    def test_property_roundtrip(self, phi):
        assert formula_from_json(formula_to_json(phi)) == phi

    def test_indented_output_still_parses(self):
        phi = parse_formula("exists x. P(x)")
        assert formula_loads(formula_dumps(phi, indent=2)) == phi


class TestFormulaErrors:
    def test_bad_json(self):
        with pytest.raises(SyntaxError_):
            formula_loads("{not json")

    def test_wrong_version(self):
        with pytest.raises(SyntaxError_):
            formula_loads('{"version": 99, "formula": {"op": "true"}}')

    def test_unknown_op(self):
        with pytest.raises(SyntaxError_):
            formula_from_json({"op": "xor", "subs": []})

    def test_missing_field(self):
        with pytest.raises(SyntaxError_):
            formula_from_json({"op": "atom", "name": "P"})

    def test_malformed_term(self):
        with pytest.raises(SyntaxError_):
            formula_from_json(
                {"op": "atom", "name": "P", "terms": [{"neither": 1}]}
            )


class TestDatabaseRoundTrip:
    @given(databases())
    def test_property_roundtrip(self, db):
        assert database_loads(database_dumps(db)) == db

    def test_string_domain_values(self):
        from repro.database import Database

        db = Database.from_tuples(
            ["alice", "bob"], {"knows": (2, [("alice", "bob")])}
        )
        assert database_loads(database_dumps(db)) == db

    def test_bad_json(self):
        with pytest.raises(SchemaError):
            database_loads("[]")

    def test_wrong_version(self):
        with pytest.raises(SchemaError):
            database_loads('{"version": 0, "database": {"domain": []}}')
