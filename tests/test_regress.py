"""Unit tests for the two-tier regression gate."""

import pytest

from repro.obs.regress import (
    Band,
    RegressionPolicy,
    compare_records,
)
from repro.obs.runstore import build_record

ENV = {
    "python": "3.11.0",
    "implementation": "CPython",
    "platform": "linux-x86_64",
    "cpu_count": 4,
    "git_sha": "abc1234",
}


def _record(counters=None, seconds=None, outcomes=None, parameters=None, env=None):
    parameters = parameters or [2.0, 4.0, 8.0]
    counters = counters or [
        {"iterations": float(p), "rows": float(p * p)} for p in parameters
    ]
    seconds = seconds or [0.01 * p for p in parameters]
    return build_record(
        "GATE",
        "gate fixture",
        parameters=parameters,
        seconds=seconds,
        counters=counters,
        outcomes=outcomes,
        fit_counters=("rows",),
        env=env or ENV,
    )


class TestBand:
    def test_exact_band(self):
        band = Band()
        assert band.allows(5.0, 5.0)
        assert not band.allows(5.0, 5.0001)
        assert band.describe() == "exact"

    def test_abs_and_rel_tolerance(self):
        assert Band(abs_tol=1.0).allows(10.0, 11.0)
        assert not Band(abs_tol=1.0).allows(10.0, 11.5)
        assert Band(rel_tol=0.1).allows(100.0, 109.0)
        assert not Band(rel_tol=0.1).allows(100.0, 111.0)
        assert "±10%" in Band(rel_tol=0.1).describe()


class TestCompareRecords:
    def test_identical_records_pass(self):
        report = compare_records(_record(), _record())
        assert report.ok
        assert report.points_checked == 3
        assert report.counters_checked == 6
        assert "PASS" in report.format()

    def test_counter_drift_is_named(self):
        fresh = _record(
            counters=[
                {"iterations": 2.0, "rows": 4.0},
                {"iterations": 4.0, "rows": 16.0},
                {"iterations": 9.0, "rows": 64.0},  # iterations drifted
            ]
        )
        report = compare_records(_record(), fresh)
        assert not report.ok
        (violation,) = report.violations
        assert violation.kind == "counter"
        assert violation.name == "iterations"
        assert violation.parameter == 8.0
        assert violation.baseline == 8.0 and violation.fresh == 9.0
        assert "drifted" in violation.message
        assert "REGRESSION" in report.format()

    def test_per_counter_band_loosens_tier_one(self):
        fresh = _record(
            counters=[
                {"iterations": 2.0, "rows": 4.0},
                {"iterations": 4.0, "rows": 16.0},
                {"iterations": 9.0, "rows": 64.0},
            ]
        )
        policy = RegressionPolicy(counter_bands={"iterations": Band(abs_tol=1.0)})
        assert compare_records(_record(), fresh, policy).ok

    def test_missing_counter_is_a_violation(self):
        fresh = _record(
            counters=[
                {"iterations": 2.0},
                {"iterations": 4.0},
                {"iterations": 8.0},
            ]
        )
        report = compare_records(_record(), fresh, RegressionPolicy.counters_only())
        kinds = {(v.kind, v.name) for v in report.violations}
        assert ("counter", "rows") in kinds

    def test_new_counter_is_only_a_note(self):
        fresh = _record(
            counters=[
                {"iterations": float(p), "rows": float(p * p), "extra": 1.0}
                for p in (2, 4, 8)
            ]
        )
        report = compare_records(_record(), fresh, RegressionPolicy.counters_only())
        assert report.ok
        assert any("extra" in note for note in report.notes)

    def test_outcome_flip(self):
        fresh = _record(outcomes=["ok", "ok", "timeout"])
        report = compare_records(_record(), fresh)
        assert any(v.kind == "outcome" for v in report.violations)

    def test_parameter_mismatch(self):
        fresh = _record(parameters=[2.0, 4.0])
        report = compare_records(_record(), fresh)
        assert any(v.kind == "parameters" for v in report.violations)

    def test_different_experiments_short_circuit(self):
        other = build_record(
            "OTHER", "t", parameters=[1.0], seconds=[0.0], env=ENV
        )
        report = compare_records(_record(), other)
        assert [v.kind for v in report.violations] == ["experiment"]
        assert report.points_checked == 0

    def test_seconds_band_with_floor(self):
        baseline = _record(seconds=[0.0001, 0.0001, 0.0001])
        # sub-millisecond baselines are floored: 1.5ms is within 2x of 1ms
        within = _record(seconds=[0.0015, 0.0015, 0.0015])
        assert compare_records(baseline, within).ok
        beyond = _record(seconds=[0.01, 0.01, 0.01])
        report = compare_records(baseline, beyond)
        assert {v.kind for v in report.violations} == {"seconds"}

    def test_counters_only_ignores_seconds_and_fits(self):
        baseline = _record(seconds=[0.001, 0.001, 0.001])
        fresh = _record(seconds=[10.0, 10.0, 10.0])
        assert compare_records(
            baseline, fresh, RegressionPolicy.counters_only()
        ).ok

    def test_fit_coefficient_drift(self):
        baseline = _record()
        fresh = _record(
            counters=[
                {"iterations": float(p), "rows": float(p**3)}
                for p in (2, 4, 8)
            ]
        )
        report = compare_records(baseline, fresh)
        fit_violations = [v for v in report.violations if v.kind == "fit"]
        assert any(v.name == "rows" for v in fit_violations)

    def test_env_drift_is_a_note_not_a_violation(self):
        drifted_env = dict(ENV, python="3.12.0")
        report = compare_records(_record(), _record(env=drifted_env))
        assert report.ok
        assert any("environment drift" in note for note in report.notes)

    def test_report_to_dict_is_json_ready(self):
        import json

        fresh = _record(outcomes=["ok", "ok", "timeout"])
        payload = compare_records(_record(), fresh).to_dict()
        text = json.dumps(payload)
        assert '"ok": false' in text
        assert payload["violations"][0]["kind"] == "outcome"
