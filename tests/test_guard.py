"""Unit tests for the resource-guard subsystem (budgets + chaos)."""

import pytest

from repro.guard import (
    Budget,
    ChaosPolicy,
    ClauseBudgetExceeded,
    DeadlineExceeded,
    DecisionBudgetExceeded,
    InjectedFault,
    IterationBudgetExceeded,
    NULL_GUARD,
    ResourceExhausted,
    ResourceGuard,
    SpaceBudgetExceeded,
    StateBudgetExceeded,
    resolve_guard,
)
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    """Deterministic monotonic clock for deadline tests."""

    def __init__(self, start: float = 0.0, tick: float = 0.0):
        self.now = start
        self.tick = tick

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick
        return value

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBudget:
    def test_default_is_unlimited(self):
        assert Budget().is_unlimited()

    def test_any_limit_makes_it_limited(self):
        assert not Budget(max_rows=10).is_unlimited()
        assert not Budget(deadline_seconds=1.0).is_unlimited()

    def test_frozen(self):
        with pytest.raises(Exception):
            Budget().max_rows = 5  # type: ignore[misc]


class TestResolveGuard:
    def test_nothing_configured_gives_null_guard(self):
        assert resolve_guard(None) is NULL_GUARD
        assert resolve_guard(Budget()) is NULL_GUARD

    def test_limited_budget_gives_real_guard(self):
        guard = resolve_guard(Budget(max_rows=1))
        assert isinstance(guard, ResourceGuard)
        assert guard.enabled

    def test_chaos_alone_gives_real_guard(self):
        guard = resolve_guard(None, chaos=ChaosPolicy(fail_at=1))
        assert isinstance(guard, ResourceGuard)


class TestNullGuard:
    def test_all_operations_are_noops(self):
        NULL_GUARD.checkpoint("anywhere")
        NULL_GUARD.charge_iteration()
        NULL_GUARD.charge_rows(10**9)
        NULL_GUARD.charge_decision()
        NULL_GUARD.charge_clauses(10**9)
        NULL_GUARD.charge_state()
        NULL_GUARD.reset_clauses()
        assert NULL_GUARD.try_charge_state() is True
        assert not NULL_GUARD.enabled


class TestCharges:
    def test_iteration_budget(self):
        guard = ResourceGuard(Budget(max_iterations=3))
        for _ in range(3):
            guard.charge_iteration()
        with pytest.raises(IterationBudgetExceeded) as info:
            guard.charge_iteration(index=3)
        exc = info.value
        assert exc.kind == "iterations"
        assert exc.limit == 3
        assert exc.used == 4
        assert exc.partial["index"] == 3
        assert isinstance(exc, ResourceExhausted)

    def test_rows_is_high_water_not_cumulative(self):
        guard = ResourceGuard(Budget(max_rows=10))
        for _ in range(100):
            guard.charge_rows(9)  # 900 cumulative rows never trip
        assert guard.peak_rows == 9
        with pytest.raises(SpaceBudgetExceeded):
            guard.charge_rows(11)

    def test_decision_budget(self):
        guard = ResourceGuard(Budget(max_decisions=1))
        guard.charge_decision()
        with pytest.raises(DecisionBudgetExceeded):
            guard.charge_decision()

    def test_clause_budget_is_per_stage(self):
        guard = ResourceGuard(Budget(max_clauses=5))
        guard.charge_clauses(5)
        guard.reset_clauses()
        guard.charge_clauses(5)  # a fresh stage gets the full budget again
        assert guard.clauses == 5
        assert guard.snapshot()["clauses"] == 10  # cumulative total kept
        with pytest.raises(ClauseBudgetExceeded):
            guard.charge_clauses(1)

    def test_state_budget_raising_and_nonraising(self):
        guard = ResourceGuard(Budget(max_states=2))
        assert guard.try_charge_state()
        assert guard.try_charge_state()
        assert not guard.try_charge_state()
        with pytest.raises(StateBudgetExceeded):
            guard.charge_state()

    def test_deadline_with_fake_clock(self):
        clock = FakeClock()
        guard = ResourceGuard(Budget(deadline_seconds=1.0), clock=clock)
        guard.checkpoint("early")
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded) as info:
            guard.checkpoint("late")
        assert info.value.kind == "deadline"
        assert "late" in str(info.value)

    def test_check_interval_skips_clock_reads(self):
        clock = FakeClock()
        guard = ResourceGuard(
            Budget(deadline_seconds=1.0), clock=clock, check_interval=10
        )
        clock.advance(5.0)
        # checkpoints 1..9 do not hit the clock; the 10th does
        for _ in range(9):
            guard.checkpoint()
        with pytest.raises(DeadlineExceeded):
            guard.checkpoint()


class TestExhaustionPayload:
    def test_exception_carries_metrics_snapshot(self):
        registry = MetricsRegistry()
        guard = ResourceGuard(Budget(max_iterations=1), registry=registry)
        guard.charge_iteration()
        with pytest.raises(IterationBudgetExceeded) as info:
            guard.charge_iteration()
        metrics = info.value.metrics
        assert metrics["guard.iterations"] == 2
        assert metrics["guard.checkpoints"] >= 2

    def test_partial_progress_defaults(self):
        guard = ResourceGuard(Budget(max_rows=0))
        with pytest.raises(SpaceBudgetExceeded) as info:
            guard.charge_rows(1, node="And")
        partial = info.value.partial
        assert partial["node"] == "And"
        assert "checkpoints" in partial
        assert "elapsed_seconds" in partial

    def test_shared_registry_sees_guard_counters(self):
        registry = MetricsRegistry()
        guard = ResourceGuard(Budget(), registry=registry)
        guard.charge_iteration()
        assert registry.snapshot()["guard.iterations"] == 1


class TestChaosPolicy:
    def test_fail_at_exact_checkpoint(self):
        guard = ResourceGuard(chaos=ChaosPolicy(fail_at=3))
        guard.checkpoint()
        guard.checkpoint()
        with pytest.raises(InjectedFault) as info:
            guard.checkpoint("third")
        assert info.value.checkpoint == 3
        assert info.value.where == "third"

    def test_fail_within_is_seed_deterministic(self):
        picks = {ChaosPolicy(seed=7, fail_within=100).fail_at for _ in range(5)}
        assert len(picks) == 1
        assert 1 <= picks.pop() <= 100
        assert (
            ChaosPolicy(seed=1, fail_within=10**6).fail_at
            != ChaosPolicy(seed=2, fail_within=10**6).fail_at
        )

    def test_injected_fault_is_not_resource_exhaustion(self):
        # sweeps must classify injected faults as "error", not "timeout"
        assert not issubclass(InjectedFault, ResourceExhausted)

    def test_slow_step_uses_injected_sleep(self):
        naps = []
        policy = ChaosPolicy(
            slow_step_seconds=0.5, slow_every=2, sleep=naps.append
        )
        guard = ResourceGuard(chaos=policy)
        for _ in range(4):
            guard.checkpoint()
        assert naps == [0.5, 0.5]  # every 2nd checkpoint

    def test_oversize_rows_forces_space_exhaustion(self):
        guard = ResourceGuard(
            Budget(max_rows=100), chaos=ChaosPolicy(oversize_rows=1000)
        )
        with pytest.raises(SpaceBudgetExceeded):
            guard.charge_rows(1)


class TestGuardReset:
    """Sequential reuse across requests: repro.serve's guard lifecycle."""

    def test_reset_restores_the_full_iteration_budget(self):
        guard = ResourceGuard(Budget(max_iterations=3))
        for _ in range(3):
            guard.charge_iteration()
        guard.reset()
        for _ in range(3):  # the second request gets the full budget
            guard.charge_iteration()
        with pytest.raises(IterationBudgetExceeded):
            guard.charge_iteration()

    def test_reset_reanchors_the_deadline(self):
        clock = FakeClock()
        guard = ResourceGuard(Budget(deadline_seconds=1.0), clock=clock)
        clock.advance(0.9)
        guard.checkpoint()  # still inside the first request's deadline
        guard.reset()
        clock.advance(0.9)
        guard.checkpoint()  # a full fresh second, not the 0.1s remnant
        clock.advance(0.2)
        with pytest.raises(DeadlineExceeded):
            guard.checkpoint()

    def test_reset_clears_rows_high_water_and_snapshot(self):
        guard = ResourceGuard(Budget(max_rows=10))
        guard.charge_rows(9)
        guard.charge_decision()
        guard.reset()
        assert guard.peak_rows == 0
        snap = guard.snapshot()
        assert snap["decisions"] == 0
        guard.charge_rows(9)  # no leak from the first request

    def test_reset_clears_stage_clauses(self):
        guard = ResourceGuard(Budget(max_clauses=5))
        guard.charge_clauses(5)
        guard.reset()
        guard.charge_clauses(5)  # would raise if the stage count leaked
        assert guard.clauses == 5

    def test_null_guard_reset_is_a_noop(self):
        NULL_GUARD.reset()  # must not raise


class TestChaosFaultKinds:
    def test_unknown_kind_is_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError) as info:
            ChaosPolicy(fault_kinds=("bogus",))
        assert "bogus" in str(info.value)

    def test_kind_choice_is_seed_deterministic(self):
        from repro.guard.chaos import FAULT_KINDS

        kinds = {
            ChaosPolicy(seed=5, fail_at=1, fault_kinds=FAULT_KINDS).kind
            for _ in range(5)
        }
        assert len(kinds) == 1
        assert kinds.pop() in FAULT_KINDS

    def test_fault_carries_its_kind(self):
        policy = ChaosPolicy(fail_at=1, fault_kinds=("crash",))
        guard = ResourceGuard(chaos=policy)
        with pytest.raises(InjectedFault) as info:
            guard.checkpoint()
        assert info.value.kind == "crash"
        assert info.value.checkpoint == 1

    def test_slow_kind_sleeps_once_instead_of_raising(self):
        naps = []
        policy = ChaosPolicy(
            fail_at=1,
            fault_kinds=("slow",),
            slow_fault_seconds=0.25,
            sleep=naps.append,
        )
        guard = ResourceGuard(chaos=policy)
        guard.checkpoint()  # fires the slow fault: a delay, not an error
        guard.checkpoint()
        assert naps == [0.25]
