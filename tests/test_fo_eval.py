"""Tests for bounded bottom-up FO evaluation (Prop 3.1)."""

import pytest
from hypothesis import given

from repro.core.fo_eval import BoundedEvaluator, atom_table
from repro.core.interp import EvalStats
from repro.core.naive_eval import naive_answer
from repro.database import Database, Relation
from repro.errors import EvaluationError, VariableBoundError
from repro.logic.parser import parse_formula
from repro.logic.variables import free_variables, variable_width

from tests.conftest import databases, fo_formulas


class TestAtomTable:
    def test_distinct_variables(self, tiny_graph):
        t = atom_table(
            tiny_graph.relation("E"),
            parse_formula("E(x, y)").terms,
            tiny_graph.domain,
        )
        assert t.variables == ("x", "y")
        assert (0, 1) in t.rows

    def test_repeated_variable_selects_diagonal(self, tiny_graph):
        t = atom_table(
            tiny_graph.relation("E"),
            parse_formula("E(x, x)").terms,
            tiny_graph.domain,
        )
        assert t.variables == ("x",)
        assert t.is_empty()  # tiny_graph has no self-loops

    def test_constant_selects(self, tiny_graph):
        t = atom_table(
            tiny_graph.relation("E"),
            parse_formula("E(0, y)").terms,
            tiny_graph.domain,
        )
        assert t.rows == frozenset({(1,)})

    def test_arity_mismatch(self, tiny_graph):
        with pytest.raises(EvaluationError):
            atom_table(
                tiny_graph.relation("E"),
                parse_formula("E(x, y, z)").terms,
                tiny_graph.domain,
            )


class TestAgreementWithReference:
    @given(fo_formulas(), databases(max_size=3))
    def test_property_agreement(self, phi, db):
        out = sorted(free_variables(phi))
        bounded = BoundedEvaluator(db).answer(phi, out)
        assert bounded == naive_answer(phi, db, out)

    def test_specific_nested_query(self, tiny_graph):
        phi = parse_formula(
            "forall y. (~E(x, y) | exists x. (x = y & exists y. E(x, y)))"
        )
        assert BoundedEvaluator(tiny_graph).answer(phi, ("x",)) == naive_answer(
            phi, tiny_graph, ("x",)
        )


class TestBoundsAndStats:
    def test_intermediate_arity_bounded_by_width(self, tiny_graph):
        phi = parse_formula("exists z. (E(x, z) & exists x. (x = z & E(x, y)))")
        stats = EvalStats()
        BoundedEvaluator(tiny_graph, stats=stats).answer(phi, ("x", "y"))
        assert stats.max_intermediate_arity <= variable_width(phi)

    def test_intermediate_rows_bounded_by_n_to_k(self, tiny_graph):
        phi = parse_formula("exists z. (E(x, z) & E(z, y))")
        stats = EvalStats()
        BoundedEvaluator(tiny_graph, stats=stats).answer(phi, ("x", "y"))
        n, k = tiny_graph.size(), variable_width(phi)
        assert stats.max_intermediate_rows <= n**k

    def test_k_limit_enforced(self, tiny_graph):
        phi = parse_formula("exists x. exists y. exists z. (E(x,y) & E(y,z))")
        with pytest.raises(VariableBoundError):
            BoundedEvaluator(tiny_graph, k_limit=2).answer(phi, ())

    def test_k_limit_allows_within_budget(self, tiny_graph):
        phi = parse_formula("exists y. E(x, y)")
        BoundedEvaluator(tiny_graph, k_limit=2).answer(phi, ("x",))

    def test_memoization_hits_on_shared_subformulas(self, tiny_graph):
        sub = parse_formula("exists y. E(x, y)")
        from repro.logic.syntax import And

        phi = And((sub, sub))  # identical object shared
        stats = EvalStats()
        BoundedEvaluator(tiny_graph, stats=stats).answer(phi, ("x",))
        assert stats.notes.get("memo_hits", 0) >= 1


class TestAnswerAPI:
    def test_extra_output_variables_cylindrify(self, tiny_graph):
        relation = BoundedEvaluator(tiny_graph).answer(
            parse_formula("P(x)"), ("x", "w")
        )
        assert len(relation) == 2 * tiny_graph.size()

    def test_column_permutation(self, tiny_graph):
        phi = parse_formula("E(x, y)")
        xy = BoundedEvaluator(tiny_graph).answer(phi, ("x", "y"))
        yx = BoundedEvaluator(tiny_graph).answer(phi, ("y", "x"))
        assert {(b, a) for a, b in xy.tuples} == set(yx.tuples)

    def test_duplicate_output_variables_rejected(self, tiny_graph):
        with pytest.raises(EvaluationError):
            BoundedEvaluator(tiny_graph).answer(parse_formula("P(x)"), ("x", "x"))

    def test_missing_output_variable_rejected(self, tiny_graph):
        with pytest.raises(EvaluationError):
            BoundedEvaluator(tiny_graph).answer(parse_formula("E(x, y)"), ("x",))

    def test_sentence_gives_boolean_relation(self, tiny_graph):
        relation = BoundedEvaluator(tiny_graph).answer(
            parse_formula("exists x. P(x)"), ()
        )
        assert relation.as_bool() is True

    def test_rel_env_overrides_database(self, tiny_graph):
        relation = BoundedEvaluator(tiny_graph).answer(
            parse_formula("P(x)"), ("x",), rel_env={"P": Relation(1, [(3,)])}
        )
        assert relation.tuples == frozenset({(3,)})

    def test_fixpoint_without_solver_rejected(self, tiny_graph):
        with pytest.raises(EvaluationError):
            BoundedEvaluator(tiny_graph).answer(
                parse_formula("[lfp S(x). S(x)](u)"), ("u",)
            )

    def test_so_exists_rejected_here(self, tiny_graph):
        with pytest.raises(EvaluationError):
            BoundedEvaluator(tiny_graph).answer(
                parse_formula("exists2 R/1. R(x)"), ("x",)
            )


class TestEmptyDomain:
    def test_quantifiers_over_empty_domain(self):
        db = Database.from_tuples([], {})
        ev = BoundedEvaluator(db)
        assert not ev.answer(parse_formula("exists x. x = x"), ()).as_bool()
        assert ev.answer(parse_formula("forall x. ~(x = x)"), ()).as_bool()
