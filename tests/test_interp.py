"""Tests for VarTable — the bounded intermediate representation."""

import pytest

from repro.core.interp import EvalStats, VarTable
from repro.database.domain import Domain
from repro.errors import EvaluationError

D3 = Domain.range(3)


class TestConstruction:
    def test_columns_are_canonically_sorted(self):
        t = VarTable(("y", "x"), [(1, 2)])
        assert t.variables == ("x", "y")
        assert (2, 1) in t.rows  # row reordered with the columns

    def test_duplicate_columns_rejected(self):
        with pytest.raises(EvaluationError):
            VarTable(("x", "x"), [])

    def test_row_length_checked(self):
        with pytest.raises(EvaluationError):
            VarTable(("x",), [(1, 2)])

    def test_tautology_and_contradiction(self):
        assert len(VarTable.tautology()) == 1
        assert len(VarTable.contradiction()) == 0

    def test_full(self):
        assert len(VarTable.full(("x", "y"), D3)) == 9

    def test_from_assignments(self):
        t = VarTable.from_assignments(("x",), [{"x": 1}, {"x": 2}])
        assert t.contains({"x": 1})
        assert not t.contains({"x": 0})


class TestJoin:
    def test_join_on_shared_column(self):
        left = VarTable(("x", "y"), [(0, 1), (1, 2)])
        right = VarTable(("y", "z"), [(1, 5), (3, 7)])
        joined = left.join(right)
        assert joined.variables == ("x", "y", "z")
        assert joined.rows == frozenset({(0, 1, 5)})

    def test_disjoint_join_is_product(self):
        left = VarTable(("x",), [(0,), (1,)])
        right = VarTable(("y",), [(5,)])
        assert len(left.join(right)) == 2

    def test_join_with_boolean_table(self):
        t = VarTable(("x",), [(0,)])
        assert t.join(VarTable.tautology()) == t
        assert t.join(VarTable.contradiction()).is_empty()

    def test_join_commutative(self):
        a = VarTable(("x", "y"), [(0, 1), (2, 2)])
        b = VarTable(("y",), [(1,), (2,)])
        assert a.join(b) == b.join(a)


class TestBooleanOps:
    def test_union_cylindrifies(self):
        a = VarTable(("x",), [(0,)])
        b = VarTable(("y",), [(1,)])
        u = a.union(b, D3)
        assert u.variables == ("x", "y")
        # a contributes (0, *) for all y; b contributes (*, 1)
        assert (0, 2) in u.rows and (2, 1) in u.rows

    def test_complement(self):
        t = VarTable(("x",), [(0,)])
        c = t.complement(D3)
        assert c.rows == frozenset({(1,), (2,)})
        assert c.complement(D3) == t

    def test_complement_of_boolean(self):
        assert VarTable.tautology().complement(D3) == VarTable.contradiction()

    def test_intersect(self):
        a = VarTable(("x",), [(0,), (1,)])
        b = VarTable(("x",), [(1,), (2,)])
        assert a.intersect(b, D3).rows == frozenset({(1,)})


class TestQuantification:
    def test_project_out(self):
        t = VarTable(("x", "y"), [(0, 1), (0, 2)])
        p = t.project_out("y")
        assert p.variables == ("x",)
        assert len(p) == 1

    def test_project_out_absent_variable_is_identity(self):
        t = VarTable(("x",), [(0,)])
        assert t.project_out("zz") is t

    def test_forall_out(self):
        # x related to every y vs only some y
        rows = [(0, y) for y in range(3)] + [(1, 0)]
        t = VarTable(("x", "y"), rows)
        f = t.forall_out("y", D3)
        assert f.rows == frozenset({(0,)})

    def test_forall_out_equals_double_complement(self):
        t = VarTable(("x", "y"), [(0, 0), (0, 1), (0, 2), (1, 1)])
        direct = t.forall_out("y", D3)
        via = t.complement(D3).project_out("y").complement(D3)
        assert direct == via


class TestMisc:
    def test_select_eq(self):
        t = VarTable(("x", "y"), [(0, 0), (0, 1)])
        assert t.select_eq("x", "y").rows == frozenset({(0, 0)})

    def test_rename(self):
        t = VarTable(("x",), [(0,)])
        assert t.rename({"x": "z"}).variables == ("z",)

    def test_rename_collision_rejected(self):
        with pytest.raises(EvaluationError):
            VarTable(("x", "y"), []).rename({"x": "y"})

    def test_to_relation_permutes(self):
        t = VarTable(("x", "y"), [(0, 1)])
        assert (1, 0) in t.to_relation(("y", "x"))

    def test_to_relation_requires_exact_columns(self):
        with pytest.raises(EvaluationError):
            VarTable(("x",), []).to_relation(("x", "y"))

    def test_stats_observation(self):
        stats = EvalStats()
        stats.observe_table(VarTable(("x", "y"), [(0, 1)]))
        assert stats.max_intermediate_arity == 2
        assert stats.max_intermediate_rows == 1
        stats.bump("things", 3)
        assert stats.notes["things"] == 3
