"""Tests for the Theorem 3.5 from-below evaluator internals."""

import pytest
from hypothesis import given

from repro.core.abstraction import abstract_query
from repro.core.alternation import (
    AlternationEvaluator,
    alternation_answer,
    alternation_answer_with_trace,
)
from repro.core.interp import EvalStats
from repro.core.naive_eval import naive_answer
from repro.database import Relation
from repro.errors import PositivityError
from repro.logic.parser import parse_formula
from repro.logic.variables import free_variables

from tests.conftest import databases, fp_formulas


class TestAnswers:
    def test_plain_lfp(self, tiny_graph):
        phi = parse_formula("[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)")
        assert alternation_answer(phi, tiny_graph, ("u",)) == naive_answer(
            phi, tiny_graph, ("u",)
        )

    def test_plain_gfp(self, tiny_graph):
        phi = parse_formula("[gfp S(x). exists y. (E(x, y) & S(y))](u)")
        assert alternation_answer(phi, tiny_graph, ("u",)) == naive_answer(
            phi, tiny_graph, ("u",)
        )

    def test_gfp_over_lfp(self, tiny_graph):
        phi = parse_formula(
            "[gfp S(x). [lfp T(z). forall y. "
            "(~E(z, y) | (P(y) & S(y)) | T(y))](x)](u)"
        )
        assert alternation_answer(phi, tiny_graph, ("u",)) == naive_answer(
            phi, tiny_graph, ("u",)
        )

    def test_lfp_over_gfp(self, tiny_graph):
        phi = parse_formula(
            "[lfp S(x). [gfp T(z). (P(z) | S(z)) & "
            "(exists y. (E(z, y) & T(y)) | Q(z))](x)](u)"
        )
        assert alternation_answer(phi, tiny_graph, ("u",)) == naive_answer(
            phi, tiny_graph, ("u",)
        )

    def test_negated_fixpoint_via_nnf(self, tiny_graph):
        phi = parse_formula("~[lfp S(x). P(x) | S(x)](u)")
        assert alternation_answer(phi, tiny_graph, ("u",)) == naive_answer(
            phi, tiny_graph, ("u",)
        )

    def test_fo_formula_supported(self, tiny_graph):
        phi = parse_formula("exists y. E(x, y)")
        assert alternation_answer(phi, tiny_graph, ("x",)) == naive_answer(
            phi, tiny_graph, ("x",)
        )

    @given(fp_formulas(), databases(max_size=3))
    def test_property_agreement(self, phi, db):
        out = sorted(free_variables(phi))
        assert alternation_answer(phi, db, out) == naive_answer(phi, db, out)

    def test_positivity_enforced(self, tiny_graph):
        with pytest.raises(PositivityError):
            alternation_answer(
                parse_formula("[lfp S(x). ~S(x)](u)"), tiny_graph, ("u",)
            )


class TestTrace:
    def test_chain_steps_are_monotone(self, tiny_graph):
        phi = parse_formula("[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)")
        _, cert = alternation_answer_with_trace(phi, tiny_graph, ("u",))
        top = cert.top_certs[0]
        previous = Relation.empty(1)
        for step in top.steps:
            assert previous.issubset(step.value)
            previous = step.value
        assert top.value == previous

    def test_lfp_chain_reuses_unchanged_children(self, tiny_graph):
        # alternation-free: once inner finals stabilize the steps inherit
        phi = parse_formula(
            "[lfp S(x). [lfp T(z). P(z) | T(z)](x) | "
            "exists y. (E(y, x) & S(y))](u)"
        )
        _, cert = alternation_answer_with_trace(phi, tiny_graph, ("u",))
        top = cert.top_certs[0]
        inherit_flags = [step.children is None for step in top.steps]
        if len(top.steps) > 1:
            assert any(inherit_flags[1:])

    def test_final_state_matches_values(self, tiny_graph):
        phi = parse_formula("[gfp S(x). exists y. (E(x, y) & S(y))](u)")
        _, cert = alternation_answer_with_trace(phi, tiny_graph, ("u",))
        state = cert.final_state()
        node = cert.query.nodes[0]
        assert state[node.name] == cert.top_certs[0].value

    def test_guessed_tuples_accounting(self, tiny_graph):
        phi = parse_formula("[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)")
        _, cert = alternation_answer_with_trace(phi, tiny_graph, ("u",))
        assert cert.total_guessed_tuples() >= len(cert.top_certs[0].value)


class TestEvaluatorInternals:
    def test_solve_value_memoized(self, tiny_graph):
        phi = parse_formula("[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)")
        aq = abstract_query(phi)
        evaluator = AlternationEvaluator(aq, tiny_graph, EvalStats())
        node = aq.nodes[0]
        first = evaluator.solve_value(node, {})
        iterations = evaluator.stats.fixpoint_iterations
        second = evaluator.solve_value(node, {})
        assert first == second
        assert evaluator.stats.fixpoint_iterations == iterations
