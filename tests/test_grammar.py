"""Tests for parenthesis grammars and the Lemma 4.2 construction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fo_eval import BoundedEvaluator
from repro.database import Database
from repro.errors import ReductionError
from repro.grammar import (
    Grammar,
    Production,
    build_fo_grammar,
    encode_formula,
    is_parenthesis_grammar,
    recognize_parenthesis,
)
from repro.grammar.cfg import GrammarError
from repro.grammar.recognizer import RecognizerStats
from repro.logic.builders import and_, atom, eq, exists, not_
from repro.logic.syntax import And, Exists, Not, Var


def balanced_grammar() -> Grammar:
    """L = well-nested words over {(, ), a}: A → (A A) | (a) | ()"""
    return Grammar(
        frozenset({"A"}),
        (
            Production("A", ("(", "A", "A", ")")),
            Production("A", ("(", "a", ")")),
            Production("A", ("(", ")")),
        ),
        "A",
    )


class TestCfg:
    def test_parenthesis_check(self):
        assert is_parenthesis_grammar(balanced_grammar())
        bad = Grammar(
            frozenset({"A"}), (Production("A", ("a",)),), "A"
        )
        assert not is_parenthesis_grammar(bad)

    def test_nested_parens_in_interior_rejected(self):
        bad = Grammar(
            frozenset({"A"}), (Production("A", ("(", "(", ")", ")")),), "A"
        )
        assert not is_parenthesis_grammar(bad)

    def test_unknown_start_rejected(self):
        with pytest.raises(GrammarError):
            Grammar(frozenset({"A"}), (), "S")

    def test_grammar_size(self):
        assert balanced_grammar().size() == 12


class TestRecognizer:
    @pytest.mark.parametrize(
        "word,expected",
        [
            (["(", ")"], True),
            (["(", "a", ")"], True),
            (["(", "(", ")", "(", "a", ")", ")"], True),
            (["(", "a", "a", ")"], False),
            (["(", "b", ")"], False),
            ([], False),
            (["a"], False),
        ],
    )
    def test_membership(self, word, expected):
        assert recognize_parenthesis(balanced_grammar(), word) is expected

    def test_unbalanced_raises(self):
        with pytest.raises(GrammarError):
            recognize_parenthesis(balanced_grammar(), [")", "("])

    def test_single_pass_linear_work(self):
        # deep nest: w_0 = (a), w_{i+1} = ( w_i (a) ) — matches A → (A A)
        word = ["(", "a", ")"]
        for _ in range(10):
            word = ["("] + word + ["(", "a", ")", ")"]
        stats = RecognizerStats()
        assert recognize_parenthesis(balanced_grammar(), word, stats)
        assert stats.tokens_scanned == len(word)
        assert stats.reductions <= len(word)

    def test_non_parenthesis_grammar_rejected(self):
        bad = Grammar(frozenset({"A"}), (Production("A", ("a",)),), "A")
        with pytest.raises(GrammarError):
            recognize_parenthesis(bad, ["a"])


def tiny_db() -> Database:
    return Database.from_tuples(
        range(2), {"E": (2, [(0, 1)]), "P": (1, [(0,)])}
    )


class TestLemma42:
    def test_grammar_is_parenthesis(self):
        fg = build_fo_grammar(tiny_db(), k=1)
        assert is_parenthesis_grammar(fg.grammar)

    def test_too_large_construction_rejected(self):
        big = Database.from_tuples(range(5), {"E": (2, [])})
        with pytest.raises(ReductionError):
            build_fo_grammar(big, k=2)

    def _check(self, phi, k=2):
        db = tiny_db()
        fg = build_fo_grammar(db, k=k)
        via_grammar = fg.evaluate_via_grammar(phi)
        variables = tuple(f"x{i}" for i in range(1, k + 1))
        table = BoundedEvaluator(db).evaluate(phi).cylindrify(
            variables, db.domain
        )
        direct = frozenset(table.to_relation(variables).tuples)
        assert via_grammar == direct

    @pytest.mark.parametrize(
        "phi",
        [
            atom("P", "x1"),
            atom("E", "x1", "x2"),
            atom("E", "x2", "x1"),
            atom("E", "x1", "x1"),
            eq("x1", "x2"),
            not_(atom("P", "x1")),
            And((atom("E", "x1", "x2"), atom("P", "x1"))),
            Exists(Var("x2"), And((atom("E", "x1", "x2"), atom("P", "x2")))),
            Not(Exists(Var("x1"), atom("P", "x1"))),
        ],
    )
    def test_grammar_value_matches_evaluator(self, phi):
        self._check(phi)

    def test_wrong_claims_rejected(self):
        db = tiny_db()
        fg = build_fo_grammar(db, k=1)
        phi = atom("P", "x1")
        correct = fg.relation_index(fg.evaluate_via_grammar(phi))
        for index in range(len(fg.relations)):
            assert fg.accepts(phi, index) == (index == correct)

    def test_word_length_linear_in_formula(self):
        db = tiny_db()
        fg = build_fo_grammar(db, k=1)
        small = atom("P", "x1")
        big = small
        for _ in range(5):
            big = And((big, atom("P", "x1")))
        assert len(fg.word_for(big, 0)) > len(fg.word_for(small, 0))

    def test_unsupported_connectives_rejected(self):
        with pytest.raises(ReductionError):
            encode_formula(atom("P", "y"), 2)  # variable outside x1..xk
        from repro.logic.syntax import Or

        with pytest.raises(ReductionError):
            encode_formula(Or((atom("P", "x1"), atom("P", "x1"))), 2)
