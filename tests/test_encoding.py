"""Tests for the standard binary encoding (Section 2.1)."""

import pytest
from hypothesis import given

from repro.database.encoding import (
    decode_database,
    encode_database,
    encoded_length,
)
from repro.database import Database
from repro.errors import SchemaError

from tests.conftest import databases


class TestEncodeDecode:
    def test_paper_style_example(self):
        # the paper encodes ({3,5,7}, {<3,5>,<5,7>}); after canonical
        # renaming the domain indices are 0,1,2
        db = Database.from_tuples([3, 5, 7], {"R": (2, [(3, 5), (5, 7)])})
        text = encode_database(db)
        assert text.startswith("({")
        decoded = decode_database(text)
        assert decoded.size() == 3
        assert sorted(decoded.relation("R").tuples) == [(0, 1), (1, 2)]

    def test_roundtrip_on_canonical_domain(self):
        db = Database.from_tuples(
            range(5), {"E": (2, [(0, 1), (3, 4)]), "P": (1, [(2,)])}
        )
        assert decode_database(encode_database(db)) == db

    @given(databases())
    def test_roundtrip_property(self, db):
        assert decode_database(encode_database(db)) == db

    def test_empty_relation_encodes(self):
        db = Database.from_tuples(range(2), {"E": (2, [])})
        assert decode_database(encode_database(db)) == db

    def test_nullary_relation_encodes(self):
        db = Database.from_tuples(range(2), {"T": (0, [()])})
        assert decode_database(encode_database(db)) == db

    def test_length_grows_with_data(self):
        small = Database.from_tuples(range(2), {"E": (2, [(0, 1)])})
        big = Database.from_tuples(
            range(16), {"E": (2, [(i, (i + 1) % 16) for i in range(16)])}
        )
        assert encoded_length(big) > encoded_length(small)


class TestDecodingErrors:
    def test_garbage_rejected(self):
        with pytest.raises(SchemaError):
            decode_database("hello")

    def test_trailing_garbage_rejected(self):
        db = Database.from_tuples(range(2), {})
        with pytest.raises(SchemaError):
            decode_database(encode_database(db) + "x")

    def test_out_of_range_tuple_value(self):
        with pytest.raises(SchemaError):
            decode_database("({0,1};E:1:{<11>})")

    def test_duplicate_relation_name(self):
        with pytest.raises(SchemaError):
            decode_database("({0,1};E:1:{};E:1:{})")
