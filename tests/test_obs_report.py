"""Edge-case tests for the plain-text report renderers.

The happy paths live in ``test_obs.py``; this file covers the corners —
empty tracers, single-span traces, pathological nesting depth, and a
registry mixing every metric kind.
"""

from repro.obs import (
    MetricsRegistry,
    Tracer,
    render_hot_spans,
    render_metrics,
    render_report,
    render_span_tree,
)


class FakeClock:
    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestEmptyTracer:
    def test_span_tree_placeholder(self):
        assert render_span_tree(Tracer()) == "(no spans recorded)"

    def test_hot_spans_placeholder(self):
        assert render_hot_spans(Tracer()) == "(no spans recorded)"

    def test_full_report_still_renders(self):
        text = render_report(Tracer(), MetricsRegistry())
        assert "(no spans recorded)" in text
        assert "(no metrics recorded)" in text


class TestSingleSpan:
    def test_one_line_tree(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("only", n=4):
            pass
        text = render_span_tree(tracer)
        assert text.splitlines() == ["only  1.000s  [n=4]"]

    def test_hot_spans_single_row(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("only"):
            pass
        lines = render_hot_spans(tracer).splitlines()
        # header, separator, one data row
        assert len(lines) == 3
        assert lines[2].startswith("only")


class TestDeepNesting:
    def _deep(self, depth):
        tracer = Tracer(clock=FakeClock())
        contexts = []
        for level in range(depth):
            ctx = tracer.span(f"level{level}")
            ctx.__enter__()
            contexts.append(ctx)
        for ctx in reversed(contexts):
            ctx.__exit__(None, None, None)
        return tracer

    def test_unlimited_depth_renders_every_level(self):
        depth = 40
        lines = render_span_tree(self._deep(depth)).splitlines()
        assert len(lines) == depth
        assert lines[-1].startswith("  " * (depth - 1) + f"level{depth - 1}")

    def test_max_depth_elides_below_the_limit(self):
        text = render_span_tree(self._deep(10), max_depth=2)
        assert "level2" in text
        assert "level3" not in text
        assert "below depth limit" in text

    def test_self_time_attribution_survives_depth(self):
        tracer = self._deep(30)
        rows = {r["name"]: r for r in tracer.hot_spans(k=30)}
        # each level's self time is exactly two clock ticks (enter+exit)
        # except the innermost, which owns a single tick
        assert rows["level29"]["self"] == 1.0
        assert rows["level0"]["self"] == 2.0


class TestMixedMetricKinds:
    def test_all_kinds_render(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc(7)
        registry.gauge("rows.peak").set_max(42)
        histogram = registry.histogram("latency")
        for value in (1.0, 2.0, 4.0, 8.0):
            histogram.observe(value)
        lines = dict(
            line.split(" = ", 1) for line in render_metrics(registry).splitlines()
        )
        assert lines["ops"] == "7"
        assert lines["rows.peak"] == "42"
        assert "count=4" in lines["latency"]
        assert "p50=" in lines["latency"]
        assert "p95=" in lines["latency"]
        assert "p99=" in lines["latency"]

    def test_histogram_quantiles_clamped_to_observed_range(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        histogram.observe(5.0)
        snap = histogram.snapshot()
        assert snap["p50"] == 5.0
        assert snap["p99"] == 5.0

    def test_empty_registry_placeholder(self):
        assert render_metrics(MetricsRegistry()) == "(no metrics recorded)"
