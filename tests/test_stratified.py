"""Tests for stratified Datalog (negation with the perfect-model semantics)."""

import pytest

from repro import Database
from repro.errors import SyntaxError_
from repro.datalog import parse_program, semi_naive
from repro.datalog.stratified import (
    Literal,
    StratifiedProgram,
    StratifiedRule,
    evaluate_stratified,
    parse_stratified_program,
    stratify,
)
from repro.datalog.syntax import Atom, DatalogVar


def graph_db():
    return Database.from_tuples(
        range(5),
        {
            "edge": (2, [(0, 1), (1, 2), (3, 4)]),
            "node": (1, [(i,) for i in range(5)]),
            "source": (1, [(0,)]),
        },
    )


UNREACHABLE = """
reach(X) :- source(X).
reach(X) :- edge(Y, X), reach(Y).
unreachable(X) :- node(X), not reach(X).
"""


class TestSafety:
    def test_negated_variables_must_be_positively_bound(self):
        with pytest.raises(SyntaxError_):
            StratifiedRule(
                Atom("p", (DatalogVar("X"),)),
                (Literal(Atom("q", (DatalogVar("X"),)), negated=True),),
            )

    def test_head_variables_must_be_positively_bound(self):
        with pytest.raises(SyntaxError_):
            StratifiedRule(Atom("p", (DatalogVar("X"),)), ())


class TestStratification:
    def test_layers_of_unreachable(self):
        program = parse_stratified_program(UNREACHABLE)
        layers = stratify(program)
        assert layers == [frozenset({"reach"}), frozenset({"unreachable"})]

    def test_negation_through_recursion_rejected(self):
        program = parse_stratified_program(
            "p(X) :- node(X), not q(X). q(X) :- node(X), not p(X)."
        )
        with pytest.raises(SyntaxError_):
            stratify(program)

    def test_positive_recursion_stays_in_one_stratum(self):
        program = parse_stratified_program(
            "reach(X) :- source(X). reach(X) :- edge(Y, X), reach(Y)."
        )
        assert stratify(program) == [frozenset({"reach"})]


class TestEvaluation:
    def test_unreachable_complements_reach(self):
        program = parse_stratified_program(UNREACHABLE)
        out = evaluate_stratified(program, graph_db())
        reach = {r[0] for r in out["reach"].tuples}
        unreachable = {r[0] for r in out["unreachable"].tuples}
        assert reach == {0, 1, 2}
        assert unreachable == {3, 4}
        assert reach | unreachable == set(range(5))

    def test_agrees_with_positive_engine_on_negation_free_programs(self):
        text = "reach(X) :- source(X). reach(X) :- edge(Y, X), reach(Y)."
        positive = semi_naive(parse_program(text), graph_db())
        stratified = evaluate_stratified(
            parse_stratified_program(text), graph_db()
        )
        assert positive == stratified

    def test_negation_of_edb(self):
        program = parse_stratified_program(
            "isolated(X) :- node(X), not edge(X, X)."
        )
        db = Database.from_tuples(
            range(3), {"node": (1, [(i,) for i in range(3)]), "edge": (2, [(1, 1)])}
        )
        out = evaluate_stratified(program, db)
        assert {r[0] for r in out["isolated"].tuples} == {0, 2}

    def test_three_strata(self):
        program = parse_stratified_program(
            """
            reach(X) :- source(X).
            reach(X) :- edge(Y, X), reach(Y).
            dead(X) :- node(X), not reach(X).
            alive_pair(X, Y) :- edge(X, Y), not dead(X), not dead(Y).
            """
        )
        layers = stratify(program)
        assert len(layers) == 3
        out = evaluate_stratified(program, graph_db())
        assert sorted(out["alive_pair"].tuples) == [(0, 1), (1, 2)]

    def test_matches_fo_semantics(self):
        # unreachable(x) == node(x) ∧ ¬[lfp reach](x); cross-check with
        # the bounded-variable query engine
        from repro import evaluate as fo_evaluate
        from repro.logic.parser import parse_formula

        program = parse_stratified_program(UNREACHABLE)
        out = evaluate_stratified(program, graph_db())
        phi = parse_formula(
            "node(u) & ~[lfp S(x). source(x) | "
            "exists y. (edge(y, x) & S(y))](u)"
        )
        via_fp = fo_evaluate(phi, graph_db(), ("u",)).relation
        assert via_fp == out["unreachable"]


class TestParser:
    def test_not_keyword(self):
        program = parse_stratified_program("p(X) :- q(X), not r(X).")
        assert program.rules[0].body[1].negated

    def test_plain_rules_still_parse(self):
        program = parse_stratified_program("p(X) :- q(X).")
        assert not program.rules[0].body[0].negated
