"""Targeted tests for the MonotoneSolver's warm-start soundness rules.

The warm-start decision depends on the *direction* the environment moved
and the *polarity* of each environment relation in the fixpoint body;
these tests pin each branch of that decision table.
"""

from repro.core.fp_eval import FixpointStrategy, MonotoneSolver, solve_query
from repro.core.interp import EvalStats
from repro.core.naive_eval import naive_answer
from repro.database import Database
from repro.logic.parser import parse_formula


def stats_pair(phi, db, out):
    naive_stats, monotone_stats = EvalStats(), EvalStats()
    a = solve_query(phi, db, out, strategy=FixpointStrategy.NAIVE, stats=naive_stats)
    b = solve_query(
        phi, db, out, strategy=FixpointStrategy.MONOTONE, stats=monotone_stats
    )
    expected = naive_answer(phi, db, out)
    assert a == b == expected
    return naive_stats, monotone_stats


def chain_db(n=6):
    return Database.from_tuples(
        range(n),
        {
            "E": (2, [(i, i + 1) for i in range(n - 1)]),
            "P": (1, [(0,)]),
            "L": (1, [(n - 1,)]),
        },
    )


class TestWarmStartDirections:
    def test_lfp_inside_lfp_warm_starts(self):
        # inner lfp re-solved under a growing outer env: warm-start valid
        phi = parse_formula(
            "[lfp N2(z). [lfp N1(x). P(x) | N2(x) | "
            "exists y. (E(y, x) & N1(y))](z) & "
            "(L(z) | exists y. (E(z, y) & N2(y)))](w)"
        )
        _, monotone = stats_pair(phi, chain_db(), ("w",))
        assert monotone.notes.get("warm_starts", 0) >= 1

    def test_gfp_inside_lfp_restarts(self):
        # inner gfp under a growing lfp env: previous limit is below the
        # new one, so a descending warm start would be unsound — the
        # solver must cold-start (and still agree with the reference)
        phi = parse_formula(
            "[lfp S(x). P(x) | exists y. (E(y, x) & S(y) & "
            "[gfp T(z). S(z) & (L(z) | exists w. (E(z, w) & T(w)))](y))](u)"
        )
        naive_stats, monotone = stats_pair(phi, chain_db(), ("u",))
        # correctness is the assertion that matters; cold starts recorded
        assert monotone.notes.get("cold_starts", 0) >= 1

    def test_gfp_inside_gfp_warm_starts(self):
        # shrinking env + descending inner: previous limit is above — valid
        phi = parse_formula(
            "[gfp S(x). exists y. (E(x, y) & S(y)) | "
            "[gfp T(z). S(z) & exists y. (E(z, y) & T(y))](x)](u)"
        )
        _, monotone = stats_pair(phi, chain_db(), ("u",))
        # the inner gfp may warm- or cold-start depending on convergence
        # order; the contract is agreement with the reference (asserted
        # in stats_pair) plus no crash on either path
        assert monotone.fixpoint_iterations >= 1

    def test_memory_is_per_closed_node(self):
        solver = MonotoneSolver(EvalStats())
        assert solver._memory == {}

    def test_pfp_inside_lfp_never_warm_starts(self):
        # pfp bodies need not be monotone in the environment, so the
        # solver always recomputes them; note S may only occur
        # positively (the lfp's own positivity applies inside too)
        phi = parse_formula(
            "[lfp S(x). P(x) | exists y. (E(y, x) & S(y) & "
            "[pfp X(z). S(z) & ~X(z) | X(z)](y))](u)"
        )
        db = chain_db(4)
        a = solve_query(phi, db, ("u",), strategy=FixpointStrategy.NAIVE)
        b = solve_query(phi, db, ("u",), strategy=FixpointStrategy.MONOTONE)
        assert a == b == naive_answer(phi, db, ("u",))
