"""Tests for Theorem 3.5 certificates: extraction, verification, tampering."""

import pytest
from hypothesis import given

from repro.core.alternation import (
    Cert,
    FixpointCertificate,
    LfpStep,
    alternation_answer_with_trace,
)
from repro.core.certificates import (
    certificate_size,
    extract_membership,
    extract_non_membership,
    verify_membership,
    verify_non_membership,
)
from repro.core.naive_eval import naive_answer
from repro.database import Relation
from repro.errors import CertificateError
from repro.logic.parser import parse_formula
from repro.logic.variables import free_variables
from repro.workloads.graphs import labeled_graph, random_graph

from tests.conftest import databases, fp_formulas

ALTERNATING = parse_formula(
    "[gfp S(x). [lfp T(z). forall y. (~E(z, y) | S(y) | (P(y) & T(y)))](x)](u)"
)

# "on every infinite path, P holds infinitely often" — a ν/μ alternation
# whose greatest fixpoint is a proper subset on the fixture below
FAIR = parse_formula(
    "[gfp S(x). [lfp T(z). forall y. (~E(z, y) | (P(y) & S(y)) | T(y))](x)](u)"
)


class TestExtraction:
    def test_member_gets_certificate(self, tiny_graph):
        ans = naive_answer(ALTERNATING, tiny_graph, ("u",))
        member = next(iter(sorted(ans.tuples)))
        cert = extract_membership(ALTERNATING, tiny_graph, ("u",), member)
        assert cert is not None
        assert cert.row == member

    def test_non_member_gets_none(self, tiny_graph):
        ans = naive_answer(ALTERNATING, tiny_graph, ("u",))
        non_members = [
            (v,) for v in range(tiny_graph.size()) if (v,) not in ans
        ]
        for row in non_members:
            assert extract_membership(ALTERNATING, tiny_graph, ("u",), row) is None

    def test_certificate_size_is_reasonable(self, tiny_graph):
        ans = naive_answer(ALTERNATING, tiny_graph, ("u",))
        member = next(iter(sorted(ans.tuples)))
        cert = extract_membership(ALTERNATING, tiny_graph, ("u",), member)
        n, k = tiny_graph.size(), 3
        # a loose polynomial envelope: l * n^k with l = 2 fixpoints, plus slack
        assert certificate_size(cert) <= 4 * n**k


class TestVerification:
    def test_extracted_certificates_verify(self, tiny_graph):
        ans = naive_answer(ALTERNATING, tiny_graph, ("u",))
        for member in sorted(ans.tuples):
            cert = extract_membership(ALTERNATING, tiny_graph, ("u",), member)
            assert verify_membership(cert, ALTERNATING, tiny_graph) is True

    @given(fp_formulas(), databases(max_size=3))
    def test_property_extract_then_verify(self, phi, db):
        out = sorted(free_variables(phi))
        answer = naive_answer(phi, db, out)
        rows = sorted(answer.tuples)[:2]
        for row in rows:
            cert = extract_membership(phi, db, out, row)
            assert cert is not None
            assert verify_membership(cert, phi, db)

    def test_wrong_query_rejected(self, tiny_graph):
        ans = naive_answer(ALTERNATING, tiny_graph, ("u",))
        member = next(iter(sorted(ans.tuples)))
        cert = extract_membership(ALTERNATING, tiny_graph, ("u",), member)
        other = parse_formula("[lfp S(x). P(x) | S(x)](u)")
        with pytest.raises(CertificateError):
            verify_membership(cert, other, tiny_graph)


class TestTampering:
    @pytest.fixture
    def partial_graph(self):
        """A graph where FAIR holds at some states but not all.

        From 0 the path 0→1→1→... eventually avoids P forever, so FAIR
        fails at 0 and 1; the dead-end chain 2→3 satisfies it vacuously.
        """
        from repro.database import Database

        return Database.from_tuples(
            range(4),
            {
                "E": (2, [(0, 1), (1, 1), (2, 3)]),
                "P": (1, [(0,)]),
                "Q": (1, []),
            },
        )

    def _certificate(self, db):
        ans = naive_answer(FAIR, db, ("u",))
        assert ans and len(ans) < db.size(), "fixture must be non-trivial"
        member = next(iter(sorted(ans.tuples)))
        return extract_membership(FAIR, db, ("u",), member)

    def test_inflated_gfp_guess_rejected(self, partial_graph):
        tiny_graph = partial_graph
        cert = self._certificate(tiny_graph)
        fixcert = cert.certificate
        top = fixcert.top_certs[0]
        assert fixcert.query.nodes[top.node_index].kind == "gfp"
        universe = Relation(
            top.value.arity, tiny_graph.domain.tuples(top.value.arity)
        )
        if universe == top.value:
            pytest.skip("guess already full; nothing to inflate")
        tampered_top = Cert(
            top.node_index, universe, children=top.children, steps=top.steps
        )
        tampered = type(cert)(
            cert.output_vars,
            cert.row,
            FixpointCertificate(fixcert.query, (tampered_top,)),
        )
        with pytest.raises(CertificateError):
            verify_membership(tampered, FAIR, tiny_graph)

    def test_false_tuple_claim_rejected(self, partial_graph):
        cert = self._certificate(partial_graph)
        ans = naive_answer(FAIR, partial_graph, ("u",))
        fake_rows = [
            (v,) for v in range(partial_graph.size()) if (v,) not in ans
        ]
        assert fake_rows
        tampered = type(cert)(cert.output_vars, fake_rows[0], cert.certificate)
        with pytest.raises(CertificateError):
            verify_membership(tampered, FAIR, partial_graph)

    def test_non_monotone_chain_rejected(self, tiny_graph):
        phi = parse_formula("[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)")
        ans = naive_answer(phi, tiny_graph, ("u",))
        member = next(iter(sorted(ans.tuples)))
        cert = extract_membership(phi, tiny_graph, ("u",), member)
        top = cert.certificate.top_certs[0]
        if len(top.steps) < 2:
            pytest.skip("chain too short to scramble")
        scrambled_steps = (top.steps[-1],) + top.steps[:-1]
        tampered_top = Cert(
            top.node_index, top.value, steps=scrambled_steps
        )
        tampered = type(cert)(
            cert.output_vars,
            cert.row,
            FixpointCertificate(cert.certificate.query, (tampered_top,)),
        )
        with pytest.raises(CertificateError):
            verify_membership(tampered, phi, tiny_graph)

    def test_overgrown_lfp_step_rejected(self, tiny_graph):
        phi = parse_formula("[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)")
        ans = naive_answer(phi, tiny_graph, ("u",))
        member = next(iter(sorted(ans.tuples)))
        cert = extract_membership(phi, tiny_graph, ("u",), member)
        top = cert.certificate.top_certs[0]
        universe = Relation(1, tiny_graph.domain.tuples(1))
        if top.steps and top.steps[0].value == universe:
            pytest.skip("first step already full")
        cheat_steps = (LfpStep(universe, ()),)
        tampered_top = Cert(top.node_index, universe, steps=cheat_steps)
        tampered = type(cert)(
            cert.output_vars,
            cert.row,
            FixpointCertificate(cert.certificate.query, (tampered_top,)),
        )
        with pytest.raises(CertificateError):
            verify_membership(tampered, phi, tiny_graph)


class TestCoNP:
    def test_non_membership_certified_via_negation(self):
        from repro.database import Database

        db = Database.from_tuples(
            range(4), {"E": (2, [(0, 1), (1, 2)]), "P": (1, [(0,)])}
        )
        phi = parse_formula("[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)")
        ans = naive_answer(phi, db, ("u",))
        outside = [(v,) for v in range(db.size()) if (v,) not in ans]
        assert outside
        cert = extract_non_membership(phi, db, ("u",), outside[0])
        assert cert is not None
        assert verify_non_membership(cert, phi, db)

    def test_membership_and_non_membership_partition(self, tiny_graph):
        phi = ALTERNATING
        for v in range(tiny_graph.size()):
            m = extract_membership(phi, tiny_graph, ("u",), (v,))
            nm = extract_non_membership(phi, tiny_graph, ("u",), (v,))
            assert (m is None) != (nm is None)
