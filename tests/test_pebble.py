"""Tests for the k-pebble game (expressive power of FO^k)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.naive_eval import holds
from repro.database import Database
from repro.errors import EvaluationError
from repro.games import duplicator_wins, k_equivalent, pebble_game_winning_positions
from repro.workloads.formulas import random_fo_formula
from repro.logic.variables import free_variables


def complete_graph(n: int) -> Database:
    return Database.from_tuples(
        range(n), {"E": (2, [(i, j) for i in range(n) for j in range(n) if i != j])}
    )


def directed_path(n: int) -> Database:
    return Database.from_tuples(
        range(n), {"E": (2, [(i, i + 1) for i in range(n - 1)])}
    )


class TestKnownEquivalences:
    def test_structure_is_equivalent_to_itself(self):
        g = directed_path(3)
        assert k_equivalent(g, g, 2)

    def test_large_complete_graphs_are_k_equivalent(self):
        # with only k pebbles, K_m and K_n look alike once m, n >= k
        assert k_equivalent(complete_graph(3), complete_graph(4), 2)
        assert k_equivalent(complete_graph(4), complete_graph(5), 3)

    def test_small_complete_graphs_are_separated(self):
        # K_1 vs K_2: ∃x∃y E(x,y) needs only 2 pebbles
        assert not k_equivalent(complete_graph(1), complete_graph(2), 2)

    def test_missing_edge_detected_with_two_pebbles(self):
        k4 = complete_graph(4)
        broken = Database.from_tuples(
            range(4),
            {
                "E": (
                    2,
                    [
                        (i, j)
                        for i in range(4)
                        for j in range(4)
                        if i != j and (i, j) != (0, 1)
                    ],
                )
            },
        )
        assert not k_equivalent(k4, broken, 2)

    def test_unary_label_counts_matter(self):
        one = Database.from_tuples(range(3), {"P": (1, [(0,)])})
        two = Database.from_tuples(range(3), {"P": (1, [(0,), (1,)])})
        # 2 pebbles can count up to 2: |P|=1 vs |P|=2 is separable
        assert not k_equivalent(one, two, 2)

    def test_path_lengths_separated_with_two_pebbles(self):
        # the endpoint of a short path has no successor chain: P_2 vs P_3
        assert not k_equivalent(directed_path(2), directed_path(3), 2)

    def test_empty_structures(self):
        e1 = Database.from_tuples([], {"E": (2, [])})
        e2 = Database.from_tuples([], {"E": (2, [])})
        assert k_equivalent(e1, e2, 2)
        assert not k_equivalent(e1, directed_path(2), 2)


class TestGameMechanics:
    def test_schema_mismatch_rejected(self):
        a = Database.from_tuples(range(2), {"E": (2, [])})
        b = Database.from_tuples(range(2), {"R": (2, [])})
        with pytest.raises(EvaluationError):
            k_equivalent(a, b, 2)

    def test_zero_pebbles_rejected(self):
        g = directed_path(2)
        with pytest.raises(EvaluationError):
            k_equivalent(g, g, 0)

    def test_bad_start_position_rejected(self):
        g = directed_path(2)
        with pytest.raises(EvaluationError):
            duplicator_wins(g, g, 2, start=(None,))

    def test_winning_positions_contain_identity_placements(self):
        g = directed_path(3)
        winning = pebble_game_winning_positions(g, g, 2)
        assert ((0, 0), (2, 2)) in winning
        assert ((0, 0), None) in winning

    def test_non_iso_positions_lose_immediately(self):
        g = directed_path(3)
        winning = pebble_game_winning_positions(g, g, 2)
        # pebbles on (0↦1, 1↦0) break the edge relation
        assert ((0, 1), (1, 0)) not in winning


class TestFundamentalTheorem:
    """k-equivalence implies agreement on FO^k sentences."""

    @given(st.integers(0, 30), st.integers(0, 30))
    @settings(max_examples=12, deadline=None)
    def test_equivalent_structures_agree_on_random_sentences(
        self, seed_a, seed_b
    ):
        # complete graphs of sizes >= k are k-equivalent; every random
        # FO^2 sentence must agree on them
        a = complete_graph(3)
        b = complete_graph(4)
        assert k_equivalent(a, b, 2)
        phi = random_fo_formula([("E", 2)], ["x", "y"], depth=4, seed=seed_a)
        # close the formula existentially over its free variables
        from repro.logic.builders import exists

        sentence = exists(sorted(free_variables(phi)), phi)
        assert holds(sentence, a) == holds(sentence, b), sentence

    def test_inequivalent_structures_have_a_separating_sentence(self):
        from repro.logic.parser import parse_formula

        short, long = directed_path(2), directed_path(3)
        assert not k_equivalent(short, long, 3)
        # an explicit FO^3 separator: a path of length 2 exists
        separator = parse_formula(
            "exists x. exists y. (E(x, y) & exists x. E(y, x))"
        )
        assert not holds(separator, short)
        assert holds(separator, long)
