"""Tests for the complexity measurement harness."""

import math

import pytest

from repro.complexity import (
    TABLE1_ROWS,
    TABLE2_ROWS,
    TABLE3_ROWS,
    classify_growth,
    fit_exponential,
    fit_polynomial,
    render_table,
    run_sweep,
)
from repro.complexity.fit import looks_exponential, looks_polynomial


class TestFits:
    NS = [4, 8, 16, 32, 64]

    def test_polynomial_degree_recovered(self):
        ys = [n**3 for n in self.NS]
        fit = fit_polynomial(self.NS, ys)
        assert abs(fit.coefficient - 3.0) < 1e-9
        assert fit.residual < 1e-12

    def test_exponential_base_recovered(self):
        ys = [2.0**n for n in self.NS]
        fit = fit_exponential(self.NS, ys)
        assert abs(fit.base - 2.0) < 1e-9

    def test_classifier_separates(self):
        poly = [5 * n**2 for n in self.NS]
        expo = [1.5**n for n in self.NS]
        assert classify_growth(self.NS, poly)[0] == "polynomial"
        assert classify_growth(self.NS, expo)[0] == "exponential"

    def test_classifier_with_noise(self):
        import random

        rng = random.Random(0)
        poly = [n**2 * (1 + 0.1 * rng.random()) for n in self.NS]
        assert looks_polynomial(self.NS, poly)
        expo = [2**n * (1 + 0.1 * rng.random()) for n in self.NS]
        assert looks_exponential(self.NS, expo)

    def test_looks_polynomial_rejects_huge_degree(self):
        ys = [n**12 for n in self.NS]
        assert not looks_polynomial(self.NS, ys, max_degree=8)

    def test_degenerate_fits_rejected(self):
        with pytest.raises(ValueError):
            fit_polynomial([2], [4])
        with pytest.raises(ValueError):
            fit_polynomial([2, 2], [4, 4])

    def test_zero_values_clamped(self):
        fit = fit_polynomial([1, 2, 4], [0, 0, 0])
        assert math.isfinite(fit.coefficient)


class TestSweep:
    def test_run_sweep_counters(self):
        def workload(n):
            return {"work": n * n}

        result = run_sweep("square", [1, 2, 3], workload)
        assert result.parameters() == [1, 2, 3]
        assert result.counter_series("work") == [1, 4, 9]
        assert all(s >= 0 for s in result.seconds())

    def test_missing_counter_raises(self):
        result = run_sweep("none", [1], lambda n: None)
        with pytest.raises(KeyError):
            result.points[0].counter("missing")

    def test_missing_counter_default(self):
        result = run_sweep("none", [1], lambda n: None)
        assert result.points[0].counter("missing", 0.0) == 0.0
        assert result.counter_series("missing", default=-1.0) == [-1.0]

    def test_format_rows(self):
        result = run_sweep("fmt", [1, 2], lambda n: {"c": n})
        text = result.format_rows(["c"])
        assert "param" in text and len(text.splitlines()) == 3

    def test_format_rows_tolerates_missing_counters(self):
        # points without the requested counter render "-", not KeyError
        result = run_sweep(
            "mixed", [1, 2], lambda n: {"c": n} if n == 1 else None
        )
        text = result.format_rows(["c"])
        lines = text.splitlines()
        assert lines[1].split("\t")[-1] == "1"
        assert lines[2].split("\t")[-1] == "-"

    def test_tracer_factory_records_per_point_traces(self):
        from repro.obs import Tracer

        def workload(n, tracer):
            with tracer.span("work", n=n):
                pass
            return {"c": n}

        result = run_sweep(
            "traced", [1, 2], workload, tracer_factory=Tracer
        )
        for point in result.points:
            assert point.trace is not None
            # warmup ran against the no-op tracer: exactly one recorded span
            assert [s.name for s in point.trace.spans] == ["work"]
        assert result.counter_series("c") == [1, 2]

    def test_no_tracer_factory_leaves_trace_unset(self):
        result = run_sweep("plain", [1], lambda n: {})
        assert result.points[0].trace is None

    def test_repetitions_take_minimum(self):
        calls = []

        def workload(n):
            calls.append(n)
            return {}

        run_sweep("rep", [5], workload, repetitions=3, warmup=True)
        assert len(calls) == 4  # 1 warmup + 3 timed


class TestTables:
    def test_all_rows_present(self):
        assert [r.language for r in TABLE1_ROWS] == ["FO", "FP", "ESO", "PFP"]
        assert [r.language for r in TABLE2_ROWS] == ["FO", "FP", "ESO", "PFP"]
        assert [r.language for r in TABLE3_ROWS] == ["FO", "FP", "ESO", "PFP"]

    def test_paper_claims_recorded(self):
        fp_row = TABLE2_ROWS[1]
        assert any("NP ∩ co-NP" in claim for _, claim in fp_row.columns)
        fo_row = TABLE3_ROWS[0]
        assert any("ALOGTIME" in claim for _, claim in fo_row.columns)

    def test_render(self):
        text = render_table("Table 2", TABLE2_ROWS)
        assert "Table 2" in text
        assert "FO" in text and "witnessed by" in text
        plain = render_table("T", TABLE2_ROWS, with_witness=False)
        assert "witnessed" not in plain


class TestSweepFailureCapture:
    """run_sweep records timeouts/errors per point and keeps going."""

    @staticmethod
    def _flaky(n):
        from repro.errors import DeadlineExceeded

        if n == 2:
            raise DeadlineExceeded("deadline of 1s exceeded", kind="deadline")
        if n == 3:
            raise ValueError("boom")
        return {"work": n * 10}

    def test_outcomes_recorded_and_sweep_continues(self):
        result = run_sweep("flaky", [1, 2, 3, 4], self._flaky, warmup=False)
        outcomes = [p.outcome for p in result.points]
        assert outcomes == ["ok", "timeout", "error", "ok"]
        assert result.points[1].error.startswith("deadline")
        assert result.points[2].error == "boom"
        assert [p.parameter for p in result.failures()] == [2.0, 3.0]
        # the healthy points still carry their counters
        assert result.points[0].counter("work") == 10
        assert result.points[3].counter("work") == 40

    def test_warmup_failure_counts_against_the_point(self):
        calls = []

        def workload(n):
            calls.append(n)
            raise RuntimeError("always")

        result = run_sweep("w", [1], workload, warmup=True)
        assert result.points[0].outcome == "error"
        assert calls == [1]  # the timed run is not attempted after a warmup failure

    def test_capture_failures_off_restores_fail_fast(self):
        with pytest.raises(ValueError):
            run_sweep("strict", [3], self._flaky, warmup=False,
                      capture_failures=False)

    def test_format_rows_shows_outcome_column_only_on_failure(self):
        healthy = run_sweep("ok", [1, 4], self._flaky, warmup=False)
        assert "outcome" not in healthy.format_rows(["work"])
        mixed = run_sweep("mixed", [1, 2], self._flaky, warmup=False)
        rendered = mixed.format_rows(["work"])
        lines = rendered.splitlines()
        assert lines[0].split("\t") == ["param", "seconds", "work", "outcome"]
        assert lines[1].endswith("ok")
        assert lines[2].split("\t")[-2:] == ["-", "timeout"]

    def test_guarded_workload_times_out_in_sweep(self):
        # end-to-end: a per-point budget inside the workload surfaces as
        # outcome="timeout" without losing the rest of the table
        from repro.core.engine import EvalOptions, evaluate
        from repro.guard import Budget
        from repro.logic.parser import parse_formula
        from repro.workloads.graphs import path_graph

        phi = parse_formula(
            "[lfp S(x). (~ exists y. E(y, x)) | exists y. (E(y, x) & S(y))](u)"
        )

        def workload(n):
            n = int(n)
            db = path_graph(5)
            budget = Budget(max_iterations=(2 if n == 7 else 10_000))
            result = evaluate(phi, db, ("u",), EvalOptions(budget=budget))
            return {"rows": float(len(result.relation))}

        result = run_sweep("guarded", [5, 7, 9], workload, warmup=False)
        assert [p.outcome for p in result.points] == ["ok", "timeout", "ok"]


class TestPoolLifecycle:
    """The shared pool helpers: never hang on interrupt (the
    ``repro sweep --jobs N`` Ctrl-C fix, reused by repro.serve)."""

    def test_pool_scope_clean_path_waits_for_results(self):
        from repro.complexity.measure import pool_scope

        with pool_scope(1) as pool:
            future = pool.submit(sum, (1, 2, 3))
        assert future.result(timeout=0) == 6  # done before scope exit

    def test_pool_scope_cancels_queued_work_on_exception(self):
        import time

        from repro.complexity.measure import pool_scope

        queued = []
        started = time.monotonic()
        with pytest.raises(KeyboardInterrupt):
            with pool_scope(1) as pool:
                pool.submit(time.sleep, 0.5)  # occupies the only worker
                queued = [pool.submit(time.sleep, 10.0) for _ in range(4)]
                raise KeyboardInterrupt
        # the scope must not have blocked on the 10s sleeps
        assert time.monotonic() - started < 5.0
        # cancellation happens on the executor's management thread,
        # shortly after shutdown(wait=False) returns
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if any(f.cancelled() for f in queued):
                break
            time.sleep(0.01)
        assert any(f.cancelled() for f in queued)

    def test_shutdown_pool_nongraceful_returns_immediately(self):
        import time
        from concurrent.futures import ProcessPoolExecutor

        from repro.complexity.measure import shutdown_pool

        pool = ProcessPoolExecutor(max_workers=1)
        pool.submit(time.sleep, 0.2)
        # deep enough that some stay in the executor's pending dict
        # (the first couple move to the call queue and can't cancel)
        queued = [pool.submit(time.sleep, 10.0) for _ in range(4)]
        started = time.monotonic()
        shutdown_pool(pool, graceful=False)
        assert time.monotonic() - started < 5.0
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if any(f.cancelled() for f in queued):
                break
            time.sleep(0.01)
        assert any(f.cancelled() for f in queued)
