"""Backend-differential harness: packed kernel vs sparse reference.

The packed ``n^k``-bit kernel (``src/repro/kernel/``) is only shippable
because this suite pins it to the sparse reference representation:
for a corpus of FO^k / FP^k / PFP^k queries over seeded random
databases, evaluating with ``EvalOptions(backend="packed")`` must
produce exactly the relations — and exactly the representation-
independent stats counters — that ``backend="sparse"`` produces.
Counters matching is the stronger half of the contract: it proves the
backend changed the *representation* of the work, never the work.

The CLI path is covered too (``--backend`` must be output-identical),
and the packed backend's width cap must fail loudly with a message
pointing back at the sparse backend.
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import EvalOptions, evaluate
from repro.core.fp_eval import FixpointStrategy
from repro.database.database import Database
from repro.errors import EvaluationError
from repro.kernel import PackedBackend, resolve_backend
from repro.logic.parser import parse_formula

#: (query text, output variables) over the standard E/P/Q test schema.
#: FO^k: quantifiers, negation, reuse, sentences.
FO_CORPUS = [
    ("exists y. E(x, y)", ("x",)),
    ("forall y. (~E(x, y) | P(y))", ("x",)),
    ("exists y. (E(x, y) & exists x. (E(y, x) & Q(x)))", ("x",)),
    ("P(x) & ~Q(x)", ("x",)),
    ("x = y | E(x, y)", ("x", "y")),
    ("exists x. exists y. (E(x, y) & E(y, x))", ()),
    ("forall x. (P(x) | Q(x) | exists y. E(x, y))", ()),
    ("E(x, x)", ("x",)),
]

#: FP^k: ascending, descending, nested fixpoints.
FP_CORPUS = [
    (
        "[lfp S(x, y). E(x, y) | exists z. (E(x, z) & S(z, y))](u, v)",
        ("u", "v"),
    ),
    ("[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)", ("u",)),
    ("[gfp S(x). P(x) & exists y. (E(x, y) & S(y))](u)", ("u",)),
    (
        "[lfp T(x). [lfp S(y). P(y) | exists z. (E(z, y) & S(z))](x) "
        "| exists y. (E(x, y) & T(y))](u)",
        ("u",),
    ),
]

#: PFP^k: convergent, oscillating, and negated-recursion bodies.
PFP_CORPUS = [
    ("[pfp X(x). P(x) | exists y. (E(y, x) & X(y))](u)", ("u",)),
    ("[pfp X(x). ~X(x)](u)", ("u",)),
    ("[pfp X(x). Q(x) | exists y. (E(x, y) & ~X(y))](u)", ("u",)),
]


def _random_db(rng: random.Random, n: int) -> Database:
    return Database.from_tuples(
        range(n),
        {
            "E": (
                2,
                [
                    (i, j)
                    for i in range(n)
                    for j in range(n)
                    if rng.random() < 0.4
                ],
            ),
            "P": (1, [(i,) for i in range(n) if rng.random() < 0.5]),
            "Q": (1, [(i,) for i in range(n) if rng.random() < 0.4]),
        },
    )


def _both_backends(formula, db, out, **kwargs):
    """Evaluate on both backends; returns (sparse result, packed result)
    after asserting relation and counter equality."""
    sparse = evaluate(
        formula, db, out, EvalOptions(backend="sparse", **kwargs)
    )
    packed = evaluate(
        formula, db, out, EvalOptions(backend="packed", **kwargs)
    )
    assert packed.relation == sparse.relation
    assert sorted(packed.relation.tuples) == sorted(sparse.relation.tuples)
    # the stats counters are representation-independent by contract
    assert packed.stats.as_dict() == sparse.stats.as_dict()
    return sparse, packed


class TestCorpusEquivalence:
    @pytest.mark.parametrize("text,out", FO_CORPUS, ids=lambda v: str(v))
    def test_fo(self, text, out):
        formula = parse_formula(text)
        rng = random.Random(text)  # str seeds are process-stable
        for _ in range(3):
            _both_backends(formula, _random_db(rng, rng.randint(2, 5)), out)

    @pytest.mark.parametrize(
        "strategy",
        [
            FixpointStrategy.NAIVE,
            FixpointStrategy.MONOTONE,
            FixpointStrategy.SEMINAIVE,
        ],
    )
    @pytest.mark.parametrize("text,out", FP_CORPUS, ids=lambda v: str(v))
    def test_fp(self, text, out, strategy):
        formula = parse_formula(text)
        rng = random.Random(text)  # str seeds are process-stable
        for _ in range(2):
            _both_backends(
                formula,
                _random_db(rng, rng.randint(2, 4)),
                out,
                strategy=strategy,
            )

    @pytest.mark.parametrize("text,out", PFP_CORPUS, ids=lambda v: str(v))
    @pytest.mark.parametrize("strict", [False, True])
    def test_pfp(self, text, out, strict):
        formula = parse_formula(text)
        rng = random.Random(text)  # str seeds are process-stable
        for _ in range(2):
            _both_backends(
                formula,
                _random_db(rng, rng.randint(2, 4)),
                out,
                strict_pfp_space=strict,
                check_positive=False,
            )

    def test_fp_with_subquery_cache(self):
        """The cache key embeds the backend name, so a shared cache never
        leaks one representation's tables into the other's evaluation."""
        from repro.perf import SubqueryCache

        text, out = FP_CORPUS[0]
        formula = parse_formula(text)
        db = _random_db(random.Random(5), 4)
        cache = SubqueryCache()
        for _ in range(2):  # second pass hits the cache on both backends
            _both_backends(
                formula,
                db,
                out,
                strategy=FixpointStrategy.SEMINAIVE,
                subquery_cache=cache,
            )
        assert cache.hits >= 1


class TestCliBackendFlag:
    def test_eval_outputs_identical(self, tmp_path, capsys):
        from repro.cli import main
        from repro.database.encoding import encode_database

        db_path = tmp_path / "graph.db"
        db_path.write_text(
            encode_database(_random_db(random.Random(11), 5))
        )
        outputs = {}
        for backend in ("sparse", "packed"):
            assert (
                main(
                    [
                        "eval",
                        "--db",
                        str(db_path),
                        "--query",
                        FP_CORPUS[0][0],
                        "--out",
                        "u",
                        "v",
                        "--backend",
                        backend,
                        "--stats",
                    ]
                )
                == 0
            )
            captured = capsys.readouterr()
            outputs[backend] = (captured.out, captured.err)
        assert outputs["sparse"] == outputs["packed"]


class TestBackendResolution:
    def test_env_variable_selects_packed(self, tiny_graph, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "packed")
        backend = resolve_backend(None, tiny_graph.domain)
        assert backend.name == "packed"

    def test_default_is_sparse(self, tiny_graph, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_BACKEND", raising=False)
        assert resolve_backend(None, tiny_graph.domain).name == "sparse"

    def test_unknown_backend_rejected(self, tiny_graph):
        with pytest.raises(EvaluationError, match="unknown table backend"):
            resolve_backend("dense", tiny_graph.domain)

    def test_width_cap_points_at_sparse(self, tiny_graph):
        """Past the mask-width cap the packed backend refuses loudly
        instead of allocating gigabit integers."""
        backend = PackedBackend(tiny_graph.domain, max_bits=8)
        with pytest.raises(EvaluationError, match="sparse"):
            evaluate(
                parse_formula("E(x, y)"),
                tiny_graph,
                ("x", "y"),
                EvalOptions(backend=backend),
            )
