"""Property-based tests for the performance layer (hypothesis, seeded).

Two claims that must hold on *random* inputs, not just the curated
differential corpus:

* semi-naive fixpoint evaluation equals naive iteration (and the
  brute-force reference) on random FP formulas, and across all four
  fixpoint operators on explicit ascending/descending/inflationary/
  partial queries;
* a shared subquery cache never produces a stale hit: interleaving
  evaluations that mutate the relation environment — different
  databases, updated relations, changing ``rel_env`` bindings — always
  yields the same tables as evaluating cache-free.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.engine import EvalOptions, evaluate
from repro.core.fo_eval import BoundedEvaluator
from repro.core.fp_eval import FixpointStrategy, solve_query
from repro.core.interp import EvalStats
from repro.core.naive_eval import naive_answer
from repro.database.database import Database
from repro.database.relation import Relation
from repro.logic.parser import parse_formula
from repro.logic.variables import free_variables
from repro.perf import SubqueryCache

from tests.conftest import databases, fo_formulas, fp_formulas


@given(databases(), fp_formulas())
def test_seminaive_equals_naive_on_random_fp(db, formula):
    out = tuple(sorted(free_variables(formula)))
    naive = solve_query(
        formula, db, out, strategy=FixpointStrategy.NAIVE
    )
    semi = solve_query(
        formula, db, out, strategy=FixpointStrategy.SEMINAIVE
    )
    assert semi == naive == naive_answer(formula, db, out)


#: Explicit single-operator queries — one per fixpoint flavor, so the
#: semi-naive path (lfp) and each naive fallback (gfp/ifp/pfp) is hit.
OPERATOR_QUERIES = [
    "[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)",
    "[gfp S(x). P(x) & exists y. (E(x, y) & S(y))](u)",
    "[ifp S(x). P(x) | exists y. (E(y, x) & S(y))](u)",
    "[pfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)",
]


@pytest.mark.parametrize("text", OPERATOR_QUERIES)
@given(db=databases(min_size=2))
def test_seminaive_equals_naive_per_operator(text, db):
    formula = parse_formula(text)
    naive = solve_query(
        formula, db, ("u",), strategy=FixpointStrategy.NAIVE,
        require_positive=False,
    )
    stats = EvalStats()
    semi = solve_query(
        formula, db, ("u",), strategy=FixpointStrategy.SEMINAIVE,
        require_positive=False, stats=stats,
    )
    assert semi == naive == naive_answer(formula, db, ("u",))


@given(databases(), databases(), fo_formulas())
def test_shared_cache_never_serves_stale_tables(db_a, db_b, formula):
    """Interleave evaluations over two databases and a mutated variant of
    the first, all through one shared cache; every answer must equal the
    cache-free evaluation of the same (formula, database) pair."""
    out = tuple(sorted(free_variables(formula)))
    # a third environment: db_a with its edge relation inverted, the
    # classic stale-cache trap (same formula, same domain, changed rows)
    flipped = db_a.with_relation(
        "E",
        Relation(
            2,
            [
                (i, j)
                for i in db_a.domain
                for j in db_a.domain
                if (j, i) in db_a.relation("E")
            ],
        ),
    )
    cache = SubqueryCache()
    for db in (db_a, db_b, flipped, db_a, flipped, db_b):
        cached = evaluate(
            formula, db, out, EvalOptions(subquery_cache=cache)
        ).relation
        plain = evaluate(formula, db, out, EvalOptions()).relation
        assert cached == plain


@given(databases(min_size=2), fo_formulas())
def test_cache_correct_under_rel_env_mutation(db, formula):
    """The same evaluator, the same cache, but the free relation ``P``
    rebound between calls through ``rel_env`` — the binding is part of
    the cache key, so answers must track it exactly."""
    out = tuple(sorted(free_variables(formula)))
    cache = SubqueryCache()
    evaluator = BoundedEvaluator(db, subquery_cache=cache)
    bindings = [
        None,
        {"P": Relation(1, [(v,) for v in db.domain])},
        {"P": Relation(1, [])},
        None,
    ]
    for rel_env in bindings:
        got = evaluator.answer(formula, out, rel_env=rel_env)
        expected = naive_answer(formula, db, out, rel_env=rel_env)
        assert got == expected, rel_env
