"""Property-based laws of the VarTable algebra (hypothesis)."""

from hypothesis import given, strategies as st

from repro.core.interp import VarTable
from repro.database.domain import Domain

DOMAIN = Domain.range(3)
VARS = ("x", "y", "z")


@st.composite
def tables(draw, variables=None):
    if variables is None:
        count = draw(st.integers(0, 3))
        variables = VARS[:count]
    import itertools

    universe = list(itertools.product(DOMAIN.values, repeat=len(variables)))
    rows = draw(st.sets(st.sampled_from(universe))) if universe else set()
    return VarTable(tuple(variables), rows)


class TestBooleanLaws:
    @given(tables())
    def test_complement_is_involutive(self, t):
        assert t.complement(DOMAIN).complement(DOMAIN) == t

    @given(tables(), tables())
    def test_de_morgan(self, a, b):
        lhs = a.union(b, DOMAIN).complement(DOMAIN)
        rhs = a.complement(DOMAIN).intersect(b.complement(DOMAIN), DOMAIN)
        assert lhs == rhs

    @given(tables(), tables())
    def test_union_commutes(self, a, b):
        assert a.union(b, DOMAIN) == b.union(a, DOMAIN)

    @given(tables(), tables(), tables())
    def test_union_associates(self, a, b, c):
        assert a.union(b, DOMAIN).union(c, DOMAIN) == a.union(
            b.union(c, DOMAIN), DOMAIN
        )

    @given(tables())
    def test_union_idempotent(self, t):
        assert t.union(t, DOMAIN) == t

    @given(tables(), tables())
    def test_intersect_via_join_on_same_schema(self, a, b):
        full = a.cylindrify(("x", "y", "z"), DOMAIN)
        other = b.cylindrify(("x", "y", "z"), DOMAIN)
        assert full.join(other) == full.intersect(other, DOMAIN)


class TestJoinLaws:
    @given(tables(), tables())
    def test_join_commutes(self, a, b):
        assert a.join(b) == b.join(a)

    @given(tables(), tables(), tables())
    def test_join_associates(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(tables())
    def test_tautology_is_join_identity(self, t):
        assert t.join(VarTable.tautology()) == t

    @given(tables())
    def test_contradiction_annihilates(self, t):
        joined = t.join(VarTable.contradiction())
        assert joined.is_empty()

    @given(tables())
    def test_join_with_full_is_cylindrification(self, t):
        full = VarTable.full(("x", "y", "z"), DOMAIN)
        assert t.join(full) == t.cylindrify(("x", "y", "z"), DOMAIN)


class TestQuantifierLaws:
    @given(tables(variables=("x", "y")))
    def test_exists_forall_duality(self, t):
        # ∀y φ = ¬∃y ¬φ
        direct = t.forall_out("y", DOMAIN)
        dual = t.complement(DOMAIN).project_out("y").complement(DOMAIN)
        assert direct == dual

    @given(tables(variables=("x", "y")))
    def test_project_then_cylindrify_grows(self, t):
        # φ ⊆ ∃y φ (as a cylinder)
        projected = t.project_out("y").cylindrify(("x", "y"), DOMAIN)
        assert t.rows <= projected.rows

    @given(tables(variables=("x", "y")))
    def test_forall_implies_exists_on_nonempty_domain(self, t):
        assert t.forall_out("y", DOMAIN).rows <= t.project_out("y").rows

    @given(tables(variables=("x", "y")), tables(variables=("x",)))
    def test_projection_distributes_over_union(self, a, b):
        wide_b = b.cylindrify(("x", "y"), DOMAIN)
        lhs = a.union(wide_b, DOMAIN).project_out("y")
        rhs = a.project_out("y").union(wide_b.project_out("y"), DOMAIN)
        assert lhs == rhs


class TestRenameLaws:
    @given(tables(variables=("x", "y")))
    def test_rename_roundtrip(self, t):
        renamed = t.rename({"x": "w"}).rename({"w": "x"})
        assert renamed == t

    @given(tables(variables=("x", "y")))
    def test_rename_preserves_cardinality(self, t):
        assert len(t.rename({"x": "a", "y": "b"})) == len(t)


class TestConstructionContract:
    """The public constructor validates; ``_trusted`` is fast but must
    only ever see canonical input — these regressions pin both halves."""

    def test_duplicate_columns_rejected(self):
        import pytest

        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError, match="duplicate"):
            VarTable(("x", "x"), [(0, 0)])

    def test_ragged_row_rejected(self):
        import pytest

        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError, match="does not match"):
            VarTable(("x", "y"), [(0,)])

    def test_unsorted_input_reorders_rows(self):
        # rows come in (y, x) order; the table stores columns sorted, so
        # each row must be permuted, not just relabeled
        t = VarTable(("y", "x"), [(1, 0), (2, 1)])
        assert t.variables == ("x", "y")
        assert t.rows == {(0, 1), (1, 2)}

    @given(tables(variables=("x", "y")), tables(variables=("y", "z")))
    def test_operator_results_are_canonical(self, a, b):
        """Every operator output (built via the trusted path) would
        survive re-validation by the public constructor unchanged."""
        joined = a.join(b)
        for t in (
            joined,
            joined.project_out("y"),
            a.union(b.rename({"z": "x"}), DOMAIN),
            a.complement(DOMAIN),
            a.cylindrify(("x", "y", "z"), DOMAIN),
        ):
            assert t == VarTable(t.variables, t.rows)
            assert t.variables == tuple(sorted(t.variables))
