"""Tests for the fixpoint abstraction (the simultaneous system)."""

import pytest

from repro.core.abstraction import abstract_query
from repro.errors import EvaluationError
from repro.logic.parser import parse_formula
from repro.logic.syntax import RelAtom
from repro.logic.variables import free_relation_variables, free_variables


class TestAbstraction:
    def test_fo_formula_has_no_nodes(self):
        aq = abstract_query(parse_formula("exists y. E(x, y)"))
        assert aq.nodes == ()
        assert aq.top == ()

    def test_single_fixpoint(self):
        aq = abstract_query(
            parse_formula("[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)")
        )
        assert len(aq.nodes) == 1
        node = aq.nodes[0]
        assert node.kind == "lfp"
        assert node.params == ()
        assert node.value_arity == 1
        # skeleton mentions the abstract atom, not the fixpoint
        assert node.name in free_relation_variables(aq.skeleton)

    def test_negated_fixpoint_dualized(self):
        aq = abstract_query(
            parse_formula("~[lfp S(x). P(x) | S(x)](u)")
        )
        assert aq.nodes[0].kind == "gfp"

    def test_nested_children_recorded(self):
        aq = abstract_query(
            parse_formula(
                "[gfp S(x). [lfp T(z). S(z) | (P(z) & T(z))](x)](u)"
            )
        )
        assert len(aq.nodes) == 2
        outer, inner = aq.nodes
        assert outer.children == (1,)
        assert inner.children == ()
        assert aq.top == (0,)

    def test_inner_inherits_outer_params_through_dependence(self):
        # outer has parameter w; inner body mentions S, so the inner value
        # depends on w too and must carry the parameter column
        phi = parse_formula(
            "[lfp S(x). E(w, x) | [lfp T(z). S(z) | T(z)](x)](u)"
        )
        aq = abstract_query(phi)
        outer = aq.nodes[0]
        inner = aq.nodes[1]
        assert "w" in outer.params
        assert set(outer.params) <= set(inner.params)

    def test_independent_inner_keeps_no_params(self):
        phi = parse_formula(
            "[lfp S(x). E(w, x) | [lfp T(z). P(z) | T(z)](x)](u)"
        )
        aq = abstract_query(phi)
        assert aq.nodes[1].params == ()

    def test_skeleton_free_variables_match_original(self):
        phi = parse_formula("[lfp S(x). x = y | S(x)](u)")
        aq = abstract_query(phi)
        assert free_variables(aq.skeleton) == free_variables(phi)

    def test_pfp_rejected(self):
        with pytest.raises(EvaluationError):
            abstract_query(parse_formula("[pfp X(x). ~X(x)](u)"))

    def test_so_rejected(self):
        with pytest.raises(EvaluationError):
            abstract_query(parse_formula("exists2 R/1. R(x)"))

    def test_deterministic(self):
        phi = parse_formula(
            "[gfp S(x). [lfp T(z). S(z) | (P(z) & T(z))](x)](u)"
        )
        assert abstract_query(phi) == abstract_query(phi)

    def test_recursion_atoms_extended_with_params(self):
        phi = parse_formula("[lfp S(x). E(y, x) | exists z. (E(z, x) & S(z))](u)")
        aq = abstract_query(phi)
        node = aq.nodes[0]
        assert node.params == ("y",)
        self_atoms = [
            a
            for a in node.body.walk()
            if isinstance(a, RelAtom) and a.name == node.name
        ]
        assert self_atoms, "self atom should be rewritten to the _fp name"
        assert all(len(a.terms) == 2 for a in self_atoms)
