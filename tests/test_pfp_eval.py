"""Tests for PFP^k evaluation and space metering (Theorem 3.8)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.naive_eval import naive_answer
from repro.core.pfp_eval import MeteredPFPSolver, SpaceMeter, pfp_answer
from repro.core.interp import EvalStats
from repro.database import Database
from repro.logic.parser import parse_formula

from tests.conftest import databases


class TestPFPSemantics:
    def test_oscillation_yields_empty(self, tiny_graph):
        phi = parse_formula("[pfp X(x). ~X(x)](u)")
        assert len(pfp_answer(phi, tiny_graph, ("u",))) == 0

    def test_convergent_pfp_matches_naive(self, tiny_graph):
        phi = parse_formula("[pfp X(x). P(x) | exists y. (E(y, x) & X(y))](u)")
        assert pfp_answer(phi, tiny_graph, ("u",)) == naive_answer(
            phi, tiny_graph, ("u",)
        )

    @given(databases(max_size=3))
    def test_strict_space_mode_agrees(self, db):
        phi = parse_formula("[pfp X(x). Q(x) | exists y. (E(x, y) & ~X(y))](u)")
        fast = pfp_answer(phi, db, ("u",))
        strict = pfp_answer(phi, db, ("u",), strict_space=True)
        assert fast == strict == naive_answer(phi, db, ("u",))

    def test_nested_pfp(self, tiny_graph):
        phi = parse_formula(
            "[pfp X(x). P(x) | [pfp Y(z). E(x, z) | Y(z)](x)](u)"
        )
        assert pfp_answer(phi, tiny_graph, ("u",)) == naive_answer(
            phi, tiny_graph, ("u",)
        )


class TestSpaceMeter:
    def test_live_state_bounded_by_nk(self, tiny_graph):
        phi = parse_formula("[pfp X(x). Q(x) | exists y. (E(x, y) & ~X(y))](u)")
        meter = SpaceMeter()
        pfp_answer(phi, tiny_graph, ("u",), meter=meter)
        n = tiny_graph.size()
        assert meter.peak_live_tuples <= n**1  # unary fixpoint
        assert meter.total_iterations >= 1

    def test_nested_fixpoints_stack_live_relations(self, tiny_graph):
        phi = parse_formula(
            "[pfp X(x). [pfp Y(z). E(x, z) | Y(z)](x) | X(x)](u)"
        )
        meter = SpaceMeter()
        pfp_answer(phi, tiny_graph, ("u",), meter=meter)
        assert meter.peak_live_relations >= 2

    def test_meter_enter_update_leave(self):
        meter = SpaceMeter()
        meter.enter(1, 0)
        meter.update(1, 5)
        meter.enter(2, 3)
        assert meter.peak_live_tuples == 8
        assert meter.peak_live_relations == 2
        meter.leave(2)
        meter.leave(1)
        assert meter.total_iterations == 1

    def test_iterations_can_exceed_live_state(self):
        # a 2-bit binary-counter pfp: iterations grow faster than live size
        db = Database.from_tuples(
            range(2), {"P": (1, [(0,)]), "E": (2, []), "Q": (1, [])}
        )
        # X cycles through subsets until repeat: worst case all 4 subsets
        phi = parse_formula(
            "[pfp X(x). (P(x) & ~X(x)) | (~P(x) & (X(x) <-> ~exists y. "
            "(P(y) & X(y))))](u)"
        )
        meter = SpaceMeter()
        result = pfp_answer(phi, db, ("u",), meter=meter)
        assert result == naive_answer(phi, db, ("u",))
        assert meter.total_iterations >= 3


class TestLFPThroughMeteredSolver:
    def test_lfp_gfp_also_supported(self, tiny_graph):
        phi = parse_formula(
            "[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)"
        )
        assert pfp_answer(phi, tiny_graph, ("u",)) == naive_answer(
            phi, tiny_graph, ("u",)
        )
