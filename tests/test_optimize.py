"""Tests for variable minimization (the paper's optimization methodology)."""

import pytest
from hypothesis import given

from repro.core.naive_eval import naive_answer
from repro.logic.builders import and_, atom, exists, forall
from repro.logic.parser import parse_formula
from repro.logic.variables import free_variables, variable_width
from repro.optimize import minimize_variables
from repro.optimize.variable_min import miniscope
from repro.workloads.company import earns_less_naive
from repro.workloads.formulas import path_query_naive

from tests.conftest import databases, fo_formulas


class TestMiniscope:
    def test_pushes_exists_past_independent_conjunct(self):
        phi = parse_formula("exists z. (P(x) & E(x, z))")
        out = miniscope(phi)
        assert variable_width(out) == variable_width(phi)
        # the quantifier now scopes only over E(x, z)
        from repro.logic.syntax import And

        assert isinstance(out, And)

    def test_distributes_exists_over_or(self):
        phi = parse_formula("exists z. (E(x, z) | E(z, x))")
        out = miniscope(phi)
        from repro.logic.syntax import Or

        assert isinstance(out, Or)

    def test_distributes_forall_over_and(self):
        phi = parse_formula("forall z. (E(x, z) & E(z, x))")
        out = miniscope(phi)
        from repro.logic.syntax import And

        assert isinstance(out, And)

    def test_drops_vacuous_quantifier(self):
        phi = parse_formula("exists z. P(x)")
        assert miniscope(phi) == parse_formula("P(x)")

    @given(fo_formulas(), databases(min_size=1, max_size=3))
    def test_semantics_preserved_on_nonempty_domains(self, phi, db):
        out = sorted(free_variables(phi))
        assert naive_answer(phi, db, out) == naive_answer(
            miniscope(phi), db, out
        )


class TestMinimizeVariables:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_path_queries_drop_to_three_variables(self, n):
        q = path_query_naive(n)
        mini = minimize_variables(q.formula)
        assert variable_width(mini) == 3
        assert free_variables(mini) == {"x", "y"}

    def test_single_step_path_stays_small(self):
        q = path_query_naive(1)
        assert variable_width(minimize_variables(q.formula)) == 2

    def test_company_query_drops_to_three(self):
        q = earns_less_naive()
        assert variable_width(minimize_variables(q.formula)) == 3

    def test_never_increases_width(self):
        phi = parse_formula("exists z. (E(x, z) & exists x. (x = z & E(x, y)))")
        assert variable_width(minimize_variables(phi)) <= variable_width(phi)

    @given(fo_formulas(), databases(min_size=1, max_size=3))
    def test_equivalence_property(self, phi, db):
        out = sorted(free_variables(phi))
        mini = minimize_variables(phi)
        assert variable_width(mini) <= variable_width(phi)
        assert naive_answer(phi, db, out) == naive_answer(mini, db, out)

    @given(databases(min_size=1, max_size=3))
    def test_path_rewrites_equivalent_to_fo3_form(self, db):
        from repro.workloads.formulas import path_query_fo3

        naive = path_query_naive(4).formula
        mini = minimize_variables(naive)
        fo3 = path_query_fo3(4).formula
        a = naive_answer(mini, db, ("x", "y"))
        b = naive_answer(fo3, db, ("x", "y"))
        assert a == b

    def test_interleaved_scopes_conflict_correctly(self):
        # z1 is live across z2's scope: they must keep distinct names
        phi = exists(
            "z1",
            and_(
                atom("E", "x", "z1"),
                exists("z2", and_(atom("E", "z1", "z2"), atom("E", "z2", "z1"))),
            ),
        )
        mini = minimize_variables(phi)
        db_check = __import__(
            "repro.workloads.graphs", fromlist=["random_graph"]
        )
        for seed in range(3):
            g = db_check.random_graph(4, 0.4, seed=seed)
            assert naive_answer(phi, g, ("x",)) == naive_answer(
                mini, g, ("x",)
            )

    def test_fixpoint_bound_variables_stay_distinct(self):
        phi = parse_formula("[lfp S(a, b). E(a, b)](x, y)")
        mini = minimize_variables(phi)
        from repro.logic.syntax import _FixpointBase

        for node in mini.walk():
            if isinstance(node, _FixpointBase):
                names = [v.name for v in node.bound_vars]
                assert len(set(names)) == len(names)


class TestMiniscopeDuplicatedBinders:
    """Miniscoping duplicates binders (∃x.(φ∨ψ) → ∃x.φ ∨ ∃x.ψ); the
    duplicated binders share a unique name and must be renamed apart
    again before coloring, or the coloring captures free variables."""

    def test_duplicated_binder_does_not_capture_free_variable(self):
        from repro.database import Database

        # ∃x.(E(x, y) ∨ P(x)): miniscoping splits the binder into
        # (∃x. E(x, y)) ∨ (∃x. P(x)).  Before the fix, both copies were
        # colored as one binder, both were renamed to the free name y,
        # and the left disjunct became ∃y. E(y, y) — capturing y.
        phi = parse_formula("exists x. (E(x, y) | P(x))")
        mini = minimize_variables(phi)
        db = Database.from_tuples(
            range(3), {"E": (2, [(0, 1)]), "P": (1, [])}
        )
        assert naive_answer(mini, db, ("y",)) == naive_answer(phi, db, ("y",))

    def test_duplicated_binder_width_never_regresses(self):
        phi = parse_formula("exists x. (E(x, y) | P(x))")
        assert variable_width(minimize_variables(phi)) <= variable_width(phi)
