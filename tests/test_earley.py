"""Tests for the Earley recognizer, incl. cross-validation of Lemma 4.2."""

import random

import pytest

from repro.database import Database
from repro.grammar import build_fo_grammar, recognize_parenthesis
from repro.grammar.cfg import Grammar, Production
from repro.grammar.earley import earley_recognize


def balanced() -> Grammar:
    return Grammar(
        frozenset({"A"}),
        (
            Production("A", ("(", "A", "A", ")")),
            Production("A", ("(", "a", ")")),
            Production("A", ("(", ")")),
        ),
        "A",
    )


class TestEarleyBasics:
    def test_simple_grammar(self):
        g = Grammar(
            frozenset({"S"}),
            (
                Production("S", ("a", "S", "b")),
                Production("S", ()),
            ),
            "S",
        )
        assert earley_recognize(g, [])
        assert earley_recognize(g, ["a", "b"])
        assert earley_recognize(g, ["a", "a", "b", "b"])
        assert not earley_recognize(g, ["a"])
        assert not earley_recognize(g, ["b", "a"])

    def test_ambiguous_grammar(self):
        g = Grammar(
            frozenset({"E"}),
            (
                Production("E", ("E", "+", "E")),
                Production("E", ("n",)),
            ),
            "E",
        )
        assert earley_recognize(g, ["n", "+", "n", "+", "n"])
        assert not earley_recognize(g, ["n", "+"])

    def test_left_recursion(self):
        g = Grammar(
            frozenset({"L"}),
            (
                Production("L", ("L", "x")),
                Production("L", ("x",)),
            ),
            "L",
        )
        assert earley_recognize(g, ["x"] * 7)
        assert not earley_recognize(g, [])

    def test_nullable_chains(self):
        g = Grammar(
            frozenset({"S", "A", "B"}),
            (
                Production("S", ("A", "B", "t")),
                Production("A", ()),
                Production("B", ("A",)),
            ),
            "S",
        )
        assert earley_recognize(g, ["t"])
        assert not earley_recognize(g, [])


class TestCrossValidation:
    def _random_word(self, rng, depth=3):
        if depth == 0 or rng.random() < 0.3:
            return rng.choice([["(", "a", ")"], ["(", ")"]])
        return (
            ["("]
            + self._random_word(rng, depth - 1)
            + self._random_word(rng, depth - 1)
            + [")"]
        )

    def test_agrees_on_balanced_grammar(self):
        g = balanced()
        rng = random.Random(4)
        for _ in range(25):
            word = self._random_word(rng)
            if rng.random() < 0.4 and word:
                # perturb into likely non-members too
                word = word[:-1] or ["("]
            try:
                via_paren = recognize_parenthesis(g, word)
            except Exception:
                via_paren = False  # unbalanced input
            assert earley_recognize(g, word) == via_paren

    def test_agrees_on_lemma_42_grammar(self):
        db = Database.from_tuples(
            range(2), {"P": (1, [(0,)])}
        )
        fg = build_fo_grammar(db, k=1)
        from repro.logic.builders import atom, not_
        from repro.logic.syntax import And

        phi = And((atom("P", "x1"), not_(atom("P", "x1"))))
        for index in range(len(fg.relations)):
            word = fg.word_for(phi, index)
            assert earley_recognize(fg.grammar, word) == (
                recognize_parenthesis(fg.grammar, word)
            )
