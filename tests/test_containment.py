"""Tests for [CM77] conjunctive-query containment and minimization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.naive_eval import naive_answer
from repro.errors import SyntaxError_
from repro.logic.builders import atom
from repro.logic.parser import parse_formula
from repro.optimize.containment import (
    ConjunctiveQuery,
    are_equivalent,
    find_homomorphism,
    is_contained,
    minimize_query,
)

from tests.conftest import databases


def cq(text: str, head) -> ConjunctiveQuery:
    return ConjunctiveQuery.from_formula(parse_formula(text), tuple(head))


class TestConstruction:
    def test_from_formula(self):
        q = cq("exists y. (E(x, y) & P(y))", ["x"])
        assert len(q.atoms) == 2
        assert q.head == ("x",)

    def test_unsafe_head_rejected(self):
        with pytest.raises(SyntaxError_):
            ConjunctiveQuery((atom("P", "y"),), ("x",))

    def test_non_conjunctive_rejected(self):
        with pytest.raises(SyntaxError_):
            cq("P(x) | Q(x)", ["x"])

    def test_roundtrip_to_formula(self, tiny_graph):
        q = cq("exists y. (E(x, y) & P(y))", ["x"])
        back = q.to_formula()
        assert naive_answer(back, tiny_graph, ("x",)) == naive_answer(
            parse_formula("exists y. (E(x, y) & P(y))"), tiny_graph, ("x",)
        )


class TestHomomorphism:
    def test_identity(self):
        q = cq("E(x, y)", ["x", "y"])
        assert find_homomorphism(q, q) is not None

    def test_folding_a_longer_chain(self):
        # E(x,y) maps into E(x,y),E(y,z) — but not vice versa with heads
        short = cq("E(x, y)", ["x"])
        long = cq("exists z. (E(x, y) & E(y, z))", ["x"])
        assert find_homomorphism(short, long) is not None

    def test_head_must_be_preserved(self):
        a = cq("E(x, y)", ["x"])
        b = cq("E(y, x)", ["x"])
        hom = find_homomorphism(a, b)
        # x must map to x (head), so E(x,y) needs an edge FROM x in b —
        # b only has E(y, x); no homomorphism
        assert hom is None

    def test_constants_must_match(self):
        a = cq("E(x, 0)", ["x"])
        b = cq("E(x, 1)", ["x"])
        assert find_homomorphism(a, b) is None
        assert find_homomorphism(a, a) is not None


class TestContainment:
    def test_adding_atoms_shrinks(self):
        bigger = cq("E(x, y)", ["x"])
        smaller = cq("E(x, y) & P(x)", ["x"])
        assert is_contained(smaller, bigger)
        assert not is_contained(bigger, smaller)

    def test_semantic_soundness_on_random_databases(self):
        smaller = cq("E(x, y) & P(x)", ["x"])
        bigger = cq("E(x, y)", ["x"])
        from repro.workloads.graphs import random_graph, labeled_graph

        for seed in range(4):
            db = labeled_graph(random_graph(4, 0.4, seed=seed), {"P": [0, 1]})
            small_ans = naive_answer(smaller.to_formula(), db, ("x",))
            big_ans = naive_answer(bigger.to_formula(), db, ("x",))
            assert small_ans.issubset(big_ans)

    def test_equivalence_of_renamed_queries(self):
        a = cq("exists y. E(x, y)", ["x"])
        b = cq("exists z. E(x, z)", ["x"])
        assert are_equivalent(a, b)


class TestMinimization:
    def test_redundant_atom_removed(self):
        # E(x,y) ∧ E(x,z) folds onto E(x,y)
        q = cq("exists y. exists z. (E(x, y) & E(x, z))", ["x"])
        minimal = minimize_query(q)
        assert len(minimal.atoms) == 1

    def test_triangle_is_already_minimal(self):
        q = cq(
            "exists y. exists z. (E(x, y) & E(y, z) & E(z, x))", ["x"]
        )
        assert len(minimize_query(q).atoms) == 3

    def test_classic_cm77_example(self):
        # path of length 2 with an extra parallel edge atom folds
        q = cq(
            "exists y. exists z. exists w. "
            "(E(x, y) & E(y, z) & E(x, w) & E(w, z))",
            ["x"],
        )
        minimal = minimize_query(q)
        assert len(minimal.atoms) == 2

    def test_minimization_preserves_semantics(self):
        from repro.workloads.graphs import random_graph

        q = cq(
            "exists y. exists z. (E(x, y) & E(x, z) & E(y, z) & E(x, x))",
            ["x"],
        )
        minimal = minimize_query(q)
        assert are_equivalent(q, minimal)
        for seed in range(4):
            db = random_graph(4, 0.5, seed=seed)
            assert naive_answer(q.to_formula(), db, ("x",)) == naive_answer(
                minimal.to_formula(), db, ("x",)
            )

    def test_head_variables_never_orphaned(self):
        q = cq("E(x, y) & E(x, x)", ["y"])
        minimal = minimize_query(q)
        assert "y" in {
            t.name
            for a in minimal.atoms
            for t in a.terms
            if hasattr(t, "name")
        }

    @given(databases(max_size=3), st.integers(0, 20))
    @settings(max_examples=10)
    def test_property_minimization_equivalence(self, db, seed):
        import random as stdlib_random

        rng = stdlib_random.Random(seed)
        variables = ["x", "y", "z"]
        atoms = tuple(
            atom("E", rng.choice(variables), rng.choice(variables))
            for _ in range(rng.randint(1, 4))
        )
        head_var = next(
            t.name for a in atoms for t in a.terms
        )
        q = ConjunctiveQuery(atoms, (head_var,))
        minimal = minimize_query(q)
        assert len(minimal.atoms) <= len(q.atoms)
        assert naive_answer(q.to_formula(), db, (head_var,)) == naive_answer(
            minimal.to_formula(), db, (head_var,)
        )
