"""End-to-end tests for the ``repro perf`` observatory subcommands."""

import json

import pytest

from repro.cli import main

SIZES = ["--sizes", "4", "6", "8"]


@pytest.fixture
def store(tmp_path):
    return str(tmp_path / "records")


def _record(store, *extra):
    return main(
        ["perf", "record", "T2-FP", "--store", store, *SIZES, *extra]
    )


class TestPerfRecord:
    def test_record_writes_archive_and_baseline(self, store, capsys, tmp_path):
        assert _record(store) == 0
        out = capsys.readouterr().out
        assert "# env:" in out
        assert "# record" in out
        assert "# baseline" in out
        baseline = json.loads(
            (tmp_path / "records" / "BENCH_T2-FP.json").read_text()
        )
        assert baseline["experiment_id"] == "T2-FP"
        assert [p["parameter"] for p in baseline["points"]] == [4.0, 6.0, 8.0]
        assert "table_ops" in baseline["points"][0]["counters"]

    def test_second_record_keeps_the_baseline(self, store, capsys):
        _record(store)
        first = capsys.readouterr().out
        _record(store)
        second = capsys.readouterr().out
        assert "# baseline" in first
        assert "# baseline" not in second

    def test_baseline_flag_overwrites(self, store, capsys):
        _record(store)
        capsys.readouterr()
        assert _record(store, "--baseline") == 0
        assert "# baseline" in capsys.readouterr().out

    def test_bench_module_alias(self, store, capsys):
        code = main(
            ["perf", "record", "bench_table2_fp", "--store", store, *SIZES]
        )
        assert code == 0
        assert "[T2-FP]" in capsys.readouterr().out

    def test_unknown_experiment_is_a_usage_error(self, store, capsys):
        assert main(["perf", "record", "NOPE", "--store", store]) == 1
        assert "unknown perf experiment" in capsys.readouterr().err


class TestPerfCompare:
    def test_self_comparison_passes(self, store, capsys):
        _record(store)
        capsys.readouterr()
        code = main(
            ["perf", "compare", "T2-FP", "--store", store, *SIZES,
             "--counters-only"]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_injected_strategy_drift_is_flagged(self, store, capsys):
        """The acceptance check: forcing the NAIVE strategy must trip the
        gate with a structured diff naming the drifted counter."""
        _record(store)
        capsys.readouterr()
        code = main(
            ["perf", "compare", "T2-FP", "--store", store, *SIZES,
             "--counters-only", "--set", "strategy=naive"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "counter:table_ops" in out
        assert "drifted" in out

    def test_json_output_is_structured(self, store, capsys):
        _record(store)
        capsys.readouterr()
        code = main(
            ["perf", "compare", "T2-FP", "--store", store, *SIZES,
             "--counters-only", "--json", "--set", "strategy=naive"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        drifted = {
            v["name"] for v in payload["violations"] if v["kind"] == "counter"
        }
        assert "table_ops" in drifted

    def test_use_latest_skips_the_rerun(self, store, capsys):
        _record(store)
        capsys.readouterr()
        code = main(
            ["perf", "compare", "T2-FP", "--store", store,
             "--use-latest", "--counters-only"]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_missing_baseline_is_an_error(self, store, capsys):
        code = main(
            ["perf", "compare", "T2-FP", "--store", store, "--use-latest"]
        )
        assert code == 1
        assert "no baseline" in capsys.readouterr().err


class TestPerfReport:
    def test_empty_store(self, store, capsys):
        assert main(["perf", "report", "--store", store]) == 0
        assert "(no records" in capsys.readouterr().out

    def test_trajectory_listing(self, store, capsys):
        _record(store)
        capsys.readouterr()
        assert main(["perf", "report", "--store", store]) == 0
        assert "T2-FP: 1 record(s)" in capsys.readouterr().out
        assert main(["perf", "report", "T2-FP", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "newest last" in out
        assert "baseline:" in out


class TestPerfProfile:
    def test_profile_from_jsonl(self, store, tmp_path, capsys):
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        path.write_text(tracer.export_jsonl() + "\n")
        code = main(
            ["perf", "profile", "--jsonl", str(path), "--param", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "n=7" in out
        assert "outer" in out and "inner" in out

    def test_profile_runs_a_traced_sweep(self, store, capsys):
        code = main(
            ["perf", "profile", "T2-FP", "--store", store, "--sizes", "4",
             "6", "--top", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hot-span profile" in out
        assert "n=4" in out and "n=6" in out

    def test_profile_without_input_is_an_error(self, store, capsys):
        assert main(["perf", "profile"]) == 1
        assert "needs an EXPERIMENT" in capsys.readouterr().err
