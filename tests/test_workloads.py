"""Tests for the workload generators."""

import pytest

from repro import evaluate
from repro.core.naive_eval import naive_answer
from repro.errors import ReproError
from repro.logic.analysis import alternation_depth, check_positivity
from repro.logic.variables import variable_width
from repro.workloads.company import (
    company_database,
    earns_less_bounded,
    earns_less_naive,
    earns_less_query,
)
from repro.workloads.formulas import (
    alternating_fixpoint_family,
    chain_join_query,
    path_query_fo3,
    path_query_naive,
    random_fo_formula,
    reachability_query,
)
from repro.workloads.graphs import (
    cycle_graph,
    dag_graph,
    grid_graph,
    labeled_graph,
    path_graph,
    random_graph,
    random_labeled_graph,
)


class TestGraphs:
    def test_path_graph(self):
        g = path_graph(5)
        assert g.size() == 5
        assert len(g.relation("E")) == 4

    def test_cycle_graph(self):
        g = cycle_graph(5)
        assert len(g.relation("E")) == 5
        assert (4, 0) in g.relation("E")

    def test_grid_graph_edges(self):
        g = grid_graph(2, 3)
        assert g.size() == 6
        # right edges: 2 per row × 2 rows; down edges: 3
        assert len(g.relation("E")) == 4 + 3

    def test_random_graph_is_seeded(self):
        assert random_graph(6, 0.5, seed=3) == random_graph(6, 0.5, seed=3)
        assert random_graph(6, 0.5, seed=3) != random_graph(6, 0.5, seed=4)

    def test_dag_has_no_back_edges(self):
        g = dag_graph(8, 0.5, seed=2)
        assert all(u < v for u, v in g.relation("E").tuples)

    def test_labeled_graph(self):
        g = labeled_graph(path_graph(4), {"P": [0, 3]})
        assert sorted(g.relation("P").tuples) == [(0,), (3,)]

    def test_random_labeled_graph(self):
        g = random_labeled_graph(5, 0.4, ["p", "q"], seed=1)
        assert "p" in g.relation_names() and "q" in g.relation_names()


class TestPathQueries:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_forms_agree(self, n):
        g = random_graph(5, 0.35, seed=n)
        a = naive_answer(path_query_naive(n).formula, g, ("x", "y"))
        b = naive_answer(path_query_fo3(n).formula, g, ("x", "y"))
        assert a == b

    def test_widths(self):
        assert path_query_naive(6).width == 7
        assert path_query_fo3(6).width == 3

    def test_validation(self):
        with pytest.raises(ReproError):
            path_query_naive(0)
        with pytest.raises(ReproError):
            path_query_fo3(0)
        with pytest.raises(ReproError):
            chain_join_query(0)

    def test_path_semantics_on_path_graph(self):
        g = path_graph(6)
        ans = naive_answer(path_query_fo3(3).formula, g, ("x", "y"))
        assert ans.tuples == frozenset(
            {(i, i + 3) for i in range(3)}
        )


class TestChainJoin:
    def test_width_grows_with_chain(self):
        assert chain_join_query(2).width == 3
        assert chain_join_query(5).width == 6

    def test_semantics_equals_path(self):
        g = random_graph(5, 0.4, seed=9)
        a = naive_answer(chain_join_query(3).formula, g, ("v0", "v3"))
        b = naive_answer(path_query_naive(3).formula, g, ("x", "y"))
        assert {t for t in a.tuples} == {t for t in b.tuples}


class TestCompany:
    def test_database_schema(self):
        db = company_database(num_employees=5, num_departments=2, seed=0)
        for name in ("EMP", "MGR", "SCY", "SAL", "LT"):
            assert name in db.relation_names()

    def test_lt_is_strict_order(self):
        db = company_database(seed=0)
        lt = db.relation("LT")
        assert all(a != b for a, b in lt.tuples)
        assert not any((b, a) in lt for a, b in lt.tuples)

    def test_query_forms_agree(self):
        db = company_database(num_employees=7, num_departments=3, seed=5)
        a = evaluate(earns_less_naive().formula, db, ("e",)).relation
        b = evaluate(earns_less_bounded().formula, db, ("e",)).relation
        assert a == b

    def test_query_selector(self):
        assert earns_less_query(bounded=True).width == 3
        assert earns_less_query(bounded=False).width == 6


class TestFixpointFamilies:
    def test_reachability_query(self):
        g = path_graph(4)
        ans = evaluate(reachability_query().formula, g, ("x", "y")).relation
        assert (3, 0) in ans and (0, 3) not in ans

    @pytest.mark.parametrize("depth", [1, 2, 3, 4])
    def test_alternating_family_properties(self, depth):
        q = alternating_fixpoint_family(depth)
        check_positivity(q.formula)
        assert alternation_depth(q.formula) == depth
        assert q.width == 3

    def test_alternating_family_validation(self):
        with pytest.raises(ReproError):
            alternating_fixpoint_family(0)


class TestRandomFormulas:
    def test_seeded_determinism(self):
        schema = [("E", 2), ("P", 1)]
        a = random_fo_formula(schema, ["x", "y"], depth=4, seed=7)
        b = random_fo_formula(schema, ["x", "y"], depth=4, seed=7)
        assert a == b

    def test_width_bounded_by_variables(self):
        phi = random_fo_formula([("E", 2)], ["x", "y", "z"], depth=6, seed=3)
        assert variable_width(phi) <= 3
