"""The packed ``n^k``-bit kernel against the sparse reference tables.

Three layers:

* brute-force checks of the bigint digit kernels (stretch/compress,
  selectors, expand/project/swap/permute) against explicit row sets;
* a hypothesis differential — every :class:`PackedTable` operation must
  agree with the corresponding :class:`VarTable` operation on random
  tables over random small domains (including ``n = 0`` and ``n = 1``);
* :class:`PackedRelation` against plain :class:`Relation`, including the
  cross-representation equality/hash contract the engines rely on.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.interp import VarTable
from repro.database.domain import Domain
from repro.database.relation import Relation
from repro.errors import EvaluationError, SchemaError
from repro.kernel.packed import (
    DomainCodec,
    PackedRelation,
    PackedTable,
    _compress,
    _rep_factor,
    _stretch,
    popcount,
)

VARS = ("w", "x", "y", "z")


def rows_of(codec, mask, k):
    return frozenset(codec.iter_rows(mask, k))


def mask_of(codec, rows):
    mask = 0
    for row in rows:
        mask |= 1 << codec.encode_row(row)
    return mask


# ---------------------------------------------------------------------------
# bigint primitives
# ---------------------------------------------------------------------------


class TestPrimitives:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount((1 << 300) | 1) == 2

    def test_rep_factor(self):
        assert _rep_factor(4, 0) == 0
        assert _rep_factor(4, 1) == 1
        assert _rep_factor(4, 3) == 0x111
        assert _rep_factor(1, 5) == 0b11111

    @given(
        st.integers(1, 6),
        st.integers(1, 5),
        st.integers(0, 4),
        st.data(),
    )
    def test_stretch_compress_roundtrip(self, count, width, pad, data):
        stride = width + pad
        blocks = data.draw(
            st.lists(
                st.integers(0, (1 << width) - 1),
                min_size=count,
                max_size=count,
            )
        )
        packed = 0
        for h, block in enumerate(blocks):
            packed |= block << (h * width)
        spread = _stretch(packed, count, width, stride)
        for h, block in enumerate(blocks):
            assert (spread >> (h * stride)) & ((1 << width) - 1) == block
        assert spread.bit_length() <= (count - 1) * stride + width
        assert _compress(spread, count, width, stride) == packed


# ---------------------------------------------------------------------------
# codec kernels vs brute force
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n", [1, 2, 3, 4])
class TestCodecBruteForce:
    def codec(self, n):
        return DomainCodec(Domain.range(n))

    def test_encode_decode_roundtrip(self, n):
        codec = self.codec(n)
        for k in range(4):
            for idx, row in enumerate(codec.domain.tuples(k)):
                assert codec.encode_row(row) == idx
                assert codec.decode_index(idx, k) == row

    def test_iter_rows(self, n):
        codec = self.codec(n)
        rows = set(itertools.islice(codec.domain.tuples(2), 0, None, 2))
        assert rows_of(codec, mask_of(codec, rows), 2) == rows

    def test_selectors(self, n):
        codec = self.codec(n)
        for k in (1, 2, 3):
            for d in range(k):
                for v in range(n):
                    expect = {
                        row
                        for row in codec.domain.tuples(k)
                        if row[k - 1 - d] == codec.domain.values[v]
                    }
                    assert rows_of(codec, codec.sel(k, d, v), k) == expect

    def test_eq_mask(self, n):
        codec = self.codec(n)
        k = 3
        for da, db in itertools.combinations(range(k), 2):
            expect = {
                row
                for row in codec.domain.tuples(k)
                if row[k - 1 - da] == row[k - 1 - db]
            }
            assert rows_of(codec, codec.eq_mask(k, da, db), k) == expect
            assert codec.eq_mask(k, db, da) == codec.eq_mask(k, da, db)
        assert codec.eq_mask(k, 1, 1) == codec.full_mask(k)

    def test_expand_inserts_free_digit(self, n):
        codec = self.codec(n)
        k = 2
        base = set(itertools.islice(codec.domain.tuples(k), 0, None, 3))
        for d in range(k + 1):
            # inserting at weight d = new column position k - d
            pos = k - d
            expect = {
                row[:pos] + (value,) + row[pos:]
                for row in base
                for value in codec.domain.values
            }
            got = codec.expand(mask_of(codec, base), k, d)
            assert rows_of(codec, got, k + 1) == expect

    def test_project_folds_digit(self, n):
        codec = self.codec(n)
        k = 3
        base = set(itertools.islice(codec.domain.tuples(k), 0, None, 7))
        for d in range(k):
            pos = k - 1 - d
            exists = {row[:pos] + row[pos + 1 :] for row in base}
            forall = {
                short
                for short in exists
                if all(
                    short[:pos] + (value,) + short[pos:] in base
                    for value in codec.domain.values
                )
            }
            mask = mask_of(codec, base)
            assert rows_of(codec, codec.project(mask, k, d), k - 1) == exists
            assert (
                rows_of(codec, codec.project(mask, k, d, universal=True), k - 1)
                == forall
            )

    def test_swap_and_permute(self, n):
        codec = self.codec(n)
        k = 3
        base = set(itertools.islice(codec.domain.tuples(k), 0, None, 5))
        mask = mask_of(codec, base)
        for da, db in itertools.combinations(range(k), 2):
            pa, pb = k - 1 - da, k - 1 - db
            expect = set()
            for row in base:
                out = list(row)
                out[pa], out[pb] = out[pb], out[pa]
                expect.add(tuple(out))
            assert rows_of(codec, codec.swap(mask, k, da, db), k) == expect
        for perm in itertools.permutations(range(k)):
            # result digit d takes source digit perm[d]
            expect = {
                tuple(row[k - 1 - perm[k - 1 - j]] for j in range(k))
                for row in base
            }
            got = codec.permute(mask, k, list(perm))
            assert rows_of(codec, got, k) == expect

    def test_width_invariants(self, n):
        codec = self.codec(n)
        for k in range(4):
            assert codec.size(k) == n**k
            assert popcount(codec.full_mask(k)) == n**k


def test_empty_domain_codec():
    codec = DomainCodec(Domain.range(0))
    assert codec.full_mask(0) == 1
    assert codec.full_mask(2) == 0
    assert codec.expand(1, 0, 0) == 0
    assert codec.project(0, 1, 0) == 0
    assert codec.sel0(2, 0) == 0


# ---------------------------------------------------------------------------
# hypothesis differential: PackedTable vs VarTable
# ---------------------------------------------------------------------------


@st.composite
def table_pairs(draw, min_n=0, shared_vars=None):
    """A (VarTable, PackedTable, Domain) triple with identical contents."""
    n = draw(st.integers(min_n, 3))
    domain = Domain.range(n)
    codec = DomainCodec(domain)
    if shared_vars is None:
        variables = tuple(
            sorted(draw(st.sets(st.sampled_from(VARS), max_size=3)))
        )
    else:
        variables = shared_vars
    universe = list(itertools.product(domain.values, repeat=len(variables)))
    rows = draw(st.sets(st.sampled_from(universe))) if universe else set()
    if not universe and not variables:
        rows = draw(st.sampled_from([set(), {()}]))
    sparse = VarTable(variables, rows)
    packed = PackedTable.from_rows(codec, variables, rows)
    return sparse, packed, domain


def assert_same(sparse, packed):
    assert packed.variables == sparse.variables
    assert packed.rows == sparse.rows
    assert len(packed) == len(sparse)
    assert packed.is_empty() == sparse.is_empty()
    assert packed == sparse  # cross-representation __eq__


class TestPackedMatchesSparse:
    @given(table_pairs())
    def test_construction(self, pair):
        assert_same(pair[0], pair[1])

    @given(st.data())
    def test_unsorted_construction(self, data):
        n = data.draw(st.integers(1, 3))
        domain = Domain.range(n)
        codec = DomainCodec(domain)
        variables = ("y", "x", "z")
        universe = list(itertools.product(domain.values, repeat=3))
        rows = data.draw(st.sets(st.sampled_from(universe)))
        assert_same(
            VarTable(variables, rows),
            PackedTable.from_rows(codec, variables, rows),
        )

    @given(st.data())
    def test_join(self, data):
        sa, pa, domain = data.draw(table_pairs(min_n=1))
        codec = pa.codec
        variables = tuple(
            sorted(data.draw(st.sets(st.sampled_from(VARS), max_size=3)))
        )
        universe = list(
            itertools.product(domain.values, repeat=len(variables))
        )
        rows = data.draw(st.sets(st.sampled_from(universe))) if universe else set()
        sb = VarTable(variables, rows)
        pb = PackedTable.from_rows(codec, variables, rows)
        assert_same(sa.join(sb), pa.join(pb))

    @given(st.data())
    def test_union_and_intersect(self, data):
        sa, pa, domain = data.draw(table_pairs(min_n=1))
        variables = tuple(
            sorted(data.draw(st.sets(st.sampled_from(VARS), max_size=3)))
        )
        universe = list(
            itertools.product(domain.values, repeat=len(variables))
        )
        rows = data.draw(st.sets(st.sampled_from(universe))) if universe else set()
        sb = VarTable(variables, rows)
        pb = PackedTable.from_rows(codec=pa.codec, variables=variables, rows=rows)
        assert_same(sa.union(sb, domain), pa.union(pb))
        assert_same(sa.intersect(sb, domain), pa.intersect(pb))

    @given(table_pairs())
    def test_complement(self, pair):
        sparse, packed, domain = pair
        assert_same(sparse.complement(domain), packed.complement())

    @given(table_pairs(shared_vars=("x", "y")))
    def test_project_and_forall(self, pair):
        sparse, packed, domain = pair
        for var in ("x", "y"):
            assert_same(sparse.project_out(var), packed.project_out(var))
            assert_same(sparse.forall_out(var, domain), packed.forall_out(var))

    @given(table_pairs(shared_vars=("x",)))
    def test_cylindrify(self, pair):
        sparse, packed, domain = pair
        assert_same(
            sparse.cylindrify(("w", "z"), domain),
            packed.cylindrify(("w", "z")),
        )

    @given(table_pairs(shared_vars=("x", "y", "z")))
    def test_select_eq(self, pair):
        sparse, packed, _ = pair
        assert_same(sparse.select_eq("x", "z"), packed.select_eq("x", "z"))
        assert_same(sparse.select_eq("y", "y"), packed.select_eq("y", "y"))

    @given(table_pairs(shared_vars=("x", "y")))
    def test_rename(self, pair):
        sparse, packed, _ = pair
        mapping = {"x": "z", "y": "a"}
        assert_same(sparse.rename(mapping), packed.rename(mapping))

    @given(table_pairs(shared_vars=("x", "y")))
    def test_to_relation(self, pair):
        sparse, packed, _ = pair
        for order in (("x", "y"), ("y", "x")):
            got = packed.to_relation(order)
            assert isinstance(got, PackedRelation)
            assert got == sparse.to_relation(order)

    @given(table_pairs(shared_vars=("x", "y")), st.data())
    def test_contains(self, pair, data):
        sparse, packed, domain = pair
        values = list(domain.values) + ["alien"]
        assignment = {
            "x": data.draw(st.sampled_from(values)),
            "y": data.draw(st.sampled_from(values)),
        }
        assert packed.contains(assignment) == sparse.contains(assignment)

    @given(table_pairs())
    def test_hash_matches_sparse(self, pair):
        sparse, packed, _ = pair
        assert hash(packed) == hash(sparse)

    @given(table_pairs(shared_vars=("x", "y")))
    def test_quantifier_duality(self, pair):
        _, packed, _ = pair
        direct = packed.forall_out("y")
        dual = packed.complement().project_out("y").complement()
        assert direct == dual


class TestPackedTableEdges:
    def test_nullary(self):
        codec = DomainCodec(Domain.range(2))
        taut = PackedTable.tautology(codec)
        contra = PackedTable.contradiction(codec)
        assert taut.rows == frozenset([()])
        assert contra.rows == frozenset()
        assert not taut.is_empty() and contra.is_empty()
        t = PackedTable.from_rows(codec, ("x",), [(0,)])
        assert t.join(taut) == t
        assert t.join(contra).is_empty()

    def test_full(self):
        codec = DomainCodec(Domain.range(3))
        t = PackedTable.full(codec, ("y", "x"))
        assert t.variables == ("x", "y")
        assert len(t) == 9

    def test_empty_domain_forall(self):
        codec = DomainCodec(Domain.range(0))
        t = PackedTable.from_rows(codec, ("x",), [])
        vacuous = t.forall_out("x")
        assert vacuous.variables == ()
        assert vacuous.rows == frozenset([()])
        wide = PackedTable.from_rows(codec, ("x", "y"), [])
        assert wide.forall_out("x").is_empty()

    def test_duplicate_columns_rejected(self):
        codec = DomainCodec(Domain.range(2))
        with pytest.raises(EvaluationError):
            PackedTable.from_rows(codec, ("x", "x"), [])
        with pytest.raises(EvaluationError):
            PackedTable.full(codec, ("x", "x"))

    def test_bad_row_width_rejected(self):
        codec = DomainCodec(Domain.range(2))
        with pytest.raises(EvaluationError):
            PackedTable.from_rows(codec, ("x", "y"), [(0,)])

    def test_out_of_domain_row_rejected(self):
        codec = DomainCodec(Domain.range(2))
        with pytest.raises(SchemaError):
            PackedTable.from_rows(codec, ("x",), [(9,)])

    def test_rename_collision_rejected(self):
        codec = DomainCodec(Domain.range(2))
        t = PackedTable.from_rows(codec, ("x", "y"), [(0, 1)])
        with pytest.raises(EvaluationError):
            t.rename({"x": "y"})

    def test_contains_missing_variable(self):
        codec = DomainCodec(Domain.range(2))
        t = PackedTable.from_rows(codec, ("x",), [(0,)])
        with pytest.raises(EvaluationError):
            t.contains({"q": 0})

    def test_to_relation_requires_permutation(self):
        codec = DomainCodec(Domain.range(2))
        t = PackedTable.from_rows(codec, ("x", "y"), [(0, 1)])
        with pytest.raises(EvaluationError):
            t.to_relation(("x",))

    def test_coerces_sparse_operand(self):
        domain = Domain.range(2)
        codec = DomainCodec(domain)
        packed = PackedTable.from_rows(codec, ("x",), [(0,)])
        sparse = VarTable(("y",), [(1,)])
        joined = packed.join(sparse)
        assert isinstance(joined, PackedTable)
        assert joined.rows == frozenset([(0, 1)])


# ---------------------------------------------------------------------------
# PackedRelation vs Relation
# ---------------------------------------------------------------------------


_REL_DOMAIN = Domain.range(3)
_REL_CODEC = DomainCodec(_REL_DOMAIN)


@st.composite
def relation_pairs(draw, arity=2):
    # all pairs share one codec, as codec_for guarantees in production
    universe = list(itertools.product(_REL_DOMAIN.values, repeat=arity))
    rows = draw(st.sets(st.sampled_from(universe))) if universe else set()
    mask = 0
    for row in rows:
        mask |= 1 << _REL_CODEC.encode_row(row)
    return Relation(arity, rows), PackedRelation(arity, mask, _REL_CODEC)


class TestPackedRelation:
    @given(relation_pairs(), relation_pairs())
    @settings(max_examples=50)
    def test_set_algebra(self, pa, pb):
        ra, ka = pa
        rb, kb = pb
        for op in ("union", "intersection", "difference"):
            plain = getattr(ra, op)(rb)
            packed = getattr(ka, op)(kb)
            assert isinstance(packed, PackedRelation)
            assert packed == plain
            # mixed representations fall back to the sparse path
            assert getattr(ka, op)(rb) == plain
        assert ka.issubset(kb) == ra.issubset(rb)
        assert ka.issubset(rb) == ra.issubset(rb)

    @given(relation_pairs())
    @settings(max_examples=50)
    def test_protocol(self, pair):
        plain, packed = pair
        assert len(packed) == len(plain)
        assert bool(packed) == bool(plain)
        assert set(packed) == set(plain)
        assert packed.tuples == plain.tuples
        assert packed == plain and plain == packed
        assert hash(packed) == hash(plain)
        for probe in [(0, 0), (2, 1), (9, 9), "junk", (0,)]:
            assert (probe in packed) == (probe in plain)

    def test_state_key(self):
        domain = Domain.range(3)
        codec = DomainCodec(domain)
        a = PackedRelation(2, 0b101, codec)
        b = PackedRelation(2, 0b101, DomainCodec(domain))
        c = PackedRelation(2, 0b100, codec)
        assert a.state_key() == b.state_key()
        assert a.state_key() != c.state_key()
        plain = Relation(2, a.tuples)
        assert plain.state_key() == plain
        # keys are hashable and usable in seen-sets
        assert len({a.state_key(), b.state_key(), c.state_key()}) == 2

    def test_projection_and_as_bool_inherited(self):
        codec = DomainCodec(Domain.range(3))
        rel = PackedRelation(2, 0, codec)
        assert rel.project([0]).arity == 1
        truthy = PackedRelation(0, 1, codec)
        falsy = PackedRelation(0, 0, codec)
        assert truthy.as_bool() is True
        assert falsy.as_bool() is False

    def test_negative_arity_rejected(self):
        codec = DomainCodec(Domain.range(2))
        with pytest.raises(SchemaError):
            PackedRelation(-1, 0, codec)
