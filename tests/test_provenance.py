"""Answer provenance: witnesses, stage logs, and differential checks.

The contract under test is twofold: (1) a witness built by
``explain_answer`` is a *checkable certificate* — replaying it against
the database finds no problems, and tampering with it does; (2) turning
the observer machinery on changes no answers and no stats counters, so
provenance is free to leave enabled in differential harnesses.
"""

import pytest

from repro.core.engine import EvalOptions, evaluate
from repro.core.fp_eval import FixpointStrategy
from repro.database.database import Database
from repro.logic.parser import parse_formula
from repro.obs.provenance import (
    NULL_STAGE_LOG,
    ProvenanceError,
    StageLog,
    check_witness,
    explain_answer,
    explain_membership,
)

TC_QUERY = "[lfp S(x, y). E(x, y) | exists z. (E(x, z) & S(z, y))](u, v)"


def path_db(n=6):
    return Database.from_tuples(
        range(n),
        {
            "E": (2, [(i, i + 1) for i in range(n - 1)]),
            "P": (1, [(0,)]),
        },
    )


class TestWitnesses:
    def test_positive_witness_replays_cleanly(self):
        db = path_db()
        formula = parse_formula(TC_QUERY)
        witness = explain_answer(formula, db, ("u", "v"), (0, 3))
        assert witness.holds
        assert check_witness(witness, db) == []

    def test_negative_witness_replays_cleanly(self):
        db = path_db()
        formula = parse_formula(TC_QUERY)
        witness = explain_answer(formula, db, ("u", "v"), (3, 0))
        assert not witness.holds
        assert check_witness(witness, db) == []

    def test_witness_agrees_with_engine_answers(self):
        db = path_db()
        formula = parse_formula(TC_QUERY)
        answers = evaluate(formula, db, ("u", "v")).relation.tuples
        for tup in [(0, 1), (0, 5), (2, 4), (1, 0), (4, 4)]:
            witness = explain_answer(formula, db, ("u", "v"), tup)
            assert witness.holds == (tup in answers), tup

    def test_fo_witness_through_connectives(self):
        db = path_db()
        formula = parse_formula("exists y. (E(x, y) & P(x))")
        witness = explain_answer(formula, db, ("x",), (0,))
        assert witness.holds
        assert check_witness(witness, db) == []
        kinds = set()

        def walk(w):
            kinds.add(w.kind)
            for child in w.children:
                walk(child)

        walk(witness)
        assert "exists" in kinds
        assert "and" in kinds

    def test_tampered_witness_is_caught(self):
        db = path_db()
        formula = parse_formula("E(x, y)")
        witness = explain_answer(formula, db, ("x", "y"), (0, 1))
        assert witness.holds
        witness.detail["tuple"] = (0, 5)  # not an edge
        assert check_witness(witness, db) != []

    def test_derivation_stages_strictly_decrease(self):
        db = path_db()
        formula = parse_formula(TC_QUERY)
        witness = explain_answer(formula, db, ("u", "v"), (0, 4))

        def check(w, ceiling):
            stage = w.detail.get("stage")
            if w.kind == "derivation" and stage is not None:
                assert ceiling is None or stage < ceiling
                ceiling = stage
            for child in w.children:
                check(child, ceiling)

        check(witness, None)

    def test_membership_requires_full_assignment(self):
        db = path_db()
        formula = parse_formula("E(x, y)")
        with pytest.raises(ProvenanceError):
            explain_membership(formula, db, {"x": 0})

    def test_value_outside_domain_rejected(self):
        db = path_db()
        formula = parse_formula("E(x, y)")
        with pytest.raises(ProvenanceError):
            explain_answer(formula, db, ("x", "y"), (0, 99))


class TestStageLog:
    def test_lfp_first_entry_matches_manual_kleene(self):
        db = path_db(5)
        formula = parse_formula(TC_QUERY)
        log = StageLog()
        evaluate(formula, db, ("u", "v"), EvalOptions(stage_log=log))
        (record,) = log.solves
        assert record.kind == "lfp"
        # manual Kleene chain: S_0 = {}, S_{i+1} = E ∪ (E ∘ S_i)
        edges = set(db.relation("E").tuples)
        manual = []
        current = set()
        while True:
            after = set(edges)
            for a, b in edges:
                for c, d in current:
                    if b == c:
                        after.add((a, d))
            if after == current:
                break
            current = after
            manual.append(set(current))
        first = record.first_entry()
        for stage_index, stage in enumerate(manual, start=1):
            for tup in stage:
                expected = next(
                    i + 1 for i, s in enumerate(manual) if tup in s
                )
                assert first[tup] == expected

    def test_seminaive_and_monotone_stages_agree(self):
        db = path_db(6)
        formula = parse_formula(TC_QUERY)
        logs = {}
        for strategy in ("monotone", "seminaive", "naive"):
            log = StageLog()
            evaluate(
                formula,
                db,
                ("u", "v"),
                EvalOptions(
                    strategy=FixpointStrategy(strategy), stage_log=log
                ),
            )
            logs[strategy] = log.solves[0]
        sizes = {k: rec.stage_sizes() for k, rec in logs.items()}
        assert sizes["seminaive"] == sizes["monotone"] == sizes["naive"]
        assert (
            logs["seminaive"].first_entry() == logs["monotone"].first_entry()
        )

    def test_pfp_trajectory(self):
        db = path_db(4)
        formula = parse_formula(
            "[pfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)"
        )
        log = StageLog()
        result = evaluate(formula, db, ("u",), EvalOptions(stage_log=log))
        (record,) = log.solves
        assert record.kind == "pfp"
        trajectory = record.trajectory((0,))
        assert trajectory  # 0 is in P, so it enters at stage 1 and stays
        assert trajectory[-1] == len(record.stages) - 1
        assert (0,) in result.relation.tuples

    def test_null_stage_log_records_nothing(self):
        db = path_db(4)
        formula = parse_formula(TC_QUERY)
        evaluate(formula, db, ("u", "v"))
        assert NULL_STAGE_LOG.solves == ()
        assert not NULL_STAGE_LOG.enabled


class TestDatalogStageLog:
    def test_naive_and_seminaive_agree_with_first_entries(self):
        from repro.datalog.engine import evaluate_program, semi_naive
        from repro.datalog.parser import parse_program

        db = path_db(5)
        program = parse_program(
            "T(X, Y) :- E(X, Y).\nT(X, Y) :- E(X, Z), T(Z, Y)."
        )
        log_naive, log_semi = StageLog(), StageLog()
        res_naive = evaluate_program(program, db, observer=log_naive)
        res_semi = semi_naive(program, db, observer=log_semi)
        assert res_naive["T"].tuples == res_semi["T"].tuples
        first = log_semi.solves[0].first_entry(key="T")
        assert first[(0, 1)] == 1
        assert first[(0, 2)] <= first[(0, 3)] <= first[(0, 4)]


class TestMuCalculusStageLog:
    def test_mu_solve_stages_and_trajectory(self):
        from repro.mucalculus.kripke import KripkeStructure
        from repro.mucalculus.model_check import model_check
        from repro.mucalculus.syntax import Diamond, Mu, MuOr, Prop, RecVar

        # path 0 -> 1 -> 2 -> 3, p holds at 3; mu X. p | <>X = "can reach p"
        structure = KripkeStructure(
            4,
            frozenset({(0, 1), (1, 2), (2, 3)}),
            (("p", frozenset({3})),),
        )
        formula = Mu("X", MuOr((Prop("p"), Diamond(RecVar("X")))))
        log = StageLog()
        states = model_check(structure, formula, observer=log)
        assert states == frozenset({0, 1, 2, 3})
        (record,) = log.solves
        assert record.kind == "mu"
        assert record.stage_sizes() == [0, 1, 2, 3, 4]
        # states enter in distance order from p
        first = record.first_entry()
        assert first[3] == 1 and first[2] == 2 and first[1] == 3


class TestObserverDifferential:
    """Observer-enabled runs change no answers and no counters."""

    QUERIES = [
        ("exists y. (E(x, y) & P(x))", ("x",), "monotone"),
        (TC_QUERY, ("u", "v"), "monotone"),
        (TC_QUERY, ("u", "v"), "seminaive"),
        (TC_QUERY, ("u", "v"), "naive"),
        ("[pfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)", ("u",), "monotone"),
    ]

    @pytest.mark.parametrize("query,out,strategy", QUERIES)
    def test_engines(self, query, out, strategy):
        db = path_db(5)
        formula = parse_formula(query)
        plain = evaluate(
            formula, db, out, EvalOptions(strategy=FixpointStrategy(strategy))
        )
        logged = evaluate(
            formula,
            db,
            out,
            EvalOptions(
                strategy=FixpointStrategy(strategy), stage_log=StageLog()
            ),
        )
        assert plain.relation == logged.relation
        assert plain.stats.as_dict() == logged.stats.as_dict()

    def test_datalog(self):
        from repro.datalog.engine import semi_naive
        from repro.datalog.parser import parse_program

        db = path_db(5)
        program = parse_program(
            "T(X, Y) :- E(X, Y).\nT(X, Y) :- E(X, Z), T(Z, Y)."
        )
        plain = semi_naive(program, db)
        logged = semi_naive(program, db, observer=StageLog())
        assert {k: v.tuples for k, v in plain.items()} == {
            k: v.tuples for k, v in logged.items()
        }

    def test_mucalculus(self):
        from repro.mucalculus.kripke import KripkeStructure
        from repro.mucalculus.model_check import model_check
        from repro.mucalculus.syntax import Box, Mu, MuOr, Nu, Prop, RecVar

        structure = KripkeStructure(
            4,
            frozenset({(0, 1), (1, 2), (2, 3), (3, 3)}),
            (("p", frozenset({3})),),
        )
        formula = Nu("X", MuOr((Prop("p"), Box(RecVar("X")))))
        plain = model_check(structure, formula)
        logged = model_check(structure, formula, observer=StageLog())
        assert plain == logged
