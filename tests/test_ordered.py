"""Tests for ordered databases and the capture-theorem demonstration."""

import pytest

from repro import Database, EvalOptions, FixpointStrategy, evaluate
from repro.errors import SchemaError
from repro.games import k_equivalent
from repro.workloads.graphs import path_graph
from repro.workloads.ordered import (
    domain_parity,
    even_cardinality_query,
    with_order,
)


class TestWithOrder:
    def test_order_relations_added(self):
        db = with_order(path_graph(4))
        assert len(db.relation("LT")) == 6
        assert len(db.relation("SUCC")) == 3
        assert db.relation("FIRST").tuples == frozenset({(0,)})
        assert db.relation("LAST").tuples == frozenset({(3,)})

    def test_lt_is_a_strict_linear_order(self):
        db = with_order(path_graph(5))
        lt = db.relation("LT")
        values = db.domain.values
        for a in values:
            assert (a, a) not in lt
            for b in values:
                if a != b:
                    assert ((a, b) in lt) != ((b, a) in lt)

    def test_existing_relations_kept(self):
        db = with_order(path_graph(3))
        assert len(db.relation("E")) == 2

    def test_name_clash_rejected(self):
        db = Database.from_tuples(range(2), {"LT": (2, [])})
        with pytest.raises(SchemaError):
            with_order(db)

    def test_empty_database(self):
        db = with_order(Database.from_tuples([], {}))
        assert len(db.relation("FIRST")) == 0


class TestEvenCardinality:
    @pytest.mark.parametrize("n", range(1, 9))
    def test_matches_reference_on_all_sizes(self, n):
        db = with_order(path_graph(n))
        q = even_cardinality_query()
        assert q.holds(db) == domain_parity(db), n

    def test_all_strategies_agree(self):
        q = even_cardinality_query()
        for n in (3, 4):
            db = with_order(path_graph(n))
            values = {
                strategy: evaluate(
                    q.formula, db, (), EvalOptions(strategy=strategy)
                ).as_bool()
                for strategy in FixpointStrategy
            }
            assert len(set(values.values())) == 1

    def test_query_is_fp2(self):
        q = even_cardinality_query()
        assert q.width == 2
        from repro.logic.analysis import Language, classify_language

        assert classify_language(q.formula) == Language.FP


class TestWhyTheOrderIsNeeded:
    """The other half of the capture story: parity is invisible to
    order-free bounded-variable logics."""

    def _bare(self, n: int) -> Database:
        # pure sets: no relations at all beyond an empty unary marker
        return Database.from_tuples(range(n), {"U": (1, [])})

    def test_sets_of_different_parity_are_k_equivalent(self):
        # with k pebbles, bare sets of size >= k are indistinguishable,
        # so NO order-free FO^k (or L^k_∞ω) sentence defines EVEN
        assert k_equivalent(self._bare(3), self._bare(4), 2)
        assert k_equivalent(self._bare(4), self._bare(5), 3)

    def test_with_order_the_game_separates_them(self):
        left = with_order(self._bare(3))
        right = with_order(self._bare(4))
        assert not k_equivalent(left, right, 2)

    def test_parity_decided_once_ordered(self):
        q = even_cardinality_query()
        assert not q.holds(with_order(self._bare(3)))
        assert q.holds(with_order(self._bare(4)))
