"""Tests for FP^k evaluation strategies (Section 3.2 / Theorem 3.5)."""

import pytest
from hypothesis import given

from repro.core.fp_eval import (
    FixpointStrategy,
    MonotoneSolver,
    NaiveSolver,
    iterate_partial,
    make_solver,
    solve_query,
)
from repro.core.interp import EvalStats
from repro.core.naive_eval import naive_answer
from repro.database import Relation
from repro.errors import EvaluationError, PositivityError
from repro.logic.parser import parse_formula
from repro.logic.variables import free_variables
from repro.workloads.formulas import alternating_fixpoint_family
from repro.workloads.graphs import labeled_graph, path_graph, random_graph

from tests.conftest import databases, fp_formulas

STRATEGIES = [
    FixpointStrategy.NAIVE,
    FixpointStrategy.MONOTONE,
    FixpointStrategy.ALTERNATION,
    FixpointStrategy.SEMINAIVE,
]


class TestBasicFixpoints:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_reachability(self, tiny_graph, strategy):
        phi = parse_formula("[lfp S(x). x = y | exists z. (E(z, x) & S(z))](x)")
        got = solve_query(phi, tiny_graph, ("x", "y"), strategy=strategy)
        assert got == naive_answer(phi, tiny_graph, ("x", "y"))

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_gfp_infinite_path(self, tiny_graph, strategy):
        phi = parse_formula("[gfp S(x). exists y. (E(x, y) & S(y))](u)")
        got = solve_query(phi, tiny_graph, ("u",), strategy=strategy)
        assert got == naive_answer(phi, tiny_graph, ("u",))

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_paper_section_2_2_example(self, tiny_graph, strategy):
        # "no infinite E-path starting at u on which P fails infinitely often"
        phi = parse_formula(
            "[gfp S(x). [lfp T(z). forall y. "
            "(~E(z, y) | S(y) | (P(y) & T(y)))](x)](u)"
        )
        got = solve_query(phi, tiny_graph, ("u",), strategy=strategy)
        assert got == naive_answer(phi, tiny_graph, ("u",))


class TestPropertyAgreement:
    @given(fp_formulas(), databases(max_size=3))
    def test_all_strategies_match_reference(self, phi, db):
        out = sorted(free_variables(phi))
        expected = naive_answer(phi, db, out)
        for strategy in STRATEGIES:
            assert solve_query(phi, db, out, strategy=strategy) == expected, (
                strategy
            )


class TestAlternatingFamily:
    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_strategies_agree_on_alternating_nests(self, depth):
        q = alternating_fixpoint_family(depth)
        db = labeled_graph(
            random_graph(4, 0.4, seed=depth),
            {f"P{i}": [0, 2] for i in range(1, depth + 1)},
        )
        expected = naive_answer(q.formula, db, ())
        for strategy in STRATEGIES:
            assert solve_query(q.formula, db, (), strategy=strategy) == expected

    def test_monotone_needs_fewer_body_evaluations_than_naive(self):
        # alternation-free nesting: warm starts should pay off
        phi = parse_formula(
            "[lfp S(x). P(x) | exists y. (E(y, x) & "
            "[lfp T(z). S(z) | exists y. (E(y, z) & T(y))](x))](u)"
        )
        db = labeled_graph(random_graph(6, 0.3, seed=7), {"P": [0]})
        naive_stats, monotone_stats = EvalStats(), EvalStats()
        a = solve_query(
            phi, db, ("u",), strategy=FixpointStrategy.NAIVE, stats=naive_stats
        )
        b = solve_query(
            phi,
            db,
            ("u",),
            strategy=FixpointStrategy.MONOTONE,
            stats=monotone_stats,
        )
        assert a == b
        assert (
            monotone_stats.body_evaluations <= naive_stats.body_evaluations
        )
        assert monotone_stats.notes.get("warm_starts", 0) >= 1


class TestPositivity:
    def test_negative_lfp_rejected_by_default(self, tiny_graph):
        phi = parse_formula("[lfp S(x). ~S(x)](u)")
        with pytest.raises(PositivityError):
            solve_query(phi, tiny_graph, ("u",))

    def test_ifp_allowed(self, tiny_graph):
        phi = parse_formula("[ifp X(x). ~X(x)](u)")
        got = solve_query(phi, tiny_graph, ("u",))
        assert got == naive_answer(phi, tiny_graph, ("u",))


class TestPartialIteration:
    def test_iteration_limit(self):
        flip = [Relation(1, [(0,)]), Relation.empty(1)]

        def step(current):
            return flip[0] if current == flip[1] else flip[1]

        with pytest.raises(EvaluationError):
            # disable cycle detection by using a fresh relation each time
            counter = [0]

            def growing(current):
                counter[0] += 1
                return Relation(1, [(counter[0],)])

            iterate_partial(growing, 1, EvalStats(), iteration_limit=5)

    def test_cycle_detected_as_empty(self):
        a, b = Relation(1, [(0,)]), Relation(1, [(1,)])

        def step(current):
            if current == a:
                return b
            if current == b:
                return a
            return a

        assert iterate_partial(step, 1, EvalStats()) == Relation.empty(1)


class TestSolverFactory:
    def test_make_solver_kinds(self):
        from repro.perf.seminaive import SemiNaiveSolver

        stats = EvalStats()
        assert isinstance(make_solver(FixpointStrategy.NAIVE, stats), NaiveSolver)
        assert isinstance(
            make_solver(FixpointStrategy.MONOTONE, stats), MonotoneSolver
        )
        assert isinstance(
            make_solver(FixpointStrategy.SEMINAIVE, stats), SemiNaiveSolver
        )
        with pytest.raises(EvaluationError):
            make_solver(FixpointStrategy.ALTERNATION, stats)


class TestInflationaryEarlyExit:
    """Regression: the converging IFP round must exit on the empty delta
    instead of unioning (re-materializing) the full relation first."""

    def _chain(self, n):
        return labeled_graph(path_graph(n), {"P": [0]})

    def test_iteration_count_and_exit_note(self):
        n = 5
        phi = parse_formula(
            "[ifp S(x). P(x) | exists y. (E(y, x) & S(y))](u)"
        )
        db = self._chain(n)
        stats = EvalStats()
        got = solve_query(
            phi, db, ("u",), strategy=FixpointStrategy.NAIVE, stats=stats
        )
        assert got == naive_answer(phi, db, ("u",))
        # one productive round per chain element, plus exactly one
        # converging round that exits on the empty delta
        assert stats.fixpoint_iterations == n + 1
        assert stats.notes["empty_delta_exits"] == 1

    def test_early_exit_matches_reference_across_strategies(self):
        phi = parse_formula(
            "[ifp S(x). P(x) | exists y. (E(y, x) & S(y))](u)"
        )
        db = self._chain(4)
        expected = naive_answer(phi, db, ("u",))
        for strategy in (
            FixpointStrategy.NAIVE,
            FixpointStrategy.MONOTONE,
            FixpointStrategy.SEMINAIVE,
        ):
            assert solve_query(phi, db, ("u",), strategy=strategy) == expected
