"""Tests for the formula AST (repro.logic.syntax)."""

import pytest

from repro.errors import SyntaxError_
from repro.logic.builders import atom, eq
from repro.logic.syntax import (
    And,
    Const,
    Equals,
    Exists,
    Forall,
    GFP,
    LFP,
    Not,
    Or,
    PFP,
    RelAtom,
    SOExists,
    Truth,
    Var,
)


class TestTerms:
    def test_var_name_rules(self):
        assert Var("x1").name == "x1"
        with pytest.raises(SyntaxError_):
            Var("")
        with pytest.raises(SyntaxError_):
            Var("X")  # must start lowercase
        with pytest.raises(SyntaxError_):
            Var("1x")

    def test_const_holds_any_hashable(self):
        assert Const(3).value == 3
        assert Const("emp").value == "emp"


class TestNodes:
    def test_operator_sugar(self):
        phi = atom("P", "x") & ~atom("Q", "x") | eq("x", "y")
        assert isinstance(phi, Or)
        left = phi.subs[0]
        assert isinstance(left, And)
        assert isinstance(left.subs[1], Not)

    def test_implication_sugar_desugars(self):
        phi = atom("P", "x") >> atom("Q", "x")
        assert isinstance(phi, Or)
        assert isinstance(phi.subs[0], Not)

    def test_walk_preorder(self):
        phi = And((atom("P", "x"), Not(atom("Q", "y"))))
        names = [type(n).__name__ for n in phi.walk()]
        assert names == ["And", "RelAtom", "Not", "RelAtom"]

    def test_size_counts_terms(self):
        assert atom("E", "x", "y").size() == 3
        assert eq("x", "y").size() == 3
        assert Truth(True).size() == 1

    def test_atom_rejects_non_terms(self):
        with pytest.raises(SyntaxError_):
            RelAtom("P", ("x",))  # bare string is not a term


class TestFixpointNodes:
    def test_arity_and_validation(self):
        node = LFP("S", (Var("x"), Var("y")), Truth(True), (Var("u"), Var("v")))
        assert node.arity == 2

    def test_duplicate_bound_vars_rejected(self):
        with pytest.raises(SyntaxError_):
            LFP("S", (Var("x"), Var("x")), Truth(True), (Var("u"), Var("v")))

    def test_arg_count_must_match(self):
        with pytest.raises(SyntaxError_):
            LFP("S", (Var("x"),), Truth(True), ())

    def test_all_four_fixpoint_kinds_construct(self):
        for node_type in (LFP, GFP, PFP):
            node = node_type("S", (Var("x"),), atom("S", "x"), (Var("y"),))
            assert node.rel == "S"

    def test_empty_rel_name_rejected(self):
        with pytest.raises(SyntaxError_):
            LFP("", (Var("x"),), Truth(True), (Var("y"),))


class TestSecondOrder:
    def test_construction(self):
        node = SOExists("S", 2, Truth(True))
        assert node.arity == 2

    def test_negative_arity_rejected(self):
        with pytest.raises(SyntaxError_):
            SOExists("S", -1, Truth(True))

    def test_nullary_allowed(self):
        assert SOExists("S", 0, RelAtom("S", ())).arity == 0


class TestEquality:
    def test_structural_equality_and_hash(self):
        a = Exists(Var("x"), atom("P", "x"))
        b = Exists(Var("x"), atom("P", "x"))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Forall(Var("x"), atom("P", "x"))
