"""Tests for capture-avoiding substitution and renaming."""

from hypothesis import given

from repro.core.naive_eval import naive_answer
from repro.logic.builders import atom, eq, exists, forall, lfp
from repro.logic.parser import parse_formula
from repro.logic.printer import format_formula
from repro.logic.substitution import (
    fresh_names,
    rename_bound_apart,
    rename_relation,
    substitute,
    substitute_relation,
)
from repro.logic.syntax import Const, Var
from repro.logic.variables import free_variables, variable_names

from tests.conftest import databases, fo_formulas

import pytest

from repro.errors import SyntaxError_


class TestSubstitute:
    def test_simple_replacement(self):
        phi = atom("E", "x", "y")
        psi = substitute(phi, {"x": Var("z")})
        assert psi == atom("E", "z", "y")

    def test_constant_substitution(self):
        phi = atom("P", "x")
        psi = substitute(phi, {"x": Const(3)})
        assert free_variables(psi) == set()

    def test_bound_variables_untouched(self):
        phi = exists("x", atom("P", "x"))
        assert substitute(phi, {"x": Var("y")}) == phi

    def test_capture_avoided(self):
        # substituting y for x into ∃y E(x, y) must rename the binder
        phi = exists("y", atom("E", "x", "y"))
        psi = substitute(phi, {"x": Var("y")})
        assert "y" in free_variables(psi)
        # the free y must not be captured: evaluate to check
        assert format_formula(psi) != "exists y. E(y, y)"

    def test_capture_avoidance_in_fixpoint_binders(self):
        phi = lfp("S", ["y"], atom("E", "x", "y") & atom("S", "y"), ["z"])
        psi = substitute(phi, {"x": Var("y")})
        assert free_variables(psi) == {"y", "z"}

    def test_simultaneous_swap(self):
        phi = atom("E", "x", "y")
        psi = substitute(phi, {"x": Var("y"), "y": Var("x")})
        assert psi == atom("E", "y", "x")

    def test_empty_mapping_is_identity(self):
        phi = exists("x", atom("P", "x"))
        assert substitute(phi, {}) is phi


class TestSubstituteRelation:
    def test_prop_3_2_style_unfolding(self):
        # φ(x) with P(x) replaced by ψ(x)
        phi = atom("S", "x") | atom("P", "x")
        psi = exists("y", atom("E", "x", "y"))
        out = substitute_relation(phi, "P", (Var("x"),), psi)
        assert format_formula(out) == "S(x) | (exists y. E(x, y))"

    def test_arguments_are_substituted_into_definition(self):
        phi = atom("P", "z")
        psi = atom("E", "x", "x")
        out = substitute_relation(phi, "P", (Var("x"),), psi)
        assert out == atom("E", "z", "z")

    def test_bound_occurrences_left_alone(self):
        phi = lfp("P", ["x"], atom("P", "x"), ["y"])
        out = substitute_relation(phi, "P", (Var("x"),), atom("Q", "x"))
        assert out == phi

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SyntaxError_):
            substitute_relation(
                atom("P", "x", "y"), "P", (Var("x"),), atom("Q", "x")
            )


class TestRenameRelation:
    def test_rename(self):
        phi = lfp("S", ["x"], atom("S", "x") | atom("P", "x"), ["y"])
        out = rename_relation(phi, "S", "T")
        assert "T" in format_formula(out)
        assert "S" not in format_formula(out)

    def test_clash_rejected(self):
        with pytest.raises(SyntaxError_):
            rename_relation(atom("P", "x") & atom("Q", "x"), "P", "Q")


class TestRenameBoundApart:
    def test_no_name_bound_twice(self):
        phi = parse_formula("exists x. (P(x) & exists x. Q(x))")
        apart = rename_bound_apart(phi)
        binders = [
            node.var.name
            for node in apart.walk()
            if type(node).__name__ in ("Exists", "Forall")
        ]
        assert len(binders) == len(set(binders))

    def test_free_variables_preserved(self):
        phi = parse_formula("E(x, y) & exists y. E(x, y)")
        apart = rename_bound_apart(phi)
        assert free_variables(apart) == {"x", "y"}

    @given(fo_formulas(), databases(max_size=3))
    def test_semantics_preserved(self, phi, db):
        out = sorted(free_variables(phi))
        assert naive_answer(phi, db, out) == naive_answer(
            rename_bound_apart(phi), db, out
        )


class TestFreshNames:
    def test_avoids_reserved(self):
        supply = fresh_names({"v0", "v1"})
        assert next(supply) == "v2"

    def test_no_repeats(self):
        supply = fresh_names(set())
        names = [next(supply) for _ in range(10)]
        assert len(set(names)) == 10
