"""Tests for repro.database.relation."""

import pytest
from hypothesis import given, strategies as st

from repro.database.relation import Relation
from repro.errors import SchemaError


def rel(*tuples, arity=None):
    if arity is None:
        arity = len(tuples[0]) if tuples else 0
    return Relation(arity, tuples)


class TestConstruction:
    def test_basic(self):
        r = rel((1, 2), (2, 3))
        assert r.arity == 2
        assert len(r) == 2
        assert (1, 2) in r

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation(2, [(1, 2, 3)])

    def test_negative_arity_rejected(self):
        with pytest.raises(SchemaError):
            Relation(-1, [])

    def test_duplicates_collapse(self):
        assert len(Relation(1, [(1,), (1,)])) == 1

    def test_nullary_truth_values(self):
        assert Relation.nullary(True).as_bool() is True
        assert Relation.nullary(False).as_bool() is False

    def test_as_bool_requires_arity_zero(self):
        with pytest.raises(SchemaError):
            rel((1,)).as_bool()

    def test_empty_relations_of_different_arity_differ(self):
        assert Relation.empty(2) != Relation.empty(3)


class TestSetOperations:
    def test_union_intersection_difference(self):
        a = rel((1,), (2,))
        b = rel((2,), (3,))
        assert a.union(b) == rel((1,), (2,), (3,))
        assert a.intersection(b) == rel((2,))
        assert a.difference(b) == rel((1,))

    def test_arity_mismatch_in_ops(self):
        with pytest.raises(SchemaError):
            rel((1,)).union(rel((1, 2)))

    def test_issubset(self):
        assert rel((1,)).issubset(rel((1,), (2,)))
        assert not rel((3,)).issubset(rel((1,)))

    @given(
        st.sets(st.tuples(st.integers(0, 3), st.integers(0, 3))),
        st.sets(st.tuples(st.integers(0, 3), st.integers(0, 3))),
    )
    def test_union_commutes(self, xs, ys):
        a, b = Relation(2, xs), Relation(2, ys)
        assert a.union(b) == b.union(a)
        assert a.union(b).issubset(a.union(b))


class TestProjection:
    def test_project_reorders_and_drops(self):
        r = rel((1, 2), (3, 4))
        assert r.project([1, 0]) == rel((2, 1), (4, 3))
        assert r.project([0]) == rel((1,), (3,))

    def test_project_duplicates_column(self):
        assert rel((1, 2)).project([0, 0]) == rel((1, 1))

    def test_project_out_of_range(self):
        with pytest.raises(SchemaError):
            rel((1, 2)).project([2])

    def test_project_to_nothing_gives_boolean(self):
        assert rel((1, 2)).project([]).as_bool() is True
        assert Relation.empty(2).project([]) == Relation.nullary(False)


class TestDunder:
    def test_bool_and_iter(self):
        assert not Relation.empty(1)
        assert rel((1,))
        assert sorted(rel((2,), (1,))) == [(1,), (2,)]

    def test_hashable(self):
        assert len({rel((1,)), rel((1,)), rel((2,))}) == 2
