"""Parallel sweeps must be observably identical to serial ones.

``run_sweep(parallel=N)`` fans points across worker processes; the
contract is that everything except wall-clock time — parameter order,
counters, outcomes, error messages, trace presence and span structure —
matches the serial run point for point, including when a
:class:`~repro.guard.chaos.ChaosPolicy` injects a fault into one point
and when a budget times another out.

All workloads live at module level: the parallel path pickles them into
``ProcessPoolExecutor`` workers.
"""

from __future__ import annotations

import pytest

from repro.complexity.measure import run_sweep
from repro.core.engine import EvalOptions, evaluate
from repro.core.fp_eval import FixpointStrategy
from repro.errors import ReproError
from repro.guard.budget import Budget
from repro.guard.chaos import ChaosPolicy
from repro.logic.parser import parse_formula
from repro.obs.tracer import Tracer
from repro.workloads.graphs import path_graph

TC_QUERY = "[lfp S(x, y). E(x, y) | exists z. (E(x, z) & S(z, y))](u, v)"

#: The parameter value at which the chaotic/timeout workloads fail.
FAULT_PARAMETER = 5


def _evaluate_tc(n, options):
    result = evaluate(
        parse_formula(TC_QUERY), path_graph(n), ("u", "v"), options
    )
    return {
        "answer_rows": float(len(result.relation)),
        "iterations": float(result.stats.fixpoint_iterations),
    }


def _tc_workload(parameter):
    return _evaluate_tc(
        int(parameter), EvalOptions(strategy=FixpointStrategy.SEMINAIVE)
    )


def _chaotic_workload(parameter):
    """Deterministic workload with one sabotaged point: at the fault
    parameter a ChaosPolicy fires an InjectedFault (a ReproError, so the
    sweep records ``outcome="error"``)."""
    chaos = (
        ChaosPolicy(seed=1, fail_at=2)
        if int(parameter) == FAULT_PARAMETER
        else None
    )
    return _evaluate_tc(
        int(parameter),
        EvalOptions(strategy=FixpointStrategy.SEMINAIVE, chaos=chaos),
    )


def _timeout_workload(parameter):
    budget = (
        Budget(max_iterations=1)
        if int(parameter) == FAULT_PARAMETER
        else None
    )
    return _evaluate_tc(int(parameter), EvalOptions(budget=budget))


def _raising_workload(parameter):
    raise ReproError(f"boom at {parameter:g}")


def _traced_workload(parameter, tracer):
    result = evaluate(
        parse_formula(TC_QUERY),
        path_graph(int(parameter)),
        ("u", "v"),
        EvalOptions(trace=tracer),
    )
    return {"answer_rows": float(len(result.relation))}


def _comparable(point):
    """Everything a SweepPoint promises to keep deterministic."""
    return (
        point.parameter,
        point.counters,
        point.outcome,
        point.error,
        point.trace is None,
    )


def _both_ways(workload, parameters, **kwargs):
    serial = run_sweep("serial", parameters, workload, **kwargs)
    fanned = run_sweep(
        "parallel", parameters, workload, parallel=2, **kwargs
    )
    return serial, fanned


def test_parallel_points_identical_to_serial():
    serial, fanned = _both_ways(_tc_workload, [3, 4, 5, 6])
    assert [_comparable(p) for p in fanned.points] == [
        _comparable(p) for p in serial.points
    ]
    assert all(p.ok for p in fanned.points)


def test_parallel_identical_under_injected_fault():
    serial, fanned = _both_ways(_chaotic_workload, [3, 4, 5, 6])
    assert [_comparable(p) for p in fanned.points] == [
        _comparable(p) for p in serial.points
    ]
    outcomes = [p.outcome for p in fanned.points]
    assert outcomes == ["ok", "ok", "error", "ok"]
    assert "chaos" in fanned.points[2].error


def test_parallel_identical_under_timeout():
    serial, fanned = _both_ways(_timeout_workload, [3, 5, 4])
    assert [_comparable(p) for p in fanned.points] == [
        _comparable(p) for p in serial.points
    ]
    assert [p.outcome for p in fanned.points] == ["ok", "timeout", "ok"]


def test_parallel_traces_match_serial_structure():
    serial, fanned = _both_ways(
        _traced_workload, [3, 4], tracer_factory=Tracer
    )
    for s_point, p_point in zip(serial.points, fanned.points):
        assert p_point.trace is not None
        assert [sp.name for sp in p_point.trace.spans] == [
            sp.name for sp in s_point.trace.spans
        ]


def test_parallel_fail_fast_raises_like_serial():
    with pytest.raises(ReproError, match="boom"):
        run_sweep(
            "serial", [1.0], _raising_workload, capture_failures=False
        )
    with pytest.raises(ReproError, match="boom"):
        run_sweep(
            "parallel",
            [1.0, 2.0],
            _raising_workload,
            capture_failures=False,
            parallel=2,
        )
