"""Tests for the reference semantics (repro.core.naive_eval)."""

import pytest

from repro.core.naive_eval import holds, naive_answer
from repro.database import Database
from repro.errors import EvaluationError
from repro.logic.parser import parse_formula


class TestFirstOrder:
    def test_atoms_and_equality(self, tiny_graph):
        assert holds(parse_formula("E(x, y)"), tiny_graph, {"x": 0, "y": 1})
        assert not holds(parse_formula("E(x, y)"), tiny_graph, {"x": 1, "y": 0})
        assert holds(parse_formula("x = x"), tiny_graph, {"x": 2})

    def test_quantifiers(self, tiny_graph):
        assert holds(parse_formula("exists y. E(x, y)"), tiny_graph, {"x": 0})
        assert not holds(parse_formula("forall y. E(x, y)"), tiny_graph, {"x": 0})

    def test_unbound_variable_raises(self, tiny_graph):
        with pytest.raises(EvaluationError):
            holds(parse_formula("P(x)"), tiny_graph)

    def test_arity_mismatch_raises(self, tiny_graph):
        with pytest.raises(EvaluationError):
            holds(parse_formula("E(x, x, x)"), tiny_graph, {"x": 0})

    def test_constants(self, tiny_graph):
        assert holds(parse_formula("P(0)"), tiny_graph)
        assert not holds(parse_formula("P(1)"), tiny_graph)

    def test_empty_domain_quantifiers(self):
        db = Database.from_tuples([], {})
        assert not holds(parse_formula("exists x. x = x"), db)
        assert holds(parse_formula("forall x. P(x) & ~P(x)"), db) is True


class TestFixpoints:
    def test_lfp_reachability(self, tiny_graph):
        reach = parse_formula(
            "[lfp S(x). x = y | exists z. (E(z, x) & S(z))](x)"
        )
        ans = naive_answer(reach, tiny_graph, ("x", "y"))
        assert (3, 0) in ans           # 0 reaches 3
        assert (0, 1) not in ans       # 1 does not reach 0

    def test_gfp_is_complement_of_dual_lfp(self, tiny_graph):
        gfp_phi = parse_formula("[gfp S(x). exists y. (E(x, y) & S(y))](u)")
        # states with an infinite outgoing path: here the cycle 1→2→3→1
        ans = naive_answer(gfp_phi, tiny_graph, ("u",))
        assert sorted(ans.tuples) == [(0,), (1,), (2,), (3,)]

    def test_ifp_converges_on_nonmonotone_body(self, tiny_graph):
        # body ~X(x) is not monotone; inflationary iteration still converges
        phi = parse_formula("[ifp X(x). ~X(x)](u)")
        ans = naive_answer(phi, tiny_graph, ("u",))
        assert len(ans) == 4  # first step adds everything, then stable

    def test_pfp_no_limit_is_empty(self, tiny_graph):
        phi = parse_formula("[pfp X(x). ~X(x)](u)")
        assert len(naive_answer(phi, tiny_graph, ("u",))) == 0

    def test_pfp_converging(self, tiny_graph):
        phi = parse_formula(
            "[pfp X(x). P(x) | exists y. (E(y, x) & X(y))](u)"
        )
        lfp_phi = parse_formula(
            "[lfp X(x). P(x) | exists y. (E(y, x) & X(y))](u)"
        )
        assert naive_answer(phi, tiny_graph, ("u",)) == naive_answer(
            lfp_phi, tiny_graph, ("u",)
        )

    def test_parameterized_fixpoint(self, tiny_graph):
        # y is a parameter of the fixpoint body
        phi = parse_formula("[lfp S(x). E(y, x) | exists z. (E(z, x) & S(z))](x)")
        ans = naive_answer(phi, tiny_graph, ("x", "y"))
        assert (1, 0) in ans


class TestSecondOrder:
    def test_so_exists_finds_witness(self, tiny_graph):
        # there is a set containing 0 and closed under nothing: trivially yes
        phi = parse_formula("exists2 R/1. R(x)")
        assert holds(phi, tiny_graph, {"x": 2})

    def test_so_exists_unsatisfiable(self, tiny_graph):
        phi = parse_formula("exists2 R/1. R(x) & ~R(x)")
        assert not holds(phi, tiny_graph, {"x": 2})

    def test_budget_guard(self, tiny_graph):
        phi = parse_formula("exists2 R/4. R(x, x, x, x)")
        with pytest.raises(EvaluationError):
            holds(phi, tiny_graph, {"x": 0}, so_budget=16)


class TestNaiveAnswer:
    def test_extra_output_vars_range_over_domain(self, tiny_graph):
        ans = naive_answer(parse_formula("P(x)"), tiny_graph, ("x", "w"))
        assert len(ans) == 2 * 4

    def test_missing_output_vars_rejected(self, tiny_graph):
        with pytest.raises(EvaluationError):
            naive_answer(parse_formula("E(x, y)"), tiny_graph, ("x",))
