"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.database.encoding import encode_database
from repro.workloads.graphs import labeled_graph, path_graph


@pytest.fixture
def db_file(tmp_path):
    db = labeled_graph(path_graph(4), {"P": [0, 2]})
    path = tmp_path / "graph.db"
    path.write_text(encode_database(db))
    return str(path)


class TestEval:
    def test_relation_output(self, db_file, capsys):
        code = main(["eval", "--db", db_file, "--query", "P(x)", "--out", "x"])
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out[0] == "x"
        assert out[1:] == ["0", "2"]

    def test_sentence_output(self, db_file, capsys):
        code = main(
            ["eval", "--db", db_file, "--query", "exists x. P(x)", "--out"]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "true"

    def test_default_output_vars(self, db_file, capsys):
        code = main(["eval", "--db", db_file, "--query", "E(x, y)"])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "x\ty"
        assert len(lines) == 1 + 3

    def test_fp_with_strategy_and_stats(self, db_file, capsys):
        code = main(
            [
                "eval",
                "--db",
                db_file,
                "--query",
                "[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)",
                "--out",
                "u",
                "--strategy",
                "alternation",
                "--stats",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "language=FP" in captured.err

    def test_parse_error_is_reported(self, db_file, capsys):
        code = main(["eval", "--db", db_file, "--query", "P(x"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        code = main(["eval", "--db", "/nonexistent.db", "--query", "P(x)"])
        assert code == 1


class TestInfo:
    def test_info_fields(self, capsys):
        code = main(
            ["info", "--query", "[lfp S(x). P(x) | S(x)](u)"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "language  : FP" in out
        assert "width (k) : 2" in out
        assert "alt depth : 1" in out


class TestMinimize:
    def test_minimize_path_query(self, capsys):
        code = main(
            [
                "minimize",
                "--query",
                "exists z1. exists z2. (E(x, z1) & E(z1, z2) & E(z2, y))",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "width 4 -> 3" in captured.err


class TestEncode:
    def test_canonicalize_roundtrip(self, db_file, capsys):
        code = main(["encode", "--db", db_file])
        assert code == 0
        text = capsys.readouterr().out.strip()
        with open(db_file) as handle:
            assert text == handle.read().strip()


class TestDatalog:
    def test_run_program(self, tmp_path, capsys):
        from repro import Database

        db = Database.from_tuples(
            range(4),
            {"edge": (2, [(0, 1), (1, 2)]), "source": (1, [(0,)])},
        )
        db_path = tmp_path / "g.db"
        db_path.write_text(encode_database(db))
        program = tmp_path / "reach.dl"
        program.write_text(
            "reach(X) :- source(X).\nreach(X) :- edge(Y, X), reach(Y).\n"
        )
        code = main(
            [
                "datalog",
                "--db",
                str(db_path),
                "--program",
                str(program),
                "--pred",
                "reach",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ["reach(0)", "reach(1)", "reach(2)"]

    def test_unknown_predicate(self, tmp_path, capsys):
        from repro import Database

        db_path = tmp_path / "g.db"
        db_path.write_text(
            encode_database(
                Database.from_tuples(range(2), {"q": (1, [(0,)])})
            )
        )
        program = tmp_path / "p.dl"
        program.write_text("p(X) :- q(X).")
        code = main(
            [
                "datalog",
                "--db",
                str(db_path),
                "--program",
                str(program),
                "--pred",
                "nope",
            ]
        )
        assert code == 1


class TestExitCodes:
    """The documented taxonomy: 0 ok, 1 ReproError, 2 usage, 124 budget."""

    FP_QUERY = "[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)"

    def test_usage_error_exits_2(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["eval"])  # missing required --db/--query
        assert info.value.code == 2

    def test_budget_exhaustion_exits_124(self, db_file, capsys):
        code = main(
            [
                "eval", "--db", db_file, "--query", self.FP_QUERY,
                "--out", "u", "--max-iterations", "1",
            ]
        )
        assert code == 124
        assert "resource exhausted" in capsys.readouterr().err

    def test_max_rows_exits_124(self, db_file, capsys):
        code = main(
            [
                "eval", "--db", db_file, "--query", "E(x, y) | E(y, x)",
                "--max-rows", "1",
            ]
        )
        assert code == 124

    def test_ample_budget_exits_0(self, db_file, capsys):
        code = main(
            [
                "eval", "--db", db_file, "--query", self.FP_QUERY,
                "--out", "u", "--max-iterations", "1000",
                "--max-rows", "1000", "--timeout", "60",
            ]
        )
        assert code == 0

    def test_trace_budget_exits_124(self, db_file, capsys):
        code = main(
            ["trace", self.FP_QUERY, db_file, "--out", "u",
             "--max-iterations", "1"]
        )
        assert code == 124

    def test_datalog_budget_exits_124(self, tmp_path, capsys):
        from repro import Database

        db = Database.from_tuples(
            range(5),
            {"edge": (2, [(i, i + 1) for i in range(4)]), "source": (1, [(0,)])},
        )
        db_path = tmp_path / "g.db"
        db_path.write_text(encode_database(db))
        program = tmp_path / "reach.dl"
        program.write_text(
            "reach(X) :- source(X).\nreach(X) :- edge(Y, X), reach(Y).\n"
        )
        code = main(
            [
                "datalog", "--db", str(db_path), "--program", str(program),
                "--pred", "reach", "--max-iterations", "1",
            ]
        )
        assert code == 124
