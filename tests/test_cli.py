"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.database.encoding import encode_database
from repro.workloads.graphs import labeled_graph, path_graph


@pytest.fixture
def db_file(tmp_path):
    db = labeled_graph(path_graph(4), {"P": [0, 2]})
    path = tmp_path / "graph.db"
    path.write_text(encode_database(db))
    return str(path)


class TestEval:
    def test_relation_output(self, db_file, capsys):
        code = main(["eval", "--db", db_file, "--query", "P(x)", "--out", "x"])
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out[0] == "x"
        assert out[1:] == ["0", "2"]

    def test_sentence_output(self, db_file, capsys):
        code = main(
            ["eval", "--db", db_file, "--query", "exists x. P(x)", "--out"]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "true"

    def test_default_output_vars(self, db_file, capsys):
        code = main(["eval", "--db", db_file, "--query", "E(x, y)"])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "x\ty"
        assert len(lines) == 1 + 3

    def test_fp_with_strategy_and_stats(self, db_file, capsys):
        code = main(
            [
                "eval",
                "--db",
                db_file,
                "--query",
                "[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)",
                "--out",
                "u",
                "--strategy",
                "alternation",
                "--stats",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "language=FP" in captured.err

    def test_parse_error_is_reported(self, db_file, capsys):
        code = main(["eval", "--db", db_file, "--query", "P(x"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        code = main(["eval", "--db", "/nonexistent.db", "--query", "P(x)"])
        assert code == 1


class TestInfo:
    def test_info_fields(self, capsys):
        code = main(
            ["info", "--query", "[lfp S(x). P(x) | S(x)](u)"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "language  : FP" in out
        assert "width (k) : 2" in out
        assert "alt depth : 1" in out


class TestMinimize:
    def test_minimize_path_query(self, capsys):
        code = main(
            [
                "minimize",
                "--query",
                "exists z1. exists z2. (E(x, z1) & E(z1, z2) & E(z2, y))",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "width 4 -> 3" in captured.err


class TestEncode:
    def test_canonicalize_roundtrip(self, db_file, capsys):
        code = main(["encode", "--db", db_file])
        assert code == 0
        text = capsys.readouterr().out.strip()
        with open(db_file) as handle:
            assert text == handle.read().strip()


class TestDatalog:
    def test_run_program(self, tmp_path, capsys):
        from repro import Database

        db = Database.from_tuples(
            range(4),
            {"edge": (2, [(0, 1), (1, 2)]), "source": (1, [(0,)])},
        )
        db_path = tmp_path / "g.db"
        db_path.write_text(encode_database(db))
        program = tmp_path / "reach.dl"
        program.write_text(
            "reach(X) :- source(X).\nreach(X) :- edge(Y, X), reach(Y).\n"
        )
        code = main(
            [
                "datalog",
                "--db",
                str(db_path),
                "--program",
                str(program),
                "--pred",
                "reach",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ["reach(0)", "reach(1)", "reach(2)"]

    def test_unknown_predicate(self, tmp_path, capsys):
        from repro import Database

        db_path = tmp_path / "g.db"
        db_path.write_text(
            encode_database(
                Database.from_tuples(range(2), {"q": (1, [(0,)])})
            )
        )
        program = tmp_path / "p.dl"
        program.write_text("p(X) :- q(X).")
        code = main(
            [
                "datalog",
                "--db",
                str(db_path),
                "--program",
                str(program),
                "--pred",
                "nope",
            ]
        )
        assert code == 1


class TestExitCodes:
    """The documented taxonomy: 0 ok, 1 ReproError, 2 usage, 124 budget."""

    FP_QUERY = "[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)"

    def test_usage_error_exits_2(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["eval"])  # missing required --db/--query
        assert info.value.code == 2

    def test_budget_exhaustion_exits_124(self, db_file, capsys):
        code = main(
            [
                "eval", "--db", db_file, "--query", self.FP_QUERY,
                "--out", "u", "--max-iterations", "1",
            ]
        )
        assert code == 124
        assert "resource exhausted" in capsys.readouterr().err

    def test_max_rows_exits_124(self, db_file, capsys):
        code = main(
            [
                "eval", "--db", db_file, "--query", "E(x, y) | E(y, x)",
                "--max-rows", "1",
            ]
        )
        assert code == 124

    def test_ample_budget_exits_0(self, db_file, capsys):
        code = main(
            [
                "eval", "--db", db_file, "--query", self.FP_QUERY,
                "--out", "u", "--max-iterations", "1000",
                "--max-rows", "1000", "--timeout", "60",
            ]
        )
        assert code == 0

    def test_trace_budget_exits_124(self, db_file, capsys):
        code = main(
            ["trace", self.FP_QUERY, db_file, "--out", "u",
             "--max-iterations", "1"]
        )
        assert code == 124

    def test_datalog_budget_exits_124(self, tmp_path, capsys):
        from repro import Database

        db = Database.from_tuples(
            range(5),
            {"edge": (2, [(i, i + 1) for i in range(4)]), "source": (1, [(0,)])},
        )
        db_path = tmp_path / "g.db"
        db_path.write_text(encode_database(db))
        program = tmp_path / "reach.dl"
        program.write_text(
            "reach(X) :- source(X).\nreach(X) :- edge(Y, X), reach(Y).\n"
        )
        code = main(
            [
                "datalog", "--db", str(db_path), "--program", str(program),
                "--pred", "reach", "--max-iterations", "1",
            ]
        )
        assert code == 124


class TestEvalJson:
    """The --json schema is versioned: additions bump schema_version."""

    FP_QUERY = "[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)"

    def _doc(self, capsys, argv):
        import json

        assert main(argv) == 0
        return json.loads(capsys.readouterr().out)

    def test_schema_keys_are_stable(self, db_file, capsys):
        doc = self._doc(
            capsys,
            ["eval", "--db", db_file, "--query", self.FP_QUERY,
             "--out", "u", "--stats", "--json"],
        )
        assert sorted(doc) == [
            "answer_rows",
            "boolean",
            "language",
            "metrics",
            "output_vars",
            "rows",
            "schema_version",
            "stats",
        ]
        assert doc["schema_version"] == 1
        assert doc["language"] == "FP"
        assert doc["output_vars"] == ["u"]
        assert doc["boolean"] is None
        assert doc["rows"] == [[0], [1], [2], [3]]
        assert doc["answer_rows"] == 4
        assert doc["stats"]["fixpoint_iterations"] >= 1

    def test_metrics_include_table_rows_histogram(self, db_file, capsys):
        doc = self._doc(
            capsys,
            ["eval", "--db", db_file, "--query", self.FP_QUERY,
             "--out", "u", "--stats", "--json"],
        )
        histogram = doc["metrics"]["eval.table_rows"]
        for key in ("count", "p50", "p95", "p99"):
            assert key in histogram

    def test_boolean_query_sets_boolean_field(self, db_file, capsys):
        doc = self._doc(
            capsys,
            ["eval", "--db", db_file, "--query", "exists x. P(x)",
             "--out", "--json"],
        )
        assert doc["boolean"] is True
        assert doc["rows"] == [[]]


class TestSweepPeakRows:
    def test_sweep_reports_peak_rows_column(self, capsys):
        code = main(
            ["sweep", "--query", "E(x, y)", "--sizes", "4", "6"]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        header = lines[0].split()
        assert "peak_rows" in header
        column = header.index("peak_rows")
        for line in lines[1:]:
            assert float(line.split()[column]) > 0


class TestExplain:
    FP_QUERY = "[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)"

    def test_annotated_tree_for_db_query(self, db_file, capsys):
        code = main(
            ["explain", "--db", db_file, "--query", self.FP_QUERY,
             "--out", "u"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "== annotated evaluation tree ==" in out
        assert "LFP" in out
        assert "iterations=" in out

    def test_why_replays_witness(self, db_file, capsys):
        code = main(
            ["explain", "--db", db_file, "--query", self.FP_QUERY,
             "--out", "u", "--why", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "== why (2,) ==" in out
        assert "witness replayed against the database: ok" in out

    def test_why_negative_answer(self, db_file, capsys):
        code = main(
            ["explain", "--db", db_file, "--query", "P(x)",
             "--out", "x", "--why", "1"]
        )
        assert code == 0
        assert "[-]" in capsys.readouterr().out

    def test_report_and_jsonl_files(self, db_file, tmp_path, capsys):
        report = tmp_path / "explain.txt"
        jsonl = tmp_path / "trace.jsonl"
        code = main(
            ["explain", "--db", db_file, "--query", self.FP_QUERY,
             "--out", "u", "--report-file", str(report),
             "--jsonl", str(jsonl)]
        )
        assert code == 0
        assert "annotated evaluation tree" in report.read_text()
        assert jsonl.read_text().strip()

    def test_experiment_target(self, capsys):
        code = main(["explain", "--experiment", "T2-FP", "--size", "6"])
        assert code == 0
        assert "annotated evaluation tree" in capsys.readouterr().out

    def test_requires_db_or_experiment(self, capsys):
        code = main(["explain", "--query", "P(x)"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_progress_heartbeats_on_stderr(self, db_file, capsys):
        code = main(
            ["explain", "--db", db_file, "--query", self.FP_QUERY,
             "--out", "u", "--progress", "--progress-interval", "0"]
        )
        assert code == 0
        assert "[progress]" in capsys.readouterr().err


class TestTraceDiff:
    FP_QUERY = "[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)"

    def _trace(self, db_file, tmp_path, name, backend):
        path = tmp_path / name
        argv = ["trace", self.FP_QUERY, db_file, "--out", "u",
                "--jsonl", str(path)]
        if backend:
            argv += ["--backend", backend]
        assert main(argv) == 0
        return str(path)

    def test_diff_sparse_vs_packed(self, db_file, tmp_path, capsys):
        a = self._trace(db_file, tmp_path, "sparse.jsonl", "sparse")
        b = self._trace(db_file, tmp_path, "packed.jsonl", "packed")
        capsys.readouterr()  # discard trace reports
        code = main(["trace", "diff", a, b])
        assert code == 0
        out = capsys.readouterr().out
        assert "sparse.jsonl" in out
        assert "only in packed.jsonl" in out
        assert "total self:" in out

    def test_diff_labels_and_top(self, db_file, tmp_path, capsys):
        a = self._trace(db_file, tmp_path, "a.jsonl", None)
        b = self._trace(db_file, tmp_path, "b.jsonl", None)
        capsys.readouterr()
        code = main(
            ["trace-diff", a, b, "--label-a", "base", "--label-b", "new",
             "--top", "3"]
        )
        assert code == 0
        assert "count base" in capsys.readouterr().out

    def test_missing_trace_file_errors(self, tmp_path, capsys):
        existing = tmp_path / "x.jsonl"
        existing.write_text('{"name": "a", "duration": 1}\n')
        code = main(["trace", "diff", str(existing), "/nonexistent.jsonl"])
        assert code == 1
        assert "error:" in capsys.readouterr().err
