"""The differential test harness: optimized evaluation vs the reference.

The performance layer (semi-naive fixpoints + the subquery cache,
``src/repro/perf/``) is only shippable because this suite pins it
tuple-for-tuple to the reference semantics: for a corpus of FO^k/FP^k
queries over seeded random databases, the optimized configuration
(``SEMINAIVE`` strategy + shared :class:`~repro.perf.SubqueryCache`)
must produce exactly the relations that ``naive_eval`` and the naive
iteration strategy produce.  Cross-engine checks pit Datalog semi-naive
against naive rule firing and against the FP translation of the same
program.

The full corpus sweep is marked ``slow`` (it re-evaluates every query
four ways over several databases); the CI fast lane skips it while the
main lane and the default tier-1 run keep it.
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import EvalOptions, evaluate
from repro.core.fp_eval import FixpointStrategy
from repro.core.naive_eval import naive_answer
from repro.database.database import Database
from repro.datalog import evaluate_program, parse_program, semi_naive
from repro.datalog.to_fp import program_to_fp_query
from repro.logic.parser import parse_formula
from repro.perf import SubqueryCache

#: (query text, output variables) — FO^3 over the standard test schema.
FO_CORPUS = [
    ("exists y. E(x, y)", ("x",)),
    ("forall y. (~E(x, y) | P(y))", ("x",)),
    ("exists y. (E(x, y) & exists x. (E(y, x) & Q(x)))", ("x",)),
    ("P(x) & ~Q(x)", ("x",)),
    ("exists x. exists y. (E(x, y) & E(y, x))", ()),
    ("forall x. (P(x) | Q(x) | exists y. E(x, y))", ()),
    ("exists y. (E(x, y) & (P(y) | exists z. (E(y, z) & Q(z))))", ("x",)),
]

#: FP^k corpus: ascending, descending, and nested/repeated fixpoints.
FP_CORPUS = [
    (
        "[lfp S(x, y). E(x, y) | exists z. (E(x, z) & S(z, y))](u, v)",
        ("u", "v"),
    ),
    ("[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)", ("u",)),
    ("[gfp S(x). P(x) & exists y. (E(x, y) & S(y))](u)", ("u",)),
    (
        "[lfp S(x). Q(x) | forall y. (~E(x, y) | S(y))](u)",
        ("u",),
    ),
    (
        # repeated subtree: the second occurrence is structurally equal,
        # so the shared cache serves it without re-evaluation
        "[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u) & "
        "([lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u) | Q(u))",
        ("u",),
    ),
    (
        "[lfp T(x). [lfp S(y). P(y) | exists z. (E(z, y) & S(z))](x) "
        "| exists y. (E(x, y) & T(y))](u)",
        ("u",),
    ),
]


def _random_db(rng: random.Random, n: int) -> Database:
    return Database.from_tuples(
        range(n),
        {
            "E": (
                2,
                [
                    (i, j)
                    for i in range(n)
                    for j in range(n)
                    if rng.random() < 0.4
                ],
            ),
            "P": (1, [(i,) for i in range(n) if rng.random() < 0.5]),
            "Q": (1, [(i,) for i in range(n) if rng.random() < 0.4]),
        },
    )


def _optimized(cache: SubqueryCache) -> EvalOptions:
    return EvalOptions(
        strategy=FixpointStrategy.SEMINAIVE, subquery_cache=cache
    )


@pytest.mark.slow
def test_corpus_optimized_equals_reference():
    """Every corpus query, on several random databases: semi-naive with a
    shared cache == naive strategy == brute-force reference — and the
    optimizations demonstrably *engaged* (≥1 cache hit, ≥1 delta round)."""
    rng = random.Random(20260805)
    cache = SubqueryCache()
    delta_rounds = 0
    for text, out in FO_CORPUS + FP_CORPUS:
        formula = parse_formula(text)
        for _ in range(3):
            db = _random_db(rng, rng.randint(2, 4))
            reference = naive_answer(formula, db, out)
            naive = evaluate(
                formula, db, out,
                EvalOptions(strategy=FixpointStrategy.NAIVE),
            ).relation
            assert naive == reference, (text, db)
            # twice per database: the repeat exercises cross-evaluation
            # cache hits and must be byte-identical to the first pass
            for _ in range(2):
                result = evaluate(formula, db, out, _optimized(cache))
                assert result.relation == reference, (text, db)
                delta_rounds += result.stats.notes.get(
                    "seminaive_delta_rounds", 0
                )
    assert cache.hits >= 1
    assert delta_rounds >= 1


def test_seminaive_matches_naive_on_transitive_closure(tiny_graph):
    """Fast-lane anchor: the canonical delta-paying query, all strategies."""
    text = "[lfp S(x, y). E(x, y) | exists z. (E(x, z) & S(z, y))](u, v)"
    formula = parse_formula(text)
    out = ("u", "v")
    reference = naive_answer(formula, tiny_graph, out)
    for strategy in (
        FixpointStrategy.NAIVE,
        FixpointStrategy.MONOTONE,
        FixpointStrategy.SEMINAIVE,
    ):
        result = evaluate(
            formula, tiny_graph, out, EvalOptions(strategy=strategy)
        )
        assert result.relation == reference, strategy
    semi = evaluate(
        formula, tiny_graph, out,
        EvalOptions(strategy=FixpointStrategy.SEMINAIVE),
    )
    assert semi.stats.notes["seminaive_delta_rounds"] >= 1


def test_cached_evaluation_is_pure(tiny_graph):
    """A shared cache never changes answers, only work: the same query
    evaluated repeatedly — interleaved with a *different* database using
    the same cache — stays equal to the uncached answer every time."""
    text = "[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)"
    formula = parse_formula(text)
    other = _random_db(random.Random(7), 3)
    cache = SubqueryCache()
    expected = {
        id(db): naive_answer(formula, db, ("u",))
        for db in (tiny_graph, other)
    }
    for _ in range(3):
        for db in (tiny_graph, other):
            result = evaluate(formula, db, ("u",), _optimized(cache))
            assert result.relation == expected[id(db)]
    assert cache.hits >= 1


DATALOG_TC = """
reach(X, Y) :- E(X, Y).
reach(X, Y) :- E(X, Z), reach(Z, Y).
"""

DATALOG_LABELED = """
good(X) :- P(X).
good(X) :- E(Y, X), good(Y).
"""


@pytest.mark.slow
@pytest.mark.parametrize("text", [DATALOG_TC, DATALOG_LABELED])
def test_datalog_semi_naive_matches_naive(text):
    rng = random.Random(99)
    program = parse_program(text)
    for _ in range(5):
        db = _random_db(rng, rng.randint(2, 5))
        assert semi_naive(program, db) == evaluate_program(program, db)


@pytest.mark.parametrize("text", [DATALOG_TC, DATALOG_LABELED])
def test_fp_translation_cross_engine(text):
    """The same recursion three ways: Datalog semi-naive, Datalog naive,
    and the FP^k translation under the semi-naive FP strategy."""
    rng = random.Random(41)
    program = parse_program(text)
    query = program_to_fp_query(program)
    predicate = next(iter(program.idb_predicates()))
    for _ in range(3):
        db = _random_db(rng, rng.randint(2, 4))
        from_datalog = semi_naive(program, db)[predicate]
        assert from_datalog == evaluate_program(program, db)[predicate]
        from_fp = query.run(
            db, EvalOptions(strategy=FixpointStrategy.SEMINAIVE)
        ).relation
        assert from_fp == from_datalog
