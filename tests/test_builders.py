"""Tests for the formula-building DSL (repro.logic.builders)."""

import pytest

from repro.core.naive_eval import holds, naive_answer
from repro.logic.builders import (
    C,
    V,
    and_,
    atom,
    eq,
    exists,
    false_,
    forall,
    gfp,
    iff,
    ifp,
    implies,
    lfp,
    neq,
    not_,
    or_,
    pfp,
    so_exists,
    true_,
)
from repro.logic.syntax import And, Const, Exists, Forall, GFP, IFP, LFP, Not, Or, PFP, Truth, Var


class TestTermHelpers:
    def test_v_and_c(self):
        assert V("x") == Var("x")
        assert C(3) == Const(3)

    def test_atom_promotes_strings(self):
        a = atom("E", "x", C(3))
        assert a.terms == (Var("x"), Const(3))

    def test_eq_and_neq(self):
        assert neq("x", "y") == Not(eq("x", "y"))


class TestConnectives:
    def test_and_flattens(self):
        phi = and_(and_(atom("P", "x"), atom("Q", "x")), atom("P", "y"))
        assert isinstance(phi, And)
        assert len(phi.subs) == 3

    def test_and_drops_true(self):
        assert and_(atom("P", "x"), true_()) == atom("P", "x")

    def test_or_flattens_and_drops_false(self):
        phi = or_(or_(atom("P", "x"), atom("Q", "x")), false_())
        assert isinstance(phi, Or)
        assert len(phi.subs) == 2

    def test_single_operand_unwrapped(self):
        assert and_(atom("P", "x")) == atom("P", "x")
        assert or_(atom("P", "x")) == atom("P", "x")

    def test_implies_desugars(self):
        phi = implies(atom("P", "x"), atom("Q", "x"))
        assert isinstance(phi, Or)
        assert isinstance(phi.subs[0], Not)

    def test_iff_semantics(self, tiny_graph):
        phi = iff(atom("P", "x"), atom("Q", "x"))
        for v in range(tiny_graph.size()):
            p = (v,) in tiny_graph.relation("P")
            q = (v,) in tiny_graph.relation("Q")
            assert holds(phi, tiny_graph, {"x": v}) == (p == q)


class TestQuantifierHelpers:
    def test_single_name(self):
        phi = exists("x", atom("P", "x"))
        assert isinstance(phi, Exists)

    def test_sequence_of_names_nests_in_order(self):
        phi = forall(["x", "y"], atom("E", "x", "y"))
        assert isinstance(phi, Forall) and phi.var == Var("x")
        assert isinstance(phi.sub, Forall) and phi.sub.var == Var("y")

    def test_empty_sequence_is_identity(self):
        body = atom("P", "x")
        assert exists([], body) is body


class TestFixpointHelpers:
    @pytest.mark.parametrize(
        "maker,node", [(lfp, LFP), (gfp, GFP), (pfp, PFP), (ifp, IFP)]
    )
    def test_each_kind(self, maker, node):
        phi = maker("S", ["x"], atom("S", "x"), ["u"])
        assert isinstance(phi, node)
        assert phi.bound_vars == (Var("x"),)
        assert phi.args == (Var("u"),)

    def test_constants_as_fixpoint_args(self, tiny_graph):
        phi = lfp(
            "S",
            ["x"],
            or_(atom("P", "x"), exists("y", and_(atom("E", "y", "x"), atom("S", "y")))),
            [C(3)],
        )
        assert holds(phi, tiny_graph) == (
            (3,) in naive_answer(
                lfp(
                    "S",
                    ["x"],
                    or_(
                        atom("P", "x"),
                        exists("y", and_(atom("E", "y", "x"), atom("S", "y"))),
                    ),
                    ["u"],
                ),
                tiny_graph,
                ("u",),
            )
        )


class TestSecondOrderHelper:
    def test_so_exists(self):
        phi = so_exists("R", 2, atom("R", "x", "y"))
        assert phi.arity == 2
        assert phi.rel == "R"
