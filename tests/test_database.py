"""Tests for repro.database.database and .schema."""

import pytest

from repro.database import Database, DatabaseSchema, Domain, Relation, RelationSchema
from repro.errors import SchemaError


class TestSchema:
    def test_from_arities(self):
        s = DatabaseSchema.from_arities({"E": 2, "P": 1})
        assert s.arity_of("E") == 2
        assert s.max_arity() == 2
        assert s.arities() == (2, 1)
        assert "P" in s and "R" not in s

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([RelationSchema("E", 2), RelationSchema("E", 1)])

    def test_bad_names_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", 1)
        with pytest.raises(SchemaError):
            RelationSchema("has space", 1)

    def test_unknown_relation(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([]).arity_of("E")


class TestDatabase:
    def test_from_tuples(self):
        db = Database.from_tuples(range(3), {"E": (2, [(0, 1)])})
        assert db.size() == 3
        assert db.relation("E").arity == 2
        assert db.total_tuples() == 1

    def test_domain_violation_rejected(self):
        with pytest.raises(SchemaError):
            Database(Domain.range(2), {"E": Relation(2, [(0, 5)])})

    def test_with_relation_is_functional(self):
        db = Database.from_tuples(range(2), {"E": (2, [])})
        db2 = db.with_relation("E", Relation(2, [(0, 1)]))
        assert len(db.relation("E")) == 0
        assert len(db2.relation("E")) == 1

    def test_with_relation_can_add_new(self):
        db = Database.from_tuples(range(2), {})
        db2 = db.with_relation("S", Relation(1, [(0,)]))
        assert "S" in db2.relation_names()

    def test_without_relation(self):
        db = Database.from_tuples(range(2), {"E": (2, []), "P": (1, [])})
        db2 = db.without_relation("P")
        assert db2.relation_names() == ("E",)
        with pytest.raises(SchemaError):
            db.without_relation("missing")

    def test_unknown_relation(self):
        db = Database.from_tuples(range(2), {})
        with pytest.raises(SchemaError):
            db.relation("E")

    def test_equality_and_hash(self):
        a = Database.from_tuples(range(2), {"E": (2, [(0, 1)])})
        b = Database.from_tuples(range(2), {"E": (2, [(0, 1)])})
        assert a == b
        assert hash(a) == hash(b)

    def test_nontrivial_per_footnote_4(self):
        # needs >= 2 elements and a relation that is neither empty nor full
        assert Database.from_tuples(
            range(2), {"P": (1, [(0,)])}
        ).is_nontrivial()
        assert not Database.from_tuples(range(1), {"P": (1, [(0,)])}).is_nontrivial()
        assert not Database.from_tuples(
            range(2), {"P": (1, [(0,), (1,)])}
        ).is_nontrivial()
        assert not Database.from_tuples(range(2), {"P": (1, [])}).is_nontrivial()
