"""HTTP front-end tests: routes, error mapping, and the CLI smoke drill."""

import asyncio
import re

from repro.guard.budget import Budget
from repro.serve.admission import TenantPolicy
from repro.serve.cli import TC_QUERY, _http_json
from repro.serve.http import ServeHTTP
from repro.serve.retry import RetryPolicy
from repro.serve.service import QueryService

from repro.cli import main

PATH_DB = {
    "name": "g",
    "domain": list(range(5)),
    "relations": {"E": {"arity": 2, "tuples": [[i, i + 1] for i in range(4)]}},
}


def serve(test_body, **service_kwargs):
    """Run ``test_body(host, port, service)`` against a live server."""
    service_kwargs.setdefault("retry", RetryPolicy(base_delay=0.0, jitter=0.0))
    service = QueryService(**service_kwargs)

    async def main_coro():
        server = ServeHTTP(service)
        host, port = await server.start()
        try:
            await test_body(host, port, service)
        finally:
            await server.close()
            service.close()

    asyncio.run(asyncio.wait_for(main_coro(), timeout=60))


class TestRoutes:
    def test_healthz_register_prepare_call_mutate(self):
        async def body(host, port, service):
            status, out = await _http_json(host, port, "GET", "/healthz")
            assert (status, out) == (200, {"ok": True})

            status, out = await _http_json(
                host, port, "POST", "/register", PATH_DB
            )
            assert status == 200 and out["registered"] == "g"

            status, out = await _http_json(
                host, port, "POST", "/prepare",
                {"name": "tc", "query": TC_QUERY, "output_vars": ["u", "v"]},
            )
            assert status == 200 and out["width"] >= 2

            status, out = await _http_json(
                host, port, "POST", "/call",
                {"tenant": "t0", "query": "tc", "db": "g"},
            )
            assert status == 200
            rows = sorted(tuple(r) for r in out["rows"])
            assert (0, 4) in rows and (4, 0) not in rows
            assert out["served_by"] == "inline"

            status, out = await _http_json(
                host, port, "POST", "/mutate",
                {"db": "g", "op": "add", "relation": "E", "values": [4, 0]},
            )
            assert status == 200 and out["applied"] is True

            status, out = await _http_json(
                host, port, "POST", "/call",
                {"query": "tc", "db": "g"},
            )
            rows = sorted(tuple(r) for r in out["rows"])
            assert (4, 0) in rows  # the mutation is visible immediately

            status, out = await _http_json(host, port, "GET", "/stats")
            assert status == 200
            assert out["metrics"]["serve.ok"] == 2

        serve(body)

    def test_chaos_body_drives_retries(self):
        async def body(host, port, service):
            await _http_json(host, port, "POST", "/register", PATH_DB)
            await _http_json(
                host, port, "POST", "/prepare",
                {"name": "tc", "query": TC_QUERY, "output_vars": ["u", "v"]},
            )
            status, out = await _http_json(
                host, port, "POST", "/call",
                {
                    "tenant": "t0", "query": "tc", "db": "g",
                    "chaos": {"seed": 1, "fail_at": 1},
                },
            )
            # a persistent chaos policy exhausts retries → structured 429
            assert status == 429
            assert out["reason"] == "retries-exhausted"

        serve(body)


class TestErrorMapping:
    def test_429_overloaded_with_retry_after_header(self):
        async def body(host, port, service):
            await _http_json(host, port, "POST", "/register", PATH_DB)
            await _http_json(
                host, port, "POST", "/prepare",
                {"name": "tc", "query": TC_QUERY, "output_vars": ["u", "v"]},
            )

            async def raw_call():
                reader, writer = await asyncio.open_connection(host, port)
                payload = (
                    b'{"tenant": "t0", "query": "tc", "db": "g"}'
                )
                writer.write(
                    b"POST /call HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: %d\r\nConnection: close\r\n\r\n"
                    % len(payload) + payload
                )
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                writer.close()
                return head.decode("latin-1")

            # hold the only slot so every arriving request overflows the
            # zero-length queue (inline evaluation never yields the loop,
            # so overlap has to be manufactured)
            await service.admission.admit("blocker")
            try:
                heads = await asyncio.gather(*[raw_call() for _ in range(3)])
            finally:
                service.admission.release(None)
            assert all("429" in h.split("\r\n")[0] for h in heads), heads
            assert all("Retry-After:" in h for h in heads)

        serve(body, max_concurrency=1, max_queue=0)

    def test_503_resource_exhausted(self):
        async def body(host, port, service):
            await _http_json(host, port, "POST", "/register", PATH_DB)
            await _http_json(
                host, port, "POST", "/prepare",
                {"name": "tc", "query": TC_QUERY, "output_vars": ["u", "v"]},
            )
            service.set_tenant(
                "tight", TenantPolicy(budget=Budget(max_rows=1))
            )
            status, out = await _http_json(
                host, port, "POST", "/call",
                {"tenant": "tight", "query": "tc", "db": "g"},
            )
            assert status == 503
            assert out["error"] == "resource-exhausted"
            assert out["kind"] == "rows"
            assert out["limit"] == 1

        serve(body)

    def test_400_on_bad_bodies_and_unknown_names(self):
        async def body(host, port, service):
            status, out = await _http_json(
                host, port, "POST", "/call", {"query": "no", "db": "no"}
            )
            assert status == 400  # unknown prepared query

            status, out = await _http_json(
                host, port, "POST", "/register", {"name": "x"}
            )
            assert status == 400  # malformed database body

            status, out = await _http_json(
                host, port, "POST", "/prepare",
                {"name": "bad", "query": "E(x,", "output_vars": ["x"]},
            )
            assert status == 400  # parse error

        serve(body)

    def test_404_and_405(self):
        async def body(host, port, service):
            status, _ = await _http_json(host, port, "POST", "/nope", {})
            assert status == 404
            status, _ = await _http_json(host, port, "GET", "/call")
            assert status == 405

        serve(body)


class TestCLISmoke:
    def test_smoke_drill_inline(self, capsys):
        code = main(
            ["serve", "--smoke", "12", "--crash-at", "0", "--max-queue", "32"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "smoke: OK" in out

    def test_smoke_drill_with_injected_crash_and_telemetry(
        self, capsys, tmp_path
    ):
        telemetry = tmp_path / "serve.jsonl"
        code = main(
            [
                "serve", "--smoke", "10", "--workers", "1",
                "--crash-at", "3", "--max-queue", "32",
                "--telemetry", str(telemetry),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "smoke: OK" in out
        retries = re.search(r"retries=([\d.]+)", out)
        assert retries and float(retries.group(1)) >= 1
        assert telemetry.exists()
        assert len(telemetry.read_text().splitlines()) == 10
