"""Cross-cutting edge cases: nullary relations, constants, degenerate
domains, deeply mixed formulas — the corners each subsystem must share.
"""

import pytest

from repro import Database, EvalOptions, FixpointStrategy, Query, evaluate
from repro.core.naive_eval import holds, naive_answer
from repro.errors import EvaluationError
from repro.logic.parser import parse_formula
from repro.logic.serialize import formula_dumps, formula_loads


class TestNullaryRelations:
    def _db(self, flag: bool) -> Database:
        return Database.from_tuples(
            range(2), {"T": (0, [()] if flag else []), "P": (1, [(0,)])}
        )

    def test_nullary_atom_in_fo(self):
        phi = parse_formula("T() & exists x. P(x)")
        assert evaluate(phi, self._db(True)).as_bool() is True
        assert evaluate(phi, self._db(False)).as_bool() is False

    def test_nullary_atom_agrees_with_reference(self):
        phi = parse_formula("T() | ~T()")
        for flag in (True, False):
            db = self._db(flag)
            assert evaluate(phi, db).as_bool() == holds(phi, db)

    def test_nullary_fixpoint(self):
        # a 0-ary lfp: S ← T() ∨ S — true iff T holds
        phi = parse_formula("[lfp S(). T() | S()]()")
        assert evaluate(phi, self._db(True)).as_bool() is True
        assert evaluate(phi, self._db(False)).as_bool() is False

    def test_nullary_second_order(self):
        phi = parse_formula("exists2 R/0. (R() & ~T())")
        assert evaluate(phi, self._db(False)).as_bool() is True


class TestSingletonDomain:
    def test_everything_on_one_element(self):
        db = Database.from_tuples([7], {"E": (2, [(7, 7)]), "P": (1, [])})
        cases = {
            "forall x. forall y. x = y": True,
            "exists x. E(x, x)": True,
            "exists x. P(x)": False,
            "[lfp S(x). E(x, x) | S(x)](u)": None,  # evaluated below
        }
        for text, expected in cases.items():
            phi = parse_formula(text)
            if expected is None:
                ans = evaluate(phi, db, ("u",)).relation
                assert ans == naive_answer(phi, db, ("u",))
            else:
                assert evaluate(phi, db).as_bool() is expected


class TestConstantsEverywhere:
    def test_constants_in_all_engines(self, tiny_graph):
        fo = parse_formula("E(0, x) & ~P(x)")
        assert evaluate(fo, tiny_graph, ("x",)).relation == naive_answer(
            fo, tiny_graph, ("x",)
        )
        fp = parse_formula("[lfp S(x). x = 0 | exists y. (E(y, x) & S(y))](u)")
        for strategy in FixpointStrategy:
            got = evaluate(
                fp, tiny_graph, ("u",), EvalOptions(strategy=strategy)
            ).relation
            assert got == naive_answer(fp, tiny_graph, ("u",)), strategy
        eso = parse_formula("exists2 R/1. (R(0) & forall x. (~R(x) | P(x)))")
        assert evaluate(eso, tiny_graph).as_bool() == holds(eso, tiny_graph)

    def test_constant_not_in_domain(self, tiny_graph):
        phi = parse_formula("x = 99")
        assert len(evaluate(phi, tiny_graph, ("x",)).relation) == 0


class TestMixedDeepFormulas:
    def test_fo_wrapping_fixpoints(self, tiny_graph):
        # fixpoints under conjunction/negation at the top level
        phi = parse_formula(
            "~[lfp S(x). P(x) | S(x)](u) & "
            "[gfp T(x). exists y. (E(x, y) & T(y))](u)"
        )
        for strategy in FixpointStrategy:
            got = evaluate(
                phi, tiny_graph, ("u",), EvalOptions(strategy=strategy)
            ).relation
            assert got == naive_answer(phi, tiny_graph, ("u",)), strategy

    def test_fixpoint_applied_at_repeated_variable(self, tiny_graph):
        phi = parse_formula("[lfp S(x, y). E(x, y) | E(y, x)](u, u)")
        assert evaluate(phi, tiny_graph, ("u",)).relation == naive_answer(
            phi, tiny_graph, ("u",)
        )

    def test_two_independent_fixpoints_in_one_body(self, tiny_graph):
        phi = parse_formula(
            "[lfp S(x). P(x) | S(x)](u) | [lfp T(x). Q(x) | T(x)](u)"
        )
        got = evaluate(
            phi, tiny_graph, ("u",), EvalOptions(strategy=FixpointStrategy.ALTERNATION)
        ).relation
        assert got == naive_answer(phi, tiny_graph, ("u",))

    def test_serialize_evaluate_pipeline(self, tiny_graph):
        phi = parse_formula(
            "[gfp S(x). [lfp T(z). forall y. (~E(z, y) | S(y) | "
            "(P(y) & T(y)))](x)](u)"
        )
        reloaded = formula_loads(formula_dumps(phi))
        assert evaluate(reloaded, tiny_graph, ("u",)).relation == evaluate(
            phi, tiny_graph, ("u",)
        ).relation


class TestBinaryFixpoints:
    def test_transitive_closure_arity_two(self, tiny_graph):
        phi = parse_formula(
            "[lfp S(x, y). E(x, y) | exists z. (E(x, z) & S(z, y))](u, v)"
        )
        for strategy in FixpointStrategy:
            got = evaluate(
                phi, tiny_graph, ("u", "v"), EvalOptions(strategy=strategy)
            ).relation
            assert got == naive_answer(phi, tiny_graph, ("u", "v")), strategy

    def test_certificates_for_binary_fixpoints(self, tiny_graph):
        from repro.core.certificates import extract_membership, verify_membership

        phi = parse_formula(
            "[lfp S(x, y). E(x, y) | exists z. (E(x, z) & S(z, y))](u, v)"
        )
        answer = naive_answer(phi, tiny_graph, ("u", "v"))
        member = next(iter(sorted(answer.tuples)))
        cert = extract_membership(phi, tiny_graph, ("u", "v"), member)
        assert cert is not None and verify_membership(cert, phi, tiny_graph)


class TestQueryObjectEdges:
    def test_zero_arity_query_repr(self):
        q = Query.parse("exists x. P(x)")
        assert "Query" in repr(q)

    def test_run_with_default_options(self, tiny_graph):
        q = Query.parse("P(x)", output_vars=("x",))
        assert q.run(tiny_graph).relation == q.run(
            tiny_graph, EvalOptions()
        ).relation
