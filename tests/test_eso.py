"""Tests for ESO^k: Lemma 3.6 rewriting, grounding, SAT-backed evaluation."""

import pytest
from hypothesis import given, settings

from repro.core.eso_eval import eso_answer, eso_decide, grounded_cnf
from repro.core.eso_rewrite import reconstruct_relation, rewrite_eso
from repro.core.grounding import ground_formula
from repro.core.naive_eval import holds, naive_answer
from repro.database import Database, Relation
from repro.errors import EvaluationError
from repro.logic.analysis import max_so_arity
from repro.logic.parser import parse_formula
from repro.logic.variables import variable_width
from repro.workloads.graphs import cycle_graph, path_graph

from tests.conftest import databases

TWO_COLOR = parse_formula(
    "exists2 R/1. forall x. forall y. "
    "(~E(x, y) | (R(x) & ~R(y)) | (~R(x) & R(y)))"
)


class TestRewrite:
    def test_paper_example_patterns(self):
        # k = 2, S 4-ary, atoms S(x1,x1,x2,x2) and S(x1,x2,x1,x2)
        phi = parse_formula(
            "exists2 S/4. (S(x1, x1, x2, x2) & S(x1, x2, x1, x2))"
        )
        result = rewrite_eso(phi)
        assert len(result.views) == 2
        assert max_so_arity(result.formula) <= 2
        assert all(v.arity == 2 for v in result.views)

    def test_width_not_increased(self):
        phi = parse_formula("exists2 S/3. S(x, y, x) & E(x, y)")
        result = rewrite_eso(phi)
        assert variable_width(result.formula) <= variable_width(phi)

    def test_vacuous_quantifier_dropped(self):
        phi = parse_formula("exists2 S/2. E(x, y)")
        result = rewrite_eso(phi)
        assert result.views == ()
        assert result.formula == parse_formula("E(x, y)")

    def test_single_pattern_no_axioms_needed(self):
        phi = parse_formula("exists2 S/2. exists x. exists y. S(x, y)")
        result = rewrite_eso(phi)
        assert len(result.views) == 1

    @given(databases(max_size=3))
    @settings(max_examples=15)
    def test_rewrite_preserves_semantics(self, db):
        phi = parse_formula(
            "exists2 S/2. forall x. ((~P(x) | S(x, x)) & "
            "(forall y. (~S(x, y) | ~E(x, y))))"
        )
        rewritten = rewrite_eso(phi).formula
        assert holds(phi, db, so_budget=16) == holds(
            rewritten, db, so_budget=16
        )

    def test_reconstruct_relation(self):
        phi = parse_formula("exists2 S/2. S(x, y)")
        result = rewrite_eso(phi)
        view = result.views[0]
        values = {view.view_name: Relation(2, [(0, 1)])}
        from repro.database.domain import Domain

        rebuilt = reconstruct_relation(
            result.views, values, 2, Domain.range(2)
        )
        assert (0, 1) in rebuilt


class TestGrounding:
    def test_ground_truth_values(self, tiny_graph):
        prop = ground_formula(parse_formula("exists x. P(x)"), tiny_graph)
        from repro.sat.tseitin import to_cnf
        from repro.sat.dpll import solve

        cnf, _ = to_cnf(prop)
        assert solve(cnf).satisfiable

    def test_free_variables_need_assignment(self, tiny_graph):
        with pytest.raises(EvaluationError):
            ground_formula(parse_formula("P(x)"), tiny_graph)

    def test_negative_so_rejected(self, tiny_graph):
        phi = parse_formula("~exists2 R/1. R(x)")
        with pytest.raises(EvaluationError):
            ground_formula(phi, tiny_graph, {"x": 0})

    def test_fixpoint_rejected(self, tiny_graph):
        with pytest.raises(EvaluationError):
            ground_formula(
                parse_formula("[lfp S(x). S(x)](u)"), tiny_graph, {"u": 0}
            )


class TestEsoEvaluation:
    def test_two_colorability(self):
        assert eso_decide(TWO_COLOR, path_graph(5)).truth
        assert not eso_decide(TWO_COLOR, cycle_graph(5)).truth
        assert eso_decide(TWO_COLOR, cycle_graph(6)).truth

    def test_rewrite_toggle_agrees(self):
        for db in (path_graph(4), cycle_graph(3)):
            with_rw = eso_decide(TWO_COLOR, db, use_rewrite=True)
            without = eso_decide(TWO_COLOR, db, use_rewrite=False)
            assert with_rw.truth == without.truth

    @given(databases(max_size=3))
    @settings(max_examples=15)
    def test_agreement_with_naive_enumeration(self, db):
        phi = parse_formula(
            "exists2 R/1. forall x. ((~P(x) | R(x)) & "
            "forall y. (~R(x) | ~E(x, y) | R(y)))"
        )
        expected = holds(phi, db, so_budget=16)
        assert eso_decide(phi, db).truth == expected

    def test_answer_relation(self, tiny_graph):
        # vertices x admitting a set containing x and disjoint from P
        phi = parse_formula("exists2 R/1. (R(x) & forall y. (~R(y) | ~P(y)))")
        got = eso_answer(phi, tiny_graph, ("x",))
        expected = naive_answer(phi, tiny_graph, ("x",))
        assert got == expected

    def test_model_returned_when_sat(self):
        outcome = eso_decide(TWO_COLOR, path_graph(3))
        assert outcome.model is not None
        coloring = {
            key[1][0]: value
            for key, value in outcome.model.items()
            if isinstance(key, tuple) and value and key[0].startswith("_view")
        }
        # adjacent vertices must differ in the extracted coloring
        for u, v in path_graph(3).relation("E").tuples:
            assert coloring.get(u, False) != coloring.get(v, False)


class TestEncodingSizes:
    def test_grounding_stays_polynomial_despite_high_arity(self):
        """Lemma 3.6's key observation, realized two ways.

        "Only a polynomial-size fragment of the quantified relation is
        used in evaluating ψ": the explicit rewriting makes that
        syntactic (view arity ≤ k); the lazy grounder makes it
        operational (a propositional variable exists only for ground
        tuples some atom actually references).  Either way the encoding
        must stay far below the ``n^arity`` guessing space of the naive
        Section 3.3 approach (here ``3^6 = 729`` potential tuples,
        ``2^729`` candidate relations).
        """
        phi = parse_formula(
            "exists2 S/6. forall x. forall y. "
            "(~E(x, y) | S(x, y, x, y, x, y) | S(y, x, y, x, y, x))"
        )
        db = path_graph(3)
        n = db.size()
        with_rw, rewrite = grounded_cnf(phi, db, use_rewrite=True)
        without, _ = grounded_cnf(phi, db, use_rewrite=False)
        assert without.num_vars < n**6
        assert with_rw.num_vars < n**6
        # the rewriting additionally caps the *declared* relation arity
        assert max_so_arity(rewrite.formula) <= 2
        assert max_so_arity(phi) == 6

    def test_rewrite_and_lazy_grounding_decide_alike(self):
        phi = parse_formula(
            "exists2 S/6. forall x. forall y. "
            "(~E(x, y) | S(x, y, x, y, x, y) | S(y, x, y, x, y, x))"
        )
        for db in (path_graph(3), cycle_graph(3)):
            assert (
                eso_decide(phi, db, use_rewrite=True).truth
                == eso_decide(phi, db, use_rewrite=False).truth
            )
