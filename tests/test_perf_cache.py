"""Unit tests for the SubqueryCache: LRU bounds, invalidation, metrics."""

from __future__ import annotations

import pytest

from repro.core.engine import EvalOptions, evaluate
from repro.core.interp import VarTable
from repro.database.database import Database
from repro.logic.parser import parse_formula
from repro.obs.metrics import MetricsRegistry
from repro.perf import SubqueryCache
from repro.perf.cache import resolve_subquery_cache


def _db(n=3):
    return Database.from_tuples(
        range(n), {"E": (2, [(i, i + 1) for i in range(n - 1)])}
    )


def _key(cache, text, db):
    return cache.key_for(parse_formula(text), {}, db)


def _table(rows):
    return VarTable(("x",), [(r,) for r in rows])


class TestLRUBounds:
    def test_max_entries_evicts_least_recently_used(self):
        cache = SubqueryCache(max_entries=2)
        db = _db()
        keys = [
            _key(cache, text, db)
            for text in ("exists y. E(x, y)", "E(x, x)", "~E(x, x)")
        ]
        cache.put(keys[0], _table([0]))
        cache.put(keys[1], _table([1]))
        assert cache.get(keys[0]) is not None  # refresh: [1] is now LRU
        cache.put(keys[2], _table([2]))
        assert cache.evictions == 1
        assert cache.get(keys[1]) is None  # the unrefreshed entry went
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[2]) is not None
        assert len(cache) == 2

    def test_max_total_rows_bounds_retained_tuples(self):
        cache = SubqueryCache(max_entries=100, max_total_rows=5)
        db = _db(8)
        k1 = _key(cache, "E(x, x)", db)
        k2 = _key(cache, "~E(x, x)", db)
        cache.put(k1, _table(range(3)))
        cache.put(k2, _table(range(3)))  # 6 rows total > 5: k1 evicted
        assert cache.evictions == 1
        assert cache.total_rows == 3
        assert cache.get(k1) is None

    def test_oversized_table_is_not_retained(self):
        cache = SubqueryCache(max_total_rows=2)
        db = _db(8)
        k1 = _key(cache, "E(x, x)", db)
        k2 = _key(cache, "~E(x, x)", db)
        cache.put(k2, _table([0]))
        cache.put(k1, _table(range(5)))  # larger than the whole budget
        assert cache.get(k1) is None
        assert cache.get(k2) is not None  # and it displaced nothing

    def test_replacing_an_entry_does_not_double_count_rows(self):
        cache = SubqueryCache()
        key = _key(cache, "E(x, x)", _db())
        cache.put(key, _table(range(4)))
        cache.put(key, _table(range(2)))
        assert cache.total_rows == 2
        assert len(cache) == 1

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            SubqueryCache(max_entries=0)


class TestInvalidation:
    def test_invalidate_all(self):
        cache = SubqueryCache()
        db = _db()
        k1 = _key(cache, "E(x, x)", db)
        k2 = _key(cache, "~E(x, x)", db)
        cache.put(k1, _table([0]))
        cache.put(k2, _table([1]))
        assert cache.invalidate() == 2
        assert len(cache) == 0 and cache.total_rows == 0
        assert cache.get(k1) is None

    def test_invalidate_single_formula_is_structural(self):
        cache = SubqueryCache()
        db = _db()
        keep = _key(cache, "~E(x, x)", db)
        drop = _key(cache, "E(x, x)", db)
        cache.put(keep, _table([0]))
        cache.put(drop, _table([1]))
        # a *fresh* parse of the same text: equal by structure, not id
        assert cache.invalidate(parse_formula("E(x, x)")) == 1
        assert cache.get(drop) is None
        assert cache.get(keep) is not None


class TestMetricsAndKeys:
    def test_counters_live_in_the_registry(self):
        registry = MetricsRegistry()
        cache = SubqueryCache(registry=registry)
        key = _key(cache, "E(x, x)", _db())
        assert cache.get(key) is None
        cache.put(key, _table([0]))
        assert cache.get(key) is not None
        snapshot = {m.name: m.value for m in registry}
        assert snapshot["cache.hits"] == 1
        assert snapshot["cache.misses"] == 1
        assert snapshot["cache.evictions"] == 0
        assert snapshot["cache.entries"] == 1
        assert snapshot["cache.rows"] == 1

    def test_key_distinguishes_environments(self):
        cache = SubqueryCache()
        formula = parse_formula("exists y. E(x, y)")
        db = _db()
        grown = db.with_relation(
            "E", db.relation("E").union(db.relation("E"))
        )
        mutated = _db(3).with_relation(
            "E", _db(3).relation("E").__class__(2, [(2, 0)])
        )
        assert cache.key_for(formula, {}, db) == cache.key_for(
            formula, {}, grown
        )  # same relation value → same key
        assert cache.key_for(formula, {}, db) != cache.key_for(
            formula, {}, mutated
        )

    def test_key_is_none_for_unresolvable_relation(self):
        cache = SubqueryCache()
        assert cache.key_for(parse_formula("R(x)"), {}, _db()) is None

    def test_leaves_are_not_cacheable(self):
        cache = SubqueryCache()
        assert not cache.cacheable(parse_formula("E(x, y)"))
        assert cache.cacheable(parse_formula("exists y. (E(x, y) & P(y))"))

    def test_resolve_subquery_cache(self):
        assert resolve_subquery_cache(None) is None
        assert resolve_subquery_cache(False) is None
        assert isinstance(resolve_subquery_cache(True), SubqueryCache)
        cache = SubqueryCache()
        assert resolve_subquery_cache(cache) is cache


class TestEngineIntegration:
    def test_options_true_uses_a_private_cache(self):
        db = _db(4)
        formula = parse_formula(
            "[lfp S(x). E(x, x) | exists y. (E(y, x) & S(y))](u) | "
            "[lfp S(x). E(x, x) | exists y. (E(y, x) & S(y))](u)"
        )
        plain = evaluate(formula, db, ("u",), EvalOptions())
        cached = evaluate(
            formula, db, ("u",), EvalOptions(subquery_cache=True)
        )
        assert cached.relation == plain.relation

    def test_shared_cache_hit_counts_surface_in_stats(self):
        db = _db(4)
        formula = parse_formula("exists y. (E(x, y) & exists x. E(y, x))")
        cache = SubqueryCache()
        evaluate(formula, db, ("x",), EvalOptions(subquery_cache=cache))
        second = evaluate(
            formula, db, ("x",), EvalOptions(subquery_cache=cache)
        )
        assert cache.hits >= 1
        assert second.stats.notes.get("subquery_cache_hits", 0) >= 1


class TestGenerationKeys:
    """Cache keys embed the database generation: mutations can never
    serve stale rows, even without an explicit invalidate."""

    def test_key_moves_when_a_fact_is_added(self):
        cache = SubqueryCache()
        db = _db()
        before = _key(cache, "E(x, x)", db)
        assert db.add_fact("E", (2, 0))
        after = _key(cache, "E(x, x)", db)
        assert before != after
        assert before[3] == 0 and after[3] == 1  # the generation slot

    def test_noop_mutations_keep_the_key(self):
        cache = SubqueryCache()
        db = _db()
        before = _key(cache, "E(x, x)", db)
        assert not db.add_fact("E", (0, 1))  # already present
        assert not db.remove_fact("E", (2, 0))  # never existed
        assert _key(cache, "E(x, x)", db) == before

    def test_stale_rows_regression_after_add_fact(self):
        """The bug this guards: a warm shared cache returning rows
        computed before the database changed."""
        db = _db(4)  # path 0→1→2→3
        formula = parse_formula("exists y. E(x, y)")
        cache = SubqueryCache()
        first = evaluate(formula, db, ("x",), EvalOptions(subquery_cache=cache))
        assert (3,) not in first.relation.tuples
        assert db.add_fact("E", (3, 0))
        second = evaluate(
            formula, db, ("x",), EvalOptions(subquery_cache=cache)
        )
        assert (3,) in second.relation.tuples  # fresh, not the cached rows
        # and the warm entries for the old generation were not hit
        plain = evaluate(formula, db, ("x",), EvalOptions())
        assert second.relation == plain.relation

    def test_remove_fact_also_moves_the_generation(self):
        db = _db(4)
        formula = parse_formula("exists y. E(x, y)")
        cache = SubqueryCache()
        first = evaluate(formula, db, ("x",), EvalOptions(subquery_cache=cache))
        assert (2,) in first.relation.tuples
        assert db.remove_fact("E", (2, 3))
        second = evaluate(
            formula, db, ("x",), EvalOptions(subquery_cache=cache)
        )
        assert (2,) not in second.relation.tuples
