"""Fuzz tests: parsers and evaluators must fail *predictably*.

Arbitrary input may be rejected, but only ever with the library's own
exception types — no bare crashes, no hangs on small inputs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.database.encoding import decode_database
from repro.datalog.parser import parse_program
from repro.logic.parser import parse_formula
from repro.mucalculus.parser import parse_mu

_FORMULA_ALPHABET = "PQESxyz()[].&|~=!<->123 'exists-foralllfpgfp,/"


class TestFormulaParserFuzz:
    @given(st.text(alphabet=_FORMULA_ALPHABET, max_size=40))
    @settings(max_examples=60)
    def test_never_crashes_unexpectedly(self, text):
        try:
            parse_formula(text)
        except ReproError:
            pass  # the only acceptable failure mode

    @given(st.text(max_size=20))
    @settings(max_examples=40)
    def test_arbitrary_unicode(self, text):
        try:
            parse_formula(text)
        except ReproError:
            pass


class TestMuParserFuzz:
    @given(st.text(alphabet="pqXY<>[]().&|~munu ", max_size=30))
    @settings(max_examples=60)
    def test_never_crashes_unexpectedly(self, text):
        try:
            parse_mu(text)
        except ReproError:
            pass


class TestDatalogParserFuzz:
    @given(st.text(alphabet="pqrXY(),.:-% \n0123'", max_size=40))
    @settings(max_examples=60)
    def test_never_crashes_unexpectedly(self, text):
        try:
            parse_program(text)
        except ReproError:
            pass


class TestEncodingFuzz:
    @given(st.text(alphabet="(){}<>,;:01EPab", max_size=40))
    @settings(max_examples=60)
    def test_decoder_never_crashes_unexpectedly(self, text):
        try:
            decode_database(text)
        except ReproError:
            pass


class TestDimacsFuzz:
    @given(st.text(alphabet="pcnf 0123456789-\n", max_size=50))
    @settings(max_examples=60)
    def test_never_crashes_unexpectedly(self, text):
        from repro.sat.dimacs import from_dimacs

        try:
            from_dimacs(text)
        except ReproError:
            pass
