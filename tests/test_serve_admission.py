"""Unit tests for serve admission control, retry policy, and breakers."""

import asyncio

import pytest

from repro.errors import Overloaded
from repro.serve.admission import AdmissionController, TenantPolicy
from repro.serve.retry import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
)


class FakeClock:
    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def run(coro):
    return asyncio.run(coro)


class TestAdmission:
    def test_admit_release_roundtrip(self):
        async def main():
            ctrl = AdmissionController(max_concurrency=2, max_queue=4)
            wait = await ctrl.admit("a")
            assert wait >= 0.0
            assert ctrl.running == 1
            ctrl.release(0.01)
            assert ctrl.running == 0

        run(main())

    def test_queue_full_sheds_with_structured_error(self):
        async def main():
            ctrl = AdmissionController(max_concurrency=1, max_queue=1)
            await ctrl.admit("a")  # takes the only slot
            waiter = asyncio.ensure_future(ctrl.admit("b"))
            await asyncio.sleep(0)  # b parks in the queue
            with pytest.raises(Overloaded) as exc:
                await ctrl.admit("c")
            assert exc.value.reason == "queue-full"
            assert exc.value.tenant == "c"
            assert exc.value.retry_after > 0
            ctrl.release(0.01)
            await waiter
            ctrl.release(0.01)

        run(main())

    def test_deadline_unreachable_sheds_at_enqueue(self):
        async def main():
            # every queued request predicts a 10s wait per slot
            ctrl = AdmissionController(
                max_concurrency=1, max_queue=8, expected_service_seconds=10.0
            )
            await ctrl.admit("a")
            waiter = asyncio.ensure_future(ctrl.admit("b"))
            await asyncio.sleep(0)
            with pytest.raises(Overloaded) as exc:
                await ctrl.admit("c", deadline=0.5)
            assert exc.value.reason == "deadline-unreachable"
            ctrl.release(None)
            await waiter
            ctrl.release(None)

        run(main())

    def test_expired_request_is_shed_at_dispatch(self):
        clock = FakeClock()

        async def main():
            ctrl = AdmissionController(
                max_concurrency=1, max_queue=8, clock=clock
            )
            await ctrl.admit("a")
            waiter = asyncio.ensure_future(ctrl.admit("b", deadline=1.0))
            await asyncio.sleep(0)
            clock.advance(5.0)  # b's deadline passes while it queues
            ctrl.release(None)
            with pytest.raises(Overloaded) as exc:
                await waiter
            assert exc.value.reason == "expired"
            # the slot freed by release was not consumed by the corpse
            assert ctrl.running == 0

        run(main())

    def test_weighted_fairness_dispatch_order(self):
        """Weight-4 tenant drains ~4 requests per weight-1 request."""

        async def main():
            ctrl = AdmissionController(max_concurrency=1, max_queue=16)
            await ctrl.admit("blocker")
            order = []

            async def req(tenant, label, weight):
                await ctrl.admit(tenant, weight=weight)
                order.append(label)
                ctrl.release(None)

            tasks = [
                asyncio.ensure_future(req("A", f"A{i}", 1.0))
                for i in range(1, 5)
            ]
            tasks += [
                asyncio.ensure_future(req("B", f"B{i}", 4.0))
                for i in range(1, 5)
            ]
            await asyncio.sleep(0)  # everyone queues behind the blocker
            ctrl.release(None)  # blocker leaves; the chain drains itself
            await asyncio.gather(*tasks)
            # B's tags are a quarter of A's: B1-B3 beat A1; the tie at
            # tag(A1) == tag(B4) goes to A1 by arrival order
            assert order == ["B1", "B2", "B3", "A1", "B4", "A2", "A3", "A4"]

        run(main())

    def test_counters_in_registry(self):
        async def main():
            ctrl = AdmissionController(max_concurrency=1, max_queue=0)
            await ctrl.admit("a")
            with pytest.raises(Overloaded):
                await ctrl.admit("b")
            ctrl.release(0.01)
            snap = ctrl.registry.snapshot()
            assert snap["serve.admitted"] == 1
            assert snap["serve.shed"] == 1
            assert snap["serve.queue_wait_seconds"]["count"] == 1

        run(main())

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrency=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)


class TestTenantPolicy:
    def test_defaults(self):
        policy = TenantPolicy()
        assert policy.weight == 1.0
        assert policy.deadline() == 30.0
        assert policy.max_attempts == 3

    def test_frozen(self):
        with pytest.raises(AttributeError):
            TenantPolicy().weight = 2.0


class TestRetryPolicy:
    def test_deterministic_per_seed_pair(self):
        policy = RetryPolicy(seed=3)
        a = [next(policy.delays(7)) for _ in range(1)]
        gen = policy.delays(7)
        b = [next(gen)]
        assert a == b

    def test_request_seeds_decorrelate(self):
        policy = RetryPolicy(seed=0, jitter=0.5)
        gen1, gen2 = policy.delays(1), policy.delays(2)
        first = [next(gen1) for _ in range(4)]
        second = [next(gen2) for _ in range(4)]
        assert first != second

    def test_exponential_growth_capped_without_jitter(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        gen = policy.delays()
        delays = [next(gen) for _ in range(5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.1)
        gen = policy.delays(9)
        for _ in range(20):
            assert 0.9 <= next(gen) <= 1.1


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_admits_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # everyone else still waits

    def test_probe_outcome_closes_or_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        breaker.record_failure()  # trips again (threshold 1)
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # failed probe → straight back to open
        assert breaker.state == OPEN
        assert breaker.trips == 3
