"""Compiled-plan differential harness: the query compiler vs the interpreter.

The straight-line plan compiler (``src/repro/perf/compile.py``) is only
shippable because this suite pins it to the tree-walking interpreter:
for random FO formulas and an FP/PFP corpus over random databases,
``EvalOptions(compile=True)`` must produce exactly the relations — and
exactly the representation-independent stats counters, including
``memo_hits`` and ``table_ops`` — that ``compile=False`` produces, on
both backends and under every fixpoint strategy.

The parity contract extends past happy paths: guard-budget exhaustion
and injected chaos faults must surface the *same* structured error at
the same point either way, traced runs must emit the same ``fo.*`` span
multiset (plus the compiler's own ``compile.run``), and the plan cache
must never serve a plan whose folded constants predate a
``Database.add_fact`` / ``remove_fact`` (generation keys).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import EvalOptions, evaluate
from repro.core.fp_eval import FixpointStrategy
from repro.database.database import Database
from repro.guard.budget import Budget
from repro.guard.chaos import ChaosPolicy
from repro.kernel.backend import resolve_backend
from repro.kernel.packed import (
    ALIGN_CACHE_LIMIT,
    ATOM_CACHE_LIMIT,
    BoundedMaskCache,
    DomainCodec,
)
from repro.logic.parser import parse_formula
from repro.obs.tracer import Tracer
from repro.perf.compile import (
    UNCOMPILABLE,
    PlanCache,
    compile_program,
    describe_plans,
    warm_plans,
)

BACKENDS = ("sparse", "packed")


def _db(seed: int = 0, n: int = 6) -> Database:
    rng = random.Random(seed)
    return Database.from_tuples(
        range(n),
        {
            "E": (2, [(i, j) for i in range(n) for j in range(n)
                      if rng.random() < 0.35]),
            "P": (1, [(i,) for i in range(n) if rng.random() < 0.5]),
            "Q": (1, [(i,) for i in range(n) if rng.random() < 0.4]),
        },
    )


def _run(formula, db, out, compiled, backend, strategy=None, **kw):
    options = EvalOptions(
        compile=compiled,
        backend=backend,
        strategy=strategy or FixpointStrategy.MONOTONE,
        **kw,
    )
    return evaluate(formula, db, out, options)


def _stats(result):
    """The representation-independent counters (the parity contract)."""
    return {
        k: v for k, v in result.stats.as_dict().items()
        if not k.startswith("kernel") and not k.startswith("compile")
    }


def _assert_parity(formula, db, out, backend, strategy=None):
    interp = _run(formula, db, out, False, backend, strategy)
    comp = _run(formula, db, out, True, backend, strategy)
    assert sorted(interp.relation.tuples) == sorted(comp.relation.tuples)
    assert _stats(interp) == _stats(comp)


# -- random FO formulas ------------------------------------------------

_ATOMS = st.sampled_from([
    "E(x, y)", "E(y, x)", "E(x, x)", "E(y, z)", "E(z, x)",
    "P(x)", "P(y)", "Q(y)", "Q(z)", "x = y", "y = z",
])


def _combine(children):
    binary = st.tuples(children, st.sampled_from(["&", "|"]), children).map(
        lambda t: "({} {} {})".format(t[0], t[1], t[2])
    )
    negate = children.map(lambda f: "~{}".format(f))
    quantify = st.tuples(
        st.sampled_from(["exists", "forall"]),
        st.sampled_from(["x", "y", "z"]),
        children,
    ).map(lambda t: "{} {}. {}".format(t[0], t[1], t[2]))
    return st.one_of(binary, negate, quantify)


FO_FORMULAS = st.recursive(_ATOMS, _combine, max_leaves=8)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(text=FO_FORMULAS, seed=st.integers(0, 7), backend=st.sampled_from(BACKENDS))
def test_random_fo_differential(text, seed, backend):
    formula = parse_formula("exists z. ({})".format(text))
    _assert_parity(formula, _db(seed), ("x", "y"), backend)


# -- FP / PFP corpus ---------------------------------------------------

FP_CORPUS = [
    ("[lfp S(x, y). E(x, y) | exists z. (E(x, z) & S(z, y))](x, y)",
     ("x", "y")),
    ("[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](x)", ("x",)),
    ("exists y. [lfp S(x). x = y | exists z. (E(z, x) & S(z))](x)",
     ("x", "y")),
    ("[gfp S(x). P(x) & forall y. (E(x, y) -> S(y))](x)", ("x",)),
    ("[lfp T(x). [lfp S(y). P(y) | exists z. (E(z, y) & S(z))](x) "
     "| exists y. (E(x, y) & T(y))](x)", ("x",)),
]

PFP_CORPUS = [
    ("[pfp S(x). P(x) | exists y. (E(x, y) & ~S(y))](x)", ("x",)),
    ("[pfp X(x). Q(x) | exists y. (E(y, x) & X(y))](x)", ("x",)),
]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("strategy", [
    FixpointStrategy.MONOTONE,
    FixpointStrategy.NAIVE,
    FixpointStrategy.SEMINAIVE,
])
@pytest.mark.parametrize("text,out", FP_CORPUS)
def test_fp_corpus_differential(text, out, strategy, backend):
    _assert_parity(parse_formula(text), _db(3), out, backend, strategy)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("text,out", PFP_CORPUS)
def test_pfp_corpus_differential(text, out, backend):
    _assert_parity(parse_formula(text), _db(5), out, backend)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000), backend=st.sampled_from(BACKENDS))
def test_fp_random_db_differential(seed, backend):
    text, out = FP_CORPUS[seed % len(FP_CORPUS)]
    _assert_parity(
        parse_formula(text), _db(seed, n=5), out, backend,
        FixpointStrategy.SEMINAIVE,
    )


# -- structured-failure parity ----------------------------------------

def _outcome(formula, db, out, compiled, backend, **kw):
    try:
        result = _run(formula, db, out, compiled, backend,
                      FixpointStrategy.SEMINAIVE, **kw)
        return ("ok", sorted(result.relation.tuples))
    except Exception as exc:
        return (type(exc).__name__, str(exc)[:80])


GUARD_QUERIES = [
    ("exists y. (E(x, y) & exists z. (E(y, z) & P(z)))", ("x",)),
    ("[lfp S(x, y). E(x, y) | exists z. (E(x, z) & S(z, y))](x, y)",
     ("x", "y")),
]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("text,out", GUARD_QUERIES)
def test_guard_exhaustion_parity(text, out, backend):
    formula = parse_formula(text)
    db = _db(1)
    tripped = 0
    for rows in (1, 5, 10, 20, 50, 200):
        interp = _outcome(formula, db, out, False, backend,
                          budget=Budget(max_rows=rows))
        comp = _outcome(formula, db, out, True, backend,
                        budget=Budget(max_rows=rows))
        assert interp == comp, "budget rows={}: {} != {}".format(
            rows, interp, comp)
        if interp[0].endswith("BudgetExceeded"):
            tripped += 1
    assert tripped >= 1  # the sweep must actually exhaust at least once


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("text,out", GUARD_QUERIES)
def test_chaos_fault_parity(text, out, backend):
    formula = parse_formula(text)
    db = _db(1)
    fired = 0
    for fail_at in (1, 3, 7, 13):
        interp = _outcome(formula, db, out, False, backend,
                          chaos=ChaosPolicy(seed=42, fail_at=fail_at))
        comp = _outcome(formula, db, out, True, backend,
                        chaos=ChaosPolicy(seed=42, fail_at=fail_at))
        assert interp == comp, "chaos fail_at={}: {} != {}".format(
            fail_at, interp, comp)
        if interp[0] != "ok":
            fired += 1
    assert fired >= 1  # the sweep must actually inject at least one fault


# -- tracing parity ----------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_traced_compiled_matches_interpreted_spans(backend):
    text, out = FP_CORPUS[0]
    formula = parse_formula(text)
    db = _db(2)
    ti, tc = Tracer(), Tracer()
    interp = _run(formula, db, out, False, backend,
                  FixpointStrategy.SEMINAIVE, trace=ti)
    comp = _run(formula, db, out, True, backend,
                FixpointStrategy.SEMINAIVE, trace=tc)
    assert sorted(interp.relation.tuples) == sorted(comp.relation.tuples)
    assert _stats(interp) == _stats(comp)
    fo_i = sorted(s.name for s in ti.spans if s.name.startswith("fo."))
    fo_c = sorted(s.name for s in tc.spans if s.name.startswith("fo."))
    assert fo_i == fo_c
    assert any(s.name == "compile.run" for s in tc.spans)
    assert not any(s.name == "compile.run" for s in ti.spans)


@pytest.mark.parametrize("backend", BACKENDS)
def test_traced_equals_untraced_compiled(backend):
    text, out = FP_CORPUS[4]
    formula = parse_formula(text)
    db = _db(4)
    plain = _run(formula, db, out, True, backend)
    traced = _run(formula, db, out, True, backend, trace=Tracer())
    assert sorted(plain.relation.tuples) == sorted(traced.relation.tuples)
    assert _stats(plain) == _stats(traced)


# -- the plan cache ----------------------------------------------------

def test_plan_cache_never_serves_stale_after_mutation():
    text, out = FP_CORPUS[0]
    formula = parse_formula(text)
    db = _db(6)
    plans = PlanCache()
    def opts():
        return EvalOptions(compile=True, plan_cache=plans)

    before = sorted(evaluate(formula, db, out, opts()).relation.tuples)
    assert sorted(
        evaluate(formula, db, out, EvalOptions(compile=False)).relation.tuples
    ) == before

    missing = next(
        (a, b) for a in db.domain.values for b in db.domain.values
        if (a, b) not in db.relation("E").tuples
    )
    assert db.add_fact("E", missing)
    after_add = sorted(evaluate(formula, db, out, opts()).relation.tuples)
    assert after_add == sorted(
        evaluate(formula, db, out, EvalOptions(compile=False)).relation.tuples
    )

    assert db.remove_fact("E", missing)
    after_remove = sorted(evaluate(formula, db, out, opts()).relation.tuples)
    assert after_remove == before


def test_plan_cache_hits_builds_and_lru():
    formula = parse_formula("exists y. (E(x, y) & P(y))")
    db = _db(0)
    plans = PlanCache()
    for _ in range(3):
        evaluate(
            formula, db, ("x",), EvalOptions(compile=True, plan_cache=plans)
        )
    assert plans.builds >= 1
    assert plans.hits >= 2

    small = PlanCache(max_entries=2)
    backend = resolve_backend("sparse", db.domain)
    keys = []
    for text in ("P(x)", "Q(x)", "P(x) & Q(x)"):
        f = parse_formula(text)
        key = small.key_for(f, frozenset(), db, backend.name)
        small.put(key, compile_program(f, frozenset(), db, backend))
        keys.append(key)
    assert len(small) == 2
    assert small.evictions == 1
    assert small.get(keys[0]) is None  # oldest evicted


def test_plan_cache_caches_negative_results():
    db = _db(0)
    plans = PlanCache()
    backend = resolve_backend("sparse", db.domain)
    formula = parse_formula(FP_CORPUS[0][0])  # fixpoint root: uncompilable
    key = plans.key_for(formula, frozenset(), db, backend.name)
    assert plans.get(key) is None
    plans.put(key, compile_program(formula, frozenset(), db, backend))
    assert plans.get(key) is UNCOMPILABLE


def test_warm_plans_prebuilds_fixpoint_bodies():
    db = _db(0)
    plans = PlanCache()
    backend = resolve_backend("sparse", db.domain)
    formula = parse_formula(FP_CORPUS[0][0])
    assert warm_plans(formula, db, backend, plans) >= 1
    evaluate(
        formula, db, ("x", "y"),
        # pin the backend: the warmed keys name it, and the suite also
        # runs under a REPRO_BENCH_BACKEND=packed lane
        EvalOptions(compile=True, plan_cache=plans, backend="sparse",
                    strategy=FixpointStrategy.MONOTONE),
    )
    assert plans.hits >= 1  # the evaluator reused the warmed body plan


def test_describe_plans_renders_compilable_regions():
    db = _db(0)
    backend = resolve_backend("sparse", db.domain)
    rendered = describe_plans(parse_formula(FP_CORPUS[0][0]), db, backend)
    assert "dynamic" in rendered  # the fixpoint section header
    assert "fold" in rendered or "compute" in rendered


# -- bounded kernel caches (satellite: kernel.cache.*) ----------------

def test_bounded_mask_cache_caps_and_counts():
    stats = {"t_hits": 0, "t_misses": 0, "t_evictions": 0, "events": 0}
    cache = BoundedMaskCache(3, stats, "t")
    for i in range(5):
        assert cache.get(("k", i)) is None
        cache.put(("k", i), i)
    assert len(cache) == 3
    assert stats["t_evictions"] == 2
    assert cache.get(("k", 4)) == 4
    assert stats["t_hits"] == 1
    assert stats["t_misses"] == 5
    assert stats["t_evictions"] == 2
    # the change counter lets the backend skip stat syncs when idle:
    # 5 misses + 2 evictions + 1 hit
    assert stats["events"] == 8
    # LRU order: touching an entry protects it from the next eviction
    cache.get(("k", 2))
    cache.put(("k", 9), 9)
    assert cache.get(("k", 2)) == 2
    assert cache.get(("k", 3)) is None


def test_align_and_atom_caches_are_bounded():
    from repro.database.domain import Domain

    codec = DomainCodec(Domain(range(2)))
    table = resolve_backend("packed", Domain(range(2))).full(["a"])
    # hammer one table with more join schemas than the cap
    for i in range(ALIGN_CACHE_LIMIT + 10):
        table._aligned(tuple(sorted(["a", "v{:03d}".format(i)])))
    assert len(table._align_cache) <= ALIGN_CACHE_LIMIT
    assert table._codec.cache_stats["align_evictions"] >= 10
    assert codec.atom_masks._entries is not None  # LRU-backed, not a dict


def test_kernel_cache_counters_reach_registry():
    formula = parse_formula(FP_CORPUS[0][0])
    result = _run(formula, _db(0), ("x", "y"), False, "packed",
                  FixpointStrategy.SEMINAIVE)
    snap = result.stats.registry.snapshot()
    assert "kernel.cache.atom_misses" in snap
    assert "kernel.cache.align_hits" in snap
    assert snap["kernel.cache.atom_misses"] >= 0


def test_cli_explain_plan_renders_fixpoint_regions(tmp_path, capsys):
    from repro.cli import main
    from repro.database.encoding import encode_database
    from repro.workloads.graphs import path_graph

    db_path = tmp_path / "g.db"
    db_path.write_text(encode_database(path_graph(4)))
    code = main([
        "eval", "--db", str(db_path),
        "--query", "[lfp S(x,y). E(x,y) | exists z. (E(x,z) & S(z,y))](u,v)",
        "--out", "u", "v", "--explain-plan", "--backend", "packed",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "body compiles with S dynamic" in out
    assert "compiled plan [packed]" in out
    assert "dynamic relations: S" in out
    assert "warm ops:" in out
