"""End-to-end tests for QueryService: correctness, retries, degradation."""

import asyncio
import json

import pytest

from repro.core.engine import Query
from repro.core.interp import VarTable
from repro.database.database import Database
from repro.errors import EvaluationError, Overloaded, ResourceExhausted
from repro.guard.budget import Budget
from repro.guard.chaos import ChaosPolicy
from repro.perf.cache import SubqueryCache
from repro.serve.admission import TenantPolicy
from repro.serve.cli import TC_QUERY
from repro.serve.retry import OPEN, RetryPolicy
from repro.serve.service import QueryService

FAST_RETRY = RetryPolicy(base_delay=0.0, jitter=0.0)


def path_db(n=6):
    return Database.from_tuples(
        range(n), {"E": (2, [(i, i + 1) for i in range(n - 1)])}
    )


def make_service(**kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    service = QueryService(**kwargs)
    service.register_database("g", path_db())
    service.prepare("tc", TC_QUERY, ("u", "v"))
    return service


def expected_tc(db):
    return sorted(Query.parse(TC_QUERY, ("u", "v")).run(db).relation.tuples)


def run(coro):
    return asyncio.run(coro)


class TestServing:
    def test_differential_correctness_inline(self):
        service = make_service()
        response = run(service.call("t0", "tc", "g"))
        assert sorted(response.rows) == expected_tc(path_db())
        assert response.served_by == "inline"
        assert response.attempts == 1
        assert response.retries == 0
        assert response.degraded == ()
        snap = service.registry.snapshot()
        assert snap["serve.ok"] == 1
        assert snap["serve.answer_rows"] == len(response.rows)
        service.close()

    def test_prepared_once_served_many(self):
        service = make_service()

        async def main():
            return await asyncio.gather(
                *[service.call("t0", "tc", "g") for _ in range(5)]
            )

        responses = run(main())
        want = expected_tc(path_db())
        assert all(sorted(r.rows) == want for r in responses)
        assert service.registry.snapshot()["serve.ok"] == 5
        service.close()

    def test_unknown_query_and_db_are_not_retried(self):
        service = make_service()
        with pytest.raises(EvaluationError):
            run(service.call("t0", "nope", "g"))
        with pytest.raises(EvaluationError):
            run(service.call("t0", "tc", "nope"))
        assert service.registry.snapshot()["serve.retries"] == 0
        service.close()


class TestRetries:
    def test_transient_fault_is_retried_to_success(self):
        service = make_service()
        transient = [ChaosPolicy(seed=1, fail_at=1), None]
        response = run(service.call("t0", "tc", "g", chaos=transient))
        assert sorted(response.rows) == expected_tc(path_db())
        assert response.attempts == 2
        assert response.retries == 1
        assert service.registry.snapshot()["serve.retries"] == 1
        service.close()

    def test_persistent_fault_exhausts_retries_with_structured_error(self):
        service = make_service()
        service.set_tenant("t0", TenantPolicy(max_attempts=3))
        with pytest.raises(Overloaded) as exc:
            run(
                service.call(
                    "t0", "tc", "g", chaos=ChaosPolicy(seed=2, fail_at=1)
                )
            )
        assert exc.value.reason == "retries-exhausted"
        assert exc.value.tenant == "t0"
        assert exc.value.retry_after >= 0  # zero-delay test policy
        snap = service.registry.snapshot()
        assert snap["serve.failed"] == 1
        assert snap["serve.retries"] == 2  # attempts 3 = 2 retries
        service.close()

    def test_breaker_trips_after_repeated_failures(self):
        service = make_service()
        service.set_tenant(
            "flaky", TenantPolicy(max_attempts=2, breaker_threshold=2)
        )
        with pytest.raises(Overloaded):
            run(
                service.call(
                    "flaky", "tc", "g", chaos=ChaosPolicy(seed=3, fail_at=1)
                )
            )
        stats = service.stats()
        assert stats["breakers"]["flaky"]["state"] == OPEN
        assert stats["breakers"]["flaky"]["trips"] == 1
        assert stats["metrics"]["serve.breaker_trips"] == 1
        # a clean request still serves (inline mode never short-circuits
        # to a different path, and success resets the failure streak)
        response = run(service.call("flaky", "tc", "g"))
        assert sorted(response.rows) == expected_tc(path_db())
        service.close()


class TestDegradation:
    def test_ladder_walks_all_rungs_then_raises(self):
        service = make_service()
        service.set_tenant(
            "tight", TenantPolicy(budget=Budget(max_rows=1))
        )
        with pytest.raises(ResourceExhausted) as exc:
            run(
                service.call(
                    "tight", "tc", "g",
                    strategy="seminaive", backend="packed",
                )
            )
        assert exc.value.kind == "rows"
        snap = service.registry.snapshot()
        # packed→sparse, seminaive→naive, cache-off: three rungs tried
        assert snap["serve.degraded"] == 3
        assert snap["serve.retries"] == 0  # rungs are not retries
        service.close()

    def test_deadline_exhaustion_is_never_degraded(self):
        service = make_service()
        # a database slow enough (tens of ms even packed) that a 5ms
        # deadline exhausts mid-evaluation, yet clears admission
        # (dispatch is microseconds)
        service.register_database("big", path_db(40))
        service.set_tenant(
            "late", TenantPolicy(budget=Budget(deadline_seconds=5e-3))
        )
        with pytest.raises(ResourceExhausted) as exc:
            run(service.call("late", "tc", "big", backend="packed"))
        assert exc.value.kind == "deadline"
        assert service.registry.snapshot()["serve.degraded"] == 0
        service.close()

    def test_cache_pressure_bypasses_shared_cache(self):
        cache = SubqueryCache(max_total_rows=10)
        cache.put(("prefill",), VarTable(("x",), [(i,) for i in range(9)]))
        assert cache.total_rows == 9  # >= 0.9 * max_total_rows
        service = make_service(cache=cache)
        response = run(service.call("t0", "tc", "g"))
        assert response.degraded == ("cache-bypass",)
        assert sorted(response.rows) == expected_tc(path_db())
        assert cache.total_rows == 9  # nothing new was inserted
        service.close()


class TestMutation:
    def test_mutation_bumps_generation_and_results_stay_fresh(self):
        service = make_service()
        before = run(service.call("t0", "tc", "g"))
        result = service.mutate("g", "add", "E", (5, 0))
        assert result["applied"] is True
        assert result["generation"] == 1
        after = run(service.call("t0", "tc", "g"))
        # the added back-edge closes the cycle: strictly more pairs
        assert len(after.rows) > len(before.rows)
        assert sorted(after.rows) == expected_tc(service.database("g"))
        service.close()

    def test_noop_mutation_does_not_bump_generation(self):
        service = make_service()
        assert service.mutate("g", "add", "E", (0, 1))["applied"] is False
        assert service.database("g").generation == 0
        assert service.mutate("g", "remove", "E", (0, 1))["applied"] is True
        assert service.database("g").generation == 1
        service.close()

    def test_unknown_mutation_op(self):
        service = make_service()
        with pytest.raises(EvaluationError):
            service.mutate("g", "upsert", "E", (0, 1))
        service.close()


class TestTelemetryAndStats:
    def test_jsonl_telemetry_records_outcomes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        service = make_service(telemetry_path=str(path))
        run(service.call("t0", "tc", "g"))
        with pytest.raises(Overloaded):
            run(
                service.call(
                    "t0", "tc", "g", chaos=ChaosPolicy(seed=4, fail_at=1)
                )
            )
        service.close()
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert [e["outcome"] for e in events] == ["ok", "overloaded"]
        assert events[0]["rows"] > 0
        assert events[1]["detail"] == "retries-exhausted"

    def test_stats_document_shape(self):
        service = make_service()
        run(service.call("t0", "tc", "g"))
        stats = service.stats()
        assert stats["databases"] == ["g"]
        assert stats["queries"] == ["tc"]
        assert stats["admission"]["running"] == 0
        assert stats["pool"] == {"workers": 0, "restarts": 0}
        assert stats["metrics"]["serve.requests"] == 1
        assert stats["metrics"]["serve.latency_seconds"]["count"] == 1
        service.close()


class TestWorkerPool:
    def test_pool_crash_is_retried_and_pool_rebuilt(self):
        service = make_service(workers=1)
        try:
            crash = ChaosPolicy(seed=0, fail_at=2, fault_kinds=("crash",))
            response = run(
                service.call("t0", "tc", "g", chaos=[crash, None])
            )
            assert sorted(response.rows) == expected_tc(path_db())
            assert response.served_by == "pool"
            assert response.attempts == 2
            assert response.retries == 1
            snap = service.registry.snapshot()
            assert snap["serve.worker_crashes"] == 1
            assert service.stats()["pool"]["restarts"] == 1
            # the rebuilt pool serves the next request cleanly
            clean = run(service.call("t0", "tc", "g"))
            assert clean.attempts == 1
            assert sorted(clean.rows) == expected_tc(path_db())
        finally:
            service.close()
