"""Unit tests for the observability package: tracer, metrics, report."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NullTracer,
    Tracer,
    render_hot_spans,
    render_metrics,
    render_report,
    render_span_tree,
    resolve_tracer,
)
from repro.obs.tracer import _NULL_SPAN


class FakeClock:
    """A deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestTracer:
    def test_nesting_and_parent_linkage(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
            with tracer.span("inner2"):
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert [c.name for c in outer.children] == ["inner", "inner2"]
        assert [s.name for s in tracer.roots()] == ["outer"]
        assert [s.name for s in tracer.walk()] == ["outer", "inner", "inner2"]

    def test_timing_with_injected_clock(self):
        # FakeClock(1.0): epoch=0, opens/closes each consume one tick
        tracer = Tracer(clock=FakeClock(1.0))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.spans
        assert outer.start == 1.0  # first read after the epoch read
        assert inner.start == 2.0
        assert inner.duration == 1.0
        assert outer.duration == 3.0
        assert outer.self_duration() == 2.0

    def test_attrs_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", language="FP") as span:
            span.set(rows=7).set(rows=8, arity=2)
        assert span.attrs == {"language": "FP", "rows": 8, "arity": 2}

    def test_event_is_zero_duration_child(self):
        tracer = Tracer(clock=FakeClock(0.0))
        with tracer.span("parent"):
            event = tracer.event("pfp.space", live_tuples=3)
        assert event.parent_id == tracer.spans[0].span_id
        assert event.duration == 0.0
        assert event.attrs == {"live_tuples": 3}

    def test_exception_unwinding_closes_spans(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        # the stack is fully unwound; a new root opens at the top level
        with tracer.span("after") as after:
            pass
        assert after.parent_id is None

    def test_export_jsonl_round_trip(self):
        tracer = Tracer(clock=FakeClock(0.5))
        with tracer.span("evaluate", language="FP") as outer:
            with tracer.span("fp.iteration", index=0) as inner:
                inner.set(size=4, delta=4)
        lines = tracer.export_jsonl().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        for record in (first, second):
            assert set(record) == {
                "span_id",
                "parent_id",
                "name",
                "start",
                "duration",
                "attrs",
            }
        assert first["name"] == "evaluate"
        assert first["parent_id"] is None
        assert first["attrs"] == {"language": "FP"}
        assert second["parent_id"] == first["span_id"]
        assert second["attrs"] == {"index": 0, "size": 4, "delta": 4}
        assert second["duration"] >= 0.0
        assert second["start"] >= first["start"]

    def test_aggregate_and_hot_spans(self):
        tracer = Tracer(clock=FakeClock(1.0))
        for index in range(3):
            with tracer.span("fp.iteration", index=index):
                pass
        agg = tracer.aggregate()
        assert agg["fp.iteration"]["count"] == 3
        hot = tracer.hot_spans(k=1)
        assert hot[0]["name"] == "fp.iteration"

    def test_total_duration_sums_roots(self):
        tracer = Tracer(clock=FakeClock(1.0))
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert tracer.total_duration() == 2.0


class TestNullTracer:
    def test_singleton_and_disabled(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is True

    def test_span_returns_shared_object(self):
        # the no-op hot path must not allocate: every span() call hands
        # back the one preallocated null span
        a = NULL_TRACER.span("x", rows=1)
        b = NULL_TRACER.span("y")
        assert a is b is _NULL_SPAN
        with a as span:
            assert span.set(anything=1) is span
        assert NULL_TRACER.event("e") is None
        assert NULL_TRACER.export_jsonl() == ""
        assert NULL_TRACER.roots() == ()

    def test_resolve_tracer(self):
        assert resolve_tracer(None) is NULL_TRACER
        assert resolve_tracer(False) is NULL_TRACER
        fresh = resolve_tracer(True)
        assert isinstance(fresh, Tracer)
        mine = Tracer()
        assert resolve_tracer(mine) is mine


class TestMetrics:
    def test_counter(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == 5

    def test_gauge_set_max(self):
        gauge = Gauge("g")
        gauge.set_max(3)
        gauge.set_max(1)
        assert gauge.value == 3
        gauge.set(0)
        assert gauge.value == 0

    def test_histogram(self):
        hist = Histogram("h")
        for value in (1, 2, 4, 100):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 1
        assert snap["max"] == 100
        assert snap["sum"] == 107
        assert hist.mean == pytest.approx(107 / 4)

    def test_registry_creates_and_shares(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        registry.gauge("b").set(2)
        registry.histogram("c").observe(1)
        assert registry.names() == ["a", "b", "c"]
        assert "b" in registry and "missing" not in registry
        assert len(registry) == 3
        snap = registry.snapshot()
        assert snap["a"] == 0 and snap["b"] == 2
        assert snap["c"]["count"] == 1

    def test_registry_kind_conflict(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError):
            registry.gauge("x")

    def test_registry_histogram_bounds_apply_on_first_creation(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(0.1, 1.0))
        assert hist.bounds == (0.1, 1.0)
        # re-requesting keeps the existing grid (shared-store rule)
        assert registry.histogram("lat", bounds=(5.0,)) is hist
        assert hist.bounds == (0.1, 1.0)


class TestHistogramReservoir:
    def test_exact_quantiles_while_reservoir_holds_everything(self):
        hist = Histogram("h")
        for value in range(1, 101):
            hist.observe(value)
        assert hist.reservoir_exact
        # order statistics, not bucket interpolation: exact medians
        assert hist.quantile(0.50) == pytest.approx(50.5)
        assert hist.quantile(1.0) == pytest.approx(100.0)
        snap = hist.snapshot()
        assert snap["p50"] == pytest.approx(50.5)
        assert snap["p99"] == pytest.approx(99.01)

    def test_memory_bounded_beyond_reservoir_size(self):
        hist = Histogram("h", reservoir_size=64)
        for value in range(1000):
            hist.observe(value)
        assert len(hist._reservoir) == 64
        assert not hist.reservoir_exact
        assert hist.count == 1000

    def test_sampled_quantiles_stay_in_observed_range(self):
        hist = Histogram("h", reservoir_size=32)
        for value in range(500):
            hist.observe(value)
        for q in (0.5, 0.95, 0.99):
            assert 0 <= hist.quantile(q) <= 499

    def test_deterministic_across_instances_with_same_name(self):
        a, b = Histogram("same"), Histogram("same")
        for value in range(5000):
            a.observe(value)
            b.observe(value)
        assert a._reservoir == b._reservoir
        assert a.snapshot() == b.snapshot()

    def test_disabled_reservoir_falls_back_to_buckets(self):
        hist = Histogram("h", reservoir_size=0)
        for value in (1, 2, 4, 100):
            hist.observe(value)
        assert hist._reservoir == []
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert 1 <= snap["p50"] <= 100

    def test_snapshot_keys_unchanged_by_reservoir(self):
        hist = Histogram("h")
        hist.observe(5.0)
        assert set(hist.snapshot()) == {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99"
        }


class TestReport:
    def _tracer(self):
        tracer = Tracer(clock=FakeClock(0.001))
        with tracer.span("evaluate", language="FP"):
            for index in range(3):
                with tracer.span("fp.iteration", index=index):
                    pass
        return tracer

    def test_span_tree_structure(self):
        text = render_span_tree(self._tracer())
        lines = text.splitlines()
        assert lines[0].startswith("evaluate")
        assert "[language=FP]" in lines[0]
        assert all(line.startswith("  fp.iteration") for line in lines[1:])

    def test_span_tree_elides_long_sibling_runs(self):
        tracer = Tracer(clock=FakeClock(0.0))
        with tracer.span("root"):
            for index in range(100):
                with tracer.span("leaf", index=index):
                    pass
        text = render_span_tree(tracer, max_children=10)
        assert "elided" in text
        assert len(text.splitlines()) < 20

    def test_span_tree_depth_limit(self):
        text = render_span_tree(self._tracer(), max_depth=0)
        assert "below depth limit" in text
        assert "fp.iteration" not in text

    def test_hot_spans_table(self):
        text = render_hot_spans(self._tracer(), k=5)
        assert text.splitlines()[0].startswith("span")
        assert "fp.iteration" in text

    def test_render_metrics_and_report(self):
        registry = MetricsRegistry()
        registry.counter("eval.table_ops").inc(7)
        registry.histogram("eval.table_rows").observe(3)
        text = render_metrics(registry)
        assert "eval.table_ops = 7" in text
        assert "count=1" in text
        report = render_report(self._tracer(), registry)
        assert "== span tree ==" in report
        assert "== metrics ==" in report

    def test_empty_tracer_renders_placeholder(self):
        tracer = Tracer()
        assert render_span_tree(tracer) == "(no spans recorded)"
        assert render_hot_spans(tracer) == "(no spans recorded)"
        assert render_metrics(MetricsRegistry()) == "(no metrics recorded)"
