"""Trace correlation tests: reassembly, renumbering, and the store."""

from repro.obs.correlate import (
    TraceStore,
    assemble_trace,
    attempt_record,
    new_request_id,
    trace_jsonl,
)
from repro.obs.explain import spans_from_dicts
from repro.obs.profile import parse_trace_jsonl


def worker_spans():
    """A worker-side trace: evaluate → (parse, fixpoint)."""
    return [
        {"span_id": 1, "parent_id": None, "name": "evaluate",
         "start": 0.0, "duration": 0.01, "attrs": {"width": 2}},
        {"span_id": 2, "parent_id": 1, "name": "fixpoint",
         "start": 0.002, "duration": 0.008, "attrs": {"iterations": 3}},
    ]


class TestRequestIds:
    def test_deterministic_and_sortable(self):
        assert new_request_id(42) == "req-000042"
        ids = [new_request_id(i) for i in (1, 2, 10, 100)]
        assert ids == sorted(ids)


class TestAssembleTrace:
    def test_single_attempt_tree(self):
        record = attempt_record(
            1, "pool", 0.001, 0.02, "ok", spans=worker_spans(), pid=4242
        )
        spans = assemble_trace(
            "req-000001", [record], duration=0.03, tenant="t0"
        )
        assert [s["name"] for s in spans] == [
            "serve.request", "serve.attempt", "evaluate", "fixpoint"
        ]
        root, attempt, evaluate, fixpoint = spans
        assert root["parent_id"] is None
        assert root["attrs"]["tenant"] == "t0"
        assert attempt["parent_id"] == root["span_id"]
        assert attempt["attrs"]["pid"] == 4242
        assert evaluate["parent_id"] == attempt["span_id"]
        assert fixpoint["parent_id"] == evaluate["span_id"]
        assert all(
            s["attrs"]["request_id"] == "req-000001" for s in spans
        )

    def test_worker_starts_reanchored_to_attempt(self):
        record = attempt_record(
            1, "pool", 0.5, 0.02, "ok", spans=worker_spans()
        )
        spans = assemble_trace("req-000001", [record])
        fixpoint = next(s for s in spans if s["name"] == "fixpoint")
        assert fixpoint["start"] == 0.5 + 0.002

    def test_retry_scatters_across_attempts_with_unique_ids(self):
        records = [
            attempt_record(1, "pool", 0.0, 0.01, "crash"),
            attempt_record(
                2, "pool", 0.06, 0.02, "ok", spans=worker_spans(), pid=7
            ),
        ]
        spans = assemble_trace("req-000002", records, duration=0.09)
        ids = [s["span_id"] for s in spans]
        assert len(ids) == len(set(ids))
        attempts = [s for s in spans if s["name"] == "serve.attempt"]
        assert [a["attrs"]["outcome"] for a in attempts] == ["crash", "ok"]
        # the crashed attempt shipped no spans back — itself the signal
        crashed = attempts[0]
        children = [
            s for s in spans if s["parent_id"] == crashed["span_id"]
        ]
        assert children == []

    def test_orphan_worker_span_attaches_to_attempt(self):
        orphan = [
            {"span_id": 9, "parent_id": 5, "name": "stray",
             "start": 0.0, "duration": 0.001, "attrs": {}}
        ]
        record = attempt_record(1, "inline", 0.0, 0.01, "ok", spans=orphan)
        spans = assemble_trace("req-000003", [record])
        stray = next(s for s in spans if s["name"] == "stray")
        attempt = next(s for s in spans if s["name"] == "serve.attempt")
        assert stray["parent_id"] == attempt["span_id"]

    def test_round_trips_through_explain_span_trees(self):
        record = attempt_record(
            1, "pool", 0.0, 0.02, "ok", spans=worker_spans()
        )
        spans = assemble_trace("req-000004", [record])
        roots = spans_from_dicts(parse_trace_jsonl(trace_jsonl(spans)))
        assert len(roots) == 1
        assert roots[0].name == "serve.request"
        (attempt,) = roots[0].children
        (evaluate,) = attempt.children
        assert evaluate.children[0].name == "fixpoint"


class TestTraceStore:
    def test_put_get_latest(self):
        store = TraceStore()
        store.put("req-1", [{"span_id": 1}])
        store.put("req-2", [{"span_id": 2}])
        assert store.get("req-1") == [{"span_id": 1}]
        assert store.latest() == ("req-2", [{"span_id": 2}])
        assert "req-1" in store

    def test_bounded_eviction_oldest_first(self):
        store = TraceStore(capacity=2)
        for i in range(3):
            store.put(f"req-{i}", [])
        assert store.ids() == ["req-1", "req-2"]
        assert store.get("req-0") is None

    def test_reput_refreshes_recency(self):
        store = TraceStore(capacity=2)
        store.put("a", [])
        store.put("b", [])
        store.put("a", [{"span_id": 1}])
        store.put("c", [])
        assert store.ids() == ["a", "c"]

    def test_empty_store(self):
        store = TraceStore()
        assert store.latest() is None
        assert len(store) == 0
