"""Tests for the bounded-arity relational algebra."""

import pytest
from hypothesis import given

from repro.algebra import (
    ArityTracker,
    Complement,
    CrossProduct,
    Difference,
    Join,
    Project,
    RelationScan,
    Rename,
    Select,
    Union,
    column_eq,
    column_eq_const,
    compile_bounded,
    compile_naive_conjunctive,
    dynamic_cost,
    static_max_arity,
)
from repro.core.naive_eval import naive_answer
from repro.errors import EvaluationError
from repro.logic.parser import parse_formula
from repro.logic.variables import free_variables
from repro.workloads.company import (
    company_database,
    earns_less_bounded_algebra,
    earns_less_naive,
    earns_less_naive_algebra,
)
from repro.workloads.formulas import chain_join_query

from tests.conftest import databases, fo_formulas


class TestOperators:
    def test_scan_and_select(self, tiny_graph):
        plan = Select(
            RelationScan("E", 2, columns=("a", "b")),
            (column_eq_const(0, 0),),
        )
        table = plan.evaluate(tiny_graph)
        assert table.rows == ((0, 1),)

    def test_scan_arity_check(self, tiny_graph):
        with pytest.raises(EvaluationError):
            RelationScan("E", 3).evaluate(tiny_graph)

    def test_join_on_shared_names(self, tiny_graph):
        left = RelationScan("E", 2, columns=("a", "b"))
        right = RelationScan("E", 2, columns=("b", "c"))
        table = Join(left, right).evaluate(tiny_graph)
        assert ("a", "b", "c") == table.columns
        assert (0, 1, 2) in table.rows

    def test_cross_product_disambiguates_columns(self, tiny_graph):
        plan = CrossProduct(
            (
                RelationScan("P", 1, columns=("v",)),
                RelationScan("P", 1, columns=("v",)),
            )
        )
        table = plan.evaluate(tiny_graph)
        assert len(table.columns) == 2
        assert len(table.rows) == 4

    def test_project_by_position_and_name(self, tiny_graph):
        scan = RelationScan("E", 2, columns=("a", "b"))
        assert Project(scan, (1,)).evaluate(tiny_graph).columns == ("b",)
        assert Project(scan, ("b",), by_name=True).evaluate(
            tiny_graph
        ).columns == ("b",)

    def test_union_aligns_by_name(self, tiny_graph):
        left = RelationScan("E", 2, columns=("a", "b"))
        right = Project(
            CrossProduct(
                (
                    RelationScan("P", 1, columns=("b",)),
                    RelationScan("Q", 1, columns=("a",)),
                )
            ),
            ("a", "b"),
            by_name=True,
        )
        table = Union(left, right).evaluate(tiny_graph)
        assert (3, 0) in table.rows  # from Q × P side, aligned

    def test_difference(self, tiny_graph):
        scan = RelationScan("P", 1, columns=("v",))
        table = Difference(scan, scan).evaluate(tiny_graph)
        assert not table.rows

    def test_complement(self, tiny_graph):
        scan = RelationScan("P", 1, columns=("v",))
        table = Complement(scan).evaluate(tiny_graph)
        assert set(table.rows) == {(1,), (3,)}

    def test_rename(self, tiny_graph):
        plan = Rename(RelationScan("P", 1, columns=("v",)), (("v", "w"),))
        assert plan.evaluate(tiny_graph).columns == ("w",)

    def test_tracker_records_every_operator(self, tiny_graph):
        plan = Project(
            Join(
                RelationScan("E", 2, columns=("a", "b")),
                RelationScan("E", 2, columns=("b", "c")),
            ),
            ("a", "c"),
            by_name=True,
        )
        tracker = ArityTracker()
        plan.evaluate(tiny_graph, tracker)
        assert tracker.operators_executed == 4
        assert tracker.max_arity == 3


class TestCompilers:
    @given(fo_formulas(), databases(max_size=3))
    def test_bounded_compiler_matches_reference(self, phi, db):
        out = sorted(free_variables(phi))
        plan = compile_bounded(phi, out)
        table = plan.evaluate(db)
        got = set(table.rows)
        expected = set(naive_answer(phi, db, out).tuples)
        assert got == expected

    def test_bounded_compiler_respects_width(self, tiny_graph):
        phi = parse_formula("exists z. (E(x, z) & exists x. (x = z & E(x, y)))")
        plan = compile_bounded(phi, ("x", "y"))
        tracker = ArityTracker()
        plan.evaluate(tiny_graph, tracker)
        assert tracker.max_arity <= 3

    def test_naive_conjunctive_matches_bounded(self, tiny_graph):
        q = chain_join_query(3)
        naive_plan = compile_naive_conjunctive(q.formula, q.output_vars)
        bounded_plan = compile_bounded(q.formula, q.output_vars)
        a = set(naive_plan.evaluate(tiny_graph).rows)
        b = set(bounded_plan.evaluate(tiny_graph).rows)
        assert a == b

    def test_naive_conjunctive_peaks_at_sum_of_arities(self, tiny_graph):
        q = chain_join_query(4)
        tracker = ArityTracker()
        compile_naive_conjunctive(q.formula, q.output_vars).evaluate(
            tiny_graph, tracker
        )
        assert tracker.max_arity == 8  # four binary atoms crossed

    def test_naive_compiler_rejects_disjunction(self):
        with pytest.raises(EvaluationError):
            compile_naive_conjunctive(
                parse_formula("P(x) | Q(x)"), ("x",)
            )


class TestIntroExample:
    def test_plans_agree_and_bounded_wins(self):
        db = company_database(num_employees=6, num_departments=2, seed=3)
        naive_table, naive_cost = dynamic_cost(earns_less_naive_algebra(), db)
        bounded_table, bounded_cost = dynamic_cost(
            earns_less_bounded_algebra(), db
        )
        assert set(naive_table.rows) == set(bounded_table.rows)
        assert bounded_cost.max_intermediate_arity <= 4
        assert naive_cost.max_intermediate_arity >= 10
        assert bounded_cost.dominates(naive_cost)

    def test_plans_agree_with_logic_query(self):
        # a tiny instance so the 6-variable brute-force reference (n^6
        # assignments) stays cheap; the bounded engine is cross-validated
        # against the same reference at scale elsewhere
        db = company_database(
            num_employees=3, num_departments=2, num_salary_levels=3, seed=3
        )
        q = earns_less_naive()
        expected = set(naive_answer(q.formula, db, ("e",)).tuples)
        table, _ = dynamic_cost(earns_less_bounded_algebra(), db)
        assert set(table.rows) == expected

    def test_static_arity_analysis(self):
        # the static analyzer is conservative (a join is bounded by the sum
        # of its input arities without schema knowledge), but the gap
        # between the two plans is still unambiguous
        assert static_max_arity(earns_less_naive_algebra()) >= 12
        assert static_max_arity(earns_less_bounded_algebra()) <= 6
