"""Integration tests: budgets, chaos, and degradation across all engines.

Every engine must (a) stop promptly when its budget trips, (b) raise the
*matching* :class:`~repro.errors.ResourceExhausted` subclass with partial
progress and a metrics snapshot, (c) unwind cleanly under fault injection
(no leaked meter state), and (d) — where a sound cheaper mode exists —
degrade to it instead of failing.
"""

import time

import pytest

from repro.core.engine import EvalOptions, evaluate
from repro.core.eso_eval import eso_decide
from repro.core.interp import EvalStats
from repro.core.pfp_eval import SpaceMeter, pfp_answer
from repro.database import Database
from repro.datalog import parse_program, semi_naive
from repro.datalog.engine import evaluate_program
from repro.errors import (
    ClauseBudgetExceeded,
    DeadlineExceeded,
    DecisionBudgetExceeded,
    IterationBudgetExceeded,
    SpaceBudgetExceeded,
    StateBudgetExceeded,
)
from repro.guard import Budget, ChaosPolicy, InjectedFault, resolve_guard
from repro.logic.parser import parse_formula
from repro.mucalculus import model_check
from repro.mucalculus.kripke import KripkeStructure
from repro.mucalculus.syntax import Diamond, Mu, MuOr, Prop, RecVar
from repro.sat.cnf import CNF
from repro.sat.dpll import solve
from repro.workloads.graphs import path_graph

REACH = parse_formula("[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)")

# the bench's unary binary counter: ~2^n pfp iterations on an n-path
COUNTER = parse_formula(
    "[pfp X(x). (X(x) & ~forall y. (~LT(y, x) | X(y)))"
    " | (~X(x) & forall y. (~LT(y, x) | X(y)))](u)"
)


def counter_db(n: int) -> Database:
    base = path_graph(n)
    from repro.database import Relation

    lt = [(i, j) for i in range(n) for j in range(n) if i < j]
    return Database(
        base.domain, {"E": base.relation("E"), "LT": Relation(2, lt)}
    )


class TestFOGuard:
    def test_row_budget_enforces_nk_invariant(self, tiny_graph):
        phi = parse_formula("E(x, y) | E(y, x)")
        with pytest.raises(SpaceBudgetExceeded) as info:
            evaluate(
                phi, tiny_graph, ("x", "y"),
                EvalOptions(budget=Budget(max_rows=2)),
            )
        assert info.value.used > 2
        assert info.value.metrics["guard.checkpoints"] >= 1

    def test_unguarded_run_has_no_guard_on_result(self, tiny_graph):
        result = evaluate(parse_formula("P(x)"), tiny_graph, ("x",))
        assert result.guard is None

    def test_guarded_run_surfaces_guard(self, tiny_graph):
        result = evaluate(
            parse_formula("P(x)"), tiny_graph, ("x",),
            EvalOptions(budget=Budget(max_rows=100)),
        )
        assert result.guard is not None
        assert result.guard.snapshot()["peak_rows"] <= 100


class TestFPGuard:
    def test_iteration_budget(self, tiny_graph):
        with pytest.raises(IterationBudgetExceeded) as info:
            evaluate(
                REACH, tiny_graph, ("u",),
                EvalOptions(budget=Budget(max_iterations=1)),
            )
        assert info.value.kind == "iterations"
        assert "index" in info.value.partial

    def test_ample_budget_leaves_answer_unchanged(self, tiny_graph):
        free = evaluate(REACH, tiny_graph, ("u",))
        guarded = evaluate(
            REACH, tiny_graph, ("u",),
            EvalOptions(budget=Budget(max_iterations=10_000, max_rows=10_000)),
        )
        assert free.relation == guarded.relation


class TestPFPGuard:
    def test_cycling_pfp_with_deadline_terminates(self):
        # acceptance: a pfp that would otherwise run for ~2^18 iterations
        # stops within a 1-second deadline instead of hanging
        db = counter_db(18)
        start = time.monotonic()
        with pytest.raises(DeadlineExceeded) as info:
            pfp_answer(
                COUNTER, db, ("u",),
                guard=resolve_guard(Budget(deadline_seconds=1.0)),
            )
        elapsed = time.monotonic() - start
        assert elapsed < 10.0
        assert info.value.kind == "deadline"
        assert info.value.metrics["guard.iterations"] >= 1

    def test_state_budget_degrades_to_strict_counting(self):
        # the counter visits 2^n distinct states; a tiny state budget
        # forces the seen-set to be dropped mid-run, and the strict
        # counting mode must still produce the exact answer
        db = counter_db(5)
        stats = EvalStats()
        guarded = pfp_answer(
            COUNTER, db, ("u",), stats=stats,
            guard=resolve_guard(Budget(max_states=3)),
        )
        assert stats.registry.snapshot()["note.pfp_strict_fallbacks"] >= 1
        assert guarded == pfp_answer(COUNTER, db, ("u",))

    def test_state_budget_raises_without_degrade(self):
        db = counter_db(5)
        with pytest.raises(StateBudgetExceeded):
            pfp_answer(
                COUNTER, db, ("u",),
                guard=resolve_guard(Budget(max_states=3)),
                degrade=False,
            )

    def test_chaos_unwind_releases_meter(self, tiny_graph):
        phi = parse_formula("[pfp X(x). Q(x) | exists y. (E(x, y) & ~X(y))](u)")
        meter = SpaceMeter()
        guard = resolve_guard(None, chaos=ChaosPolicy(fail_at=20))
        with pytest.raises(InjectedFault):
            pfp_answer(phi, tiny_graph, ("u",), meter=meter, guard=guard)
        # the fixpoint frames were released on the way out
        assert meter.live_relations == 0
        assert meter.live_tuples == 0

    def test_chaos_seed_sweep_always_unwinds(self, tiny_graph):
        phi = parse_formula("[pfp X(x). Q(x) | exists y. (E(x, y) & ~X(y))](u)")
        expected = pfp_answer(phi, tiny_graph, ("u",))
        for seed in range(5):
            meter = SpaceMeter()
            guard = resolve_guard(
                None, chaos=ChaosPolicy(seed=seed, fail_within=30)
            )
            try:
                got = pfp_answer(phi, tiny_graph, ("u",), meter=meter, guard=guard)
                assert got == expected  # fault point past the evaluation
            except InjectedFault:
                pass
            assert meter.live_relations == 0


class TestESOGuard:
    TWO_COLOR = parse_formula(
        "exists2 R/1. forall x. forall y. "
        "(~E(x, y) | (R(x) & ~R(y)) | (~R(x) & R(y)))"
    )

    def test_clause_budget_without_degrade_raises(self):
        db = path_graph(4)
        with pytest.raises(ClauseBudgetExceeded) as info:
            eso_decide(
                self.TWO_COLOR, db,
                guard=resolve_guard(Budget(max_clauses=10)),
            )
        assert info.value.kind == "clauses"

    def test_degradation_ladder_preserves_answer(self):
        db = path_graph(4)
        stats = EvalStats()
        outcome = eso_decide(
            self.TWO_COLOR, db, stats=stats,
            guard=resolve_guard(Budget(max_clauses=10)),
            degrade=True,
        )
        assert outcome.truth == eso_decide(self.TWO_COLOR, db).truth
        notes = stats.registry.snapshot()
        assert notes["note.eso_fallback_naive_ground"] == 1
        assert notes["note.eso_fallback_naive_eval"] == 1

    def test_last_rung_failure_reraises_original_budget_error(self):
        # so_budget=0 makes the naive rung fail too: the reported error
        # must be the original clause exhaustion, not a converted one
        db = path_graph(4)
        with pytest.raises(ClauseBudgetExceeded):
            eso_decide(
                self.TWO_COLOR, db,
                guard=resolve_guard(Budget(max_clauses=10)),
                degrade=True, so_budget=0,
            )

    def test_decision_budget_reaches_dpll(self):
        # no unit clauses: the solver must branch, and may not
        cnf = CNF()
        x, y = cnf.var("x"), cnf.var("y")
        cnf.add_clause([x, y])
        cnf.add_clause([-x, y])
        cnf.add_clause([x, -y])
        assert solve(cnf).satisfiable
        with pytest.raises(DecisionBudgetExceeded):
            solve(cnf, guard=resolve_guard(Budget(max_decisions=0)))

    def test_full_pipeline_budget_via_evaluate(self, tiny_graph):
        phi = parse_formula("exists2 R/1. (R(x) & forall y. (~E(x, y) | R(y)))")
        free = evaluate(phi, tiny_graph, ("x",))
        guarded = evaluate(
            phi, tiny_graph, ("x",),
            EvalOptions(budget=Budget(max_clauses=40)),  # degrade defaults on
        )
        assert free.relation == guarded.relation


class TestDatalogGuard:
    PROGRAM = """
    reach(X) :- p(X).
    reach(Y) :- reach(X), e(X, Y).
    """

    def db(self) -> Database:
        return Database.from_tuples(
            range(6),
            {
                "e": (2, [(i, i + 1) for i in range(5)]),
                "p": (1, [(0,)]),
            },
        )

    def test_round_budget_both_modes(self):
        program = parse_program(self.PROGRAM)
        for engine in (evaluate_program, semi_naive):
            with pytest.raises(IterationBudgetExceeded) as info:
                engine(
                    program, self.db(),
                    guard=resolve_guard(Budget(max_iterations=2)),
                )
            assert info.value.partial["rounds"] >= 2

    def test_row_budget_on_idb(self):
        program = parse_program(self.PROGRAM)
        with pytest.raises(SpaceBudgetExceeded):
            semi_naive(
                program, self.db(),
                guard=resolve_guard(Budget(max_rows=3)),
            )

    def test_ample_budget_matches_unguarded(self):
        program = parse_program(self.PROGRAM)
        free = semi_naive(program, self.db())
        guarded = semi_naive(
            program, self.db(),
            guard=resolve_guard(Budget(max_iterations=100, max_rows=100)),
        )
        assert free["reach"] == guarded["reach"]


class TestMuCalculusGuard:
    def structure(self) -> KripkeStructure:
        return KripkeStructure.build(
            5, [(i, i + 1) for i in range(4)], {"goal": [4]}
        )

    def formula(self):
        # reachability: mu X. goal | <>X
        return Mu("X", MuOr((Prop("goal"), Diamond(RecVar("X")))))

    def test_iteration_budget(self):
        with pytest.raises(IterationBudgetExceeded) as info:
            model_check(
                self.structure(), self.formula(),
                guard=resolve_guard(Budget(max_iterations=2)),
            )
        assert info.value.partial["var"] == "X"

    def test_ample_budget_matches_unguarded(self):
        structure = self.structure()
        free = model_check(structure, self.formula())
        guarded = model_check(
            structure, self.formula(),
            guard=resolve_guard(Budget(max_iterations=100)),
        )
        assert free == guarded


class TestChaosAcrossEngines:
    """Every engine must surface InjectedFault, not swallow or wrap it."""

    def test_fo(self, tiny_graph):
        with pytest.raises(InjectedFault):
            evaluate(
                parse_formula("E(x, y) & E(y, x)"), tiny_graph, ("x", "y"),
                EvalOptions(chaos=ChaosPolicy(fail_at=1)),
            )

    def test_fp(self, tiny_graph):
        with pytest.raises(InjectedFault):
            evaluate(
                REACH, tiny_graph, ("u",),
                EvalOptions(chaos=ChaosPolicy(fail_at=3)),
            )

    def test_eso(self, tiny_graph):
        phi = parse_formula("exists2 R/1. (R(x) | ~R(x))")
        with pytest.raises(InjectedFault):
            evaluate(
                phi, tiny_graph, ("x",),
                EvalOptions(chaos=ChaosPolicy(fail_at=5)),
            )

    def test_datalog(self):
        program = parse_program("t(X, Y) :- e(X, Y).")
        db = Database.from_tuples(range(3), {"e": (2, [(0, 1)])})
        with pytest.raises(InjectedFault):
            semi_naive(
                program, db,
                guard=resolve_guard(None, chaos=ChaosPolicy(fail_at=1)),
            )

    def test_mucalculus(self):
        structure = KripkeStructure.build(2, [(0, 1)], {"goal": [1]})
        phi = Mu("X", MuOr((Prop("goal"), Diamond(RecVar("X")))))
        with pytest.raises(InjectedFault):
            model_check(
                structure, phi,
                guard=resolve_guard(None, chaos=ChaosPolicy(fail_at=2)),
            )
