"""Smoke tests: every example script runs to completion.

Examples are documentation that must not rot; each one is executed in a
subprocess and must exit 0.  They are small enough to run in seconds.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should print something"


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "company_queries",
        "model_checking",
        "lower_bounds_tour",
        "query_optimization",
        "reproduce_tables",
    } <= names
