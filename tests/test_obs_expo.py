"""Exposition format tests: golden rendering, parsing, and stability."""

import math

import pytest

from repro.obs.expo import (
    ExpositionError,
    format_value,
    gauge_family,
    metric_name,
    parse_exposition,
    registry_families,
    render_exposition,
    render_families,
)
from repro.obs.metrics import MetricsRegistry


def small_registry():
    registry = MetricsRegistry()
    registry.counter("serve.requests").inc(3)
    registry.gauge("serve.queue_depth").set(2)
    latency = registry.histogram("serve.latency_seconds", bounds=(0.1, 1.0))
    for value in (0.05, 0.5, 2.0):
        latency.observe(value)
    return registry


#: The full exposition for ``small_registry`` — every byte pinned.
GOLDEN = """\
# HELP repro_serve_latency_seconds End-to-end request latency in seconds.
# TYPE repro_serve_latency_seconds histogram
repro_serve_latency_seconds_bucket{le="0.1"} 1
repro_serve_latency_seconds_bucket{le="1"} 2
repro_serve_latency_seconds_bucket{le="+Inf"} 3
repro_serve_latency_seconds_sum 2.55
repro_serve_latency_seconds_count 3
# HELP repro_serve_queue_depth Requests currently parked in the fair queue.
# TYPE repro_serve_queue_depth gauge
repro_serve_queue_depth 2
# HELP repro_serve_requests_total Requests received by the query service.
# TYPE repro_serve_requests_total counter
repro_serve_requests_total 3
"""


class TestGoldenExposition:
    def test_exact_document(self):
        assert render_exposition(small_registry()) == GOLDEN

    def test_stable_across_renders(self):
        registry = small_registry()
        assert render_exposition(registry) == render_exposition(registry)

    def test_parses_line_by_line(self):
        samples = parse_exposition(GOLDEN)
        assert samples == [
            ("repro_serve_latency_seconds_bucket", {"le": "0.1"}, 1.0),
            ("repro_serve_latency_seconds_bucket", {"le": "1"}, 2.0),
            ("repro_serve_latency_seconds_bucket", {"le": "+Inf"}, 3.0),
            ("repro_serve_latency_seconds_sum", {}, 2.55),
            ("repro_serve_latency_seconds_count", {}, 3.0),
            ("repro_serve_queue_depth", {}, 2.0),
            ("repro_serve_requests_total", {}, 3.0),
        ]

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        samples = parse_exposition(render_exposition(small_registry()))
        buckets = [
            (labels["le"], value)
            for name, labels, value in samples
            if name.endswith("_bucket")
        ]
        values = [value for _, value in buckets]
        assert values == sorted(values)
        assert buckets[-1][0] == "+Inf"
        count = next(
            value for name, _, value in samples if name.endswith("_count")
        )
        assert buckets[-1][1] == count


class TestNamesAndValues:
    def test_metric_name_sanitizes_and_prefixes(self):
        assert metric_name("serve.latency_seconds") == (
            "repro_serve_latency_seconds"
        )
        assert metric_name("cache.hits") == "repro_cache_hits"
        assert metric_name("weird name!") == "repro_weird_name_"

    def test_counter_gets_total_suffix(self):
        registry = MetricsRegistry()
        registry.counter("serve.ok").inc()
        (family,) = registry_families(registry)
        assert family[0] == "repro_serve_ok_total"
        assert family[1] == "counter"

    def test_format_value(self):
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(math.nan) == "NaN"

    def test_gauge_family_renders_sorted_labels(self):
        family = gauge_family(
            "serve.slo_burn_rate",
            "burn",
            [({"window": "60s", "tenant": "t0"}, 1.5)],
        )
        text = render_families([family])
        assert (
            'repro_serve_slo_burn_rate{tenant="t0",window="60s"} 1.5' in text
        )
        samples = parse_exposition(text)
        assert samples == [
            ("repro_serve_slo_burn_rate", {"tenant": "t0", "window": "60s"}, 1.5)
        ]

    def test_label_escaping_round_trips(self):
        family = gauge_family(
            "serve.test", "help", [({"q": 'a"b\\c\nd'}, 1.0)]
        )
        samples = parse_exposition(render_families([family]))
        assert samples[0][1] == {"q": 'a"b\\c\nd'}


class TestParserStrictness:
    @pytest.mark.parametrize(
        "line",
        [
            "not a metric line at all ###",
            'name{unterminated="x} 1',
            "name{} notanumber",
            "# BOGUS comment kind",
        ],
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(ExpositionError):
            parse_exposition(line)

    def test_blank_lines_ignored(self):
        assert parse_exposition("\n\nrepro_x 1\n\n") == [("repro_x", {}, 1.0)]
