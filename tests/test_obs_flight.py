"""Flight recorder tests: ring behavior, filtering, and JSON dumps."""

import json
import os

import pytest

from repro.obs.flight import FlightRecorder


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t


class TestRing:
    def test_events_carry_seq_kind_and_relative_time(self):
        clock = FakeClock()
        recorder = FlightRecorder(clock=clock)
        clock.t += 1.5
        event = recorder.record("request", request_id="req-000001")
        assert event["seq"] == 1
        assert event["kind"] == "request"
        assert event["t"] == pytest.approx(1.5)
        assert event["request_id"] == "req-000001"

    def test_oldest_events_fall_off_a_full_ring(self):
        recorder = FlightRecorder(capacity=3, clock=FakeClock())
        for i in range(5):
            recorder.record("e", i=i)
        assert recorder.recorded == 5
        assert recorder.captured == 3
        assert recorder.dropped == 2
        assert [e["i"] for e in recorder.events()] == [2, 3, 4]

    def test_filter_by_kind_and_request_id(self):
        recorder = FlightRecorder(clock=FakeClock())
        recorder.record("request", request_id="req-1")
        recorder.record("crash", request_id="req-1")
        recorder.record("request", request_id="req-2")
        assert len(recorder.events(kind="request")) == 2
        assert len(recorder.events(request_id="req-1")) == 2
        assert len(recorder.events(kind="crash", request_id="req-2")) == 0

    def test_limit_keeps_the_newest(self):
        recorder = FlightRecorder(clock=FakeClock())
        for i in range(10):
            recorder.record("e", i=i)
        assert [e["i"] for e in recorder.events(limit=3)] == [7, 8, 9]

    def test_snapshot_accounting(self):
        recorder = FlightRecorder(capacity=2, clock=FakeClock())
        for _ in range(3):
            recorder.record("e")
        snap = recorder.snapshot(limit=1)
        assert snap["recorded"] == 3
        assert snap["captured"] == 2
        assert snap["dropped"] == 1
        assert len(snap["events"]) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestDump:
    def test_dump_writes_json_postmortem(self, tmp_path):
        recorder = FlightRecorder(clock=FakeClock())
        recorder.record("crash", request_id="req-7", detail="boom")
        path = recorder.dump(
            str(tmp_path), "worker-crash", request_id="req-7",
            extra={"tenant": "t0"},
        )
        assert recorder.last_dump == path
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["reason"] == "worker-crash"
        assert document["request_id"] == "req-7"
        assert document["context"] == {"tenant": "t0"}
        assert document["events"][0]["kind"] == "crash"

    def test_dump_filenames_are_distinct_and_sortable(self, tmp_path):
        recorder = FlightRecorder(clock=FakeClock())
        paths = []
        for _ in range(3):
            recorder.record("crash")
            paths.append(recorder.dump(str(tmp_path), "worker-crash"))
        assert len(set(paths)) == 3
        assert paths == sorted(paths)

    def test_dump_sanitizes_reason(self, tmp_path):
        recorder = FlightRecorder(clock=FakeClock())
        recorder.record("e")
        path = recorder.dump(str(tmp_path), "a b/c")
        assert os.path.basename(path) == os.path.basename(path).replace(
            "/", ""
        )
        assert " " not in os.path.basename(path)

    def test_dump_creates_directory(self, tmp_path):
        recorder = FlightRecorder(clock=FakeClock())
        recorder.record("e")
        nested = tmp_path / "deep" / "dir"
        path = recorder.dump(str(nested), "x")
        assert os.path.exists(path)
