"""Tests for repro.database.domain."""

import pytest
from hypothesis import given, strategies as st

from repro.database.domain import Domain
from repro.errors import SchemaError


class TestConstruction:
    def test_range_constructor(self):
        d = Domain.range(5)
        assert len(d) == 5
        assert list(d) == [0, 1, 2, 3, 4]

    def test_empty_domain(self):
        d = Domain.range(0)
        assert len(d) == 0
        assert list(d.tuples(1)) == []

    def test_negative_range_rejected(self):
        with pytest.raises(SchemaError):
            Domain.range(-1)

    def test_duplicates_rejected(self):
        with pytest.raises(SchemaError):
            Domain([1, 1, 2])

    def test_canonical_order_independent_of_input_order(self):
        assert Domain([3, 1, 2]).values == Domain([2, 3, 1]).values == (1, 2, 3)

    def test_mixed_type_values_get_stable_order(self):
        d1 = Domain(["b", 1, "a"])
        d2 = Domain([1, "a", "b"])
        assert d1.values == d2.values

    def test_equality_is_set_based(self):
        assert Domain([1, 2, 3]) == Domain([3, 2, 1])
        assert Domain([1, 2]) != Domain([1, 2, 3])
        assert hash(Domain([1, 2])) == hash(Domain([2, 1]))


class TestMembershipAndIndex:
    def test_contains(self):
        d = Domain([3, 5, 7])
        assert 5 in d
        assert 4 not in d

    def test_index_of_roundtrip(self):
        d = Domain([3, 5, 7])
        for i, v in enumerate(d.values):
            assert d.index_of(v) == i

    def test_index_of_missing_raises(self):
        with pytest.raises(SchemaError):
            Domain([1]).index_of(2)


class TestTuples:
    def test_tuple_count(self):
        d = Domain.range(3)
        assert len(list(d.tuples(2))) == 9
        assert len(list(d.tuples(0))) == 1  # the empty tuple

    def test_lexicographic_order(self):
        d = Domain.range(2)
        assert list(d.tuples(2)) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_negative_arity_rejected(self):
        with pytest.raises(SchemaError):
            list(Domain.range(2).tuples(-1))

    @given(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=3))
    def test_tuple_count_is_n_to_the_k(self, n, k):
        d = Domain.range(n)
        assert len(list(d.tuples(k))) == n**k
