"""Unit tests for cross-run span profiles."""

import pytest

from repro.errors import ReproError
from repro.obs.profile import (
    ProfileWarning,
    SpanProfile,
    parse_trace_jsonl,
    profile_record,
    profile_sweep,
    render_profile,
    self_durations,
)
from repro.obs.tracer import Tracer


class FakeClock:
    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def _traced(step=1.0):
    """outer(child_a, child_b) with deterministic 1s clock ticks."""
    tracer = Tracer(clock=FakeClock(step))
    with tracer.span("outer"):
        with tracer.span("child"):
            pass
        with tracer.span("child"):
            pass
    return tracer


class TestParseTraceJsonl:
    def test_roundtrip_from_tracer(self):
        spans = parse_trace_jsonl(_traced().export_jsonl())
        assert [s["name"] for s in spans] == ["outer", "child", "child"]

    def test_blank_lines_skipped(self):
        text = "\n" + _traced().export_jsonl() + "\n\n"
        assert len(parse_trace_jsonl(text)) == 3

    def test_bad_json_line_rejected_when_strict(self):
        with pytest.raises(ReproError):
            parse_trace_jsonl(
                '{"name": "a", "duration": 1}\nnot json', on_error="raise"
            )

    def test_non_span_object_rejected_when_strict(self):
        with pytest.raises(ReproError):
            parse_trace_jsonl('{"duration": 1}', on_error="raise")

    def test_bad_lines_skipped_with_warning_by_default(self):
        text = (
            '{"name": "a", "duration": 1}\n'
            "not json\n"
            '{"duration": 1}\n'
            '{"name": "b", "duration": 2}'
        )
        with pytest.warns(ProfileWarning) as caught:
            spans = parse_trace_jsonl(text)
        assert [s["name"] for s in spans] == ["a", "b"]
        (warning,) = caught
        assert "skipped 2 malformed trace line(s)" in str(warning.message)
        assert "line 2" in str(warning.message)

    def test_clean_input_emits_no_warning(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            spans = parse_trace_jsonl(_traced().export_jsonl())
        assert len(spans) == 3

    def test_bad_on_error_mode_rejected(self):
        with pytest.raises(ReproError):
            parse_trace_jsonl("", on_error="ignore")


class TestSelfDurations:
    def test_parent_minus_children(self):
        spans = parse_trace_jsonl(_traced().export_jsonl())
        by_name = {}
        for name, total, self_time in self_durations(spans):
            by_name.setdefault(name, []).append((total, self_time))
        # outer lasted 5 ticks, children 1 tick each -> self = 3
        (outer,) = by_name["outer"]
        assert outer == (5.0, 3.0)
        assert by_name["child"] == [(1.0, 1.0), (1.0, 1.0)]

    def test_orphan_parent_ignored(self):
        rows = self_durations(
            [{"span_id": 1, "parent_id": 99, "name": "a", "duration": 2.0}]
        )
        assert rows == [("a", 2.0, 2.0)]


class TestSpanProfile:
    def test_add_tracer_matches_aggregate(self):
        profile = SpanProfile().add_tracer(4.0, _traced())
        assert profile.cell("outer", 4.0) == {
            "count": 1.0,
            "total": 5.0,
            "self": 3.0,
        }
        assert profile.cell("child", 4.0)["count"] == 2.0

    def test_serialized_and_live_agree(self):
        tracer = _traced()
        live = SpanProfile().add_tracer(4.0, tracer)
        serialized = SpanProfile().add_spans(
            4.0, parse_trace_jsonl(tracer.export_jsonl())
        )
        for name in live.names():
            assert live.cell(name, 4.0) == serialized.cell(name, 4.0)

    def test_parameters_stay_sorted(self):
        profile = SpanProfile()
        profile.add_tracer(8.0, _traced())
        profile.add_tracer(2.0, _traced())
        assert profile.parameters == [2.0, 8.0]

    def test_hot_ranks_by_total_self(self):
        profile = SpanProfile()
        profile.add_tracer(2.0, _traced())
        assert profile.hot(1) == ["outer"]

    def test_self_series_across_parameters(self):
        profile = SpanProfile()
        profile.add_tracer(2.0, _traced(step=1.0))
        profile.add_tracer(4.0, _traced(step=2.0))
        assert profile.self_series("outer") == [(2.0, 3.0), (4.0, 6.0)]

    def test_merge_accumulates(self):
        a = SpanProfile().add_tracer(2.0, _traced())
        b = SpanProfile().add_tracer(2.0, _traced())
        a.merge(b)
        assert a.cell("outer", 2.0)["count"] == 2.0

    def test_to_dict_shape(self):
        payload = SpanProfile().add_tracer(2.0, _traced()).to_dict()
        assert payload["parameters"] == [2.0]
        assert payload["spans"]["outer"]["2"]["self"] == 3.0


class TestProfileSources:
    def test_profile_sweep_skips_untraced_points(self):
        from repro.complexity.measure import run_sweep

        def workload(parameter, tracer):
            with tracer.span("work"):
                pass
            return {"x": 1.0}

        sweep = run_sweep("p", [2.0, 3.0], workload, tracer_factory=Tracer)
        profile = profile_sweep(sweep)
        assert profile.names() == ["work"]
        assert profile.parameters == [2.0, 3.0]

    def test_profile_record_reads_embedded_spans(self):
        from repro.obs.runstore import build_record

        tracer = _traced()
        spans = parse_trace_jsonl(tracer.export_jsonl())
        record = build_record(
            "PR",
            "t",
            parameters=[4.0],
            seconds=[0.1],
            spans=[spans],
        )
        profile = profile_record(record)
        assert profile.cell("outer", 4.0)["self"] == 3.0


class TestRenderProfile:
    def test_empty_profile(self):
        assert render_profile(SpanProfile()) == "(no spans profiled)"

    def test_matrix_has_parameter_columns(self):
        profile = SpanProfile()
        profile.add_tracer(2.0, _traced())
        profile.add_tracer(4.0, _traced())
        text = render_profile(profile)
        header = text.splitlines()[0]
        assert "n=2" in header and "n=4" in header
        assert "total self" in header

    def test_missing_cell_renders_dash(self):
        profile = SpanProfile()
        profile.add_tracer(2.0, _traced())
        other = Tracer(clock=FakeClock())
        with other.span("late"):
            pass
        profile.add_tracer(4.0, other)
        outer_line = next(
            line
            for line in render_profile(profile).splitlines()
            if line.startswith("outer")
        )
        assert "-" in outer_line
