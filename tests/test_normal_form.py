"""Tests for NNF and simplification (repro.logic.normal_form)."""

from hypothesis import given

from repro.core.naive_eval import naive_answer
from repro.logic.builders import atom, lfp, gfp, not_
from repro.logic.normal_form import negate_fixpoint_dual, simplify, to_nnf
from repro.logic.parser import parse_formula
from repro.logic.syntax import And, Exists, Forall, GFP, LFP, Not, Or, RelAtom, Truth
from repro.logic.variables import free_variables

from tests.conftest import databases, fo_formulas


def _only_atomic_negations(phi):
    for node in phi.walk():
        if isinstance(node, Not):
            if not isinstance(node.sub, (RelAtom,)) and not type(
                node.sub
            ).__name__ in ("Equals", "PFP", "IFP", "SOExists"):
                return False
    return True


class TestNNF:
    def test_pushes_negation_through_connectives(self):
        phi = to_nnf(parse_formula("~(P(x) & Q(x))"))
        assert isinstance(phi, Or)
        assert all(isinstance(s, Not) for s in phi.subs)

    def test_quantifier_duality(self):
        phi = to_nnf(parse_formula("~exists x. P(x)"))
        assert isinstance(phi, Forall)
        phi = to_nnf(parse_formula("~forall x. P(x)"))
        assert isinstance(phi, Exists)

    def test_double_negation(self):
        assert to_nnf(parse_formula("~~P(x)")) == parse_formula("P(x)")

    def test_negated_lfp_becomes_gfp(self):
        phi = to_nnf(parse_formula("~[lfp S(x). P(x) | S(x)](u)"))
        assert isinstance(phi, GFP)

    def test_negated_gfp_becomes_lfp(self):
        phi = to_nnf(parse_formula("~[gfp S(x). P(x) & S(x)](u)"))
        assert isinstance(phi, LFP)

    @given(fo_formulas())
    def test_result_has_only_atomic_negations(self, phi):
        assert _only_atomic_negations(to_nnf(phi))

    @given(fo_formulas(), databases(max_size=3))
    def test_nnf_preserves_semantics(self, phi, db):
        out = sorted(free_variables(phi))
        assert naive_answer(phi, db, out) == naive_answer(to_nnf(phi), db, out)

    @given(databases(max_size=3))
    def test_fixpoint_dual_preserves_semantics(self, db):
        phi = parse_formula(
            "~[gfp S(x). [lfp T(z). (P(z) & S(z)) | exists y. (E(z, y) & T(y))](x)](u)"
        )
        assert naive_answer(phi, db, ("u",)) == naive_answer(
            to_nnf(phi), db, ("u",)
        )


class TestDual:
    def test_dual_of_lfp_is_gfp(self):
        node = lfp("S", ["x"], atom("P", "x") | atom("S", "x"), ["u"])
        dual = negate_fixpoint_dual(node)
        assert isinstance(dual, GFP)

    @given(databases(max_size=3))
    def test_dual_is_complement(self, db):
        node = lfp(
            "S",
            ["x"],
            atom("P", "x") | parse_formula("exists y. (E(y, x) & S(y))"),
            ["u"],
        )
        direct = naive_answer(Not(node), db, ("u",))
        dual = naive_answer(negate_fixpoint_dual(node), db, ("u",))
        assert direct == dual


class TestSimplify:
    def test_constant_folding(self):
        assert simplify(parse_formula("P(x) & true")) == parse_formula("P(x)")
        assert simplify(parse_formula("P(x) & false")) == Truth(False)
        assert simplify(parse_formula("P(x) | true")) == Truth(True)
        assert simplify(parse_formula("~~P(x)")) == parse_formula("P(x)")

    def test_flattening(self):
        phi = And((And((atom("P", "x"), atom("Q", "x"))), atom("P", "y")))
        assert len(simplify(phi).subs) == 3

    @given(fo_formulas(), databases(min_size=1, max_size=3))
    def test_simplify_preserves_semantics_on_nonempty_domains(self, phi, db):
        out = sorted(free_variables(phi))
        simplified = simplify(phi)
        missing = free_variables(phi) - free_variables(simplified)
        # simplification may drop variables (e.g. P(x) & false); evaluate
        # over the original output tuple either way
        assert naive_answer(phi, db, out) == naive_answer(simplified, db, out)
