"""The observability pipeline threaded through the service and HTTP layer:

cross-process trace correlation, SLO windows in ``/stats``, the
``GET /metrics`` exposition, and flight-recorder snapshots and dumps on
structured failures.
"""

import asyncio
import json

import pytest

from repro.database.database import Database
from repro.errors import Overloaded, ResourceExhausted
from repro.guard.budget import Budget
from repro.guard.chaos import ChaosPolicy
from repro.obs.expo import parse_exposition
from repro.serve.admission import TenantPolicy
from repro.serve.cli import TC_QUERY, _http_json, _http_text
from repro.serve.http import ServeHTTP
from repro.serve.retry import RetryPolicy
from repro.serve.service import STATS_SCHEMA_VERSION, QueryService

FAST_RETRY = RetryPolicy(base_delay=0.0, jitter=0.0)


def path_db(n=6):
    return Database.from_tuples(
        range(n), {"E": (2, [(i, i + 1) for i in range(n - 1)])}
    )


def make_service(**kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    service = QueryService(**kwargs)
    service.register_database("g", path_db())
    service.prepare("tc", TC_QUERY, ("u", "v"))
    return service


def run(coro):
    return asyncio.run(coro)


def serve(test_body, **service_kwargs):
    service = make_service(**service_kwargs)

    async def main_coro():
        server = ServeHTTP(service)
        host, port = await server.start()
        try:
            await test_body(host, port, service)
        finally:
            await server.close()
            service.close()

    asyncio.run(asyncio.wait_for(main_coro(), timeout=60))


class TestTraceCorrelation:
    def test_traced_call_returns_assembled_trace(self):
        service = make_service()
        response = run(service.call("t0", "tc", "g", trace=True))
        assert response.request_id == "req-000001"
        assert response.trace is not None
        names = [span["name"] for span in response.trace]
        assert names[0] == "serve.request"
        assert names[1] == "serve.attempt"
        assert "evaluate" in names  # the worker-side engine span
        assert all(
            span["attrs"]["request_id"] == "req-000001"
            for span in response.trace
        )
        service.close()

    def test_untraced_call_still_stores_a_trace(self):
        service = make_service()
        response = run(service.call("t0", "tc", "g"))
        assert response.trace is None
        stored = service.traces.get(response.request_id)
        assert stored is not None
        assert stored[0]["name"] == "serve.request"
        # untraced: no worker spans, just the request/attempt skeleton
        assert [s["name"] for s in stored] == [
            "serve.request", "serve.attempt"
        ]
        service.close()

    def test_request_ids_are_sequential(self):
        service = make_service()
        first = run(service.call("t0", "tc", "g"))
        second = run(service.call("t0", "tc", "g"))
        assert (first.request_id, second.request_id) == (
            "req-000001", "req-000002"
        )
        service.close()

    def test_retried_request_has_one_trace_with_both_attempts(self):
        service = make_service()
        service.set_tenant("t0", TenantPolicy(max_attempts=3))
        transient = [ChaosPolicy(seed=1, fail_at=1), None]
        response = run(
            service.call("t0", "tc", "g", chaos=transient, trace=True)
        )
        assert response.retries == 1
        attempts = [
            span for span in response.trace
            if span["name"] == "serve.attempt"
        ]
        assert [a["attrs"]["outcome"] for a in attempts] == ["fault", "ok"]
        service.close()

    def test_response_as_dict_includes_trace_only_when_traced(self):
        service = make_service()
        traced = run(service.call("t0", "tc", "g", trace=True))
        plain = run(service.call("t0", "tc", "g"))
        assert "trace" in traced.as_dict()
        assert "trace" not in plain.as_dict()
        assert plain.as_dict()["request_id"] == plain.request_id
        service.close()


class TestStatsSchema:
    #: The v2 ``/stats`` top-level layout — a dashboard compatibility
    #: contract; extend it deliberately and bump STATS_SCHEMA_VERSION.
    V2_KEYS = {
        "schema_version",
        "uptime_seconds",
        "metrics",
        "admission",
        "breakers",
        "pool",
        "databases",
        "queries",
        "cache",
        "slo",
        "flight",
        "traces",
    }

    def test_top_level_keys_are_stable(self):
        service = make_service()
        stats = service.stats()
        assert set(stats) == self.V2_KEYS
        assert stats["schema_version"] == STATS_SCHEMA_VERSION
        service.close()

    def test_uptime_advances(self):
        clock = [100.0]
        service = make_service(clock=lambda: clock[0])
        clock[0] = 107.5
        assert service.stats()["uptime_seconds"] == pytest.approx(7.5)
        service.close()

    def test_breaker_entries_carry_cooldown(self):
        service = make_service()
        run(service.call("t0", "tc", "g"))
        breakers = service.stats()["breakers"]
        assert set(breakers["t0"]) == {
            "state", "consecutive_failures", "trips", "cooldown_remaining"
        }
        assert breakers["t0"]["cooldown_remaining"] == 0.0
        service.close()

    def test_slo_board_tracks_outcomes(self):
        service = make_service()
        run(service.call("t0", "tc", "g"))
        with pytest.raises(ResourceExhausted):
            service.set_tenant(
                "tight", TenantPolicy(budget=Budget(max_rows=1))
            )
            run(service.call("tight", "tc", "g", backend="sparse"))
        slo = service.stats()["slo"]
        assert slo["tenants"]["t0"]["60s"]["errors"] == 0
        assert slo["tenants"]["tight"]["60s"]["errors"] == 1
        assert slo["total"]["60s"]["requests"] == 2
        assert slo["total"]["60s"]["burn_rate"] > 0.0
        service.close()

    def test_stats_document_is_json_serializable(self):
        service = make_service()
        run(service.call("t0", "tc", "g"))
        json.dumps(service.stats(), default=repr)
        service.close()


class TestMetricsEndpoint:
    def test_exposition_parses_and_counts_requests(self):
        async def body(host, port, service):
            for _ in range(3):
                await _http_json(
                    host, port, "POST", "/call",
                    {"tenant": "t0", "query": "tc", "db": "g"},
                )
            status, text = await _http_text(host, port, "/metrics")
            assert status == 200
            samples = parse_exposition(text)
            by_name = {}
            for name, labels, value in samples:
                by_name.setdefault(name, []).append((labels, value))
            assert by_name["repro_serve_requests_total"][0][1] == 3.0
            assert by_name["repro_serve_ok_total"][0][1] == 3.0
            assert "repro_serve_uptime_seconds" in by_name
            # SLO gauges are labeled by tenant and window
            burn_labels = {
                (labels["tenant"], labels["window"])
                for labels, _ in by_name["repro_serve_slo_burn_rate"]
            }
            assert ("t0", "60s") in burn_labels
            assert ("_total", "300s") in burn_labels
            # latency histogram rides the latency bucket grid
            lat = by_name["repro_serve_latency_seconds_bucket"]
            assert any(labels["le"] == "0.001" for labels, _ in lat)
            assert any(labels["le"] == "+Inf" for labels, _ in lat)

        serve(body)

    def test_exposition_stable_when_idle(self):
        service = make_service(clock=lambda: 100.0)
        first = service.metrics_text()
        second = service.metrics_text()
        assert first == second
        service.close()


class TestTraceEndpoint:
    def test_fetch_by_id_and_latest(self):
        async def body(host, port, service):
            status, resp = await _http_json(
                host, port, "POST", "/call",
                {"tenant": "t0", "query": "tc", "db": "g", "trace": True},
            )
            assert status == 200
            request_id = resp["request_id"]
            assert resp["trace"][0]["name"] == "serve.request"
            status, by_id = await _http_json(
                host, port, "GET", f"/trace/{request_id}"
            )
            assert status == 200
            assert by_id["request_id"] == request_id
            assert by_id["spans"][0]["name"] == "serve.request"
            status, latest = await _http_json(host, port, "GET", "/trace")
            assert status == 200
            assert latest["request_id"] == request_id

        serve(body)

    def test_unknown_trace_404s(self):
        async def body(host, port, service):
            status, resp = await _http_json(
                host, port, "GET", "/trace/req-999999"
            )
            assert status == 404
            assert resp["error"] == "unknown-trace"
            status, resp = await _http_json(host, port, "GET", "/trace")
            assert status == 404
            assert resp["error"] == "no-traces"

        serve(body)


class TestFlightRecorder:
    def test_terminal_failure_carries_flight_snapshot(self):
        service = make_service()
        service.set_tenant("t0", TenantPolicy(max_attempts=1))
        with pytest.raises(Overloaded) as exc_info:
            run(
                service.call(
                    "t0", "tc", "g", chaos=ChaosPolicy(seed=2, fail_at=1)
                )
            )
        flight = exc_info.value.flight
        kinds = [event["kind"] for event in flight["events"]]
        assert "request" in kinds
        assert "fault" in kinds
        assert "overloaded" in kinds
        service.close()

    def test_retries_exhausted_dumps_postmortem(self, tmp_path):
        service = make_service(flight_dump_dir=str(tmp_path))
        service.set_tenant("t0", TenantPolicy(max_attempts=1))
        with pytest.raises(Overloaded):
            run(
                service.call(
                    "t0", "tc", "g", chaos=ChaosPolicy(seed=2, fail_at=1)
                )
            )
        dumps = sorted(tmp_path.glob("flight-retries-exhausted-*.json"))
        assert len(dumps) == 1
        document = json.loads(dumps[0].read_text(encoding="utf-8"))
        assert document["request_id"] == "req-000001"
        assert document["context"]["tenant"] == "t0"
        service.close()

    def test_resource_exhaustion_dumps_postmortem(self, tmp_path):
        service = make_service(flight_dump_dir=str(tmp_path))
        service.set_tenant(
            "tight", TenantPolicy(budget=Budget(max_rows=1))
        )
        with pytest.raises(ResourceExhausted):
            run(service.call("tight", "tc", "g", backend="sparse"))
        dumps = sorted(tmp_path.glob("flight-resource-exhausted-*.json"))
        assert len(dumps) == 1
        service.close()

    def test_admission_shed_attaches_snapshot_but_never_dumps(
        self, tmp_path
    ):
        service = make_service(
            max_concurrency=1, max_queue=0, flight_dump_dir=str(tmp_path)
        )

        async def main():
            # hold the only slot so the next request sheds immediately
            await service.admission.admit("hog")
            with pytest.raises(Overloaded) as exc_info:
                await service.call("t1", "tc", "g")
            assert "events" in exc_info.value.flight
            service.admission.release(0.0)

        run(main())
        assert list(tmp_path.glob("flight-*.json")) == []
        service.close()

    def test_http_429_body_includes_flight(self):
        async def body(host, port, service):
            service.set_tenant("t0", TenantPolicy(max_attempts=1))
            status, resp = await _http_json(
                host, port, "POST", "/call",
                {
                    "tenant": "t0", "query": "tc", "db": "g",
                    "chaos": {"seed": 2, "fail_at": 1},
                },
            )
            assert status == 429
            assert resp["error"] == "overloaded"
            kinds = [e["kind"] for e in resp["flight"]["events"]]
            assert "fault" in kinds

        serve(body)

    def test_flight_ring_records_degradation(self):
        service = make_service()
        service.set_tenant(
            "tight",
            TenantPolicy(budget=Budget(max_rows=3), max_attempts=1),
        )
        try:
            run(service.call("tight", "tc", "g", strategy="seminaive"))
        except ResourceExhausted:
            pass
        kinds = {event["kind"] for event in service.flight.events()}
        assert "degrade" in kinds
        service.close()


class TestTelemetryConcurrency:
    def test_concurrent_emitters_never_interleave_lines(self, tmp_path):
        import threading

        from repro.serve.telemetry import TelemetryLog

        path = tmp_path / "telemetry.jsonl"
        with TelemetryLog(str(path)) as log:
            def emit_many(worker):
                for i in range(200):
                    log.emit({"worker": worker, "i": i, "pad": "x" * 64})

            threads = [
                threading.Thread(target=emit_many, args=(w,))
                for w in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert log.events == 800
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 800
        # every line is standalone valid JSON — no torn writes
        for line in lines:
            json.loads(line)

    def test_context_manager_closes_handle(self, tmp_path):
        from repro.serve.telemetry import TelemetryLog

        path = tmp_path / "t.jsonl"
        with TelemetryLog(str(path)) as log:
            log.emit({"event": "x"})
            assert log._handle is not None
        assert log._handle is None

    def test_disabled_log_counts_but_never_opens(self):
        from repro.serve.telemetry import TelemetryLog

        with TelemetryLog(None) as log:
            log.emit({"event": "x"})
            assert not log.enabled
            assert log.events == 1


class TestTelemetryCorrelation:
    def test_events_carry_request_ids(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        service = make_service(telemetry_path=str(path))
        run(service.call("t0", "tc", "g"))
        service.set_tenant("bad", TenantPolicy(max_attempts=1))
        with pytest.raises(Overloaded):
            run(
                service.call(
                    "bad", "tc", "g", chaos=ChaosPolicy(seed=2, fail_at=1)
                )
            )
        service.close()
        events = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert [event["request_id"] for event in events] == [
            "req-000001", "req-000002"
        ]
        assert [event["outcome"] for event in events] == [
            "ok", "overloaded"
        ]
