"""Shared fixtures and hypothesis strategies for the test suite.

The central idea of the suite: :mod:`repro.core.naive_eval` is the
obviously-correct reference semantics, and every other engine, rewrite,
compiler and optimizer is property-tested against it on random small
databases and formulas.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings, strategies as st

from repro.database.database import Database
from repro.database.domain import Domain
from repro.database.relation import Relation
from repro.logic.syntax import (
    And,
    Equals,
    Exists,
    Forall,
    GFP,
    LFP,
    Not,
    Or,
    RelAtom,
    Truth,
    Var,
)

# keep hypothesis fast and deterministic-ish for CI-style runs
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
settings.load_profile("repro")

#: The standard test schema: one edge relation, two unary labels.
SCHEMA = (("E", 2), ("P", 1), ("Q", 1))
VARS = ("x", "y", "z")


@st.composite
def databases(draw, min_size: int = 1, max_size: int = 4):
    """Random small databases over the standard schema."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    relations = {}
    for name, arity in SCHEMA:
        universe = [
            tuple(t)
            for t in _tuples(n, arity)
        ]
        chosen = draw(st.sets(st.sampled_from(universe))) if universe else set()
        relations[name] = Relation(arity, chosen)
    return Database(Domain.range(n), relations)


def _tuples(n: int, arity: int):
    import itertools

    return list(itertools.product(range(n), repeat=arity))


def _atoms():
    options = []
    for name, arity in SCHEMA:
        options.append(
            st.tuples(*[st.sampled_from(VARS) for _ in range(arity)]).map(
                lambda vs, name=name: RelAtom(name, tuple(Var(v) for v in vs))
            )
        )
    options.append(
        st.tuples(st.sampled_from(VARS), st.sampled_from(VARS)).map(
            lambda pair: Equals(Var(pair[0]), Var(pair[1]))
        )
    )
    options.append(st.booleans().map(Truth))
    return st.one_of(options)


def fo_formulas(max_depth: int = 4):
    """Random FO formulas over the standard schema, width ≤ 3."""
    return st.recursive(
        _atoms(),
        lambda children: st.one_of(
            children.map(Not),
            st.tuples(children, children).map(lambda p: And(p)),
            st.tuples(children, children).map(lambda p: Or(p)),
            st.tuples(st.sampled_from(VARS), children).map(
                lambda p: Exists(Var(p[0]), p[1])
            ),
            st.tuples(st.sampled_from(VARS), children).map(
                lambda p: Forall(Var(p[0]), p[1])
            ),
        ),
        max_leaves=2**max_depth,
    )


@st.composite
def fp_formulas(draw, max_fixpoints: int = 2):
    """Random FP formulas: FO skeleton with positive lfp/gfp fixpoints.

    Recursion atoms appear only in positive positions (never under a Not
    generated around them), so :func:`repro.logic.analysis.check_positivity`
    always passes.
    """
    counter = draw(st.integers(min_value=0, max_value=10**6))

    def fresh_rel(i):
        return f"S{counter}_{i}"

    index = [0]

    def build(depth: int, rec_vars: tuple) -> object:
        choice = draw(
            st.integers(min_value=0, max_value=7 if depth > 0 else 1)
        )
        if choice == 0 or depth == 0:
            if rec_vars and draw(st.booleans()):
                rel = draw(st.sampled_from(list(rec_vars)))
                return RelAtom(rel, (Var(draw(st.sampled_from(VARS))),))
            return draw(_atoms())
        if choice == 1:
            return draw(_atoms())
        if choice == 2:
            # negation: the subformula must not mention recursion variables
            return Not(build(depth - 1, ()))
        if choice == 3:
            return And((build(depth - 1, rec_vars), build(depth - 1, rec_vars)))
        if choice == 4:
            return Or((build(depth - 1, rec_vars), build(depth - 1, rec_vars)))
        if choice == 5:
            v = draw(st.sampled_from(VARS))
            return Exists(Var(v), build(depth - 1, rec_vars))
        if choice == 6:
            v = draw(st.sampled_from(VARS))
            return Forall(Var(v), build(depth - 1, rec_vars))
        # fixpoint
        if index[0] >= max_fixpoints:
            return draw(_atoms())
        rel = fresh_rel(index[0])
        index[0] += 1
        kind = LFP if draw(st.booleans()) else GFP
        bound = draw(st.sampled_from(VARS))
        body = build(depth - 1, rec_vars + (rel,))
        arg = draw(st.sampled_from(VARS))
        return kind(rel, (Var(bound),), body, (Var(arg),))

    return build(3, ())


@pytest.fixture
def tiny_graph():
    """A small deterministic graph database used across tests."""
    return Database.from_tuples(
        range(4),
        {
            "E": (2, [(0, 1), (1, 2), (2, 3), (3, 1)]),
            "P": (1, [(0,), (2,)]),
            "Q": (1, [(3,)]),
        },
    )
