"""Sliding-window semantics: the bucket-math contract, property-tested.

The contract under test (see ``repro/obs/rolling.py``):

* an observation at time ``t`` lands in bucket ``floor(t / width)``;
* a reading at ``now`` covers the ``n`` epochs
  ``(floor(now / width) - n, floor(now / width)]``;
* so an observation expires between ``horizon - width`` and ``horizon``
  seconds after it was made.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.rolling import (
    DEFAULT_HORIZONS,
    WindowSet,
    WindowedCounter,
    WindowedHistogram,
    horizon_label,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def counter(horizon=60.0, width=1.0, clock=None):
    return WindowedCounter(
        "test", horizon=horizon, bucket_seconds=width,
        clock=clock or FakeClock(),
    )


class TestWindowedCounter:
    def test_observation_visible_immediately(self):
        c = counter()
        c.inc(3.0, now=10.0)
        assert c.total(now=10.0) == 3.0

    def test_observation_survives_to_horizon_minus_width(self):
        # obs at t=0.0 (bucket 0); reading at 59.9 (bucket 59) still
        # covers epochs (−1, 59] — bucket 0 is the oldest live bucket
        c = counter()
        c.inc(1.0, now=0.0)
        assert c.total(now=59.9) == 1.0

    def test_observation_expires_at_horizon(self):
        # reading at 60.0 (bucket 60) covers (0, 60] — bucket 0 is gone
        c = counter()
        c.inc(1.0, now=0.0)
        assert c.total(now=60.0) == 0.0

    def test_late_in_bucket_observation_expires_late(self):
        # obs at 59.5 is bucket 59, live until the reading bucket
        # exceeds 59 + 59 = 118, i.e. any now < 119.0
        c = counter()
        c.inc(1.0, now=59.5)
        assert c.total(now=118.9) == 1.0
        assert c.total(now=119.0) == 0.0

    def test_slot_reuse_after_wraparound(self):
        # bucket 0 and bucket 60 share a ring slot; writing the later
        # epoch must evict the earlier value, not add to it
        c = counter()
        c.inc(5.0, now=0.5)
        c.inc(2.0, now=60.5)
        assert c.total(now=60.5) == 2.0

    def test_rate_divides_by_horizon(self):
        c = counter(horizon=10.0)
        for t in range(5):
            c.inc(2.0, now=float(t))
        assert c.rate(now=4.0) == pytest.approx(1.0)

    def test_snapshot_keys(self):
        c = counter()
        c.inc(now=1.0)
        assert set(c.snapshot(now=1.0)) == {"total", "rate"}

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedCounter("bad", horizon=0.0)
        with pytest.raises(ValueError):
            WindowedCounter("bad", bucket_seconds=0.0)


# Times are drawn on a coarse grid well past one ring circumference so
# wraparound, expiry, and same-bucket merging all occur.
_TIMES = st.floats(
    min_value=0.0, max_value=300.0, allow_nan=False, allow_infinity=False
)


class TestCounterProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        observations=st.lists(st.tuples(_TIMES, st.integers(1, 5)), max_size=30),
        read_at=_TIMES,
        width=st.sampled_from([0.5, 1.0, 2.0]),
        horizon=st.sampled_from([10.0, 60.0]),
    )
    def test_total_matches_bucket_model(
        self, observations, read_at, width, horizon
    ):
        """The windowed total equals the direct epoch-interval model."""
        read_at = max(read_at, max((t for t, _ in observations), default=0.0))
        c = counter(horizon=horizon, width=width)
        for t, amount in sorted(observations):
            c.inc(amount, now=t)
        size = max(1, int(math.ceil(horizon / width)))
        read_epoch = int(read_at // width)
        expected = sum(
            amount
            for t, amount in observations
            if 0 <= read_epoch - int(t // width) < size
        )
        assert c.total(now=read_at) == pytest.approx(expected)

    @settings(max_examples=100, deadline=None)
    @given(t=_TIMES, horizon=st.sampled_from([10.0, 60.0]))
    def test_expiry_within_one_bucket_of_horizon(self, t, horizon):
        """Every observation lives at least horizon−width and at most
        horizon seconds (1s buckets)."""
        c = counter(horizon=horizon)
        c.inc(1.0, now=t)
        assert c.total(now=t + horizon - 1.0 - 1e-9) == 1.0
        assert c.total(now=t + horizon) == 0.0


class TestWindowedHistogram:
    def test_snapshot_keys_match_cumulative_histogram(self):
        h = WindowedHistogram("lat", clock=FakeClock())
        h.observe(5.0, now=0.0)
        snap = h.snapshot(now=0.0)
        assert set(snap) == {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99"
        }
        assert snap["count"] == 1
        assert snap["p50"] == pytest.approx(5.0)
        assert snap["p99"] == pytest.approx(5.0)

    def test_merges_across_buckets(self):
        h = WindowedHistogram("lat", clock=FakeClock())
        for t, v in ((0.5, 1.0), (10.5, 3.0), (20.5, 2.0)):
            h.observe(v, now=t)
        snap = h.snapshot(now=21.0)
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(6.0)
        assert snap["min"] == pytest.approx(1.0)
        assert snap["max"] == pytest.approx(3.0)

    def test_old_observations_leave_the_distribution(self):
        h = WindowedHistogram("lat", clock=FakeClock())
        h.observe(100.0, now=0.0)
        h.observe(1.0, now=70.0)
        snap = h.snapshot(now=70.0)
        assert snap["count"] == 1
        assert snap["max"] == pytest.approx(1.0)

    def test_empty_window_reads_zero(self):
        h = WindowedHistogram("lat", clock=FakeClock())
        snap = h.snapshot(now=0.0)
        assert snap["count"] == 0
        assert snap["p95"] == 0.0

    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
        base=_TIMES,
    )
    def test_quantiles_bounded_by_observed_range(self, values, base):
        h = WindowedHistogram("lat", clock=FakeClock())
        for i, v in enumerate(values):
            h.observe(v, now=base + i * 0.01)
        now = base + len(values) * 0.01
        for q in (0.5, 0.95, 0.99):
            estimate = h.quantile(q, now=now)
            assert min(values) - 1e-9 <= estimate <= max(values) + 1e-9


class TestWindowSet:
    def test_default_horizons_and_labels(self):
        ws = WindowSet("reqs", clock=FakeClock())
        assert sorted(ws.windows) == sorted(
            horizon_label(h) for h in DEFAULT_HORIZONS
        )
        ws.observe(2.0, now=1.0)
        snap = ws.snapshot(now=1.0)
        assert snap["60s"]["total"] == 2.0
        assert snap["300s"]["total"] == 2.0

    def test_histogram_kind(self):
        ws = WindowSet("lat", kind="histogram", clock=FakeClock())
        ws.observe(0.25, now=0.0)
        assert ws.snapshot(now=0.0)["60s"]["count"] == 1

    def test_longer_horizon_remembers_more(self):
        ws = WindowSet("reqs", clock=FakeClock())
        ws.observe(1.0, now=0.0)
        snap = ws.snapshot(now=120.0)
        assert snap["60s"]["total"] == 0.0
        assert snap["300s"]["total"] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowSet("bad", kind="summary")
        with pytest.raises(ValueError):
            WindowSet("bad", horizons=())

    def test_horizon_label(self):
        assert horizon_label(60.0) == "60s"
        assert horizon_label(300.0) == "300s"
        assert horizon_label(0.5) == "0.5s"
