"""Unit tests for the run store: records, digests, baselines, index."""

import json

import pytest

from repro.obs.runstore import (
    PointRecord,
    RunRecord,
    RunStore,
    RunStoreError,
    build_record,
    env_fingerprint,
    fit_series,
    format_fingerprint,
    record_from_sweep,
)


def _record(experiment_id="EXP", counters=None, seconds=None):
    counters = counters or [
        {"iterations": 3.0, "rows": 10.0},
        {"iterations": 5.0, "rows": 40.0},
        {"iterations": 7.0, "rows": 90.0},
    ]
    seconds = seconds or [0.01, 0.02, 0.04]
    return build_record(
        experiment_id,
        "a test experiment",
        parameters=[2.0, 4.0, 6.0],
        seconds=seconds,
        counters=counters,
        fit_counters=("rows",),
        deadline=30.0,
        meta={"note": "unit"},
    )


class TestEnvFingerprint:
    def test_fields(self):
        env = env_fingerprint()
        assert set(env) == {
            "python",
            "implementation",
            "platform",
            "cpu_count",
            "git_sha",
        }
        assert env["cpu_count"] >= 1

    def test_format_is_one_line(self):
        line = format_fingerprint(env_fingerprint())
        assert "\n" not in line
        assert "cpus=" in line

    def test_format_handles_missing_sha(self):
        line = format_fingerprint({"git_sha": ""})
        assert "git=unknown" in line


class TestRunRecord:
    def test_roundtrip(self):
        record = _record()
        back = RunRecord.from_json(record.to_json())
        assert back == record
        assert back.digest() == record.digest()

    def test_digest_is_content_addressed(self):
        a = _record()
        b = RunRecord.from_json(a.to_json())
        assert a.digest() == b.digest()
        drifted = _record(
            counters=[
                {"iterations": 4.0, "rows": 10.0},
                {"iterations": 5.0, "rows": 40.0},
                {"iterations": 7.0, "rows": 90.0},
            ]
        )
        assert drifted.digest() != a.digest()

    def test_counter_names_union(self):
        record = build_record(
            "EXP",
            "t",
            parameters=[1.0, 2.0],
            seconds=[0.0, 0.0],
            counters=[{"a": 1.0}, {"b": 2.0}],
        )
        assert record.counter_names() == ["a", "b"]

    def test_point_lookup(self):
        record = _record()
        assert record.point(4.0).counter_dict()["iterations"] == 5.0
        assert record.point(99.0) is None

    def test_schema_version_mismatch_rejected(self):
        data = json.loads(_record().to_json())
        data["schema_version"] = 999
        with pytest.raises(RunStoreError):
            RunRecord.from_dict(data)

    def test_malformed_json_rejected(self):
        with pytest.raises(RunStoreError):
            RunRecord.from_json("not json {")

    def test_build_record_rejects_ragged_series(self):
        with pytest.raises(RunStoreError):
            build_record(
                "EXP", "t", parameters=[1.0, 2.0], seconds=[0.1]
            )


class TestFitSeries:
    def test_polynomial_degree(self):
        ns = [2.0, 4.0, 8.0, 16.0]
        fit = fit_series(ns, [n**2 for n in ns])
        assert fit["model"] == "polynomial"
        assert fit["degree"] == pytest.approx(2.0, abs=0.05)

    def test_exponential_base(self):
        ns = [2.0, 4.0, 6.0, 8.0]
        fit = fit_series(ns, [2.0**n for n in ns])
        assert fit["model"] == "exponential"
        assert fit["base"] == pytest.approx(2.0, abs=0.1)

    def test_degenerate_series(self):
        assert fit_series([1.0], [1.0]) == {"model": "none"}
        assert fit_series([1.0, 2.0], [0.0, 0.0]) == {"model": "none"}


class TestRecordFromSweep:
    def test_outcomes_and_counters_carry_over(self):
        from repro.complexity.measure import run_sweep

        def workload(parameter):
            if parameter > 4:
                raise ValueError("boom")
            return {"work": float(parameter) * 2}

        sweep = run_sweep(
            "sw", [2.0, 4.0, 6.0], workload, capture_failures=True
        )
        record = record_from_sweep("SW", "sweep", sweep)
        assert record.parameters() == [2.0, 4.0, 6.0]
        assert record.point(2.0).counter_dict() == {"work": 4.0}
        assert record.point(6.0).outcome == "error"
        assert "boom" in record.point(6.0).error


class TestRunStore:
    def test_save_load_and_index(self, tmp_path):
        store = RunStore(str(tmp_path))
        record = _record()
        digest, path = store.save(record)
        assert digest == record.digest()
        assert store.load("EXP", digest) == record
        assert [e["digest"] for e in store.index("EXP")] == [digest]

    def test_identical_content_shares_one_file(self, tmp_path):
        store = RunStore(str(tmp_path))
        record = _record()
        store.save(record)
        store.save(RunRecord.from_json(record.to_json()))
        archive = tmp_path / "EXP"
        assert len(list(archive.glob("*.json"))) == 1
        # ... but the trajectory index shows both runs
        assert len(store.index("EXP")) == 2

    def test_latest_follows_the_index(self, tmp_path):
        store = RunStore(str(tmp_path))
        first = _record()
        second = _record(seconds=[0.02, 0.03, 0.05])
        store.save(first)
        store.save(second)
        assert store.latest("EXP") == second

    def test_baseline_roundtrip(self, tmp_path):
        store = RunStore(str(tmp_path))
        assert store.load_baseline("EXP") is None
        record = _record()
        path = store.save_baseline(record)
        assert path.endswith("BENCH_EXP.json")
        assert store.load_baseline("EXP") == record

    def test_missing_record_raises(self, tmp_path):
        store = RunStore(str(tmp_path))
        with pytest.raises(RunStoreError):
            store.load("EXP", "deadbeef")

    def test_experiments_listing(self, tmp_path):
        store = RunStore(str(tmp_path))
        assert store.experiments() == []
        store.save(_record("B"))
        store.save(_record("A"))
        assert store.experiments() == ["A", "B"]


class TestHarnessEmitRecord:
    def test_emit_record_seeds_baseline_once(self, tmp_path):
        from benchmarks._harness import emit_record, load_baseline

        root = str(tmp_path / "records")
        digest, _ = emit_record(
            "HARNESS",
            "harness smoke",
            parameters=[1.0, 2.0],
            seconds=[0.01, 0.02],
            counters=[{"ops": 1.0}, {"ops": 4.0}],
            fit_counters=("ops",),
            store_root=root,
        )
        baseline = load_baseline("HARNESS", store_root=root)
        assert baseline is not None and baseline.digest() == digest
        # a second, different run archives but never rewrites the baseline
        emit_record(
            "HARNESS",
            "harness smoke",
            parameters=[1.0, 2.0],
            seconds=[0.01, 0.02],
            counters=[{"ops": 2.0}, {"ops": 8.0}],
            store_root=root,
        )
        assert load_baseline("HARNESS", store_root=root).digest() == digest
