"""Tests for the SAT stack (CNF, Tseitin, DPLL, DIMACS)."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.sat.cnf import (
    BoolAnd,
    BoolConst,
    BoolNot,
    BoolOr,
    BoolVar,
    CNF,
    Clause,
    CnfError,
)
from repro.sat.dimacs import from_dimacs, to_dimacs
from repro.sat.dpll import solve
from repro.sat.tseitin import to_cnf
from repro.reductions.qbf import eval_matrix


class TestCNF:
    def test_var_registry(self):
        cnf = CNF()
        x = cnf.var("x")
        assert cnf.var("x") == x          # stable
        assert cnf.var("y") == x + 1
        assert cnf.name_of(x) == "x"
        assert cnf.has_var("x") and not cnf.has_var("z")

    def test_tautological_clause_dropped(self):
        cnf = CNF()
        x = cnf.var("x")
        cnf.add_clause([x, -x])
        assert cnf.num_clauses == 0

    def test_unallocated_literal_rejected(self):
        cnf = CNF()
        with pytest.raises(CnfError):
            cnf.add_clause([1])

    def test_zero_literal_rejected(self):
        with pytest.raises(CnfError):
            Clause(frozenset({0}))

    def test_named_clause(self):
        cnf = CNF()
        cnf.add_named_clause(["a"], ["b"])
        assert cnf.num_vars == 2 and cnf.num_clauses == 1

    def test_total_literals(self):
        cnf = CNF()
        x, y = cnf.var("x"), cnf.var("y")
        cnf.add_clause([x, y])
        cnf.add_clause([-x])
        assert cnf.total_literals() == 3


def _brute_force_sat(formula, names):
    for values in itertools.product([False, True], repeat=len(names)):
        if eval_matrix(formula, dict(zip(names, values))):
            return True
    return False


def _prop_formulas(names):
    atoms = st.sampled_from([BoolVar(n) for n in names])
    return st.recursive(
        st.one_of(atoms, st.booleans().map(BoolConst)),
        lambda kids: st.one_of(
            kids.map(BoolNot),
            st.tuples(kids, kids).map(BoolAnd),
            st.tuples(kids, kids).map(BoolOr),
        ),
        max_leaves=12,
    )


class TestDPLLAgainstBruteForce:
    NAMES = ["a", "b", "c", "d"]

    @given(_prop_formulas(NAMES))
    def test_sat_decision_matches(self, formula):
        cnf, _ = to_cnf(formula)
        result = solve(cnf)
        assert result.satisfiable == _brute_force_sat(formula, self.NAMES)

    @given(_prop_formulas(NAMES))
    def test_models_actually_satisfy(self, formula):
        cnf, _ = to_cnf(formula)
        result = solve(cnf)
        if result.satisfiable:
            named = result.named_assignment(cnf)
            assignment = {n: named.get(n, False) for n in self.NAMES}
            assert eval_matrix(formula, assignment)


class TestDPLLDetails:
    def test_empty_cnf_is_sat(self):
        assert solve(CNF()).satisfiable

    def test_empty_clause_is_unsat(self):
        cnf = CNF()
        cnf.var("x")
        cnf.add_clause([])
        assert not solve(cnf).satisfiable

    def test_assumptions(self):
        cnf = CNF()
        x, y = cnf.var("x"), cnf.var("y")
        cnf.add_clause([x, y])
        assert solve(cnf, assumptions=[-x]).satisfiable
        cnf.add_clause([-y])
        assert not solve(cnf, assumptions=[-x]).satisfiable

    def test_conflicting_assumptions(self):
        cnf = CNF()
        x = cnf.var("x")
        cnf.add_clause([x])
        assert not solve(cnf, assumptions=[-x]).satisfiable

    def test_pigeonhole_2_into_1_unsat(self):
        # two pigeons, one hole
        cnf = CNF()
        p = {(i): cnf.var(f"p{i}") for i in range(2)}
        cnf.add_clause([p[0]])
        cnf.add_clause([p[1]])
        cnf.add_clause([-p[0], -p[1]])
        assert not solve(cnf).satisfiable

    def test_chain_implication(self):
        cnf = CNF()
        vs = [cnf.var(i) for i in range(30)]
        for a, b in zip(vs, vs[1:]):
            cnf.add_clause([-a, b])
        cnf.add_clause([vs[0]])
        result = solve(cnf)
        assert result.satisfiable
        assert all(result.assignment[v] for v in vs)


class TestTseitin:
    def test_linear_size(self):
        names = [f"v{i}" for i in range(20)]
        formula = BoolAnd(tuple(BoolVar(n) for n in names))
        cnf, _ = to_cnf(formula)
        assert cnf.num_clauses <= 3 * 20 + 5

    def test_shared_subformulas_translated_once(self):
        shared = BoolAnd((BoolVar("a"), BoolVar("b")))
        formula = BoolOr((shared, shared))
        cnf, _ = to_cnf(formula)
        small = cnf.num_clauses
        unshared = BoolOr(
            (
                BoolAnd((BoolVar("a"), BoolVar("b"))),
                BoolAnd((BoolVar("a"), BoolVar("b"))),
            )
        )
        cnf2, _ = to_cnf(unshared)
        assert small <= cnf2.num_clauses

    def test_constants(self):
        cnf, _ = to_cnf(BoolConst(True))
        assert solve(cnf).satisfiable
        cnf, _ = to_cnf(BoolConst(False))
        assert not solve(cnf).satisfiable


class TestDimacs:
    def test_roundtrip(self):
        cnf = CNF()
        x, y = cnf.var("x"), cnf.var("y")
        cnf.add_clause([x, -y])
        cnf.add_clause([y])
        text = to_dimacs(cnf, comments=["hello"])
        back = from_dimacs(text)
        assert back.num_vars == 2
        assert solve(back).satisfiable == solve(cnf).satisfiable

    def test_parse_errors(self):
        with pytest.raises(CnfError):
            from_dimacs("1 2 0\n")  # clause before header
        with pytest.raises(CnfError):
            from_dimacs("p cnf 1 1\n1 2 0\n")  # literal out of range
        with pytest.raises(CnfError):
            from_dimacs("p cnf 1 1\n1\n")  # missing terminator
