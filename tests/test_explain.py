"""Explain layer: annotated trees, trace diffing, progress reporting."""

import io
import json

import pytest

from repro.core.engine import EvalOptions, evaluate
from repro.core.fp_eval import FixpointStrategy
from repro.database.database import Database
from repro.logic.parser import parse_formula
from repro.obs.explain import (
    ExplainError,
    ProgressReporter,
    annotate_evaluation,
    diff_traces,
    render_explain_report,
    render_trace_diff,
    spans_from_dicts,
    trace_paths,
)
from repro.obs.profile import parse_trace_jsonl
from repro.obs.tracer import Tracer

TC_QUERY = "[lfp S(x, y). E(x, y) | exists z. (E(x, z) & S(z, y))](u, v)"


def path_db(n=8):
    return Database.from_tuples(
        range(n),
        {
            "E": (2, [(i, i + 1) for i in range(n - 1)]),
            "P": (1, [(0,)]),
        },
    )


class FakeClock:
    """Deterministic clock: each call advances by ``step`` seconds."""

    def __init__(self, step=0.001):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def traced_run(n=8, backend=None, strategy="monotone"):
    db = path_db(n)
    formula = parse_formula(TC_QUERY)
    tracer = Tracer()
    result = evaluate(
        formula,
        db,
        ("u", "v"),
        EvalOptions(
            strategy=FixpointStrategy(strategy),
            trace=tracer,
            backend=backend,
        ),
    )
    return formula, db, tracer, result


class TestSpansFromDicts:
    def test_deeply_nested_tree_round_trips_exactly(self):
        tracer = Tracer(clock=FakeClock(0.5))
        depth = 40
        import contextlib

        with contextlib.ExitStack() as stack:
            for level in range(depth):
                span = stack.enter_context(
                    tracer.span(f"level.{level}", depth=level)
                )
                span.set(extra=[level, f"v{level}"])
        dicts = parse_trace_jsonl(tracer.export_jsonl())
        (root,) = spans_from_dicts(dicts)

        original = tracer.roots()[0]
        chain, rebuilt_chain = [original], [root]
        while chain[-1].children:
            (child,) = chain[-1].children
            chain.append(child)
        while rebuilt_chain[-1].children:
            (child,) = rebuilt_chain[-1].children
            rebuilt_chain.append(child)
        assert len(chain) == len(rebuilt_chain) == depth
        for a, b in zip(chain, rebuilt_chain):
            assert a.name == b.name
            assert a.span_id == b.span_id
            assert a.parent_id == b.parent_id
            assert a.start == b.start
            assert a.duration == b.duration
            assert a.attrs == b.attrs

    def test_real_trace_round_trip_preserves_self_times(self):
        _, _, tracer, _ = traced_run()
        roots = spans_from_dicts(parse_trace_jsonl(tracer.export_jsonl()))
        original = {
            s.span_id: s.self_duration() for s in tracer.spans
        }

        def walk(span):
            yield span
            for child in span.children:
                yield from walk(child)

        rebuilt = {
            s.span_id: s.self_duration()
            for root in roots
            for s in walk(root)
        }
        assert rebuilt == pytest.approx(original)

    def test_missing_parent_becomes_root(self):
        roots = spans_from_dicts(
            [
                {"name": "orphan", "span_id": 7, "parent_id": 99, "start": 0.0},
            ]
        )
        assert [r.name for r in roots] == ["orphan"]

    def test_duplicate_span_id_rejected(self):
        with pytest.raises(ExplainError):
            spans_from_dicts(
                [
                    {"name": "a", "span_id": 1, "parent_id": None, "start": 0},
                    {"name": "b", "span_id": 1, "parent_id": None, "start": 1},
                ]
            )


class TestAnnotatedTree:
    def test_fp_tree_has_rows_iterations_and_predictions(self):
        formula, db, tracer, result = traced_run()
        report = annotate_evaluation(formula, tracer, domain_size=db.size())
        root = report.root
        assert root.node_type == "LFP"
        assert root.rows == len(result.relation)
        assert root.iterations == result.stats.fixpoint_iterations
        assert root.predicted_rows == db.size() ** 2
        assert root.count == 1
        assert report.total_self_seconds > 0
        # the tree mirrors the AST: LFP -> Or -> (RelAtom, Exists -> And)
        (or_node,) = root.children
        assert or_node.node_type == "Or"
        assert {c.node_type for c in or_node.children} == {
            "RelAtom",
            "Exists",
        }

    def test_fo_tree_annotates_without_fixpoints(self):
        db = path_db(6)
        formula = parse_formula("exists y. (E(x, y) & P(x))")
        tracer = Tracer()
        result = evaluate(formula, db, ("x",), EvalOptions(trace=tracer))
        report = annotate_evaluation(formula, tracer, domain_size=db.size())
        assert report.root.node_type == "Exists"
        assert report.root.iterations is None
        assert report.root.rows == len(result.relation)

    def test_shares_sum_to_one(self):
        formula, db, tracer, _ = traced_run()
        report = annotate_evaluation(formula, tracer, domain_size=db.size())
        seen = {}
        for node in report.walk():
            seen[node.label] = node
        assert sum(n.actual_share for n in seen.values()) == pytest.approx(
            1.0
        )
        assert sum(n.predicted_share for n in seen.values()) == pytest.approx(
            1.0
        )

    def test_deviation_flagging_threshold(self):
        formula, db, tracer, _ = traced_run()
        lenient = annotate_evaluation(
            formula, tracer, domain_size=db.size(), deviation_factor=1e9
        )
        assert lenient.flagged == []
        strict = annotate_evaluation(
            formula,
            tracer,
            domain_size=db.size(),
            deviation_factor=0.0,
            min_share=0.0,
        )
        assert strict.flagged

    def test_annotation_from_exported_jsonl_matches_live(self):
        formula, db, tracer, _ = traced_run()
        live = annotate_evaluation(formula, tracer, domain_size=db.size())
        roots = spans_from_dicts(parse_trace_jsonl(tracer.export_jsonl()))
        replayed = annotate_evaluation(formula, roots, domain_size=db.size())
        assert replayed.total_self_seconds == pytest.approx(
            live.total_self_seconds
        )
        assert replayed.root.rows == live.root.rows
        assert replayed.root.iterations == live.root.iterations

    def test_render_mentions_tree_and_deviations(self):
        formula, db, tracer, _ = traced_run()
        report = annotate_evaluation(
            formula, tracer, domain_size=db.size(), extras={"backend": "s"}
        )
        text = render_explain_report(report)
        assert "== annotated evaluation tree ==" in text
        assert "== deviations" in text
        assert "backend: s" in text
        assert "LFP" in text


class TestTraceDiff:
    def test_sparse_vs_packed_reports_per_subformula_deltas(self):
        _, _, sparse, res_a = traced_run(backend="sparse")
        _, _, packed, res_b = traced_run(backend="packed")
        assert res_a.relation == res_b.relation
        diffs = diff_traces(sparse, packed)
        by_path = {d.path: d for d in diffs}
        kernel_paths = [p for p in by_path if "kernel." in p]
        assert kernel_paths  # packed runs add kernel spans
        for path in kernel_paths:
            assert by_path[path].only_in == "b"
            assert by_path[path].count_a == 0
        fo_paths = [p for p in by_path if "fo.LFP" in p]
        assert fo_paths
        # matched subformula paths appear once with counts on both sides
        matched = [p for p in fo_paths if by_path[p].only_in is None]
        assert matched
        assert diffs == sorted(
            diffs, key=lambda d: abs(d.self_delta), reverse=True
        )

    def test_identical_traces_diff_to_zero(self):
        _, _, tracer, _ = traced_run()
        for diff in diff_traces(tracer, tracer):
            assert diff.self_delta == 0.0
            assert diff.count_delta == 0

    def test_paths_distinguish_iteration_repeats(self):
        _, _, tracer, result = traced_run()
        paths = trace_paths(tracer)
        iteration_paths = [p for p in paths if p.endswith("fp.iteration")]
        (path,) = iteration_paths
        assert paths[path]["count"] == result.stats.fixpoint_iterations

    def test_render_diff_table(self):
        _, _, sparse, _ = traced_run(backend="sparse")
        _, _, packed, _ = traced_run(backend="packed")
        text = render_trace_diff(
            diff_traces(sparse, packed), label_a="sparse", label_b="packed"
        )
        assert "count sparse" in text
        assert "only in packed" in text
        assert "total self:" in text


class TestProgressReporter:
    def test_heartbeats_with_fake_clock_and_eta(self):
        db = path_db(20)
        formula = parse_formula(TC_QUERY)
        stream = io.StringIO()
        reporter = ProgressReporter(
            stream=stream,
            interval=0.0,
            clock=FakeClock(0.001),
            domain_size=db.size(),
        )
        result = evaluate(
            formula, db, ("u", "v"), EvalOptions(trace=reporter)
        )
        assert reporter.heartbeats
        assert stream.getvalue().splitlines() == reporter.heartbeats
        assert any("eta~" in line for line in reporter.heartbeats)
        for line in reporter.heartbeats:
            assert line.startswith("[progress] S/lfp iteration")
        # the reporter is a full tracer: the run was recorded as usual
        assert any(s.name == "fp.solve" for s in reporter.spans)
        assert len(result.relation) > 0

    def test_interval_throttles_output(self):
        db = path_db(20)
        formula = parse_formula(TC_QUERY)
        burst = ProgressReporter(
            stream=io.StringIO(), interval=0.0, clock=FakeClock(0.001)
        )
        evaluate(formula, db, ("u", "v"), EvalOptions(trace=burst))
        throttled = ProgressReporter(
            stream=io.StringIO(), interval=10.0, clock=FakeClock(0.001)
        )
        evaluate(formula, db, ("u", "v"), EvalOptions(trace=throttled))
        assert len(throttled.heartbeats) < len(burst.heartbeats)

    def test_guard_deadline_appears_in_heartbeats(self):
        from repro.guard.budget import Budget, resolve_guard

        db = path_db(12)
        formula = parse_formula(TC_QUERY)
        guard = resolve_guard(Budget(deadline_seconds=3600))
        reporter = ProgressReporter(
            stream=io.StringIO(), interval=0.0, guard=guard
        )
        evaluate(formula, db, ("u", "v"), EvalOptions(trace=reporter))
        # no rows bound -> no fit ETA; the armed deadline shows instead
        assert any("deadline in" in line for line in reporter.heartbeats)

    def test_answers_identical_to_plain_run(self):
        db = path_db(10)
        formula = parse_formula(TC_QUERY)
        plain = evaluate(formula, db, ("u", "v"))
        reported = evaluate(
            formula,
            db,
            ("u", "v"),
            EvalOptions(
                trace=ProgressReporter(stream=io.StringIO(), interval=0.0)
            ),
        )
        assert plain.relation == reported.relation
        assert plain.stats.as_dict() == reported.stats.as_dict()


class TestCostModel:
    def test_fixpoint_iterations_bound(self):
        from repro.algebra.cost import FormulaCostModel

        formula = parse_formula(TC_QUERY)
        model = FormulaCostModel(5)
        costs = model.predict(formula)
        assert costs[id(formula)].iterations_bound == 5**2 + 1
        assert costs[id(formula)].rows_bound == 5**2

    def test_non_fixpoint_nodes_iterate_once(self):
        from repro.algebra.cost import FormulaCostModel

        formula = parse_formula("exists y. (E(x, y) & P(x))")
        costs = FormulaCostModel(4).predict(formula)
        for cost in costs.values():
            assert cost.iterations_bound == 1
        assert costs[id(formula)].rows_bound == 4

    def test_zero_domain(self):
        from repro.algebra.cost import FormulaCostModel

        formula = parse_formula("E(x, y)")
        costs = FormulaCostModel(0).predict(formula)
        assert costs[id(formula)].rows_bound == 0
        assert costs[id(formula)].cost >= 1

    def test_negative_domain_rejected(self):
        from repro.algebra.cost import FormulaCostModel
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            FormulaCostModel(-1)
