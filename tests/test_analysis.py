"""Tests for structural analyses: positivity, alternation depth, languages."""

import pytest

from repro.errors import PositivityError
from repro.logic.analysis import (
    Language,
    alternation_depth,
    check_positivity,
    classify_language,
    count_nodes_by_type,
    fixpoint_nesting_depth,
    max_fixpoint_arity,
    max_so_arity,
    polarity_of,
)
from repro.logic.builders import atom, exists, forall, gfp, lfp, not_, pfp, so_exists
from repro.logic.parser import parse_formula
from repro.workloads.formulas import alternating_fixpoint_family


class TestPolarity:
    def test_positive(self):
        assert polarity_of(atom("S", "x") & atom("P", "x"), "S") == "positive"

    def test_negative(self):
        assert polarity_of(not_(atom("S", "x")), "S") == "negative"

    def test_double_negation_is_positive(self):
        assert polarity_of(not_(not_(atom("S", "x"))), "S") == "positive"

    def test_forall_does_not_flip(self):
        assert polarity_of(forall("x", atom("S", "x")), "S") == "positive"

    def test_both(self):
        phi = atom("S", "x") & not_(atom("S", "x"))
        assert polarity_of(phi, "S") == "both"

    def test_absent(self):
        assert polarity_of(atom("P", "x"), "S") is None

    def test_occurrence_inside_nested_fixpoint_counts(self):
        inner = lfp("T", ["y"], not_(atom("S", "y")), ["x"])
        assert polarity_of(inner, "S") == "negative"

    def test_shadowed_occurrences_do_not_count(self):
        shadowed = lfp("S", ["y"], not_(atom("S", "y")), ["x"])
        assert polarity_of(shadowed, "S") is None


class TestPositivity:
    def test_good_lfp_passes(self):
        check_positivity(parse_formula("[lfp S(x). P(x) | S(x)](u)"))

    def test_negative_lfp_rejected(self):
        with pytest.raises(PositivityError):
            check_positivity(parse_formula("[lfp S(x). ~S(x)](u)"))

    def test_negative_gfp_rejected(self):
        with pytest.raises(PositivityError):
            check_positivity(parse_formula("[gfp S(x). ~S(x)](u)"))

    def test_pfp_exempt(self):
        check_positivity(parse_formula("[pfp X(x). ~X(x)](u)"))

    def test_violation_through_nesting_detected(self):
        phi = lfp(
            "S",
            ["x"],
            lfp("T", ["y"], not_(atom("S", "y")) | atom("T", "y"), ["x"]),
            ["u"],
        )
        with pytest.raises(PositivityError):
            check_positivity(phi)


class TestAlternationDepth:
    def test_fo_is_zero(self):
        assert alternation_depth(parse_formula("exists x. P(x)")) == 0

    def test_single_fixpoint_is_one(self):
        assert alternation_depth(parse_formula("[lfp S(x). S(x)](u)")) == 1

    def test_same_kind_nesting_stays_one(self):
        phi = lfp(
            "S", ["x"], lfp("T", ["y"], atom("S", "y") | atom("T", "y"), ["x"]), ["u"]
        )
        assert alternation_depth(phi) == 1

    def test_independent_opposite_nesting_stays_one(self):
        # the inner gfp never mentions S, so no dependent alternation
        phi = lfp(
            "S", ["x"], gfp("T", ["y"], atom("T", "y"), ["x"]), ["u"]
        )
        assert alternation_depth(phi) == 1

    def test_dependent_alternation_counts(self):
        phi = lfp(
            "S", ["x"], gfp("T", ["y"], atom("S", "y") & atom("T", "y"), ["x"]), ["u"]
        )
        assert alternation_depth(phi) == 2

    @pytest.mark.parametrize("depth", [1, 2, 3, 4])
    def test_family_has_requested_depth(self, depth):
        q = alternating_fixpoint_family(depth)
        assert alternation_depth(q.formula) == depth

    def test_nesting_depth(self):
        phi = lfp(
            "S", ["x"], gfp("T", ["y"], atom("T", "y"), ["x"]), ["u"]
        )
        assert fixpoint_nesting_depth(phi) == 2


class TestClassification:
    def test_fo(self):
        assert classify_language(parse_formula("exists x. P(x)")) == Language.FO

    def test_fp(self):
        assert (
            classify_language(parse_formula("[lfp S(x). S(x)](u)"))
            == Language.FP
        )

    def test_pfp_dominates_fp(self):
        phi = parse_formula("[lfp S(x). S(x)](u) & [pfp X(x). P(x)](u)")
        assert classify_language(phi) == Language.PFP

    def test_eso_dominates_all(self):
        phi = so_exists("R", 1, parse_formula("[lfp S(x). S(x)](u)"))
        assert classify_language(phi) == Language.ESO


class TestArities:
    def test_max_fixpoint_arity(self):
        phi = parse_formula("[lfp S(x, y). E(x, y)](u, v)")
        assert max_fixpoint_arity(phi) == 2

    def test_max_so_arity(self):
        phi = so_exists("R", 4, atom("R", "x", "x", "y", "y"))
        assert max_so_arity(phi) == 4

    def test_count_nodes(self):
        counts = count_nodes_by_type(parse_formula("P(x) & Q(x)"))
        assert counts == {"And": 1, "RelAtom": 2}


class TestQuantifierRank:
    def test_atoms_have_rank_zero(self):
        from repro.logic.analysis import quantifier_rank

        assert quantifier_rank(parse_formula("E(x, y)")) == 0

    def test_nesting_counts(self):
        from repro.logic.analysis import quantifier_rank

        assert quantifier_rank(parse_formula("exists x. forall y. E(x, y)")) == 2
        assert (
            quantifier_rank(parse_formula("exists x. P(x) & exists y. Q(y)"))
            == 2
        )

    def test_parallel_branches_take_max(self):
        from repro.logic.analysis import quantifier_rank

        phi = parse_formula("(exists x. P(x)) & (exists x. exists y. E(x, y))")
        assert quantifier_rank(phi) == 2

    def test_rank_vs_width_on_path_queries(self):
        # the FO^3 trick trades width for rank: reuse keeps width at 3
        # while the quantifier rank grows with the path length
        from repro.logic.analysis import quantifier_rank
        from repro.logic.variables import variable_width
        from repro.workloads.formulas import path_query_fo3

        short, long = path_query_fo3(2).formula, path_query_fo3(6).formula
        assert variable_width(short) == variable_width(long) == 3
        assert quantifier_rank(long) > quantifier_rank(short)

    def test_fixpoint_bodies_count_through(self):
        from repro.logic.analysis import quantifier_rank

        phi = parse_formula("[lfp S(x). exists y. (E(y, x) & S(y))](u)")
        assert quantifier_rank(phi) == 1
