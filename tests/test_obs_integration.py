"""End-to-end tracing through ``evaluate()`` for all four languages.

One representative query per language runs with tracing on; the test
asserts the expected spans and the paper-bound counters: intermediate
arity stays within the variable bound k (Prop 3.1), fixpoint engines
iterate at least once (Theorem 3.5), and the ESO pipeline grounds a
non-trivial CNF (Lemma 3.6 / Corollary 3.7).
"""

import time

import pytest

from repro import EvalOptions, Language, evaluate
from repro.logic.parser import parse_formula
from repro.logic.variables import variable_width
from repro.obs import NULL_TRACER, Tracer

CASES = [
    pytest.param(
        "exists y. E(x, y)",
        ("x",),
        Language.FO,
        {"evaluate", "fo.Exists", "fo.RelAtom"},
        id="FO",
    ),
    pytest.param(
        "[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)",
        ("u",),
        Language.FP,
        {"evaluate", "fo.LFP", "fp.solve", "fp.iteration"},
        id="FP",
    ),
    pytest.param(
        "exists2 R/1. (R(x) & P(x))",
        ("x",),
        Language.ESO,
        {
            "evaluate",
            "eso.tuple",
            "eso.ground",
            "eso.tseitin",
            "eso.dpll",
        },
        id="ESO",
    ),
    pytest.param(
        "[pfp X(x). P(x) | exists y. (E(y, x) & X(y))](u)",
        ("u",),
        Language.PFP,
        {"evaluate", "fp.solve", "fp.iteration", "pfp.space"},
        id="PFP",
    ),
]


@pytest.mark.parametrize("text, out, language, expected_spans", CASES)
def test_traced_evaluation(tiny_graph, text, out, language, expected_spans):
    formula = parse_formula(text)
    result = evaluate(formula, tiny_graph, out, EvalOptions(trace=True))
    assert result.language == language
    tracer = result.tracer
    assert isinstance(tracer, Tracer)

    names = {span.name for span in tracer.spans}
    assert expected_spans <= names, names

    # the root span is the evaluate() wrapper, annotated with the answer
    roots = tracer.roots()
    assert [r.name for r in roots] == ["evaluate"]
    assert roots[0].attrs["language"] == language.value
    assert roots[0].attrs["answer_rows"] == len(result.relation)
    # every non-root span links to a recorded parent
    ids = {span.span_id for span in tracer.spans}
    for span in tracer.spans:
        if span.parent_id is not None:
            assert span.parent_id in ids

    # paper-bound counters (Prop 3.1 / Thm 3.5 / Cor 3.7)
    stats = result.stats
    assert stats.max_intermediate_arity <= variable_width(formula)
    if language in (Language.FP, Language.PFP):
        assert stats.fixpoint_iterations >= 1
    if language == Language.ESO:
        assert stats.sat_clauses > 0
        assert stats.sat_variables > 0


@pytest.mark.parametrize("text, out, language, expected_spans", CASES)
def test_disabled_tracing_changes_nothing(
    tiny_graph, text, out, language, expected_spans
):
    formula = parse_formula(text)
    plain = evaluate(formula, tiny_graph, out)
    traced = evaluate(formula, tiny_graph, out, EvalOptions(trace=True))
    assert plain.tracer is None
    assert plain.relation == traced.relation
    assert plain.stats.as_dict() == traced.stats.as_dict()


def test_tracer_instance_is_reused_and_returned(tiny_graph):
    tracer = Tracer()
    formula = parse_formula("P(x)")
    result = evaluate(formula, tiny_graph, ("x",), EvalOptions(trace=tracer))
    assert result.tracer is tracer
    assert tracer.spans


def test_noop_tracer_overhead(tiny_graph):
    """Disabled tracing must cost ~nothing: the shared null span means no
    allocation on the hot path, and min-of-N wall clock stays at or below
    the recording tracer's (which does strictly more work)."""
    # structural: the disabled path hands back one shared object
    assert NULL_TRACER.span("fo.And", rows=1) is NULL_TRACER.span("fp.solve")

    formula = parse_formula("[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)")

    def best_of(options, reps=15):
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            evaluate(formula, tiny_graph, ("u",), options)
            best = min(best, time.perf_counter() - start)
        return best

    disabled = best_of(EvalOptions())
    enabled = best_of(EvalOptions(trace=True))
    # generous 1.5x margin absorbs scheduler noise; the point is that the
    # guarded no-op path is not paying for span bookkeeping
    assert disabled <= enabled * 1.5, (disabled, enabled)
