"""Tests for acyclic joins (GYO + Yannakakis) — the Section 1 precedent."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.acyclic import (
    YannakakisStats,
    gyo_reduction,
    is_acyclic,
    yannakakis,
)
from repro.core.naive_eval import naive_answer
from repro.errors import EvaluationError
from repro.logic.builders import and_, atom, exists
from repro.logic.variables import free_variables
from repro.workloads.graphs import random_graph

from tests.conftest import databases


def chain_atoms(width):
    names = [f"v{i}" for i in range(width + 1)]
    return [atom("E", names[i], names[i + 1]) for i in range(width)]


class TestGYO:
    def test_chain_is_acyclic(self):
        tree = gyo_reduction(chain_atoms(4))
        assert tree is not None
        assert tree.size() == 4

    def test_triangle_is_cyclic(self):
        tri = [atom("E", "x", "y"), atom("E", "y", "z"), atom("E", "z", "x")]
        assert not is_acyclic(tri)

    def test_star_is_acyclic(self):
        star = [atom("E", "c", f"l{i}") for i in range(4)]
        assert is_acyclic(star)

    def test_single_atom(self):
        assert is_acyclic([atom("E", "x", "y")])

    def test_empty_query(self):
        assert gyo_reduction([]) is None

    def test_company_chain_with_salary_comparison_is_cyclic(self):
        # a finding worth keeping: the paper's intro query closes a cycle
        # through the LT comparison (e-d-m-s-t-u-e), so bounded-variable
        # evaluation genuinely goes beyond the acyclic-join precedent
        atoms = [
            atom("EMP", "e", "d"),
            atom("MGR", "d", "m"),
            atom("SCY", "m", "s"),
            atom("SAL", "s", "t"),
            atom("SAL", "e", "u"),
            atom("LT", "u", "t"),
        ]
        assert not is_acyclic(atoms)
        assert is_acyclic(atoms[:4])

    def test_alpha_acyclic_but_not_berge(self):
        # a hyperedge containing another: α-acyclic, handled by GYO
        atoms = [atom("R", "x", "y", "z"), atom("S", "x", "y")]
        assert is_acyclic(atoms)


class TestYannakakis:
    def test_chain_agrees_with_reference(self):
        g = random_graph(6, 0.4, seed=2)
        atoms = chain_atoms(3)
        got = yannakakis(atoms, g, ("v0", "v3"))
        expected = set(
            naive_answer(
                exists(["v1", "v2"], and_(*atoms)), g, ("v0", "v3")
            ).tuples
        )
        assert got == expected

    @given(databases(max_size=4), st.integers(2, 4))
    @settings(max_examples=15)
    def test_property_agreement_on_chains(self, db, width):
        atoms = chain_atoms(width)
        out = ("v0", f"v{width}")
        middles = [f"v{i}" for i in range(1, width)]
        got = yannakakis(atoms, db, out)
        expected = set(
            naive_answer(exists(middles, and_(*atoms)), db, out).tuples
        )
        assert got == expected

    def test_intermediates_bounded_by_inputs_plus_output(self):
        g = random_graph(8, 0.35, seed=5)
        atoms = chain_atoms(4)
        stats = YannakakisStats()
        result = yannakakis(atoms, g, ("v0", "v4"), stats)
        input_rows = len(g.relation("E"))
        # Yannakakis' guarantee: intermediates are bounded by
        # input + output sizes (no blow-up), up to per-join duplicates
        bound = (input_rows + len(result)) * (input_rows)
        assert stats.max_intermediate_rows <= bound
        assert stats.semijoins >= 2 * (len(atoms) - 1)

    def test_constants_in_atoms(self):
        g = random_graph(5, 0.5, seed=1)
        from repro.logic.syntax import Const, RelAtom, Var

        atoms = [RelAtom("E", (Const(0), Var("y"))), atom("E", "y", "z")]
        got = yannakakis(atoms, g, ("z",))
        expected = set(
            naive_answer(
                exists("y", and_(RelAtom("E", (Const(0), Var("y"))), atom("E", "y", "z"))),
                g,
                ("z",),
            ).tuples
        )
        assert got == expected

    def test_cyclic_rejected(self):
        g = random_graph(4, 0.5, seed=0)
        tri = [atom("E", "x", "y"), atom("E", "y", "z"), atom("E", "z", "x")]
        with pytest.raises(EvaluationError):
            yannakakis(tri, g, ("x",))

    def test_unknown_output_variable_rejected(self):
        g = random_graph(3, 0.5, seed=0)
        with pytest.raises(EvaluationError):
            yannakakis([atom("E", "x", "y")], g, ("zz",))

    def test_empty_answer(self):
        from repro.database import Database

        db = Database.from_tuples(range(3), {"E": (2, [])})
        assert yannakakis(chain_atoms(2), db, ("v0", "v2")) == set()

    def test_repeated_variable_in_atom(self):
        from repro.database import Database

        db = Database.from_tuples(
            range(3), {"E": (2, [(0, 0), (0, 1)])}
        )
        got = yannakakis([atom("E", "x", "x")], db, ("x",))
        assert got == {(0,)}
