"""Tests for the engine front door (Query, evaluate, EvalOptions)."""

import pytest

from repro import (
    Database,
    EvalOptions,
    FixpointStrategy,
    Language,
    Query,
    evaluate,
)
from repro.core.naive_eval import naive_answer
from repro.errors import EvaluationError, PositivityError
from repro.logic.parser import parse_formula


class TestQueryObject:
    def test_parse_and_metadata(self):
        q = Query.parse("exists y. E(x, y)", output_vars=("x",), name="succ")
        assert q.width == 2
        assert q.arity == 1
        assert q.language == Language.FO
        assert "succ" in repr(q)

    def test_text_roundtrips(self):
        q = Query.parse("[lfp S(x). P(x) | S(x)](u)", output_vars=("u",))
        assert Query.parse(q.text(), output_vars=("u",)) == q

    def test_output_vars_must_cover_free(self):
        with pytest.raises(EvaluationError):
            Query.parse("E(x, y)", output_vars=("x",))

    def test_holds_requires_sentence(self, tiny_graph):
        q = Query.parse("P(x)", output_vars=("x",))
        with pytest.raises(EvaluationError):
            q.holds(tiny_graph)

    def test_run_returns_result(self, tiny_graph):
        q = Query.parse("P(x)", output_vars=("x",))
        result = q.run(tiny_graph)
        assert result.language == Language.FO
        assert sorted(result.relation.tuples) == [(0,), (2,)]


class TestDispatch:
    def test_fo_dispatch(self, tiny_graph):
        result = evaluate(parse_formula("exists x. P(x)"), tiny_graph)
        assert result.language == Language.FO
        assert result.strategy is None
        assert result.as_bool() is True

    def test_fp_dispatch_records_strategy(self, tiny_graph):
        phi = parse_formula("[lfp S(x). P(x) | S(x)](u)")
        result = evaluate(
            phi, tiny_graph, ("u",), EvalOptions(strategy=FixpointStrategy.NAIVE)
        )
        assert result.language == Language.FP
        assert result.strategy == FixpointStrategy.NAIVE

    def test_pfp_dispatch_has_space_meter(self, tiny_graph):
        phi = parse_formula("[pfp X(x). ~X(x)](u)")
        result = evaluate(phi, tiny_graph, ("u",))
        assert result.language == Language.PFP
        assert result.space is not None
        assert result.space.total_iterations >= 1

    def test_eso_dispatch(self, tiny_graph):
        phi = parse_formula("exists2 R/1. (R(x) & P(x))")
        result = evaluate(phi, tiny_graph, ("x",))
        assert result.language == Language.ESO
        assert result.relation == naive_answer(phi, tiny_graph, ("x",))

    def test_pfp_mixture_routes_to_pfp_engine(self, tiny_graph):
        # lfp mixed with ifp classifies as PFP and takes the metered path
        # regardless of the requested FP strategy
        phi = parse_formula(
            "[lfp S(x). P(x) | S(x)](u) & [ifp X(x). ~X(x)](u)"
        )
        result = evaluate(
            phi,
            tiny_graph,
            ("u",),
            EvalOptions(strategy=FixpointStrategy.ALTERNATION),
        )
        assert result.language == Language.PFP
        assert result.strategy is None
        assert result.space is not None
        assert result.relation == naive_answer(phi, tiny_graph, ("u",))

    def test_positivity_violations_never_hang(self, tiny_graph):
        # ~S(x) under lfp is non-monotone: the static check rejects it up
        # front, and even with the check disabled the iterator detects the
        # regression at runtime instead of oscillating forever
        phi = parse_formula("[lfp S(x). P(x) & ~S(x)](u)")
        with pytest.raises(PositivityError):
            evaluate(phi, tiny_graph, ("u",))
        with pytest.raises(EvaluationError):
            evaluate(
                phi,
                tiny_graph,
                ("u",),
                EvalOptions(
                    strategy=FixpointStrategy.NAIVE, check_positive=False
                ),
            )

    def test_k_limit_passed_through(self, tiny_graph):
        from repro.errors import VariableBoundError

        phi = parse_formula("exists x. exists y. exists z. E(x, y) & E(y, z)")
        with pytest.raises(VariableBoundError):
            evaluate(phi, tiny_graph, (), EvalOptions(k_limit=2))


class TestStats:
    def test_stats_populated(self, tiny_graph):
        phi = parse_formula("[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)")
        result = evaluate(phi, tiny_graph, ("u",))
        assert result.stats.fixpoint_iterations > 0
        assert result.stats.max_intermediate_arity >= 1

    def test_eso_stats_record_sat_sizes(self, tiny_graph):
        phi = parse_formula("exists2 R/1. (R(x) & P(x))")
        result = evaluate(phi, tiny_graph, ("x",))
        assert result.stats.sat_variables > 0
        assert result.stats.sat_clauses > 0
