"""End-to-end tests for the lower-bound reductions (Sections 3.1, 4.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import evaluate
from repro.errors import ReductionError
from repro.logic.analysis import Language, classify_language
from repro.logic.variables import variable_width
from repro.reductions import (
    PathSystem,
    bfvp_database,
    bfvp_to_fo_query,
    eval_boolean_formula,
    path_system_database,
    path_system_query,
    qbf_database,
    qbf_to_pfp_query,
    random_boolean_formula,
    random_path_system,
    random_qbf,
    sat_to_eso_query,
    solve_path_system,
    solve_qbf,
)
from repro.reductions.path_systems import reachable_set, unfolded_reachability
from repro.reductions.qbf import QBF, eval_matrix
from repro.sat.cnf import BoolAnd, BoolConst, BoolNot, BoolOr, BoolVar
from repro.workloads.graphs import path_graph


class TestPathSystems:
    def test_reference_solver(self):
        ps = PathSystem(
            4,
            frozenset({(2, 0, 1), (3, 2, 2)}),
            frozenset({0, 1}),
            frozenset({3}),
        )
        assert reachable_set(ps) == {0, 1, 2, 3}
        assert solve_path_system(ps)

    def test_unreachable_target(self):
        ps = PathSystem(3, frozenset(), frozenset({0}), frozenset({2}))
        assert not solve_path_system(ps)

    def test_out_of_range_rejected(self):
        with pytest.raises(ReductionError):
            PathSystem(2, frozenset({(0, 1, 5)}), frozenset(), frozenset())

    def test_query_is_fo3(self):
        ps = random_path_system(5, 8, seed=1)
        q = path_system_query(ps)
        assert classify_language(q.formula) == Language.FO
        assert variable_width(q.formula) == 3

    def test_query_size_linear_in_instance(self):
        small = path_system_query(random_path_system(4, 4, seed=0))
        large = path_system_query(random_path_system(16, 4, seed=0))
        assert small.formula.size() < large.formula.size()
        # linear-ish: the ratio of sizes tracks the ratio of m
        assert large.formula.size() < 8 * small.formula.size()

    @given(st.integers(0, 30))
    @settings(max_examples=12)
    def test_reduction_agrees_with_solver(self, seed):
        ps = random_path_system(5, 9, num_sources=2, num_targets=2, seed=seed)
        assert path_system_query(ps).holds(
            path_system_database(ps)
        ) == solve_path_system(ps)

    def test_unfolding_validates_iterations(self):
        with pytest.raises(ReductionError):
            unfolded_reachability(0)


class TestQBFToPFP:
    def test_query_is_pfp2(self):
        q = qbf_to_pfp_query(random_qbf(3, seed=0))
        assert classify_language(q.formula) == Language.PFP
        assert variable_width(q.formula) == 2

    def test_size_linear_in_qbf(self):
        small = qbf_to_pfp_query(random_qbf(2, seed=1)).formula.size()
        large = qbf_to_pfp_query(random_qbf(8, seed=1)).formula.size()
        assert large < small + 90 * 6  # O(1) gadget per variable

    def test_true_and_false_constants(self):
        db = qbf_database()
        taut = QBF((("forall", "Y"),), BoolOr((BoolVar("Y"), BoolNot(BoolVar("Y")))))
        assert solve_qbf(taut)
        assert qbf_to_pfp_query(taut).holds(db)
        contradiction = QBF(
            (("exists", "Y"),), BoolAnd((BoolVar("Y"), BoolNot(BoolVar("Y"))))
        )
        assert not solve_qbf(contradiction)
        assert not qbf_to_pfp_query(contradiction).holds(db)

    @given(st.integers(0, 40))
    @settings(max_examples=12)
    def test_reduction_agrees_with_solver(self, seed):
        qbf = random_qbf(3, matrix_depth=3, seed=seed)
        assert qbf_to_pfp_query(qbf).holds(qbf_database()) == solve_qbf(qbf)

    def test_alternating_prefix(self):
        # ∀Y1 ∃Y2 (Y1 ↔ Y2) is true; ∃Y2 ∀Y1 (Y1 ↔ Y2) is false
        matrix = BoolOr(
            (
                BoolAnd((BoolVar("Y1"), BoolVar("Y2"))),
                BoolAnd((BoolNot(BoolVar("Y1")), BoolNot(BoolVar("Y2")))),
            )
        )
        forall_exists = QBF((("forall", "Y1"), ("exists", "Y2")), matrix)
        exists_forall = QBF((("exists", "Y2"), ("forall", "Y1")), matrix)
        assert solve_qbf(forall_exists) and not solve_qbf(exists_forall)
        db = qbf_database()
        assert qbf_to_pfp_query(forall_exists).holds(db)
        assert not qbf_to_pfp_query(exists_forall).holds(db)


class TestSATToESO:
    @given(st.integers(0, 30))
    @settings(max_examples=12)
    def test_agrees_with_dpll(self, seed):
        import random as stdlib_random

        rng = stdlib_random.Random(seed)
        names = ["a", "b", "c"]

        def build(depth):
            if depth == 0:
                return BoolVar(rng.choice(names))
            c = rng.randrange(3)
            if c == 0:
                return BoolNot(build(depth - 1))
            if c == 1:
                return BoolAnd((build(depth - 1), build(depth - 1)))
            return BoolOr((build(depth - 1), build(depth - 1)))

        formula = build(3)
        from repro.sat.tseitin import to_cnf
        from repro.sat.dpll import solve

        cnf, _ = to_cnf(formula)
        expected = solve(cnf).satisfiable
        q = sat_to_eso_query(formula)
        # Theorem 4.5: the database is irrelevant
        assert q.holds(path_graph(2)) == expected
        assert q.holds(path_graph(5)) == expected

    def test_zero_individual_variables(self):
        q = sat_to_eso_query(BoolVar("a"))
        assert variable_width(q.formula) == 0
        assert classify_language(q.formula) == Language.ESO


class TestBFVP:
    @given(st.integers(0, 60))
    @settings(max_examples=25)
    def test_reduction_agrees_with_evaluator(self, seed):
        formula = random_boolean_formula(4, seed=seed)
        assert bfvp_to_fo_query(formula).holds(bfvp_database()) == (
            eval_boolean_formula(formula)
        )

    def test_variables_rejected(self):
        with pytest.raises(ReductionError):
            eval_boolean_formula(BoolVar("a"))
        with pytest.raises(ReductionError):
            bfvp_to_fo_query(BoolVar("a"))

    def test_query_is_fo1(self):
        q = bfvp_to_fo_query(random_boolean_formula(3, seed=5))
        assert variable_width(q.formula) == 1
        assert classify_language(q.formula) == Language.FO

    def test_size_linear(self):
        small = bfvp_to_fo_query(random_boolean_formula(3, seed=1))
        large = bfvp_to_fo_query(random_boolean_formula(7, seed=1))
        assert small.formula.size() < large.formula.size()


class TestQBFSolver:
    def test_eval_matrix_unbound_rejected(self):
        with pytest.raises(ReductionError):
            eval_matrix(BoolVar("Y"), {})

    def test_open_qbf_rejected(self):
        with pytest.raises(ReductionError):
            QBF((), BoolVar("Y"))

    def test_duplicate_quantifier_rejected(self):
        with pytest.raises(ReductionError):
            QBF((("forall", "Y"), ("exists", "Y")), BoolVar("Y"))

    def test_brute_force_semantics(self):
        # ∀Y. Y is false, ∃Y. Y is true
        assert not solve_qbf(QBF((("forall", "Y"),), BoolVar("Y")))
        assert solve_qbf(QBF((("exists", "Y"),), BoolVar("Y")))
