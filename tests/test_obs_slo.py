"""SLO math: error budgets, burn rates, and the per-tenant board."""

import pytest

from repro.obs.slo import TOTAL_KEY, SLOBoard, SLOPolicy, SLOTracker


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestSLOPolicy:
    def test_error_budget_is_target_complement(self):
        assert SLOPolicy(availability_target=0.995).error_budget == (
            pytest.approx(0.005)
        )

    def test_as_dict_keys(self):
        assert set(SLOPolicy().as_dict()) == {
            "availability_target",
            "error_budget",
            "latency_target",
            "latency_quantile",
        }

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"availability_target": 0.0},
            {"availability_target": 1.0},
            {"latency_target": 0.0},
            {"latency_quantile": 0.0},
            {"latency_quantile": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SLOPolicy(**kwargs)


class TestSLOTracker:
    def tracker(self, **policy_kwargs):
        policy = SLOPolicy(**policy_kwargs)
        return SLOTracker(policy, clock=FakeClock())

    def test_idle_window_burns_nothing(self):
        window = self.tracker().window("60s", now=0.0)
        assert window["requests"] == 0
        assert window["availability"] == 1.0
        assert window["burn_rate"] == 0.0

    def test_burn_rate_is_error_rate_over_budget(self):
        # target 0.99 → budget 1%; 10% observed errors → burn 10
        tracker = self.tracker(availability_target=0.99)
        for i in range(10):
            tracker.record(ok=(i != 0), seconds=0.01, now=float(i) * 0.1)
        window = tracker.window("60s", now=1.0)
        assert window["error_rate"] == pytest.approx(0.1)
        assert window["burn_rate"] == pytest.approx(10.0)
        assert window["availability"] == pytest.approx(0.9)

    def test_burn_rate_one_spends_budget_exactly(self):
        tracker = self.tracker(availability_target=0.9)
        for i in range(10):
            tracker.record(ok=(i != 0), seconds=0.01, now=float(i) * 0.1)
        assert tracker.window("60s", now=1.0)["burn_rate"] == (
            pytest.approx(1.0)
        )

    def test_latency_ok_against_target(self):
        fast = self.tracker(latency_target=1.0)
        fast.record(ok=True, seconds=0.1, now=0.0)
        assert fast.window("60s", now=0.0)["latency_ok"]
        slow = self.tracker(latency_target=0.05)
        for _ in range(20):
            slow.record(ok=True, seconds=3.0, now=0.0)
        assert not slow.window("60s", now=0.0)["latency_ok"]

    def test_errors_age_out_of_the_window(self):
        tracker = self.tracker()
        tracker.record(ok=False, seconds=0.1, now=0.0)
        assert tracker.window("60s", now=0.0)["burn_rate"] > 0.0
        assert tracker.window("60s", now=120.0)["burn_rate"] == 0.0

    def test_snapshot_covers_both_horizons(self):
        tracker = self.tracker()
        tracker.record(ok=True, seconds=0.1, now=0.0)
        snap = tracker.snapshot(now=0.0)
        assert set(snap) == {"60s", "300s"}
        assert set(snap["60s"]) == {
            "requests",
            "errors",
            "availability",
            "error_rate",
            "burn_rate",
            "latency",
            "latency_ok",
        }


class TestSLOBoard:
    def test_records_tenant_and_total(self):
        board = SLOBoard(clock=FakeClock())
        board.record("alice", ok=True, seconds=0.1, now=0.0)
        board.record("bob", ok=False, seconds=0.1, now=0.0)
        snap = board.snapshot(now=0.0)
        assert sorted(snap["tenants"]) == ["alice", "bob"]
        assert snap["total"]["60s"]["requests"] == 2
        assert snap["tenants"]["bob"]["60s"]["errors"] == 1
        assert snap["tenants"]["alice"]["60s"]["errors"] == 0

    def test_total_key_hidden_from_tenants(self):
        board = SLOBoard(clock=FakeClock())
        board.record("alice", ok=True, seconds=0.1, now=0.0)
        assert TOTAL_KEY not in board.tenants

    def test_empty_board_snapshot(self):
        snap = SLOBoard(clock=FakeClock()).snapshot(now=0.0)
        assert snap["tenants"] == {}
        assert snap["total"]["60s"]["requests"] == 0
        assert set(snap["objective"]) == set(SLOPolicy().as_dict())
