"""Tests for the Datalog subpackage."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database, evaluate
from repro.errors import EvaluationError, ReductionError, SyntaxError_
from repro.datalog import (
    Atom,
    DatalogProgram,
    Rule,
    evaluate_program,
    parse_program,
    semi_naive,
)
from repro.datalog.engine import DatalogStats
from repro.datalog.syntax import DatalogConst, DatalogVar
from repro.datalog.to_fp import program_to_fp_query
from repro.reductions.path_systems import (
    path_system_database,
    random_path_system,
    reachable_set,
)
from repro.workloads.graphs import random_graph

REACH = """
reach(X) :- source(X).
reach(X) :- edge(Y, X), reach(Y).
"""

PATH_SYSTEM = "p(X) :- s(X). p(X) :- q(X, Y, Z), p(Y), p(Z)."


class TestSyntax:
    def test_safety_enforced(self):
        with pytest.raises(SyntaxError_):
            Rule(Atom("p", (DatalogVar("X"),)), ())

    def test_facts_with_constants_are_safe(self):
        rule = Rule(Atom("p", (DatalogConst(3),)), ())
        assert rule.is_fact()

    def test_arity_consistency(self):
        with pytest.raises(SyntaxError_):
            DatalogProgram(
                (
                    Rule(Atom("p", (DatalogConst(1),)), ()),
                    Rule(
                        Atom("p", (DatalogConst(1), DatalogConst(2))), ()
                    ),
                )
            )

    def test_idb_edb_split(self):
        program = parse_program(REACH)
        assert program.idb_predicates() == {"reach"}
        assert program.edb_predicates() == {"source", "edge"}
        assert program.max_idb_arity() == 1


class TestParser:
    def test_parses_reach(self):
        program = parse_program(REACH)
        assert len(program.rules) == 2
        assert program.rules[1].body[0].predicate == "edge"

    def test_comments_and_constants(self):
        program = parse_program(
            "% a fact\nstart(0).\nlabel(X) :- name(X, 'alice')."
        )
        assert program.rules[0].is_fact()
        assert program.rules[1].body[0].terms[1] == DatalogConst("alice")

    def test_lowercase_names_are_constants(self):
        program = parse_program("p(X) :- q(X, foo).")
        assert program.rules[0].body[0].terms[1] == DatalogConst("foo")

    @pytest.mark.parametrize(
        "bad", ["p(X)", "p(X) :- .", ":- q(X).", "p(X :- q(X)."]
    )
    def test_rejects(self, bad):
        with pytest.raises(SyntaxError_):
            parse_program(bad)


def _graph_db(seed: int) -> Database:
    g = random_graph(6, 0.3, seed=seed)
    return Database(
        g.domain,
        {
            "edge": g.relation("E"),
            "source": __import__(
                "repro.database.relation", fromlist=["Relation"]
            ).Relation(1, [(0,)]),
        },
    )


class TestEvaluation:
    def test_reach_on_chain(self):
        db = Database.from_tuples(
            range(4),
            {"edge": (2, [(0, 1), (1, 2)]), "source": (1, [(0,)])},
        )
        program = parse_program(REACH)
        out = evaluate_program(program, db)
        assert sorted(out["reach"].tuples) == [(0,), (1,), (2,)]

    @given(st.integers(0, 20))
    @settings(max_examples=10)
    def test_naive_equals_semi_naive(self, seed):
        db = _graph_db(seed)
        program = parse_program(REACH)
        assert evaluate_program(program, db) == semi_naive(program, db)

    def test_semi_naive_fires_fewer_on_long_chains(self):
        n = 14
        db = Database.from_tuples(
            range(n),
            {
                "edge": (2, [(i, i + 1) for i in range(n - 1)]),
                "source": (1, [(0,)]),
            },
        )
        program = parse_program(REACH)
        naive_stats, semi_stats = DatalogStats(), DatalogStats()
        a = evaluate_program(program, db, naive_stats)
        b = semi_naive(program, db, semi_stats)
        assert a == b
        assert semi_stats.tuples_derived == naive_stats.tuples_derived
        # naive re-derives the whole closure each round
        assert naive_stats.rule_firings >= semi_stats.rule_firings

    def test_missing_edb_relation(self):
        program = parse_program("p(X) :- missing(X).")
        db = Database.from_tuples(range(2), {})
        with pytest.raises(EvaluationError):
            evaluate_program(program, db)

    def test_edb_arity_mismatch(self):
        program = parse_program("p(X) :- q(X).")
        db = Database.from_tuples(range(2), {"q": (2, [])})
        with pytest.raises(EvaluationError):
            evaluate_program(program, db)

    def test_constants_in_rules(self):
        program = parse_program("near(X) :- edge(0, X).")
        db = Database.from_tuples(
            range(3), {"edge": (2, [(0, 1), (1, 2)])}
        )
        out = semi_naive(program, db)
        assert sorted(out["near"].tuples) == [(1,)]

    def test_path_system_program_matches_reference(self):
        for seed in range(4):
            ps = random_path_system(5, 8, num_sources=2, seed=seed)
            db = path_system_database(ps)
            renamed = Database(
                db.domain,
                {
                    "s": db.relation("S"),
                    "q": db.relation("Q"),
                    "t": db.relation("T"),
                },
            )
            out = semi_naive(parse_program(PATH_SYSTEM), renamed)
            assert frozenset(
                row[0] for row in out["p"].tuples
            ) == reachable_set(ps)


class TestToFP:
    def test_translation_agrees_with_engine(self):
        program = parse_program(REACH)
        for seed in range(3):
            db = _graph_db(seed)
            q = program_to_fp_query(program)
            via_fp = evaluate(q.formula, db, q.output_vars).relation
            assert via_fp == semi_naive(program, db)["reach"]

    def test_path_system_translation(self):
        program = parse_program(PATH_SYSTEM)
        ps = random_path_system(5, 8, num_sources=2, seed=9)
        db = path_system_database(ps)
        renamed = Database(
            db.domain,
            {"s": db.relation("S"), "q": db.relation("Q")},
        )
        q = program_to_fp_query(program)
        via_fp = evaluate(q.formula, renamed, q.output_vars).relation
        assert frozenset(r[0] for r in via_fp.tuples) == reachable_set(ps)

    def test_multi_idb_rejected(self):
        program = parse_program("p(X) :- q(X). r(X) :- p(X).")
        with pytest.raises(ReductionError):
            program_to_fp_query(program)

    def test_constants_in_heads(self):
        program = parse_program("p(0) :- q(X).")
        db = Database.from_tuples(range(2), {"q": (1, [(1,)])})
        q = program_to_fp_query(program)
        via_fp = evaluate(q.formula, db, q.output_vars).relation
        assert via_fp == semi_naive(program, db)["p"]
