"""Tests for variable analyses (free variables, width)."""

from hypothesis import given

from repro.logic.builders import atom, eq, exists, forall, gfp, lfp, so_exists
from repro.logic.parser import parse_formula
from repro.logic.variables import (
    bound_relation_variables,
    constants_used,
    free_relation_variables,
    free_variables,
    is_sentence,
    variable_names,
    variable_width,
)
from repro.logic.syntax import Const, RelAtom, Var

from tests.conftest import fo_formulas


class TestFreeVariables:
    def test_atom(self):
        assert free_variables(atom("E", "x", "y")) == {"x", "y"}

    def test_quantifier_binds(self):
        assert free_variables(exists("y", atom("E", "x", "y"))) == {"x"}
        assert free_variables(forall(["x", "y"], atom("E", "x", "y"))) == set()

    def test_shadowing(self):
        phi = exists("x", atom("P", "x")) & atom("Q", "x")
        assert free_variables(phi) == {"x"}

    def test_fixpoint_frees_are_params_plus_args(self):
        # [lfp S(x). E(x, y) & S(x)](z) — free: y (param) and z (argument)
        phi = lfp("S", ["x"], atom("E", "x", "y") & atom("S", "x"), ["z"])
        assert free_variables(phi) == {"y", "z"}

    def test_constants_are_not_variables(self):
        phi = RelAtom("P", (Const(3),))
        assert free_variables(phi) == set()
        assert constants_used(phi) == {3}

    def test_is_sentence(self):
        assert is_sentence(exists("x", atom("P", "x")))
        assert not is_sentence(atom("P", "x"))


class TestWidth:
    def test_width_counts_bound_and_free(self):
        phi = exists("z", atom("E", "x", "z"))
        assert variable_names(phi) == {"x", "z"}
        assert variable_width(phi) == 2

    def test_reuse_keeps_width_low(self):
        # the FO^3 path trick: width 3 regardless of path length
        phi = parse_formula(
            "exists z. (E(x, z) & exists x. ((x = z) & E(x, y)))"
        )
        assert variable_width(phi) == 3

    def test_fixpoint_bound_vars_counted(self):
        phi = lfp("S", ["x", "y"], atom("E", "x", "y"), ["u", "v"])
        assert variable_width(phi) == 4

    @given(fo_formulas())
    def test_free_subset_of_all_names(self, phi):
        assert free_variables(phi) <= variable_names(phi)


class TestRelationVariables:
    def test_free_relation_variables(self):
        phi = lfp("S", ["x"], atom("S", "x") & atom("E", "x", "y"), ["z"])
        assert free_relation_variables(phi) == {"E"}

    def test_so_exists_binds(self):
        phi = so_exists("R", 1, atom("R", "x") & atom("P", "x"))
        assert free_relation_variables(phi) == {"P"}
        assert bound_relation_variables(phi) == {"R"}

    def test_unbound_recursion_var_is_free(self):
        assert free_relation_variables(atom("S", "x")) == {"S"}

    def test_nested_fixpoints(self):
        inner = lfp("T", ["y"], atom("S", "y") & atom("T", "y"), ["x"])
        outer = gfp("S", ["x"], inner, ["z"])
        assert free_relation_variables(outer) == set()
        assert bound_relation_variables(outer) == {"S", "T"}
