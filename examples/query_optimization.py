#!/usr/bin/env python
"""Variable minimization as a query optimization methodology (Section 5).

The paper's closing suggestion made concrete: take queries written with
profligate variable use, minimize their width, and watch the evaluation
cost drop from n^{width} to n^3.

Run:  python examples/query_optimization.py
"""

import time

from repro import Query, evaluate
from repro.logic.variables import variable_width
from repro.optimize import minimize_variables
from repro.workloads.formulas import path_query_fo3, path_query_naive
from repro.workloads.graphs import random_graph


def timed(formula, db, out):
    start = time.perf_counter()
    result = evaluate(formula, db, out)
    return result, time.perf_counter() - start


def main() -> None:
    db = random_graph(14, 0.18, seed=5)
    print(f"graph: {db}\n")
    header = (
        f"{'n':>3} {'naive k':>8} {'min k':>6} "
        f"{'naive arity':>12} {'min arity':>10} "
        f"{'naive s':>9} {'min s':>8}"
    )
    print("n-step path queries, naive vs minimized:")
    print(header)
    for n in (2, 3, 4, 5):
        naive = path_query_naive(n).formula
        minimized = minimize_variables(naive)
        r_naive, t_naive = timed(naive, db, ("x", "y"))
        r_min, t_min = timed(minimized, db, ("x", "y"))
        assert r_naive.relation == r_min.relation
        print(
            f"{n:>3} {variable_width(naive):>8} "
            f"{variable_width(minimized):>6} "
            f"{r_naive.stats.max_intermediate_arity:>12} "
            f"{r_min.stats.max_intermediate_arity:>10} "
            f"{t_naive:>9.4f} {t_min:>8.4f}"
        )

    print(
        "\nthe minimizer recovers the paper's hand-written FO^3 form "
        "(Section 2.2):"
    )
    auto = minimize_variables(path_query_naive(4).formula)
    hand = path_query_fo3(4).formula
    print(f"  automatic : {Query(auto, ('x', 'y')).text()}")
    print(f"  hand-made : {Query(hand, ('x', 'y')).text()}")
    r_auto, _ = timed(auto, db, ("x", "y"))
    r_hand, _ = timed(hand, db, ("x", "y"))
    assert r_auto.relation == r_hand.relation
    print(
        f"  both width {variable_width(auto)}, identical answers "
        f"({len(r_auto.relation)} pairs)"
    )


if __name__ == "__main__":
    main()
