#!/usr/bin/env python
"""Print the paper's Tables 1-3 with this library's evidence, in miniature.

The full regeneration lives in ``benchmarks/`` (run
``pytest benchmarks/ --benchmark-only``); this example prints the three
tables with their claims and witnesses, then runs one *small* live probe
per Table 2 row so the mapping is concrete.

Run:  python examples/reproduce_tables.py
"""

from repro import Database, EvalOptions, FixpointStrategy, evaluate
from repro.complexity import (
    TABLE1_ROWS,
    TABLE2_ROWS,
    TABLE3_ROWS,
    render_table,
)
from repro.core.certificates import extract_membership, verify_membership
from repro.core.naive_eval import naive_answer
from repro.logic.parser import parse_formula
from repro.workloads.graphs import labeled_graph, random_graph


def live_probes() -> None:
    db = labeled_graph(random_graph(5, 0.4, seed=9), {"P": [0, 3]})
    print("\nlive probes (n = 5 random graph)")
    print("-" * 34)

    # FO^k row: bounded intermediates
    fo = parse_formula("exists y. (E(x, y) & exists x. (E(y, x) & P(x)))")
    r = evaluate(fo, db, ("x",))
    print(
        f"FO^3 : answer {sorted(t[0] for t in r.relation)}, "
        f"max intermediate arity {r.stats.max_intermediate_arity} "
        f"(≤ k = 3) ✓"
    )

    # FP^k row: evaluate + certify + verify
    fp = parse_formula("[lfp S(x). P(x) | exists y. (E(y, x) & S(y))](u)")
    answer = naive_answer(fp, db, ("u",))
    member = next(iter(sorted(answer.tuples)))
    cert = extract_membership(fp, db, ("u",), member)
    assert cert is not None and verify_membership(cert, fp, db)
    print(
        f"FP^3 : membership of {member} certified with "
        f"{cert.certificate.total_guessed_tuples()} guessed tuples, "
        f"verified in poly time ✓"
    )

    # ESO^k row: grounded size
    eso = parse_formula(
        "exists2 R/1. forall x. forall y. "
        "(~E(x, y) | (R(x) & ~R(y)) | (~R(x) & R(y)))"
    )
    r = evaluate(eso, db, ())
    print(
        f"ESO^2: 2-colorable = {r.as_bool()}, grounded to "
        f"{r.stats.sat_variables} SAT vars (poly in |B|+|e|) ✓"
    )

    # PFP^k row: live space vs iterations
    pfp = parse_formula("[pfp X(x). ~X(x)](u)")
    r = evaluate(pfp, db, ("u",))
    print(
        f"PFP^1: oscillator → empty; peak live tuples "
        f"{r.space.peak_live_tuples} (≤ n^k) over "
        f"{r.space.total_iterations} iterations ✓"
    )


def main() -> None:
    print(render_table("Table 1 — complexity of query evaluation", TABLE1_ROWS))
    print()
    print(
        render_table(
            "Table 2 — combined complexity of bounded-variable queries",
            TABLE2_ROWS,
        )
    )
    print()
    print(
        render_table(
            "Table 3 — expression complexity of bounded-variable queries",
            TABLE3_ROWS,
        )
    )
    live_probes()
    print(
        "\nfull regeneration: pytest benchmarks/ --benchmark-only "
        "(see EXPERIMENTS.md)"
    )


if __name__ == "__main__":
    main()
