#!/usr/bin/env python
"""Quickstart: bounded-variable query evaluation in five minutes.

Builds a small graph database, runs FO / FP / ESO / PFP queries through
the public API, and shows the audit numbers the paper is about — the
arity and size of intermediate results.

Run:  python examples/quickstart.py
"""

from repro import Database, EvalOptions, FixpointStrategy, Query


def main() -> None:
    # A database is a finite domain plus named relations (Section 2.1).
    db = Database.from_tuples(
        range(6),
        {
            "E": (2, [(0, 1), (1, 2), (2, 3), (3, 1), (2, 4), (4, 5)]),
            "P": (1, [(0,), (3,), (5,)]),
        },
    )
    print(f"database: {db}")

    # --- FO^k: bounded bottom-up evaluation (Prop 3.1) -----------------
    # "vertices with a P-labelled vertex two steps away", written with
    # variable reuse so only three variable names occur.
    two_steps = Query.parse(
        "exists y. (E(x, y) & exists x. (E(y, x) & P(x)))",
        output_vars=("x",),
        name="two-steps-to-P",
    )
    result = two_steps.run(db)
    print(f"\n[FO^{two_steps.width}] {two_steps.name}")
    print(f"  answer: {sorted(result.relation.tuples)}")
    print(
        f"  max intermediate: arity {result.stats.max_intermediate_arity}, "
        f"{result.stats.max_intermediate_rows} rows "
        f"(bound: n^k = {db.size()}**{two_steps.width} = "
        f"{db.size() ** two_steps.width})"
    )

    # --- FP^k: fixpoints (Section 3.2) ----------------------------------
    reach = Query.parse(
        "[lfp S(x). x = y | exists z. (E(z, x) & S(z))](x)",
        output_vars=("x", "y"),
        name="reachability",
    )
    for strategy in FixpointStrategy:
        r = reach.run(db, EvalOptions(strategy=strategy))
        print(
            f"\n[FP^{reach.width}] {reach.name} via {strategy.value}: "
            f"{len(r.relation)} pairs, "
            f"{r.stats.fixpoint_iterations} fixpoint iterations"
        )

    # --- ESO^k: second-order via Lemma 3.6 + SAT (Section 3.3) ---------
    two_colorable = Query.parse(
        "exists2 R/1. forall x. forall y. "
        "(~E(x, y) | (R(x) & ~R(y)) | (~R(x) & R(y)))",
        name="2-colorable",
    )
    r = two_colorable.run(db)
    print(
        f"\n[ESO^{two_colorable.width}] {two_colorable.name}: "
        f"{r.as_bool()} "
        f"(grounded to {r.stats.sat_variables} SAT variables, "
        f"{r.stats.sat_clauses} clauses)"
    )

    # --- PFP^k: partial fixpoints with space metering (Theorem 3.8) ----
    oscillate = Query.parse("[pfp X(x). ~X(x)](u)", output_vars=("u",))
    r = oscillate.run(db)
    print(
        f"\n[PFP^{oscillate.width}] oscillating pfp: "
        f"answer {sorted(r.relation.tuples)} (no limit => empty), "
        f"peak live tuples {r.space.peak_live_tuples}, "
        f"iterations {r.space.total_iterations}"
    )


if __name__ == "__main__":
    main()
