#!/usr/bin/env python
"""The paper's introduction example, end to end.

"Find employees who earn less money than their manager's secretary" over
EMP(Emp,Dept), MGR(Dept,Mgr), SCY(Mgr,Scy), SAL(Emp,Sal):

1. the naive 6-variable query and the cross-product-first algebra plan
   (10-ary intermediate);
2. the bounded 3-variable query and the join/project plan (arity ≤ 3);
3. automatic variable minimization turning form 1 into form 2.

Run:  python examples/company_queries.py
"""

from repro import Query, evaluate
from repro.algebra import dynamic_cost
from repro.optimize import minimize_variables
from repro.workloads.company import (
    company_database,
    earns_less_bounded,
    earns_less_bounded_algebra,
    earns_less_naive,
    earns_less_naive_algebra,
)


def main() -> None:
    db = company_database(num_employees=14, num_departments=4, seed=42)
    print(f"company database: {db}\n")

    naive_q = earns_less_naive()
    bounded_q = earns_less_bounded()
    print(f"naive query   ({naive_q.width} variables): {naive_q.text()}")
    print(f"bounded query ({bounded_q.width} variables): {bounded_q.text()}\n")

    # --- logic-level evaluation ---------------------------------------
    r_naive = evaluate(naive_q.formula, db, ("e",))
    r_bounded = evaluate(bounded_q.formula, db, ("e",))
    assert r_naive.relation == r_bounded.relation
    print(f"underpaid employees: {sorted(t[0] for t in r_naive.relation)}")
    print(
        f"  naive form   peaks at arity {r_naive.stats.max_intermediate_arity} "
        f"({r_naive.stats.max_intermediate_rows} rows)"
    )
    print(
        f"  bounded form peaks at arity {r_bounded.stats.max_intermediate_arity} "
        f"({r_bounded.stats.max_intermediate_rows} rows)\n"
    )

    # --- algebra-level plans (Section 1's two approaches) --------------
    table_naive, cost_naive = dynamic_cost(earns_less_naive_algebra(), db)
    table_bounded, cost_bounded = dynamic_cost(earns_less_bounded_algebra(), db)
    assert set(table_naive.rows) == set(table_bounded.rows)
    print("algebra plans:")
    print(
        f"  cross-product-first: max arity {cost_naive.max_intermediate_arity}, "
        f"max rows {cost_naive.max_intermediate_rows}, "
        f"total rows produced {cost_naive.total_rows_produced}"
    )
    print(
        f"  bounded join plan:   max arity {cost_bounded.max_intermediate_arity}, "
        f"max rows {cost_bounded.max_intermediate_rows}, "
        f"total rows produced {cost_bounded.total_rows_produced}\n"
    )

    # --- variable minimization as query optimization -------------------
    minimized = minimize_variables(naive_q.formula)
    optimized_q = Query(minimized, output_vars=("e",), name="optimized")
    print(
        f"minimizer: {naive_q.width} variables -> {optimized_q.width} "
        f"variables"
    )
    print(f"  rewritten: {optimized_q.text()}")
    r_opt = optimized_q.run(db)
    assert r_opt.relation == r_naive.relation
    print(
        f"  evaluation now peaks at arity "
        f"{r_opt.stats.max_intermediate_arity} — same answer, "
        f"polynomially bounded intermediates"
    )


if __name__ == "__main__":
    main()
