#!/usr/bin/env python
"""A tour of the paper's lower-bound reductions (Prop 3.2, Thms 4.5/4.6).

Hardness proofs are constructive: each one is a translator from a
canonical hard problem into a bounded-variable query.  This example runs
all three translators on concrete instances and cross-checks them against
reference solvers.

Run:  python examples/lower_bounds_tour.py
"""

from repro.logic.printer import formula_length
from repro.reductions import (
    PathSystem,
    path_system_database,
    path_system_query,
    qbf_database,
    qbf_to_pfp_query,
    random_qbf,
    sat_to_eso_query,
    solve_path_system,
    solve_qbf,
)
from repro.sat.cnf import BoolAnd, BoolNot, BoolOr, BoolVar
from repro.workloads.graphs import path_graph


def path_systems_demo() -> None:
    print("=" * 64)
    print("Prop 3.2 — Path Systems ≤ combined complexity of FO^3")
    print("=" * 64)
    # axioms 0 and 1; rule: 2 from (0,1); rule: 3 from (2,2); target 3
    instance = PathSystem(
        size=4,
        rules=frozenset({(2, 0, 1), (3, 2, 2)}),
        sources=frozenset({0, 1}),
        targets=frozenset({3}),
    )
    expected = solve_path_system(instance)
    query = path_system_query(instance)
    got = query.holds(path_system_database(instance))
    print(f"instance solvable (Datalog closure): {expected}")
    print(
        f"FO^3 query: width {query.width}, "
        f"|e| = {formula_length(query.formula)} characters, "
        f"answer {got}"
    )
    assert got == expected
    print()


def sat_demo() -> None:
    print("=" * 64)
    print("Thm 4.5 — SAT ≤ expression complexity of ESO^k (any fixed B)")
    print("=" * 64)
    # (a ∨ b) ∧ (¬a ∨ c) ∧ (¬b ∨ ¬c)
    a, b, c = BoolVar("a"), BoolVar("b"), BoolVar("c")
    formula = BoolAnd(
        (
            BoolOr((a, b)),
            BoolOr((BoolNot(a), c)),
            BoolOr((BoolNot(b), BoolNot(c))),
        )
    )
    query = sat_to_eso_query(formula)
    print(f"ESO sentence ({query.width} individual variables): {query.text()}")
    for n in (2, 4, 7):
        db = path_graph(n)   # the database is irrelevant — that's the point
        print(f"  on a {n}-element database: {query.holds(db)}")
    print()


def qbf_demo() -> None:
    print("=" * 64)
    print("Thm 4.6 — QBF ≤ expression complexity of PFP^2 (fixed B0)")
    print("=" * 64)
    db = qbf_database()
    print(f"the fixed database B0: {db}")
    for seed in range(4):
        qbf = random_qbf(3, matrix_depth=3, seed=seed)
        prefix = " ".join(f"{q[0][0].upper()}{q[1]}" for q in qbf.prefix)
        expected = solve_qbf(qbf)
        query = qbf_to_pfp_query(qbf)
        got = query.holds(db)
        assert got == expected
        print(
            f"  {prefix}: QBF value {expected}; PFP^2 sentence "
            f"(width {query.width}, |e| = "
            f"{formula_length(query.formula)}) evaluates to {got}"
        )
    print()


def main() -> None:
    path_systems_demo()
    sat_demo()
    qbf_demo()
    print("all reductions agree with their reference solvers")


if __name__ == "__main__":
    main()
