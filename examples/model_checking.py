#!/usr/bin/env python
"""µ-calculus model checking as FP² query evaluation (Section 1).

A finite-state program (a traffic-light controller with a fault) is a
relational database; its specifications are µ-calculus formulas; checking
them is evaluating FP² queries — so Theorem 3.5's NP∩co-NP combined
complexity bound covers model checking, as the paper observes.

Run:  python examples/model_checking.py
"""

from repro import EvalOptions, FixpointStrategy, evaluate
from repro.core.certificates import extract_membership, verify_membership
from repro.mucalculus import KripkeStructure, model_check, mu_to_fp_query, parse_mu


def build_controller() -> KripkeStructure:
    """A traffic light: green(0) → yellow(1) → red(2) → green, plus a
    fault state (3) reachable from yellow where the light dies."""
    return KripkeStructure.build(
        4,
        [(0, 1), (1, 2), (2, 0), (1, 3), (3, 3)],
        {
            "green": [0],
            "yellow": [1],
            "red": [2],
            "dead": [3],
            "tt": [0, 1, 2, 3],
        },
    )


SPECS = [
    (
        "safety: never green and red at once (AG ¬(green∧red))",
        "nu X. (~green | ~red) & [] X",
    ),
    (
        "liveness: red is always eventually reachable (AG EF red)",
        "nu X. (mu Y. red | <> Y) & [] X",
    ),
    (
        "progress: on every path, eventually red (AF red)",
        "mu Y. red | (<> tt & [] Y)",
    ),
    (
        "fairness: some path hits green infinitely often",
        "nu X. mu Y. <>((green & X) | Y)",
    ),
]


def main() -> None:
    K = build_controller()
    db = K.to_database()
    print(f"program as a database: {db}\n")

    for description, text in SPECS:
        phi = parse_mu(text)
        states = model_check(K, phi)
        query = mu_to_fp_query(phi)
        via_fp = evaluate(
            query.formula,
            db,
            ("x",),
            EvalOptions(strategy=FixpointStrategy.ALTERNATION),
        )
        fp_states = frozenset(t[0] for t in via_fp.relation.tuples)
        assert fp_states == states, "the two routes must agree"
        verdict = "HOLDS at start" if 0 in states else "FAILS at start"
        print(f"{description}")
        print(f"  µ-formula : {text}")
        print(f"  FP² query : {query.text()[:72]}...")
        print(f"  states    : {sorted(states)}  -> {verdict}\n")

    # Theorem 3.5 in action: certify one verification result and check
    # the certificate in polynomial time.
    phi = parse_mu("mu Y. red | (<> tt & [] Y)")  # AF red
    query = mu_to_fp_query(phi)
    states = sorted(model_check(K, phi))
    assert states, "AF red holds at least at the red state itself"
    witness_state = states[0]
    certificate = extract_membership(
        query.formula, db, ("x",), (witness_state,)
    )
    assert certificate is not None
    assert verify_membership(certificate, query.formula, db)
    print(
        f"certified: state {witness_state} satisfies 'AF red' with a "
        f"Lemma 3.3/3.4 certificate of "
        f"{certificate.certificate.total_guessed_tuples()} guessed tuples "
        f"(verified in polynomial time)"
    )


if __name__ == "__main__":
    main()
