"""Bounded-arity relational algebra (Section 1 / Section 2.2).

"FO^k corresponds to the fragment of relational algebra where the arity
of every subexpression is bounded by k."  This subpackage makes that
correspondence executable:

* :mod:`~repro.algebra.ops` — plan nodes (scan, join, cross product,
  select, project, rename, union, difference, complement) evaluating over
  a :class:`~repro.database.database.Database`, with an
  :class:`~repro.algebra.ops.ArityTracker` that audits every intermediate;
* :mod:`~repro.algebra.compile_fo` — two FO→algebra compilers: the
  *bounded* compiler (intermediate arity ≤ number of free variables per
  subformula, Prop 3.1's evaluation order) and the *naive* compiler for
  conjunctive queries (cross-product-first, the Section 1 anti-pattern);
* :mod:`~repro.algebra.cost` — static and dynamic plan cost summaries.
"""

from repro.algebra.ops import (
    ArityTracker,
    Complement,
    CrossProduct,
    Difference,
    Join,
    PlanNode,
    Project,
    RelationScan,
    Rename,
    Select,
    Table,
    Union,
    column_eq,
    column_eq_const,
)
from repro.algebra.compile_fo import compile_bounded, compile_naive_conjunctive
from repro.algebra.cost import PlanCost, dynamic_cost, static_max_arity

__all__ = [
    "PlanNode",
    "Table",
    "RelationScan",
    "CrossProduct",
    "Join",
    "Select",
    "Project",
    "Rename",
    "Union",
    "Difference",
    "Complement",
    "column_eq",
    "column_eq_const",
    "ArityTracker",
    "compile_bounded",
    "compile_naive_conjunctive",
    "PlanCost",
    "static_max_arity",
    "dynamic_cost",
]
