"""Compilers from first-order formulas to relational algebra plans.

Two compilers embody the paper's contrast:

* :func:`compile_bounded` — the Prop 3.1 evaluation order as a plan: each
  subformula becomes a subplan over exactly its free variables, so every
  intermediate arity is at most the subformula's free-variable count (≤ k
  for FO^k queries);
* :func:`compile_naive_conjunctive` — the Section 1 anti-pattern for
  existential conjunctive queries: cross-product every atom first, then
  select, then project, peaking at the sum of the atom arities.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.database.database import Database
from repro.errors import EvaluationError
from repro.algebra.ops import (
    Complement,
    CrossProduct,
    Join,
    PlanNode,
    Project,
    RelationScan,
    Rename,
    Select,
    Table,
    Union,
    column_eq,
    column_eq_const,
)
from repro.logic.syntax import (
    And,
    Const,
    Equals,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    RelAtom,
    Truth,
    Var,
)
from repro.logic.variables import free_variables


# ---------------------------------------------------------------------------
# Extra leaf nodes the compilers need
# ---------------------------------------------------------------------------


class DomainScan(PlanNode):
    """``D^columns`` — all assignments to the given variables."""

    def __init__(self, columns: Tuple[str, ...]):
        self.columns = tuple(columns)

    def children(self) -> Tuple[PlanNode, ...]:
        return ()

    def _run(self, db: Database, tracker) -> Table:
        import itertools

        rows = tuple(
            itertools.product(db.domain.values, repeat=len(self.columns))
        )
        return Table(self.columns, rows)

    def __repr__(self) -> str:
        return f"DomainScan({self.columns})"


class EqualityScan(PlanNode):
    """The diagonal ``{(v, v)}`` over two variable columns."""

    def __init__(self, left: str, right: str):
        if left == right:
            raise EvaluationError("EqualityScan needs two distinct columns")
        self.left = left
        self.right = right

    def children(self) -> Tuple[PlanNode, ...]:
        return ()

    def _run(self, db: Database, tracker) -> Table:
        rows = tuple((v, v) for v in db.domain.values)
        return Table((self.left, self.right), rows)

    def __repr__(self) -> str:
        return f"EqualityScan({self.left}, {self.right})"


class EmptyScan(PlanNode):
    """The empty table over the given columns (``false``)."""

    def __init__(self, columns: Tuple[str, ...]):
        self.columns = tuple(columns)

    def children(self) -> Tuple[PlanNode, ...]:
        return ()

    def _run(self, db: Database, tracker) -> Table:
        return Table(self.columns, ())

    def __repr__(self) -> str:
        return f"EmptyScan({self.columns})"


# ---------------------------------------------------------------------------
# Bounded compiler (Prop 3.1 as a plan)
# ---------------------------------------------------------------------------


def compile_bounded(formula: Formula, output_vars: Sequence[str]) -> PlanNode:
    """Compile FO to a plan whose intermediates stay at ≤ k columns.

    The plan's final schema is exactly ``output_vars`` (missing free
    variables raise; extra output variables are cylindrified over the
    domain, the paper's convention).
    """
    out = tuple(output_vars)
    missing = free_variables(formula) - set(out)
    if missing:
        raise EvaluationError(
            f"output variables {out} do not cover free variables "
            f"{sorted(missing)}"
        )
    plan = _compile(formula)
    plan_cols = tuple(sorted(free_variables(formula)))
    extra = tuple(v for v in out if v not in plan_cols)
    if extra:
        plan = CrossProduct((plan, DomainScan(extra)))
    return Project(plan, out, by_name=True)


def _compile(formula: Formula) -> PlanNode:
    if isinstance(formula, RelAtom):
        return _compile_atom(formula)
    if isinstance(formula, Equals):
        return _compile_equals(formula)
    if isinstance(formula, Truth):
        if formula.value:
            return DomainScan(())
        return EmptyScan(())
    if isinstance(formula, Not):
        return Complement(_compile(formula.sub))
    if isinstance(formula, And):
        if not formula.subs:
            return DomainScan(())
        plan = _compile(formula.subs[0])
        for sub in formula.subs[1:]:
            plan = Join(plan, _compile(sub))
        return plan
    if isinstance(formula, Or):
        if not formula.subs:
            return EmptyScan(())
        target = tuple(sorted(free_variables(formula)))
        plans = []
        for sub in formula.subs:
            plan = _compile(sub)
            extra = tuple(
                v for v in target if v not in free_variables(sub)
            )
            if extra:
                plan = CrossProduct((plan, DomainScan(extra)))
            plans.append(Project(plan, target, by_name=True))
        result = plans[0]
        for plan in plans[1:]:
            result = Union(result, plan)
        return result
    if isinstance(formula, Exists):
        sub_plan = _compile(formula.sub)
        remaining = tuple(
            sorted(free_variables(formula.sub) - {formula.var.name})
        )
        return Project(sub_plan, remaining, by_name=True)
    if isinstance(formula, Forall):
        # ∀x φ = ¬∃x ¬φ, all within the same variable budget
        rewritten = Not(Exists(formula.var, Not(formula.sub)))
        return _compile(rewritten)
    raise EvaluationError(
        f"the algebra compiler handles first-order formulas only, got "
        f"{type(formula).__name__}"
    )


def _compile_atom(atom: RelAtom) -> PlanNode:
    arity = len(atom.terms)
    scan_cols = tuple(f"_pos{i}" for i in range(arity))
    plan: PlanNode = RelationScan(atom.name, arity, columns=scan_cols)
    predicates = []
    first_position: Dict[str, int] = {}
    keep: List[int] = []
    names: List[str] = []
    for i, term in enumerate(atom.terms):
        if isinstance(term, Const):
            predicates.append(column_eq_const(i, term.value))
        elif isinstance(term, Var):
            if term.name in first_position:
                predicates.append(column_eq(first_position[term.name], i))
            else:
                first_position[term.name] = i
                keep.append(i)
                names.append(term.name)
    if predicates:
        plan = Select(plan, tuple(predicates))
    plan = Project(plan, tuple(keep))
    return Rename(plan, tuple(zip([scan_cols[i] for i in keep], names)))


def _compile_equals(eq: Equals) -> PlanNode:
    left, right = eq.left, eq.right
    if isinstance(left, Var) and isinstance(right, Var):
        if left.name == right.name:
            return DomainScan((left.name,))
        return EqualityScan(*sorted((left.name, right.name)))
    if isinstance(left, Const) and isinstance(right, Var):
        left, right = right, left
    if isinstance(left, Var) and isinstance(right, Const):
        return Select(
            DomainScan((left.name,)), (column_eq_const(0, right.value),)
        )
    if isinstance(left, Const) and isinstance(right, Const):
        return DomainScan(()) if left.value == right.value else EmptyScan(())
    raise EvaluationError(f"malformed equality {eq!r}")


# ---------------------------------------------------------------------------
# Naive compiler (the Section 1 anti-pattern)
# ---------------------------------------------------------------------------


def compile_naive_conjunctive(
    formula: Formula, output_vars: Sequence[str]
) -> PlanNode:
    """Cross-product-first plan for an existential conjunctive query.

    Accepts ``∃x̄ (A_1 ∧ ... ∧ A_m)`` with relation/equality atoms and
    builds ``π(σ(A_1 × ... × A_m))`` — the naive approach whose largest
    intermediate has arity Σ arity(A_i).
    """
    body = formula
    while isinstance(body, Exists):
        body = body.sub
    atoms = body.subs if isinstance(body, And) else (body,)
    scans: List[PlanNode] = []
    var_positions: Dict[str, int] = {}
    predicates = []
    offset = 0
    for atom in atoms:
        if not isinstance(atom, RelAtom):
            raise EvaluationError(
                "the naive compiler accepts conjunctions of relation atoms, "
                f"got {type(atom).__name__}"
            )
        arity = len(atom.terms)
        scans.append(RelationScan(atom.name, arity))
        for i, term in enumerate(atom.terms):
            position = offset + i
            if isinstance(term, Const):
                predicates.append(column_eq_const(position, term.value))
            elif isinstance(term, Var):
                if term.name in var_positions:
                    predicates.append(
                        column_eq(var_positions[term.name], position)
                    )
                else:
                    var_positions[term.name] = position
        offset += arity
    plan: PlanNode = CrossProduct(tuple(scans))
    if predicates:
        plan = Select(plan, tuple(predicates))
    out_positions = []
    for name in output_vars:
        if name not in var_positions:
            raise EvaluationError(f"output variable {name!r} not in the query")
        out_positions.append(var_positions[name])
    projected = Project(plan, tuple(out_positions))
    # positions were projected in output order; rename to the variable names
    return _rename_positional(projected, tuple(output_vars))


def _rename_positional(plan: Project, names: Tuple[str, ...]) -> PlanNode:
    class _RenameByPosition(PlanNode):
        def __init__(self, inner: PlanNode, new_names: Tuple[str, ...]):
            self.inner = inner
            self.new_names = new_names

        def children(self) -> Tuple[PlanNode, ...]:
            return (self.inner,)

        def _run(self, db: Database, tracker) -> Table:
            table = self.inner.evaluate(db, tracker)
            if len(self.new_names) != table.arity:
                raise EvaluationError(
                    f"positional rename: {len(self.new_names)} names for "
                    f"arity {table.arity}"
                )
            return Table(self.new_names, table.rows)

        def __repr__(self) -> str:
            return f"RenameByPosition({self.new_names})"

    return _RenameByPosition(plan, names)
