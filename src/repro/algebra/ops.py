"""Relational algebra plan nodes.

A plan is an immutable tree of operators; ``plan.evaluate(db)`` runs it
against a database and returns a :class:`Table` (named columns + rows).
Passing an :class:`ArityTracker` records the arity and cardinality of
*every* intermediate result — the quantity the paper's introduction is
about: the naive plan for the company query peaks at arity 12, the
bounded plan at arity 3, and on large instances the difference is the
whole game.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.database.database import Database
from repro.database.domain import Value
from repro.errors import EvaluationError

Row = Tuple[Value, ...]


@dataclass(frozen=True)
class Table:
    """An intermediate result: named columns and a tuple of rows."""

    columns: Tuple[str, ...]
    rows: Tuple[Row, ...]

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            raise EvaluationError(f"duplicate columns {self.columns}")

    @property
    def arity(self) -> int:
        return len(self.columns)

    def column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise EvaluationError(
                f"unknown column {name!r} (have {self.columns})"
            ) from None

    def distinct(self) -> "Table":
        seen = set()
        out: List[Row] = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return Table(self.columns, tuple(out))

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class ArityTracker:
    """Audit of a plan execution: the paper's intermediate-size story."""

    max_arity: int = 0
    max_rows: int = 0
    total_rows_produced: int = 0
    operators_executed: int = 0
    per_operator: List[Tuple[str, int, int]] = field(default_factory=list)

    def observe(self, op_name: str, table: Table) -> None:
        self.operators_executed += 1
        self.total_rows_produced += len(table)
        if table.arity > self.max_arity:
            self.max_arity = table.arity
        if len(table) > self.max_rows:
            self.max_rows = len(table)
        self.per_operator.append((op_name, table.arity, len(table)))


class PlanNode:
    """Base class for algebra operators."""

    def evaluate(
        self, db: Database, tracker: Optional[ArityTracker] = None
    ) -> Table:
        table = self._run(db, tracker)
        if tracker is not None:
            tracker.observe(type(self).__name__, table)
        return table

    def _run(self, db: Database, tracker: Optional[ArityTracker]) -> Table:
        raise NotImplementedError

    def children(self) -> Tuple["PlanNode", ...]:
        return ()

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()


# ---------------------------------------------------------------------------
# Predicates for Select
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnEq:
    """Positional equality predicate ``row[left] == row[right]``."""

    left: int
    right: int

    def __call__(self, row: Row) -> bool:
        return row[self.left] == row[self.right]


@dataclass(frozen=True)
class ColumnEqConst:
    """Positional constant predicate ``row[column] == value``."""

    column: int
    value: Value

    def __call__(self, row: Row) -> bool:
        return row[self.column] == self.value


def column_eq(left: int, right: int) -> ColumnEq:
    return ColumnEq(left, right)


def column_eq_const(column: int, value: Value) -> ColumnEqConst:
    return ColumnEqConst(column, value)


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


_scan_counter = itertools.count()


@dataclass(frozen=True)
class RelationScan(PlanNode):
    """Read a database relation; columns are auto-named unless given."""

    name: str
    arity: int
    columns: Optional[Tuple[str, ...]] = None
    _uid: int = field(default_factory=lambda: next(_scan_counter))

    def schema(self) -> Tuple[str, ...]:
        if self.columns is not None:
            if len(self.columns) != self.arity:
                raise EvaluationError(
                    f"scan of {self.name}: {len(self.columns)} column names "
                    f"for arity {self.arity}"
                )
            return tuple(self.columns)
        return tuple(f"{self.name}.{i}#{self._uid}" for i in range(self.arity))

    def _run(self, db: Database, tracker) -> Table:
        relation = db.relation(self.name)
        if relation.arity != self.arity:
            raise EvaluationError(
                f"scan of {self.name}: declared arity {self.arity}, "
                f"relation has {relation.arity}"
            )
        return Table(self.schema(), tuple(sorted(relation.tuples, key=repr)))


@dataclass(frozen=True)
class CrossProduct(PlanNode):
    """Cartesian product of several inputs (the Section 1 anti-pattern)."""

    inputs: Tuple[PlanNode, ...]

    def children(self) -> Tuple[PlanNode, ...]:
        return self.inputs

    def _run(self, db: Database, tracker) -> Table:
        tables = [child.evaluate(db, tracker) for child in self.inputs]
        columns: List[str] = []
        seen_cols = set()
        for i, table in enumerate(tables):
            for col in table.columns:
                name = f"{col}@{i}" if col in seen_cols else col
                columns.append(name)
                seen_cols.add(name)
        rows = tuple(
            tuple(itertools.chain.from_iterable(combo))
            for combo in itertools.product(*(t.rows for t in tables))
        )
        return Table(tuple(columns), rows)


@dataclass(frozen=True)
class Join(PlanNode):
    """Natural join on shared column names (hash join)."""

    left: PlanNode
    right: PlanNode

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def _run(self, db: Database, tracker) -> Table:
        left = self.left.evaluate(db, tracker)
        right = self.right.evaluate(db, tracker)
        right_cols = set(right.columns)
        shared = [c for c in left.columns if c in right_cols]
        shared_set = set(shared)
        left_pos = [left.column_index(c) for c in shared]
        right_pos = [right.column_index(c) for c in shared]
        right_extra = [
            i for i, c in enumerate(right.columns) if c not in shared_set
        ]
        index: Dict[Row, List[Row]] = {}
        for row in left.rows:
            index.setdefault(tuple(row[p] for p in left_pos), []).append(row)
        out_columns = left.columns + tuple(right.columns[i] for i in right_extra)
        out_rows: List[Row] = []
        for row in right.rows:
            key = tuple(row[p] for p in right_pos)
            for match in index.get(key, ()):
                out_rows.append(match + tuple(row[i] for i in right_extra))
        return Table(out_columns, tuple(out_rows))


@dataclass(frozen=True)
class Select(PlanNode):
    """Filter rows by conjunction of positional predicates."""

    input: PlanNode
    predicates: Tuple[Callable[[Row], bool], ...]

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.input,)

    def _run(self, db: Database, tracker) -> Table:
        table = self.input.evaluate(db, tracker)
        rows = tuple(
            row for row in table.rows if all(p(row) for p in self.predicates)
        )
        return Table(table.columns, rows)


@dataclass(frozen=True)
class Project(PlanNode):
    """Project to columns given by position or (``by_name=True``) by name."""

    input: PlanNode
    columns: Tuple[object, ...]
    by_name: bool = False

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.input,)

    def _run(self, db: Database, tracker) -> Table:
        table = self.input.evaluate(db, tracker)
        if self.by_name:
            positions = [table.column_index(str(c)) for c in self.columns]
        else:
            positions = [int(c) for c in self.columns]
            for p in positions:
                if not 0 <= p < table.arity:
                    raise EvaluationError(
                        f"projection position {p} out of range "
                        f"(arity {table.arity})"
                    )
        out_columns = tuple(table.columns[p] for p in positions)
        rows = tuple(tuple(row[p] for p in positions) for row in table.rows)
        return Table(out_columns, rows).distinct()


@dataclass(frozen=True)
class Rename(PlanNode):
    """Rename columns via an old→new mapping."""

    input: PlanNode
    mapping: Tuple[Tuple[str, str], ...]

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.input,)

    def _run(self, db: Database, tracker) -> Table:
        table = self.input.evaluate(db, tracker)
        mapping = dict(self.mapping)
        return Table(
            tuple(mapping.get(c, c) for c in table.columns), table.rows
        )


@dataclass(frozen=True)
class Union(PlanNode):
    """Set union; schemas must have the same column names (any order)."""

    left: PlanNode
    right: PlanNode

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def _run(self, db: Database, tracker) -> Table:
        left = self.left.evaluate(db, tracker)
        right = self.right.evaluate(db, tracker)
        right = _align(right, left.columns)
        return Table(
            left.columns, tuple(dict.fromkeys(left.rows + right.rows))
        )


@dataclass(frozen=True)
class Difference(PlanNode):
    """Set difference; schemas must have the same column names."""

    left: PlanNode
    right: PlanNode

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def _run(self, db: Database, tracker) -> Table:
        left = self.left.evaluate(db, tracker)
        right = _align(self.right.evaluate(db, tracker), left.columns)
        removed = set(right.rows)
        return Table(
            left.columns,
            tuple(row for row in left.rows if row not in removed),
        )


@dataclass(frozen=True)
class Complement(PlanNode):
    """``D^columns`` minus the input — negation needs the active domain."""

    input: PlanNode

    def children(self) -> Tuple[PlanNode, ...]:
        return (self.input,)

    def _run(self, db: Database, tracker) -> Table:
        table = self.input.evaluate(db, tracker)
        present = set(table.rows)
        universe = itertools.product(db.domain.values, repeat=table.arity)
        rows = tuple(row for row in universe if row not in present)
        return Table(table.columns, rows)


def _align(table: Table, columns: Tuple[str, ...]) -> Table:
    if set(table.columns) != set(columns) or table.arity != len(columns):
        raise EvaluationError(
            f"schema mismatch: {table.columns} vs {columns}"
        )
    if table.columns == columns:
        return table
    positions = [table.column_index(c) for c in columns]
    return Table(
        columns, tuple(tuple(row[p] for p in positions) for row in table.rows)
    )
