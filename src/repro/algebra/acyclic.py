"""Acyclic conjunctive queries: GYO reduction and Yannakakis' algorithm.

Section 1 of the paper: "the fundamental reason that acyclic joins are
easier to evaluate than cyclic joins [BFMY83, Yan81] is that they can be
evaluated without large intermediate results."  This module supplies that
precedent as a working component:

* :func:`gyo_reduction` — the Graham/Yu-Özsoyoğlu ear-removal test for
  hypergraph acyclicity, returning a join tree on success;
* :func:`yannakakis` — the classical algorithm: a semijoin sweep up the
  join tree, a sweep down, then joins whose every intermediate is a
  subset of (a projection of) some input relation joined with the
  output — no blow-up beyond input + output size.

Queries are conjunctions of relation atoms over variables (the
select-project-join fragment the introduction discusses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.database.database import Database
from repro.errors import EvaluationError
from repro.logic.syntax import Const, RelAtom, Var

Row = Tuple[object, ...]


@dataclass(frozen=True)
class JoinTreeNode:
    """One atom of the query, with children in the join tree."""

    atom_index: int
    children: Tuple["JoinTreeNode", ...]


@dataclass(frozen=True)
class JoinTree:
    """A join tree over the query's atoms (root arbitrary)."""

    root: JoinTreeNode
    atoms: Tuple[RelAtom, ...]

    def size(self) -> int:
        def count(node: JoinTreeNode) -> int:
            return 1 + sum(count(c) for c in node.children)

        return count(self.root)


def _atom_vars(atom: RelAtom) -> FrozenSet[str]:
    return frozenset(
        t.name for t in atom.terms if isinstance(t, Var)
    )


def gyo_reduction(atoms: Sequence[RelAtom]) -> Optional[JoinTree]:
    """The GYO ear-removal test; a join tree iff the query is acyclic.

    An *ear* is a hyperedge e with a witness w such that every variable of
    e is either exclusive to e or contained in w; removing ears until
    nothing is left succeeds exactly on acyclic hypergraphs [BFMY83].
    """
    atoms = tuple(atoms)
    if not atoms:
        return None
    alive: Set[int] = set(range(len(atoms)))
    parent: Dict[int, Optional[int]] = {}
    removal_order: List[int] = []
    while len(alive) > 1:
        ear = None
        for e in alive:
            e_vars = _atom_vars(atoms[e])
            others = alive - {e}
            shared = {
                v
                for v in e_vars
                if any(v in _atom_vars(atoms[o]) for o in others)
            }
            witness = next(
                (
                    o
                    for o in others
                    if shared <= _atom_vars(atoms[o])
                ),
                None,
            )
            if witness is not None:
                ear = (e, witness)
                break
        if ear is None:
            return None  # cyclic
        e, witness = ear
        parent[e] = witness
        removal_order.append(e)
        alive.remove(e)
    root_index = next(iter(alive))
    parent[root_index] = None
    children: Dict[int, List[int]] = {i: [] for i in range(len(atoms))}
    for child, p in parent.items():
        if p is not None:
            children[p].append(child)

    def build(index: int) -> JoinTreeNode:
        return JoinTreeNode(
            index, tuple(build(c) for c in sorted(children[index]))
        )

    return JoinTree(build(root_index), atoms)


def is_acyclic(atoms: Sequence[RelAtom]) -> bool:
    """Hypergraph acyclicity of a conjunctive query's atom set."""
    return gyo_reduction(atoms) is not None


@dataclass
class YannakakisStats:
    """Intermediate-size audit: the 'no large intermediates' claim."""

    max_intermediate_rows: int = 0
    semijoins: int = 0

    def observe(self, rows: int) -> None:
        if rows > self.max_intermediate_rows:
            self.max_intermediate_rows = rows


def _bindings_of(atom: RelAtom, db: Database) -> List[Dict[str, object]]:
    relation = db.relation(atom.name)
    if relation.arity != len(atom.terms):
        raise EvaluationError(
            f"atom {atom.name}: {len(atom.terms)} terms for arity "
            f"{relation.arity}"
        )
    out = []
    for row in relation.tuples:
        binding: Dict[str, object] = {}
        ok = True
        for term, value in zip(atom.terms, row):
            if isinstance(term, Const):
                if term.value != value:
                    ok = False
                    break
            else:
                seen = binding.get(term.name, _MISSING)
                if seen is _MISSING:
                    binding[term.name] = value
                elif seen != value:
                    ok = False
                    break
        if ok:
            out.append(binding)
    return out


_MISSING = object()


def _semijoin(
    target: List[Dict[str, object]],
    source: List[Dict[str, object]],
    stats: YannakakisStats,
) -> List[Dict[str, object]]:
    """Keep target bindings that agree with some source binding."""
    stats.semijoins += 1
    if not target:
        return target
    shared = None
    keys = set(target[0])
    source_keys = set(source[0]) if source else set()
    shared = sorted(keys & source_keys)
    if not shared:
        return target if source else []
    witness = {tuple(b[v] for v in shared) for b in source}
    kept = [b for b in target if tuple(b[v] for v in shared) in witness]
    stats.observe(len(kept))
    return kept


def yannakakis(
    atoms: Sequence[RelAtom],
    db: Database,
    output_vars: Sequence[str],
    stats: Optional[YannakakisStats] = None,
) -> Set[Row]:
    """Evaluate an acyclic conjunctive query with semijoin reductions.

    Raises :class:`EvaluationError` on cyclic queries — that is the
    boundary the paper's introduction draws.
    """
    stats = stats if stats is not None else YannakakisStats()
    tree = gyo_reduction(atoms)
    if tree is None:
        raise EvaluationError(
            "the query hypergraph is cyclic; Yannakakis' algorithm "
            "requires an acyclic join"
        )
    bindings: Dict[int, List[Dict[str, object]]] = {
        i: _bindings_of(atom, db) for i, atom in enumerate(tree.atoms)
    }
    for rows in bindings.values():
        stats.observe(len(rows))

    # bottom-up semijoin sweep: parents keep only joinable bindings
    def sweep_up(node: JoinTreeNode) -> None:
        for child in node.children:
            sweep_up(child)
            bindings[node.atom_index] = _semijoin(
                bindings[node.atom_index], bindings[child.atom_index], stats
            )

    # top-down sweep: children keep only bindings joinable with the parent
    def sweep_down(node: JoinTreeNode) -> None:
        for child in node.children:
            bindings[child.atom_index] = _semijoin(
                bindings[child.atom_index], bindings[node.atom_index], stats
            )
            sweep_down(child)

    sweep_up(tree.root)
    sweep_down(tree.root)

    # join along the tree, projecting to output + connecting variables;
    # the running-intersection property of join trees guarantees that a
    # node's own atom variables are the only interface its subtree shares
    # with the rest of the query, so projecting to (output ∪ atom vars)
    # after each child merge is lossless
    out = list(output_vars)
    needed = set(out)

    def join_below(node: JoinTreeNode) -> List[Dict[str, object]]:
        current = bindings[node.atom_index]
        keep = needed | _atom_vars(tree.atoms[node.atom_index])
        for child in node.children:
            child_rows = join_below(child)
            merged: List[Dict[str, object]] = []
            child_shared = (
                sorted(set(child_rows[0]) & set(current[0]))
                if child_rows and current
                else []
            )
            index: Dict[Tuple, List[Dict[str, object]]] = {}
            for b in child_rows:
                index.setdefault(
                    tuple(b[v] for v in child_shared), []
                ).append(b)
            seen_rows = set()
            for b in current:
                key = tuple(b[v] for v in child_shared)
                for match in index.get(key, []):
                    combined = dict(match)
                    combined.update(b)
                    projected = {
                        v: combined[v] for v in combined if v in keep
                    }
                    frozen = tuple(sorted(projected.items()))
                    if frozen not in seen_rows:
                        seen_rows.add(frozen)
                        merged.append(projected)
            current = merged
            stats.observe(len(current))
        return current

    final = join_below(tree.root)
    result: Set[Row] = set()
    for binding in final:
        try:
            result.add(tuple(binding[v] for v in out))
        except KeyError as missing:
            raise EvaluationError(
                f"output variable {missing} does not occur in the query"
            ) from None
    return result
