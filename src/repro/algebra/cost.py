"""Plan cost summaries: static arity bounds and dynamic execution audits.

The quantity of interest throughout the paper is the size of intermediate
results.  :func:`static_max_arity` bounds it before execution (a plan is
"bounded-variable" when this is ≤ k); :func:`dynamic_cost` runs the plan
and reports what actually materialized.  :class:`FormulaCostModel` does
the same static exercise directly on formulas — per-subformula ``n^k``
bounds that the explain layer compares against recorded span times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.database.database import Database
from repro.errors import EvaluationError
from repro.algebra.ops import (
    ArityTracker,
    Complement,
    CrossProduct,
    Difference,
    Join,
    PlanNode,
    Project,
    RelationScan,
    Rename,
    Select,
    Table,
    Union,
)


@dataclass(frozen=True)
class PlanCost:
    """Execution summary of one plan run."""

    max_intermediate_arity: int
    max_intermediate_rows: int
    total_rows_produced: int
    operators_executed: int
    result_rows: int

    def dominates(self, other: "PlanCost") -> bool:
        """Strictly better on arity and rows (the intro example's claim)."""
        return (
            self.max_intermediate_arity < other.max_intermediate_arity
            and self.max_intermediate_rows <= other.max_intermediate_rows
        )


def static_max_arity(plan: PlanNode) -> int:
    """Upper bound on the arity of every intermediate of ``plan``.

    Computed bottom-up without touching a database.  Nodes the analyzer
    does not recognize contribute the max of their children (safe for
    leaf nodes that declare a ``columns`` attribute).
    """
    peak, _ = _arity(plan)
    return peak


def _arity(plan: PlanNode) -> Tuple[int, int]:
    """(peak arity in subtree, output arity)."""
    if isinstance(plan, RelationScan):
        return plan.arity, plan.arity
    if isinstance(plan, CrossProduct):
        peaks, outs = zip(*(_arity(c) for c in plan.inputs)) if plan.inputs else ((0,), (0,))
        out = sum(outs)
        return max(max(peaks), out), out
    if isinstance(plan, Join):
        lp, lo = _arity(plan.left)
        rp, ro = _arity(plan.right)
        # without schema knowledge the join output is at most lo + ro
        out = lo + ro
        return max(lp, rp, out), out
    if isinstance(plan, (Select,)):
        peak, out = _arity(plan.input)
        return peak, out
    if isinstance(plan, Project):
        peak, _ = _arity(plan.input)
        out = len(plan.columns)
        return max(peak, out), out
    if isinstance(plan, Rename):
        return _arity(plan.input)
    if isinstance(plan, (Union, Difference)):
        lp, lo = _arity(plan.left)
        rp, _ = _arity(plan.right)
        return max(lp, rp), lo
    if isinstance(plan, Complement):
        return _arity(plan.input)
    # unknown leaf (DomainScan, EqualityScan, ...): trust its columns
    columns = getattr(plan, "columns", None)
    if columns is not None and not plan.children():
        return len(columns), len(columns)
    if plan.children():
        peaks_outs = [_arity(c) for c in plan.children()]
        peak = max(p for p, _ in peaks_outs)
        out = peaks_outs[-1][1]
        return peak, out
    raise EvaluationError(f"cannot bound arity of {type(plan).__name__}")


def dynamic_cost(
    plan: PlanNode, db: Database
) -> Tuple[Table, PlanCost]:
    """Run ``plan`` and report what materialized."""
    tracker = ArityTracker()
    result = plan.evaluate(db, tracker)
    cost = PlanCost(
        max_intermediate_arity=tracker.max_arity,
        max_intermediate_rows=tracker.max_rows,
        total_rows_produced=tracker.total_rows_produced,
        operators_executed=tracker.operators_executed,
        result_rows=len(result),
    )
    return result, cost


# ---------------------------------------------------------------------------
# Formula-level prediction (the explain layer's yardstick)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeCost:
    """Static ``n^k`` prediction for one subformula.

    ``rows_bound`` is the Prop 3.1 bound on the node's own table
    (``n^{#free variables}``); ``unit_cost`` bounds the work of building
    it once from its children's tables (``n`` to the widest schema the
    operation touches); ``iterations_bound`` is 1 for non-fixpoint nodes
    and the polynomial Kleene bound ``n^arity + 1`` for fixpoints —
    PFP can exceed it (Theorem 3.8's exponential worst case), which the
    deviation flagging will then surface rather than hide.
    """

    rows_bound: int
    unit_cost: int
    iterations_bound: int

    @property
    def cost(self) -> int:
        """Total predicted work: per-build cost times iteration bound."""
        return self.unit_cost * self.iterations_bound


class FormulaCostModel:
    """Per-subformula cost predictions over a domain of size ``n``.

    The model is deliberately the paper's own coarse yardstick — pure
    ``n^k`` counting, no selectivity estimation — so a large gap between
    predicted share and measured share of evaluation time points at a
    *structural* surprise (an unexpectedly dense intermediate, a fixpoint
    iterating far past the polynomial estimate), not at model noise.
    """

    def __init__(self, domain_size: int):
        if domain_size < 0:
            raise EvaluationError(
                f"domain size must be non-negative, got {domain_size}"
            )
        self.n = domain_size

    def predict(self, formula) -> "Dict[int, NodeCost]":
        """``id(subformula)`` → :class:`NodeCost` for every subformula.

        Keyed by identity because syntactically equal subformulas are
        distinct nodes with (potentially) different contexts; the caller
        holds the AST, so the ids stay live.
        """
        from repro.logic.syntax import FIXPOINT_NODES
        from repro.logic.variables import free_variables

        out: Dict[int, NodeCost] = {}

        def visit(node) -> int:
            """Fill ``out`` for the subtree; return ``#free`` of node."""
            child_frees = [visit(child) for child in node.children()]
            free = len(free_variables(node))
            width = max([free] + child_frees) if child_frees else free
            if isinstance(node, FIXPOINT_NODES):
                iterations = (self.n ** node.arity) + 1
            else:
                iterations = 1
            out[id(node)] = NodeCost(
                rows_bound=self.n**free,
                unit_cost=max(1, self.n**width),
                iterations_bound=iterations,
            )
            return free

        visit(formula)
        return out
