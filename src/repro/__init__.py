"""repro — bounded-variable query evaluation.

A faithful, executable reproduction of Moshe Y. Vardi, *On the Complexity
of Bounded-Variable Queries* (PODS 1995): evaluators for FO^k, FP^k,
ESO^k and PFP^k with polynomially bounded intermediate results, the
certificate machinery of Theorem 3.5, the Lemma 3.6 arity reduction, the
lower-bound reductions of Sections 3-4, and a benchmark harness that
regenerates the complexity-table shapes of the paper.

Quickstart::

    from repro import Database, Query

    db = Database.from_tuples(range(5), {"E": (2, [(i, i + 1) for i in range(4)])})
    reach = Query.parse(
        "[lfp S(x). x = y | exists z. (E(z, x) & S(z))](x)",
        output_vars=("x", "y"),
    )
    result = reach.run(db)
    print(result.relation)
"""

from repro.database import Database, DatabaseSchema, Domain, Relation, RelationSchema
from repro.logic import (
    Language,
    format_formula,
    parse_formula,
    variable_width,
)
from repro.core import (
    EvalOptions,
    EvalResult,
    EvalStats,
    FixpointStrategy,
    Query,
    evaluate,
)
from repro.errors import (
    CertificateError,
    DeadlineExceeded,
    EvaluationError,
    IterationBudgetExceeded,
    PositivityError,
    ReductionError,
    ReproError,
    ResourceExhausted,
    SchemaError,
    SpaceBudgetExceeded,
    SyntaxError_,
    VariableBoundError,
)
from repro.guard import Budget, ChaosPolicy, ResourceGuard
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Span,
    Tracer,
    render_report,
)

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Domain",
    "Relation",
    "RelationSchema",
    "DatabaseSchema",
    "Query",
    "evaluate",
    "EvalOptions",
    "EvalResult",
    "EvalStats",
    "FixpointStrategy",
    "Language",
    "parse_formula",
    "format_formula",
    "variable_width",
    "ReproError",
    "SchemaError",
    "SyntaxError_",
    "VariableBoundError",
    "PositivityError",
    "EvaluationError",
    "CertificateError",
    "ReductionError",
    "ResourceExhausted",
    "DeadlineExceeded",
    "IterationBudgetExceeded",
    "SpaceBudgetExceeded",
    "Budget",
    "ChaosPolicy",
    "ResourceGuard",
    "Tracer",
    "NULL_TRACER",
    "Span",
    "MetricsRegistry",
    "render_report",
    "__version__",
]
