"""Cross-process trace correlation for served requests.

The engines trace into a local :class:`~repro.obs.tracer.Tracer`, but a
served request may run its attempts in *worker processes*: the spans are
recorded in one process, the request lives in another, and a retry can
scatter one logical request across several workers.  This module is the
reassembly point:

* the service mints a **request id** per request
  (:func:`new_request_id` — deterministic, index-based, so chaos drills
  replay exactly);
* the id travels inside the worker payload; the worker evaluates under
  a private tracer and ships its spans back **as plain dicts** in the
  result payload (processes share nothing else);
* :func:`assemble_trace` reassembles the attempts into one span tree —
  a synthetic ``serve.request`` root, one ``serve.attempt`` span per
  attempt (carrying where it ran, its worker pid, and its outcome), and
  every span re-stamped with the ``request_id`` attribute — exactly the
  dict shape :func:`~repro.obs.explain.spans_from_dicts` and
  ``repro explain --trace-file`` consume;
* a :class:`TraceStore` keeps the most recent assembled traces in
  memory for ``GET /trace/<request_id>``.

Span ids are renumbered during assembly (worker tracers all start at 1)
and attempt starts are re-anchored to the request's own clock, so the
merged tree is a valid, self-consistent trace.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple


def new_request_id(index: int) -> str:
    """The deterministic per-request trace id (``req-000042``)."""
    return f"req-{index:06d}"


def attempt_record(
    attempt: int,
    served_by: str,
    start: float,
    duration: float,
    outcome: str,
    spans: Optional[Sequence[Dict[str, object]]] = None,
    pid: Optional[int] = None,
) -> Dict[str, object]:
    """One attempt's contribution to a request trace.

    ``start`` is seconds since the request began; ``spans`` are the
    worker-side span dicts (absent when the attempt died before
    reporting — a crashed worker ships nothing back, which is itself
    signal).
    """
    return {
        "attempt": attempt,
        "served_by": served_by,
        "start": start,
        "duration": duration,
        "outcome": outcome,
        "spans": list(spans) if spans else [],
        "pid": pid,
    }


def assemble_trace(
    request_id: str,
    attempts: Sequence[Dict[str, object]],
    duration: float = 0.0,
    **root_attrs: object,
) -> List[Dict[str, object]]:
    """Merge per-attempt worker spans into one request span tree.

    Returns a flat list of span dicts (``Span.to_dict()`` shape) whose
    ``parent_id`` linkage forms: ``serve.request`` → one
    ``serve.attempt`` per attempt → that attempt's worker spans.  Every
    span's attrs carry the ``request_id``; attempt spans additionally
    carry ``served_by``, ``outcome``, and the worker ``pid`` when the
    attempt ran in a pool process.
    """
    out: List[Dict[str, object]] = []
    root_id = 1
    root: Dict[str, object] = {
        "span_id": root_id,
        "parent_id": None,
        "name": "serve.request",
        "start": 0.0,
        "duration": float(duration),
        "attrs": {"request_id": request_id, **root_attrs},
    }
    out.append(root)
    next_id = root_id + 1
    for record in attempts:
        attempt_start = float(record.get("start", 0.0))
        attempt_id = next_id
        next_id += 1
        attrs: Dict[str, object] = {
            "request_id": request_id,
            "attempt": record.get("attempt"),
            "served_by": record.get("served_by"),
            "outcome": record.get("outcome"),
        }
        if record.get("pid") is not None:
            attrs["pid"] = record["pid"]
        out.append(
            {
                "span_id": attempt_id,
                "parent_id": root_id,
                "name": "serve.attempt",
                "start": attempt_start,
                "duration": float(record.get("duration", 0.0)),
                "attrs": attrs,
            }
        )
        spans = record.get("spans") or []
        # renumber the worker's private span ids into the merged
        # sequence, preserving the worker-side parent/child linkage
        id_map: Dict[object, int] = {}
        for span in spans:
            id_map[span.get("span_id")] = next_id
            next_id += 1
        for span in spans:
            parent = span.get("parent_id")
            span_attrs = dict(span.get("attrs") or {})
            span_attrs["request_id"] = request_id
            if record.get("pid") is not None:
                span_attrs.setdefault("pid", record["pid"])
            out.append(
                {
                    "span_id": id_map[span.get("span_id")],
                    "parent_id": (
                        id_map[parent]
                        if parent in id_map
                        else attempt_id
                    ),
                    "name": span.get("name", "?"),
                    "start": attempt_start + float(span.get("start", 0.0)),
                    "duration": float(span.get("duration", 0.0)),
                    "attrs": span_attrs,
                }
            )
    return out


def trace_jsonl(spans: Sequence[Dict[str, object]]) -> str:
    """Span dicts as JSONL — the same shape ``Tracer.export_jsonl`` writes."""
    return "\n".join(json.dumps(span, default=str) for span in spans)


class TraceStore:
    """The most recent assembled request traces, by request id."""

    __slots__ = ("capacity", "_traces")

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._traces: "OrderedDict[str, List[Dict[str, object]]]" = (
            OrderedDict()
        )

    def put(
        self, request_id: str, spans: Sequence[Dict[str, object]]
    ) -> None:
        if request_id in self._traces:
            del self._traces[request_id]
        self._traces[request_id] = list(spans)
        while len(self._traces) > self.capacity:
            self._traces.popitem(last=False)

    def get(self, request_id: str) -> Optional[List[Dict[str, object]]]:
        return self._traces.get(request_id)

    def latest(self) -> Optional[Tuple[str, List[Dict[str, object]]]]:
        if not self._traces:
            return None
        request_id = next(reversed(self._traces))
        return request_id, self._traces[request_id]

    def ids(self) -> List[str]:
        """Stored request ids, oldest first."""
        return list(self._traces)

    def __len__(self) -> int:
        return len(self._traces)

    def __contains__(self, request_id: str) -> bool:
        return request_id in self._traces

    def __repr__(self) -> str:
        return f"TraceStore({len(self._traces)}/{self.capacity} traces)"


__all__ = [
    "TraceStore",
    "assemble_trace",
    "attempt_record",
    "new_request_id",
    "trace_jsonl",
]
