"""Service-level objectives: availability, latency, error-budget burn.

The paper's bounds make per-request cost *predictable*; an SLO turns
that predictability into an operable promise.  Two objectives matter
for a query service shaped like ours:

* **availability** — the fraction of requests that resolve to a correct
  answer rather than a structured failure.  The target (say 99.5%)
  leaves an *error budget* of 0.5%; the **burn rate** is the observed
  error rate divided by that budget, so burn 1.0 means "spending the
  budget exactly as fast as the SLO allows", burn 10 means an incident
  (the classic multi-window burn-rate alert threshold).
* **latency** — a quantile target in the spirit of Durand–Grandjean's
  constant-delay enumeration (PAPERS.md): once preprocessing is paid,
  answers should stream with bounded delay, so "p95 under X ms over the
  last minute" is the serving-layer translation of a delay bound.

Burn rates are computed over the rolling windows of
:mod:`repro.obs.rolling` (60s and 300s by default) — a *current*
reading, unlike the lifetime counters in the metrics registry.  One
:class:`SLOTracker` watches one stream of requests; the
:class:`SLOBoard` keeps a tracker per tenant plus a ``_total``
aggregate, which is exactly the shape ``GET /stats`` and the
``/metrics`` exposition surface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.obs.rolling import (
    DEFAULT_HORIZONS,
    WindowedCounter,
    WindowedHistogram,
    horizon_label,
)

#: The aggregate pseudo-tenant on an :class:`SLOBoard`.
TOTAL_KEY = "_total"


@dataclass(frozen=True)
class SLOPolicy:
    """One service-level objective: an availability and a latency target.

    ``availability_target`` is the success-fraction promise (0.995 =
    "99.5% of requests succeed"); its complement is the error budget.
    ``latency_target`` is the bound (seconds) promised for the
    ``latency_quantile`` (default p95) of request latency.
    """

    availability_target: float = 0.995
    latency_target: float = 0.5
    latency_quantile: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.availability_target < 1.0:
            raise ValueError(
                "availability_target must be in (0, 1), got "
                f"{self.availability_target}"
            )
        if self.latency_target <= 0:
            raise ValueError(
                f"latency_target must be > 0, got {self.latency_target}"
            )
        if not 0.0 < self.latency_quantile <= 1.0:
            raise ValueError(
                f"latency_quantile must be in (0, 1], got "
                f"{self.latency_quantile}"
            )

    @property
    def error_budget(self) -> float:
        """The tolerated error fraction (1 - availability target)."""
        return 1.0 - self.availability_target

    def as_dict(self) -> Dict[str, float]:
        return {
            "availability_target": self.availability_target,
            "error_budget": self.error_budget,
            "latency_target": self.latency_target,
            "latency_quantile": self.latency_quantile,
        }


class SLOTracker:
    """Rolling-window SLO readings for one request stream.

    ``record(ok, seconds)`` feeds every horizon's request/error counters
    and latency histogram; ``snapshot()`` returns, per horizon label::

        {"requests", "errors", "availability", "error_rate",
         "burn_rate", "latency", "latency_ok"}

    where ``burn_rate = error_rate / policy.error_budget`` and
    ``latency`` is the policy quantile over the window.  An idle window
    (zero requests) reads availability 1.0 and burn 0.0 — no traffic
    burns no budget.
    """

    __slots__ = ("policy", "horizons", "_requests", "_errors", "_latency")

    def __init__(
        self,
        policy: SLOPolicy,
        horizons: Sequence[float] = DEFAULT_HORIZONS,
        bucket_seconds: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy
        self.horizons = tuple(horizons)
        self._requests: Dict[str, WindowedCounter] = {}
        self._errors: Dict[str, WindowedCounter] = {}
        self._latency: Dict[str, WindowedHistogram] = {}
        for horizon in self.horizons:
            label = horizon_label(horizon)
            self._requests[label] = WindowedCounter(
                "slo.requests", horizon, bucket_seconds, clock
            )
            self._errors[label] = WindowedCounter(
                "slo.errors", horizon, bucket_seconds, clock
            )
            self._latency[label] = WindowedHistogram(
                "slo.latency", horizon, bucket_seconds, clock=clock
            )

    def record(
        self, ok: bool, seconds: float, now: Optional[float] = None
    ) -> None:
        for label in self._requests:
            self._requests[label].inc(1.0, now=now)
            if not ok:
                self._errors[label].inc(1.0, now=now)
            self._latency[label].observe(seconds, now=now)

    def window(
        self, label: str, now: Optional[float] = None
    ) -> Dict[str, float]:
        requests = self._requests[label].total(now)
        errors = self._errors[label].total(now)
        error_rate = errors / requests if requests else 0.0
        latency = self._latency[label].quantile(
            self.policy.latency_quantile, now=now
        ) if requests else 0.0
        return {
            "requests": requests,
            "errors": errors,
            "availability": 1.0 - error_rate,
            "error_rate": error_rate,
            "burn_rate": error_rate / self.policy.error_budget,
            "latency": latency,
            "latency_ok": latency <= self.policy.latency_target,
        }

    def snapshot(
        self, now: Optional[float] = None
    ) -> Dict[str, Dict[str, float]]:
        return {
            horizon_label(h): self.window(horizon_label(h), now)
            for h in self.horizons
        }

    def __repr__(self) -> str:
        return (
            f"SLOTracker(target={self.policy.availability_target}, "
            f"horizons={[horizon_label(h) for h in self.horizons]})"
        )


class SLOBoard:
    """Per-tenant SLO trackers plus a ``_total`` aggregate.

    Trackers are created lazily on first record, all under one shared
    policy — per-tenant *policies* stay an admission concern
    (:class:`~repro.serve.admission.TenantPolicy`); this board is the
    observability side: who is burning budget, and how fast.
    """

    __slots__ = ("policy", "horizons", "_bucket_seconds", "_clock", "_trackers")

    def __init__(
        self,
        policy: Optional[SLOPolicy] = None,
        horizons: Sequence[float] = DEFAULT_HORIZONS,
        bucket_seconds: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy if policy is not None else SLOPolicy()
        self.horizons = tuple(horizons)
        self._bucket_seconds = bucket_seconds
        self._clock = clock
        self._trackers: Dict[str, SLOTracker] = {}

    def tracker(self, tenant: str) -> SLOTracker:
        tracker = self._trackers.get(tenant)
        if tracker is None:
            tracker = SLOTracker(
                self.policy, self.horizons, self._bucket_seconds, self._clock
            )
            self._trackers[tenant] = tracker
        return tracker

    def record(
        self,
        tenant: str,
        ok: bool,
        seconds: float,
        now: Optional[float] = None,
    ) -> None:
        self.tracker(tenant).record(ok, seconds, now=now)
        self.tracker(TOTAL_KEY).record(ok, seconds, now=now)

    @property
    def tenants(self) -> Dict[str, SLOTracker]:
        return {
            name: tracker
            for name, tracker in self._trackers.items()
            if name != TOTAL_KEY
        }

    def snapshot(self, now: Optional[float] = None) -> Dict[str, object]:
        return {
            "objective": self.policy.as_dict(),
            "total": (
                self._trackers[TOTAL_KEY].snapshot(now)
                if TOTAL_KEY in self._trackers
                else SLOTracker(self.policy, self.horizons).snapshot(now)
            ),
            "tenants": {
                name: tracker.snapshot(now)
                for name, tracker in sorted(self.tenants.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"SLOBoard({len(self.tenants)} tenants, "
            f"target={self.policy.availability_target})"
        )


__all__ = ["SLOBoard", "SLOPolicy", "SLOTracker", "TOTAL_KEY"]
