"""Cross-run span profiles: where the time went as the parameter grew.

A single trace answers "where did *this* evaluation spend its time";
what the scaling tables need is the same question *across a sweep* —
which phase's self-time grows with ``n``, and at what shape.  A
:class:`SpanProfile` aggregates span traces (live tracers, exported
JSONL, or the span dicts embedded in a run record) into per-span-name,
per-parameter self-time totals, so "where did the time go as n grew"
is one table:

    span             n=4        n=8        n=12      total self
    fo.Exists        1.2ms      9.8ms      41.3ms    52.3ms
    fp.iteration     0.8ms      2.1ms      4.0ms     6.9ms

Self-time is computed exactly as :meth:`repro.obs.tracer.Span.self_duration`
does — a span's duration minus its direct children's — reconstructed
from ``parent_id`` linkage when the input is serialized spans.
"""

from __future__ import annotations

import json
import warnings
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError

#: One aggregation cell: span count, total duration, self duration.
Cell = Dict[str, float]


class ProfileError(ReproError):
    """Malformed trace input handed to the profiler."""


class ProfileWarning(UserWarning):
    """Malformed trace lines were skipped by a lenient loader."""


def parse_trace_jsonl(
    text: str, on_error: str = "warn"
) -> List[Dict[str, object]]:
    """Span dicts from a ``Tracer.export_jsonl()`` document.

    Trace files come from interrupted runs and shell pipelines, so a
    truncated final line is routine; by default (``on_error="warn"``)
    malformed lines are skipped and a single :class:`ProfileWarning`
    reports how many, and the first problem seen.  ``on_error="raise"``
    restores strict parsing (:class:`ProfileError` on the first bad
    line) for callers validating freshly exported traces.
    """
    if on_error not in ("warn", "raise"):
        raise ProfileError(
            f"on_error must be 'warn' or 'raise', got {on_error!r}"
        )
    spans: List[Dict[str, object]] = []
    skipped = 0
    first_problem: Optional[str] = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        problem: Optional[str] = None
        span: object = None
        try:
            span = json.loads(line)
        except json.JSONDecodeError as exc:
            problem = f"trace line {lineno} is not valid JSON: {exc}"
            if on_error == "raise":
                raise ProfileError(problem) from exc
        if problem is None and (
            not isinstance(span, dict) or "name" not in span
        ):
            problem = f"trace line {lineno} is not a span object"
            if on_error == "raise":
                raise ProfileError(problem)
        if problem is not None:
            skipped += 1
            if first_problem is None:
                first_problem = problem
            continue
        spans.append(span)  # type: ignore[arg-type]
    if skipped:
        warnings.warn(
            f"skipped {skipped} malformed trace line(s); "
            f"first: {first_problem}",
            ProfileWarning,
            stacklevel=2,
        )
    return spans


def self_durations(
    spans: Sequence[Mapping[str, object]],
) -> List[Tuple[str, float, float]]:
    """``(name, total, self)`` per span, from serialized span dicts.

    Self-time is reconstructed from the ``parent_id`` links: each span's
    duration is subtracted from its parent's self bucket, mirroring
    ``Span.self_duration()`` on the live objects.
    """
    selfs: Dict[object, float] = {}
    names: Dict[object, str] = {}
    totals: Dict[object, float] = {}
    for span in spans:
        span_id = span.get("span_id")
        duration = float(span.get("duration", 0.0))  # type: ignore[arg-type]
        selfs[span_id] = selfs.get(span_id, 0.0) + duration
        names[span_id] = str(span.get("name", "?"))
        totals[span_id] = duration
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent in selfs:
            selfs[parent] -= float(span.get("duration", 0.0))  # type: ignore[arg-type]
    return [
        (names[span_id], totals[span_id], selfs[span_id])
        for span_id in names
    ]


class SpanProfile:
    """Per-span-name, per-parameter aggregation of self/total time."""

    def __init__(self) -> None:
        # name -> parameter -> {"count", "total", "self"}
        self._cells: Dict[str, Dict[float, Cell]] = {}
        self.parameters: List[float] = []

    # -- building ------------------------------------------------------

    def _cell(self, name: str, parameter: float) -> Cell:
        if parameter not in self.parameters:
            self.parameters.append(parameter)
            self.parameters.sort()
        by_param = self._cells.setdefault(name, {})
        return by_param.setdefault(
            parameter, {"count": 0.0, "total": 0.0, "self": 0.0}
        )

    def add_tracer(self, parameter: float, tracer) -> "SpanProfile":
        """Fold one live :class:`repro.obs.tracer.Tracer` in."""
        for name, agg in tracer.aggregate().items():
            cell = self._cell(name, float(parameter))
            cell["count"] += agg["count"]
            cell["total"] += agg["total"]
            cell["self"] += agg["self"]
        return self

    def add_spans(
        self, parameter: float, spans: Sequence[Mapping[str, object]]
    ) -> "SpanProfile":
        """Fold serialized span dicts (JSONL lines / record points) in."""
        for name, total, self_time in self_durations(spans):
            cell = self._cell(name, float(parameter))
            cell["count"] += 1
            cell["total"] += total
            cell["self"] += self_time
        return self

    def merge(self, other: "SpanProfile") -> "SpanProfile":
        for name, by_param in other._cells.items():
            for parameter, cell in by_param.items():
                mine = self._cell(name, parameter)
                for key in ("count", "total", "self"):
                    mine[key] += cell[key]
        return self

    # -- reading -------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._cells)

    def cell(self, name: str, parameter: float) -> Optional[Cell]:
        return self._cells.get(name, {}).get(parameter)

    def self_series(self, name: str) -> List[Tuple[float, float]]:
        """``(parameter, self_seconds)`` for one span name, sorted."""
        by_param = self._cells.get(name, {})
        return sorted(
            (parameter, cell["self"]) for parameter, cell in by_param.items()
        )

    def total_self(self, name: str) -> float:
        return sum(
            cell["self"] for cell in self._cells.get(name, {}).values()
        )

    def hot(self, k: int = 10) -> List[str]:
        """The ``k`` span names with the largest summed self-time."""
        ranked = sorted(
            self._cells, key=self.total_self, reverse=True
        )
        return ranked[:k]

    def is_empty(self) -> bool:
        return not self._cells

    def to_dict(self) -> Dict[str, object]:
        return {
            "parameters": list(self.parameters),
            "spans": {
                name: {
                    f"{parameter:g}": dict(cell)
                    for parameter, cell in sorted(by_param.items())
                }
                for name, by_param in sorted(self._cells.items())
            },
        }


def profile_sweep(sweep) -> SpanProfile:
    """A profile from a traced :class:`~repro.complexity.measure.SweepResult`.

    Points without a recorded tracer (failed points, untraced sweeps)
    are skipped.
    """
    profile = SpanProfile()
    for point in sweep.points:
        if point.trace is not None:
            profile.add_tracer(point.parameter, point.trace)
    return profile


def profile_record(record) -> SpanProfile:
    """A profile from the span dicts embedded in a run record's points."""
    profile = SpanProfile()
    for point in record.points:
        if point.spans:
            profile.add_spans(point.parameter, point.spans)
    return profile


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_profile(profile: SpanProfile, top: int = 10) -> str:
    """The hot-span matrix: rows = span names, columns = parameters.

    Cells are *self* time; the final column sums a row across the sweep
    so the table ranks by where the time actually went as the parameter
    grew.
    """
    if profile.is_empty():
        return "(no spans profiled)"
    names = profile.hot(top)
    header = ["span"] + [
        f"n={parameter:g}" for parameter in profile.parameters
    ] + ["total self"]
    rows: List[List[str]] = []
    for name in names:
        row = [name]
        for parameter in profile.parameters:
            cell = profile.cell(name, parameter)
            row.append("-" if cell is None else _format_seconds(cell["self"]))
        row.append(_format_seconds(profile.total_self(name)))
        rows.append(row)
    widths = [
        max(len(header[i]), max(len(r[i]) for r in rows))
        for i in range(len(header))
    ]

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(v.ljust(w) for v, w in zip(cells, widths))

    lines = [fmt(header), "  ".join("-" * w for w in widths)]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)
