"""Machine-readable run records and the content-addressed run store.

The benchmarks' text blocks under ``benchmarks/out/`` are regenerable
human output; they overwrite in place and carry no history.  This module
is the durable counterpart: a **run record** is one experiment run as
plain JSON — environment fingerprint, per-point parameters, outcomes,
deterministic counters, fitted growth shapes, and (optionally) the raw
span trace — and a :class:`RunStore` archives records content-addressed
under ``benchmarks/out/records/`` so the perf *trajectory* of the repo
is queryable across runs.

Why fitted shapes and counters, not raw milliseconds: the paper's claims
are scaling shapes (PTIME vs NP vs PSPACE as ``n`` and ``|Q|`` sweep),
and the reproducible quantity on real hardware is the fitted growth
degree plus the deterministic work counters — wall-clock only gets a
noise-tolerant band (see :mod:`repro.obs.regress`).

Store layout (``root`` is normally ``benchmarks/out/records``)::

    records/
      BENCH_<id>.json          # the committed baseline for experiment <id>
      <id>/<digest>.json       # content-addressed archive, one file per run
      <id>/index.jsonl         # append-only index: digest, created, git sha

A record's digest is the SHA-256 of its canonical JSON, so identical
runs (same counters, same timings, same environment) share one archive
file and the index never lies about what was measured.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Bump when the record JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: The committed-baseline filename pattern, per experiment.
BASELINE_PREFIX = "BENCH_"


class RunStoreError(ReproError):
    """A malformed record file or an impossible store operation."""


def _git_sha(cwd: Optional[str] = None) -> str:
    """The short commit sha, or ``""`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def env_fingerprint(cwd: Optional[str] = None) -> Dict[str, object]:
    """The environment a record was measured in.

    Deliberately small: just enough to tell "same machine, same
    interpreter" from "numbers not comparable".  Fingerprint drift is
    reported by the regression gate as a note, never as a violation —
    deterministic counters are env-independent by construction.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": f"{platform.system()}-{platform.machine()}".lower(),
        "cpu_count": os.cpu_count() or 1,
        "git_sha": _git_sha(cwd),
    }


def format_fingerprint(env: Mapping[str, object]) -> str:
    """One human-readable line, used by bench-output headers."""
    sha = env.get("git_sha") or "unknown"
    return (
        f"{env.get('implementation', '?')} {env.get('python', '?')} on "
        f"{env.get('platform', '?')}, cpus={env.get('cpu_count', '?')}, "
        f"git={sha}"
    )


@dataclass(frozen=True)
class PointRecord:
    """One sweep point of a run: parameter, outcome, counters.

    ``counters`` holds the *deterministic* work counters (iterations,
    rows high-water, clauses, decisions, ...) — the tier-1 quantities of
    the regression gate.  ``seconds`` is wall-clock, tier-2 only.
    ``spans`` optionally carries the point's raw span dicts (the JSONL
    schema of :meth:`repro.obs.tracer.Tracer.export_jsonl`) for the
    cross-run profiler.
    """

    parameter: float
    seconds: float
    outcome: str = "ok"
    error: str = ""
    counters: Tuple[Tuple[str, float], ...] = ()
    spans: Tuple[Mapping[str, object], ...] = ()

    def counter_dict(self) -> Dict[str, float]:
        return dict(self.counters)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "parameter": self.parameter,
            "seconds": self.seconds,
            "outcome": self.outcome,
            "counters": dict(self.counters),
        }
        if self.error:
            out["error"] = self.error
        if self.spans:
            out["spans"] = [dict(s) for s in self.spans]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PointRecord":
        counters = data.get("counters", {}) or {}
        return cls(
            parameter=float(data["parameter"]),  # type: ignore[arg-type]
            seconds=float(data.get("seconds", 0.0)),  # type: ignore[arg-type]
            outcome=str(data.get("outcome", "ok")),
            error=str(data.get("error", "")),
            counters=tuple(
                sorted((str(k), float(v)) for k, v in counters.items())  # type: ignore[union-attr]
            ),
            spans=tuple(data.get("spans", ()) or ()),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class RunRecord:
    """One experiment run, ready to serialize, compare, and archive."""

    experiment_id: str
    title: str
    created: str
    env: Mapping[str, object]
    points: Tuple[PointRecord, ...]
    fits: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    deadline: Optional[float] = None
    meta: Mapping[str, object] = field(default_factory=dict)

    def parameters(self) -> List[float]:
        return [p.parameter for p in self.points]

    def point(self, parameter: float) -> Optional[PointRecord]:
        for p in self.points:
            if p.parameter == parameter:
                return p
        return None

    def counter_names(self) -> List[str]:
        names = set()
        for p in self.points:
            names.update(name for name, _ in p.counters)
        return sorted(names)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "schema_version": SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "created": self.created,
            "env": dict(self.env),
            "points": [p.to_dict() for p in self.points],
            "fits": {k: dict(v) for k, v in self.fits.items()},
        }
        if self.deadline is not None:
            out["deadline"] = self.deadline
        if self.meta:
            out["meta"] = dict(self.meta)
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def digest(self) -> str:
        """Content address: SHA-256 of the canonical (sorted, compact) JSON."""
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunRecord":
        version = data.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise RunStoreError(
                f"record schema_version {version!r} is not {SCHEMA_VERSION}"
            )
        try:
            points = tuple(
                PointRecord.from_dict(p)
                for p in data.get("points", ())  # type: ignore[union-attr]
            )
            return cls(
                experiment_id=str(data["experiment_id"]),
                title=str(data.get("title", "")),
                created=str(data.get("created", "")),
                env=dict(data.get("env", {})),  # type: ignore[arg-type]
                points=points,
                fits={
                    str(k): dict(v)
                    for k, v in (data.get("fits", {}) or {}).items()  # type: ignore[union-attr]
                },
                deadline=(
                    float(data["deadline"])  # type: ignore[arg-type]
                    if data.get("deadline") is not None
                    else None
                ),
                meta=dict(data.get("meta", {}) or {}),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RunStoreError(f"malformed run record: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RunStoreError(f"record is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def fit_series(
    parameters: Sequence[float], values: Sequence[float]
) -> Dict[str, object]:
    """Classify one series' growth; the record-side view of a GrowthFit.

    Returns ``{model, coefficient, intercept, residual, degree|base}``;
    ``degree`` is present for the polynomial winner (the quantity the
    regression gate bands), ``base`` for the exponential winner.
    Series too short or degenerate to fit return ``{"model": "none"}``.
    """
    # imported lazily: repro.complexity.measure imports repro.obs.tracer,
    # so a module-level import here would cycle during package init
    from repro.complexity.fit import classify_growth

    cleaned = [(p, v) for p, v in zip(parameters, values) if v > 0]
    if len(cleaned) < 2 or len({p for p, _ in cleaned}) < 2:
        return {"model": "none"}
    ns = [p for p, _ in cleaned]
    ys = [v for _, v in cleaned]
    try:
        winner, poly, expo = classify_growth(ns, ys)
    except (ValueError, OverflowError):
        return {"model": "none"}
    fit = poly if winner == "polynomial" else expo
    out: Dict[str, object] = {
        "model": winner,
        "coefficient": fit.coefficient,
        "intercept": fit.intercept,
        "residual": fit.residual,
    }
    if winner == "polynomial":
        out["degree"] = fit.coefficient
    else:
        out["base"] = fit.base
    return out


def build_record(
    experiment_id: str,
    title: str,
    parameters: Sequence[float],
    seconds: Sequence[float],
    counters: Optional[Sequence[Mapping[str, float]]] = None,
    outcomes: Optional[Sequence[str]] = None,
    errors: Optional[Sequence[str]] = None,
    spans: Optional[Sequence[Sequence[Mapping[str, object]]]] = None,
    fit_counters: Sequence[str] = (),
    deadline: Optional[float] = None,
    meta: Optional[Mapping[str, object]] = None,
    env: Optional[Mapping[str, object]] = None,
) -> RunRecord:
    """Assemble a :class:`RunRecord` from parallel per-point series.

    ``fit_counters`` names the counters whose growth shape should be
    fitted alongside wall-clock (only points with ``outcome == "ok"``
    enter a fit).  Benches that build rows by hand use this; sweeps use
    :func:`record_from_sweep`.
    """
    n = len(parameters)
    counters = counters if counters is not None else [{}] * n
    outcomes = outcomes if outcomes is not None else ["ok"] * n
    errors = errors if errors is not None else [""] * n
    spans = spans if spans is not None else [()] * n
    if not (len(seconds) == len(counters) == len(outcomes) == n):
        raise RunStoreError(
            "parameters/seconds/counters/outcomes must be parallel series"
        )
    points = tuple(
        PointRecord(
            parameter=float(parameters[i]),
            seconds=float(seconds[i]),
            outcome=outcomes[i],
            error=errors[i],
            counters=tuple(
                sorted((str(k), float(v)) for k, v in counters[i].items())
            ),
            spans=tuple(spans[i]),
        )
        for i in range(n)
    )
    ok = [p for p in points if p.outcome == "ok"]
    fits: Dict[str, Mapping[str, object]] = {}
    if len(ok) >= 2:
        fits["seconds"] = fit_series(
            [p.parameter for p in ok], [p.seconds for p in ok]
        )
        for name in fit_counters:
            series = [
                (p.parameter, p.counter_dict().get(name))
                for p in ok
                if name in p.counter_dict()
            ]
            if len(series) >= 2:
                fits[name] = fit_series(
                    [s[0] for s in series],
                    [s[1] for s in series],  # type: ignore[list-item]
                )
    return RunRecord(
        experiment_id=experiment_id,
        title=title,
        created=_utc_now(),
        env=env if env is not None else env_fingerprint(),
        points=points,
        fits=fits,
        deadline=deadline,
        meta=meta or {},
    )


def record_from_sweep(
    experiment_id: str,
    title: str,
    sweep,
    fit_counters: Sequence[str] = (),
    deadline: Optional[float] = None,
    meta: Optional[Mapping[str, object]] = None,
    include_spans: bool = False,
) -> RunRecord:
    """Build a record from a :class:`repro.complexity.measure.SweepResult`.

    With ``include_spans``, points that carry a recorded tracer embed
    its span dicts so the record is self-contained for the profiler.
    """
    spans = []
    for point in sweep.points:
        if include_spans and point.trace is not None:
            spans.append([s.to_dict() for s in point.trace.spans])
        else:
            spans.append(())
    return build_record(
        experiment_id,
        title,
        parameters=[p.parameter for p in sweep.points],
        seconds=[p.seconds for p in sweep.points],
        counters=[dict(p.counters) for p in sweep.points],
        outcomes=[p.outcome for p in sweep.points],
        errors=[p.error for p in sweep.points],
        spans=spans,
        fit_counters=fit_counters,
        deadline=deadline,
        meta=meta,
    )


class RunStore:
    """The content-addressed archive of run records plus baselines."""

    def __init__(self, root: str):
        self.root = root

    # -- paths ---------------------------------------------------------

    def record_dir(self, experiment_id: str) -> str:
        return os.path.join(self.root, experiment_id)

    def record_path(self, experiment_id: str, digest: str) -> str:
        return os.path.join(self.record_dir(experiment_id), f"{digest}.json")

    def index_path(self, experiment_id: str) -> str:
        return os.path.join(self.record_dir(experiment_id), "index.jsonl")

    def baseline_path(self, experiment_id: str) -> str:
        return os.path.join(self.root, f"{BASELINE_PREFIX}{experiment_id}.json")

    # -- archive -------------------------------------------------------

    def save(self, record: RunRecord) -> Tuple[str, str]:
        """Archive a record; returns ``(digest, path)``.

        Identical content re-saves to the same file; the index line is
        appended either way so the trajectory shows every run.
        """
        digest = record.digest()
        os.makedirs(self.record_dir(record.experiment_id), exist_ok=True)
        path = self.record_path(record.experiment_id, digest)
        if not os.path.exists(path):
            with open(path, "w") as handle:
                handle.write(record.to_json() + "\n")
        entry = {
            "digest": digest,
            "created": record.created,
            "git_sha": record.env.get("git_sha", ""),
            "points": len(record.points),
            "failures": sum(1 for p in record.points if p.outcome != "ok"),
        }
        with open(self.index_path(record.experiment_id), "a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
        return digest, path

    def load(self, experiment_id: str, digest: str) -> RunRecord:
        path = self.record_path(experiment_id, digest)
        try:
            with open(path) as handle:
                return RunRecord.from_json(handle.read())
        except FileNotFoundError:
            raise RunStoreError(
                f"no record {digest!r} for experiment {experiment_id!r} "
                f"under {self.root}"
            ) from None

    def index(self, experiment_id: str) -> List[Dict[str, object]]:
        """The append-only index, oldest first (empty if never recorded)."""
        try:
            with open(self.index_path(experiment_id)) as handle:
                return [
                    json.loads(line)
                    for line in handle
                    if line.strip()
                ]
        except FileNotFoundError:
            return []

    def latest(self, experiment_id: str) -> Optional[RunRecord]:
        entries = self.index(experiment_id)
        if not entries:
            return None
        return self.load(experiment_id, str(entries[-1]["digest"]))

    def experiments(self) -> List[str]:
        """Experiment ids with at least one archived record."""
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return []
        return sorted(
            name
            for name in names
            if os.path.isdir(os.path.join(self.root, name))
        )

    # -- baselines -----------------------------------------------------

    def save_baseline(self, record: RunRecord) -> str:
        os.makedirs(self.root, exist_ok=True)
        path = self.baseline_path(record.experiment_id)
        with open(path, "w") as handle:
            handle.write(record.to_json() + "\n")
        return path

    def load_baseline(self, experiment_id: str) -> Optional[RunRecord]:
        try:
            with open(self.baseline_path(experiment_id)) as handle:
                return RunRecord.from_json(handle.read())
        except FileNotFoundError:
            return None

    def __repr__(self) -> str:
        return f"RunStore(root={self.root!r})"
