"""Plain-text rendering of traces and metrics.

Renders a recorded :class:`~repro.obs.tracer.Tracer` as an indented span
tree with per-span timings and attributes, plus a flame-style "hot
spans" summary aggregating self-time by span name — the view that tells
you which phase (join, fixpoint iteration, grounding, DPLL, ...) the
wall-clock actually went to.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracer import Span, Tracer


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _format_attrs(span: Span) -> str:
    if not span.attrs:
        return ""
    parts = ", ".join(f"{k}={v}" for k, v in span.attrs.items())
    return f"  [{parts}]"


def render_span_tree(
    tracer: Tracer,
    max_depth: Optional[int] = None,
    max_children: int = 40,
) -> str:
    """The trace as an indented tree, one line per span.

    ``max_children`` elides the middle of long sibling runs (hundreds of
    identical per-iteration or per-tuple spans) so the tree stays
    readable; the elision line says how many spans were folded.
    """
    lines: List[str] = []

    def visit(span: Span, depth: int) -> None:
        indent = "  " * depth
        lines.append(
            f"{indent}{span.name}  {_format_seconds(span.duration)}"
            f"{_format_attrs(span)}"
        )
        if max_depth is not None and depth + 1 > max_depth:
            if span.children:
                lines.append(
                    f"{indent}  ... {len(span.children)} child span(s) "
                    "below depth limit"
                )
            return
        children = span.children
        if len(children) > max_children:
            head = children[: max_children // 2]
            tail = children[-(max_children // 2) :]
            for child in head:
                visit(child, depth + 1)
            lines.append(
                f"{indent}  ... {len(children) - len(head) - len(tail)} "
                "similar span(s) elided ..."
            )
            for child in tail:
                visit(child, depth + 1)
        else:
            for child in children:
                visit(child, depth + 1)

    for root in tracer.roots():
        visit(root, 0)
    if not lines:
        return "(no spans recorded)"
    return "\n".join(lines)


def render_hot_spans(tracer: Tracer, k: int = 10) -> str:
    """Top-``k`` span names by self time, as a fixed-width table."""
    rows = tracer.hot_spans(k)
    if not rows:
        return "(no spans recorded)"
    header = ("span", "count", "self", "total")
    cells = [
        (
            str(row["name"]),
            str(int(row["count"])),
            _format_seconds(float(row["self"])),
            _format_seconds(float(row["total"])),
        )
        for row in rows
    ]
    widths = [
        max(len(header[i]), max(len(c[i]) for c in cells))
        for i in range(len(header))
    ]

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(v.ljust(w) for v, w in zip(row, widths))

    lines = [fmt(header), "  ".join("-" * w for w in widths)]
    lines.extend(fmt(c) for c in cells)
    return "\n".join(lines)


def render_metrics(registry: MetricsRegistry) -> str:
    """All registry readings, one ``name = value`` line each, sorted."""
    lines: List[str] = []
    for name in registry.names():
        metric = registry.get(name)
        if isinstance(metric, Histogram):
            lines.append(
                f"{name} = count={metric.count} mean={metric.mean:.3g} "
                f"min={metric.min if metric.min is not None else 0} "
                f"p50={metric.quantile(0.50):.3g} "
                f"p95={metric.quantile(0.95):.3g} "
                f"p99={metric.quantile(0.99):.3g} "
                f"max={metric.max if metric.max is not None else 0}"
            )
        else:
            lines.append(f"{name} = {metric.snapshot()}")
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)


def render_report(
    tracer: Tracer,
    registry: Optional[MetricsRegistry] = None,
    top_k: int = 10,
    max_depth: Optional[int] = None,
) -> str:
    """The full plain-text report: tree, hot spans, optional metrics."""
    sections = [
        "== span tree ==",
        render_span_tree(tracer, max_depth=max_depth),
        "",
        f"== top {top_k} hot spans (by self time) ==",
        render_hot_spans(tracer, top_k),
    ]
    if registry is not None:
        sections.extend(["", "== metrics ==", render_metrics(registry)])
    return "\n".join(sections)
