"""Prometheus-style text exposition for the metrics registry.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` (plus any extra
families a caller supplies — rolling windows, SLO burn rates, flight
recorder accounting) in the Prometheus text format, stdlib only:

* every metric gets stable ``# HELP`` / ``# TYPE`` lines;
* names are sanitized and prefixed (``serve.latency_seconds`` →
  ``repro_serve_latency_seconds``); counters get the conventional
  ``_total`` suffix;
* histograms expose cumulative ``_bucket{le="..."}`` series (ending in
  ``le="+Inf"``), plus ``_sum`` and ``_count`` — scrapers compute
  quantiles the standard way;
* families render in sorted name order and label sets in sorted key
  order, so the output is byte-stable for a fixed registry state — the
  property the golden exposition test pins.

:func:`parse_exposition` is the matching reader: it walks an exposition
line by line into ``(name, labels, value)`` triples and raises on any
line that is not well-formed, which makes "the exposition parses" a
one-call test assertion.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Prefix every exposed metric name carries.
NAME_PREFIX = "repro_"

#: One labeled reading inside a family: (suffix, labels, value).  The
#: suffix is appended to the family name ("" for the family itself,
#: "_bucket"/"_sum"/"_count" for histogram series).
Sample = Tuple[str, Dict[str, str], float]

#: One exposition family: (exposed name, type, help text, samples).
Family = Tuple[str, str, str, List[Sample]]

#: Help strings for the well-known metric names; anything else gets a
#: generic line mentioning its registry name.
METRIC_HELP: Dict[str, str] = {
    "serve.requests": "Requests received by the query service.",
    "serve.ok": "Requests answered with a correct relation.",
    "serve.failed": "Requests resolved as structured failures.",
    "serve.retries": "Request attempts retried after transient faults.",
    "serve.degraded": "Degradation-ladder steps taken.",
    "serve.worker_crashes": "Worker processes that died mid-request.",
    "serve.breaker_trips": "Circuit-breaker open transitions.",
    "serve.breaker_short_circuit": "Requests short-circuited past the pool.",
    "serve.answer_rows": "Answer rows returned across all requests.",
    "serve.admitted": "Requests granted a concurrency slot.",
    "serve.shed": "Requests shed by admission control.",
    "serve.shed_expired": "Requests whose deadline passed while queued.",
    "serve.queue_depth": "Requests currently parked in the fair queue.",
    "serve.inflight": "Requests currently being evaluated.",
    "serve.latency_seconds": "End-to-end request latency in seconds.",
    "serve.queue_wait_seconds": "Admission queue wait in seconds.",
}


class ExpositionError(ReproError):
    """An exposition line failed to parse."""


_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>.*)$')


def metric_name(raw: str) -> str:
    """The exposed name for a registry metric (prefixed, sanitized)."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", raw)
    name = NAME_PREFIX + cleaned
    if not _NAME_OK.match(name):
        name = NAME_PREFIX + "_" + re.sub(r"[^a-zA-Z0-9_]", "_", cleaned)
    return name


def format_value(value: float) -> str:
    """A stable numeric rendering: integral floats print as integers."""
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if math.isnan(number):
        return "NaN"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _help_for(raw: str) -> str:
    return METRIC_HELP.get(raw, f"repro metric {raw}.")


def registry_families(registry: MetricsRegistry) -> List[Family]:
    """Every registry instrument as an exposition family."""
    families: List[Family] = []
    for raw in registry.names():
        metric = registry.get(raw)
        help_text = _help_for(raw)
        if isinstance(metric, Counter):
            families.append(
                (
                    metric_name(raw) + "_total",
                    "counter",
                    help_text,
                    [("", {}, float(metric.value))],
                )
            )
        elif isinstance(metric, Gauge):
            families.append(
                (
                    metric_name(raw),
                    "gauge",
                    help_text,
                    [("", {}, float(metric.value))],
                )
            )
        elif isinstance(metric, Histogram):
            samples: List[Sample] = []
            cumulative = 0
            for bound, bucket_count in zip(metric.bounds, metric.buckets):
                cumulative += bucket_count
                samples.append(
                    ("_bucket", {"le": format_value(bound)}, float(cumulative))
                )
            samples.append(("_bucket", {"le": "+Inf"}, float(metric.count)))
            samples.append(("_sum", {}, float(metric.total)))
            samples.append(("_count", {}, float(metric.count)))
            families.append(
                (metric_name(raw), "histogram", help_text, samples)
            )
    return families


def gauge_family(
    name: str,
    help_text: str,
    samples: Iterable[Tuple[Dict[str, str], float]],
) -> Family:
    """A labeled gauge family for caller-supplied readings."""
    return (
        metric_name(name),
        "gauge",
        help_text,
        [("", dict(labels), float(value)) for labels, value in samples],
    )


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_families(families: Sequence[Family]) -> str:
    """Families → exposition text, sorted by exposed name."""
    lines: List[str] = []
    for name, mtype, help_text, samples in sorted(
        families, key=lambda f: f[0]
    ):
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {mtype}")
        for suffix, labels, value in samples:
            lines.append(
                f"{name}{suffix}{_render_labels(labels)} "
                f"{format_value(value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def render_exposition(
    registry: MetricsRegistry,
    extra_families: Sequence[Family] = (),
) -> str:
    """The full ``/metrics`` document for a registry plus extras."""
    return render_families(list(registry_families(registry)) + list(extra_families))


def _parse_labels(block: Optional[str]) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    if not block:
        return labels
    rest = block
    while rest:
        match = _LABEL_PAIR.match(rest)
        if not match:
            raise ExpositionError(f"malformed label block at {rest!r}")
        key = match.group("key")
        value_chars: List[str] = []
        tail = match.group("value")
        index = 0
        while index < len(tail):
            ch = tail[index]
            if ch == "\\" and index + 1 < len(tail):
                escape = tail[index + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(escape, escape)
                )
                index += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            index += 1
        else:
            raise ExpositionError(f"unterminated label value in {block!r}")
        labels[key] = "".join(value_chars)
        rest = tail[index + 1 :]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            raise ExpositionError(f"malformed label separator in {block!r}")
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ExpositionError(f"malformed sample value {text!r}") from None


def parse_exposition(
    text: str,
) -> List[Tuple[str, Dict[str, str], float]]:
    """Exposition text → ``(name, labels, value)`` triples, strictly.

    Comment (``# HELP``/``# TYPE``) and blank lines are skipped after a
    shape check; any other line that is not a well-formed sample raises
    :class:`ExpositionError` — so a passing parse *is* the format test.
    """
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ExpositionError(
                    f"line {lineno}: malformed comment {line!r}"
                )
            if not _NAME_OK.match(parts[2]):
                raise ExpositionError(
                    f"line {lineno}: bad metric name {parts[2]!r}"
                )
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise ExpositionError(f"line {lineno}: malformed sample {line!r}")
        samples.append(
            (
                match.group("name"),
                _parse_labels(match.group("labels")),
                _parse_value(match.group("value")),
            )
        )
    return samples


__all__ = [
    "ExpositionError",
    "Family",
    "METRIC_HELP",
    "NAME_PREFIX",
    "Sample",
    "format_value",
    "gauge_family",
    "metric_name",
    "parse_exposition",
    "registry_families",
    "render_exposition",
    "render_families",
]
