"""Explain layer: annotated evaluation trees, trace diffing, live progress.

Three views over the same span/metric substrate:

* :func:`annotate_evaluation` merges a formula AST with the spans a
  traced run recorded into a per-subformula report — how many times each
  node was evaluated, its rows, its share of the wall clock, fixpoint
  iterations — next to the static ``n^k`` prediction of
  :class:`repro.algebra.cost.FormulaCostModel`, flagging nodes whose
  measured share deviates badly from the predicted share.
* :func:`diff_traces` aligns two span trees (live tracers or exported
  JSONL) by subformula path and reports per-path self-time and count
  deltas — the "what changed between sparse and packed / semi-naive and
  naive" view.
* :class:`ProgressReporter` is a recording tracer that additionally
  emits throttled heartbeat lines while a long fixpoint iterates, with
  an ETA extrapolated from the stage-size growth shape
  (:func:`repro.obs.runstore.fit_series`) and capped by the guard's
  remaining deadline.

Span ↔ AST alignment uses the ``expr`` attribute the FO evaluator
attaches to every ``fo.*`` span — the deterministic clipped rendering of
:func:`repro.logic.printer.formula_label`.  Syntactically identical
subformulas therefore share one aggregate; that merge is deliberate (the
engines memoize such nodes identically) and is noted in the report.
"""

from __future__ import annotations

import math
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.logic.printer import formula_label
from repro.logic.syntax import FIXPOINT_NODES, Formula
from repro.obs.tracer import Span, Tracer


class ExplainError(ReproError):
    """The explain layer could not interpret its inputs."""


# ---------------------------------------------------------------------------
# Span-tree reconstruction (for exported JSONL traces)
# ---------------------------------------------------------------------------


def spans_from_dicts(
    span_dicts: Sequence[Mapping[str, object]],
) -> List[Span]:
    """Rebuild :class:`Span` trees from serialized span dicts.

    Accepts the output of :func:`repro.obs.profile.parse_trace_jsonl`
    (or any iterable of ``Span.to_dict()``-shaped mappings) and restores
    the ``parent_id`` linkage, so tree-walking helpers work identically
    on live tracers and on traces read back from disk.  Returns the
    roots in start order; spans naming a missing parent become roots.
    """
    by_id: Dict[object, Span] = {}
    ordered: List[Span] = []
    for raw in span_dicts:
        span = Span(
            str(raw.get("name", "?")),
            raw.get("span_id"),  # type: ignore[arg-type]
            raw.get("parent_id"),  # type: ignore[arg-type]
            float(raw.get("start", 0.0)),  # type: ignore[arg-type]
        )
        span.duration = float(raw.get("duration", 0.0))  # type: ignore[arg-type]
        attrs = raw.get("attrs")
        if isinstance(attrs, dict):
            span.attrs.update(attrs)
        if span.span_id is not None and span.span_id in by_id:
            raise ExplainError(
                f"duplicate span_id {span.span_id!r} in trace input"
            )
        by_id[span.span_id] = span
        ordered.append(span)
    roots: List[Span] = []
    for span in ordered:
        parent = (
            by_id.get(span.parent_id) if span.parent_id is not None else None
        )
        if parent is None or parent is span:
            roots.append(span)
        else:
            parent.children.append(span)
    roots.sort(key=lambda s: (s.start, str(s.span_id)))
    return roots


def _roots_of(trace) -> List[Span]:
    """Roots from a tracer, a list of roots, or a list of span dicts."""
    if hasattr(trace, "roots"):
        return list(trace.roots())
    items = list(trace)
    if items and isinstance(items[0], Span):
        return items
    return spans_from_dicts(items)


# ---------------------------------------------------------------------------
# Annotated evaluation trees
# ---------------------------------------------------------------------------


_FIXPOINT_SPAN_NAMES = frozenset(
    "fo." + node.__name__ for node in FIXPOINT_NODES
)


def _blank_cell() -> Dict[str, object]:
    return {
        "count": 0,
        "total": 0.0,
        "self": 0.0,
        "rows": None,
        "iterations": 0,
    }


def _aggregate_by_label(roots: Sequence[Span]) -> Dict[str, Dict[str, object]]:
    """Per-``expr``-label span aggregates.

    ``fo.*`` spans carry the label; every other span (``fp.solve``,
    ``fp.iteration``, ``kernel.*``, SAT stages, ...) attributes its
    *self* time to the nearest ``fo.*`` ancestor's label, so a node's
    share includes the machinery run on its behalf.
    """
    agg: Dict[str, Dict[str, object]] = {}

    def visit(span: Span, current: Optional[str]) -> None:
        if span.name.startswith("fo.") and "expr" in span.attrs:
            label = str(span.attrs["expr"])
            cell = agg.setdefault(label, _blank_cell())
            cell["count"] += 1  # type: ignore[operator]
            cell["total"] += span.duration  # type: ignore[operator]
            cell["self"] += span.self_duration()  # type: ignore[operator]
            rows = span.attrs.get("rows")
            if isinstance(rows, int):
                cell["rows"] = max(
                    rows if cell["rows"] is None else cell["rows"], rows
                )
            current = label
        elif current is not None:
            cell = agg.setdefault(current, _blank_cell())
            cell["self"] += span.self_duration()  # type: ignore[operator]
            if span.name == "fp.iteration":
                cell["iterations"] += 1  # type: ignore[operator]
        for child in span.children:
            visit(child, current)

    for root in roots:
        visit(root, None)
    return agg


@dataclass
class NodeReport:
    """One subformula's line of the annotated tree."""

    label: str
    node_type: str
    count: int
    total_seconds: float
    self_seconds: float
    rows: Optional[int]
    iterations: Optional[int]
    predicted_rows: int
    predicted_cost: int
    actual_share: float
    predicted_share: float
    flagged: bool
    children: List["NodeReport"] = field(default_factory=list)

    @property
    def deviation(self) -> Optional[float]:
        """``actual_share / predicted_share`` (None when unpredicted)."""
        if self.predicted_share <= 0.0:
            return None
        return self.actual_share / self.predicted_share


@dataclass
class ExplainReport:
    """The annotated tree plus run-level context."""

    root: NodeReport
    total_self_seconds: float
    predicted_total_cost: int
    domain_size: int
    deviation_factor: float
    flagged: List[NodeReport] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def walk(self):
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def render(self) -> str:
        return render_explain_report(self)


def annotate_evaluation(
    formula: Formula,
    trace,
    domain_size: int,
    deviation_factor: float = 4.0,
    min_share: float = 0.02,
    extras: Optional[Dict[str, object]] = None,
) -> ExplainReport:
    """The annotated evaluation tree for a traced run of ``formula``.

    ``trace`` is the run's recording tracer, its root spans, or parsed
    span dicts from an exported JSONL trace.  A node is *flagged* when
    its measured share of attributed self-time exceeds
    ``deviation_factor`` times its predicted share of the static
    ``n^k`` cost — and the measured share itself is at least
    ``min_share``, so microsecond noise never flags.
    """
    from repro.algebra.cost import FormulaCostModel

    roots = _roots_of(trace)
    agg = _aggregate_by_label(roots)
    predictions = FormulaCostModel(domain_size).predict(formula)

    # merge predictions per label (identical subformulas share a label,
    # exactly as they share one span aggregate)
    predicted_cost: Dict[str, int] = {}
    predicted_rows: Dict[str, int] = {}

    def collect(node: Formula) -> None:
        label = formula_label(node)
        cost = predictions[id(node)]
        predicted_cost[label] = predicted_cost.get(label, 0) + cost.cost
        predicted_rows[label] = max(
            predicted_rows.get(label, 0), cost.rows_bound
        )
        for child in node.children():
            collect(child)

    collect(formula)

    total_self = sum(cell["self"] for cell in agg.values())  # type: ignore[misc]
    total_cost = sum(predicted_cost.values())
    flagged: List[NodeReport] = []
    flagged_labels = set()

    def build(node: Formula) -> NodeReport:
        label = formula_label(node)
        cell = agg.get(label, _blank_cell())
        is_fixpoint = isinstance(node, FIXPOINT_NODES)
        actual_share = (
            cell["self"] / total_self if total_self > 0 else 0.0  # type: ignore[operator]
        )
        predicted_share = (
            predicted_cost[label] / total_cost if total_cost > 0 else 0.0
        )
        flag = (
            actual_share >= min_share
            and predicted_share > 0.0
            and actual_share > deviation_factor * predicted_share
        )
        report = NodeReport(
            label=label,
            node_type=type(node).__name__,
            count=int(cell["count"]),  # type: ignore[arg-type]
            total_seconds=float(cell["total"]),  # type: ignore[arg-type]
            self_seconds=float(cell["self"]),  # type: ignore[arg-type]
            rows=cell["rows"],  # type: ignore[arg-type]
            iterations=int(cell["iterations"]) if is_fixpoint else None,  # type: ignore[arg-type]
            predicted_rows=predicted_rows[label],
            predicted_cost=predicted_cost[label],
            actual_share=actual_share,
            predicted_share=predicted_share,
            flagged=flag,
            children=[build(child) for child in node.children()],
        )
        if flag and label not in flagged_labels:
            flagged_labels.add(label)
            flagged.append(report)
        return report

    root = build(formula)
    flagged.sort(key=lambda r: r.actual_share, reverse=True)
    return ExplainReport(
        root=root,
        total_self_seconds=total_self,
        predicted_total_cost=total_cost,
        domain_size=domain_size,
        deviation_factor=deviation_factor,
        flagged=flagged,
        extras=dict(extras or {}),
    )


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def render_explain_report(report: ExplainReport, max_label: int = 60) -> str:
    """Plain-text rendering: header, annotated tree, deviation list."""
    lines: List[str] = []
    for key, value in sorted(report.extras.items()):
        lines.append(f"{key}: {value}")
    lines.append(
        f"domain size: {report.domain_size}; attributed self time: "
        f"{_format_seconds(report.total_self_seconds)}; predicted total "
        f"cost: {report.predicted_total_cost} (n^k units)"
    )
    lines.append("")
    lines.append("== annotated evaluation tree ==")

    def visit(node: NodeReport, depth: int) -> None:
        label = node.label
        if len(label) > max_label:
            label = label[: max_label - 3] + "..."
        parts = [f"count={node.count}"]
        if node.rows is not None:
            parts.append(f"rows={node.rows}")
        parts.append(f"rows<=n^k={node.predicted_rows}")
        if node.iterations is not None:
            parts.append(f"iterations={node.iterations}")
        parts.append(f"self={_format_seconds(node.self_seconds)}")
        parts.append(
            f"share={node.actual_share:.1%} (predicted "
            f"{node.predicted_share:.1%})"
        )
        marker = "  << DEVIATES" if node.flagged else ""
        lines.append(
            "  " * depth
            + f"{node.node_type}  {label}  [{', '.join(parts)}]{marker}"
        )
        for child in node.children:
            visit(child, depth + 1)

    visit(report.root, 0)
    lines.append("")
    if report.flagged:
        lines.append(
            f"== deviations (measured share > {report.deviation_factor:g}x "
            "predicted share) =="
        )
        for node in report.flagged:
            ratio = node.deviation
            lines.append(
                f"  {node.node_type}  {node.label[:max_label]}  "
                f"measured {node.actual_share:.1%} vs predicted "
                f"{node.predicted_share:.1%}"
                + (f"  ({ratio:.1f}x)" if ratio is not None else "")
            )
    else:
        lines.append("== deviations ==")
        lines.append("  (none: every node within the predicted share band)")
    lines.append("")
    lines.append(
        "# identical subformulas share one aggregate line; shares are of "
        "the self time attributed to fo.* nodes and their machinery"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Trace diffing
# ---------------------------------------------------------------------------


def _span_path_label(span: Span) -> str:
    """A stable identity for one span within its tree level.

    ``fo.*`` spans key on their subformula text, ``fp.solve`` on the
    relation/kind, ``mu.fixpoint`` on the recursion variable; iteration
    and kernel spans key on the bare name so repeats aggregate.
    """
    attrs = span.attrs
    expr = attrs.get("expr")
    if expr is not None:
        return f"{span.name}[{expr}]"
    if span.name == "fp.solve":
        return f"fp.solve[{attrs.get('rel', '?')}/{attrs.get('kind', '?')}]"
    if span.name == "mu.fixpoint":
        return f"mu.fixpoint[{attrs.get('var', '?')}]"
    return span.name


def trace_paths(trace) -> Dict[str, Dict[str, float]]:
    """``path -> {count, total, self}`` for one span tree.

    The path is the "/"-joined chain of :func:`_span_path_label` from
    the root, so the same subformula evaluated under different parents
    stays distinct while per-iteration repeats aggregate into one row.
    """
    cells: Dict[str, Dict[str, float]] = {}

    def visit(span: Span, prefix: str) -> None:
        label = _span_path_label(span)
        path = f"{prefix}/{label}" if prefix else label
        cell = cells.setdefault(
            path, {"count": 0.0, "total": 0.0, "self": 0.0}
        )
        cell["count"] += 1
        cell["total"] += span.duration
        cell["self"] += span.self_duration()
        for child in span.children:
            visit(child, path)

    for root in _roots_of(trace):
        visit(root, "")
    return cells


@dataclass(frozen=True)
class PathDiff:
    """One aligned row of a trace diff."""

    path: str
    count_a: int
    count_b: int
    self_a: float
    self_b: float
    total_a: float
    total_b: float

    @property
    def self_delta(self) -> float:
        return self.self_b - self.self_a

    @property
    def count_delta(self) -> int:
        return self.count_b - self.count_a

    @property
    def only_in(self) -> Optional[str]:
        """"a"/"b" when the path exists in just one trace, else None."""
        if self.count_a == 0 and self.count_b > 0:
            return "b"
        if self.count_b == 0 and self.count_a > 0:
            return "a"
        return None


def diff_traces(trace_a, trace_b) -> List[PathDiff]:
    """Align two traces by subformula path; rows sorted by |Δself| desc.

    Every path from either trace appears exactly once — unmatched paths
    (a span structure only one run produced, e.g. ``kernel.*`` under the
    packed backend) show up with zero counts on the other side.
    """
    paths_a = trace_paths(trace_a)
    paths_b = trace_paths(trace_b)
    out: List[PathDiff] = []
    for path in sorted(set(paths_a) | set(paths_b)):
        a = paths_a.get(path, {"count": 0.0, "total": 0.0, "self": 0.0})
        b = paths_b.get(path, {"count": 0.0, "total": 0.0, "self": 0.0})
        out.append(
            PathDiff(
                path=path,
                count_a=int(a["count"]),
                count_b=int(b["count"]),
                self_a=a["self"],
                self_b=b["self"],
                total_a=a["total"],
                total_b=b["total"],
            )
        )
    out.sort(key=lambda d: abs(d.self_delta), reverse=True)
    return out


def render_trace_diff(
    diffs: Sequence[PathDiff],
    label_a: str = "A",
    label_b: str = "B",
    top: int = 20,
    max_path: int = 72,
) -> str:
    """Fixed-width table of the largest self-time deltas."""
    if not diffs:
        return "(no spans in either trace)"
    shown = list(diffs[:top])
    header = (
        "path",
        f"count {label_a}",
        f"count {label_b}",
        f"self {label_a}",
        f"self {label_b}",
        "delta self",
        "note",
    )
    cells = []
    for diff in shown:
        path = diff.path
        if len(path) > max_path:
            path = "..." + path[-(max_path - 3) :]
        sign = "+" if diff.self_delta >= 0 else "-"
        if diff.only_in == "a":
            note = f"only in {label_a}"
        elif diff.only_in == "b":
            note = f"only in {label_b}"
        else:
            note = ""
        cells.append(
            (
                path,
                str(diff.count_a),
                str(diff.count_b),
                _format_seconds(diff.self_a),
                _format_seconds(diff.self_b),
                f"{sign}{_format_seconds(abs(diff.self_delta))}",
                note,
            )
        )
    widths = [
        max(len(header[i]), max(len(c[i]) for c in cells))
        for i in range(len(header))
    ]

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(v.ljust(w) for v, w in zip(row, widths)).rstrip()

    lines = [fmt(header), "  ".join("-" * w for w in widths)]
    lines.extend(fmt(c) for c in cells)
    if len(diffs) > top:
        lines.append(f"... {len(diffs) - top} smaller path(s) elided ...")
    total_a = sum(d.self_a for d in diffs)
    total_b = sum(d.self_b for d in diffs)
    lines.append(
        f"total self: {label_a}={_format_seconds(total_a)}  "
        f"{label_b}={_format_seconds(total_b)}  "
        f"delta={_format_seconds(total_b - total_a)}"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Live progress
# ---------------------------------------------------------------------------


class ProgressReporter(Tracer):
    """A recording tracer that narrates long fixpoints as they iterate.

    Drop-in wherever a :class:`~repro.obs.tracer.Tracer` goes
    (``EvalOptions(trace=reporter)``): spans record exactly as usual,
    and every closed ``fp.iteration`` / ``datalog.round`` span
    additionally feeds a throttled heartbeat line::

        [progress] S/lfp iteration 41: size=812 delta=9 elapsed=2.4s eta~1.1s

    The ETA extrapolates the stage-size series with
    :func:`repro.obs.runstore.fit_series` toward the stage-size ceiling
    — ``domain_size ** arity`` of the enclosing ``fp.solve`` span when
    both are known, else the caller's ``rows_bound``.  Both are upper
    bounds (Prop 3.1), so the estimate is conservative; it never exceeds
    the guard's remaining deadline when one is armed.
    ``stream``/``clock`` are injectable for tests; ``interval``
    throttles output to one line per that many seconds.
    """

    __slots__ = (
        "_stream",
        "_interval",
        "_guard",
        "_rows_bound",
        "_domain_size",
        "_last_emit",
        "_solves",
        "heartbeats",
    )

    def __init__(
        self,
        stream=None,
        interval: float = 1.0,
        clock=time.perf_counter,
        guard=None,
        rows_bound: Optional[int] = None,
        domain_size: Optional[int] = None,
    ):
        super().__init__(clock)
        self._stream = stream if stream is not None else sys.stderr
        self._interval = interval
        self._guard = guard
        self._rows_bound = rows_bound
        self._domain_size = domain_size
        self._last_emit: Optional[float] = None
        # id(open solve span) -> [(iteration index, size), ...]
        self._solves: Dict[int, List[Tuple[float, float]]] = {}
        #: Heartbeat lines emitted, for tests and post-run inspection.
        self.heartbeats: List[str] = []

    # -- tracer hook ---------------------------------------------------

    def _close(self, span: Span) -> None:
        super()._close(span)
        if span is None:
            return
        if span.name in ("fp.iteration", "datalog.round"):
            self._note_iteration(span)
        elif span.name == "fp.solve":
            self._solves.pop(id(span), None)

    # -- heartbeats ----------------------------------------------------

    def _note_iteration(self, span: Span) -> None:
        solve = self._stack[-1] if self._stack else None
        if solve is not None and solve.name != "fp.solve":
            solve = None
        history = self._solves.setdefault(
            id(solve) if solve is not None else 0, []
        )
        index = span.attrs.get("index")
        size = span.attrs.get("size", span.attrs.get("total_tuples"))
        if isinstance(index, (int, float)) and isinstance(
            size, (int, float)
        ):
            history.append((float(index), float(size)))
        now = self._clock() - self._epoch
        if (
            self._last_emit is not None
            and now - self._last_emit < self._interval
        ):
            return
        self._last_emit = now
        self._emit(span, solve, history, now)

    def _emit(
        self,
        span: Span,
        solve: Optional[Span],
        history: List[Tuple[float, float]],
        now: float,
    ) -> None:
        if solve is not None:
            what = (
                f"{solve.attrs.get('rel', '?')}/{solve.attrs.get('kind', '?')}"
            )
            elapsed = now - solve.start
        else:
            what = span.name
            elapsed = now
        parts = [f"[progress] {what} iteration {span.attrs.get('index', '?')}:"]
        size = span.attrs.get("size", span.attrs.get("total_tuples"))
        if size is not None:
            parts.append(f"size={size}")
        delta = span.attrs.get("delta")
        if delta is not None:
            parts.append(f"delta={delta}")
        parts.append(f"elapsed={_format_seconds(elapsed)}")
        eta = self._estimate_eta(history, elapsed, self._solve_bound(solve))
        remaining = self._guard_remaining()
        if eta is not None and remaining is not None:
            eta = min(eta, remaining)
        if eta is not None:
            parts.append(f"eta~{_format_seconds(eta)}")
        elif remaining is not None:
            parts.append(f"deadline in {_format_seconds(remaining)}")
        line = " ".join(parts)
        self.heartbeats.append(line)
        print(line, file=self._stream, flush=True)

    def _guard_remaining(self) -> Optional[float]:
        guard = self._guard
        if guard is None or not getattr(guard, "enabled", False):
            return None
        remaining = guard.remaining_seconds()
        return remaining if remaining is not None else None

    def _solve_bound(self, solve: Optional[Span]) -> Optional[int]:
        """Stage-size ceiling: ``n^arity`` of the solve, else the default."""
        if solve is not None and self._domain_size is not None:
            arity = solve.attrs.get("arity")
            if isinstance(arity, int) and arity >= 0:
                return self._domain_size**arity
        return self._rows_bound

    def _estimate_eta(
        self,
        history: List[Tuple[float, float]],
        elapsed: float,
        bound: Optional[int],
    ) -> Optional[float]:
        """Iterations-to-ceiling from the stage-size growth shape.

        Fits size-vs-iteration with :func:`fit_series`; inverts the
        winning model at the stage-size ceiling ``bound`` to estimate the
        total iteration count, then scales the measured per-iteration
        time.  Returns ``None`` when the series is too short, the fit
        fails, or no ceiling is known.
        """
        if bound is None or len(history) < 3:
            return None
        from repro.obs.runstore import fit_series

        indexes = [i for i, _ in history if i > 0]
        sizes = [s for i, s in history if i > 0]
        current_index, current_size = history[-1]
        if current_index <= 0 or current_size <= 0:
            return None
        if current_size >= bound:
            return 0.0
        fit = fit_series(indexes, sizes)
        model = fit.get("model")
        try:
            if model == "polynomial" and float(fit["coefficient"]) > 0:
                scale = math.exp(float(fit["intercept"]))
                target = (bound / scale) ** (1.0 / float(fit["coefficient"]))
            elif model == "exponential" and float(fit["base"]) > 1.0:
                scale = math.exp(float(fit["intercept"]))
                target = math.log(bound / scale) / math.log(
                    float(fit["base"])
                )
            else:
                return None
        except (ValueError, KeyError, OverflowError, ZeroDivisionError):
            return None
        remaining_iterations = max(0.0, target - current_index)
        # near convergence the fit extrapolation diverges (sizes plateau
        # below the ceiling); a monotone fixpoint adds >= 1 tuple per
        # iteration, so remaining tuples also bound remaining iterations
        remaining_iterations = min(
            remaining_iterations, max(0.0, bound - current_size)
        )
        per_iteration = elapsed / max(current_index, 1.0)
        return remaining_iterations * per_iteration


__all__ = [
    "ExplainError",
    "ExplainReport",
    "NodeReport",
    "PathDiff",
    "ProgressReporter",
    "annotate_evaluation",
    "diff_traces",
    "render_explain_report",
    "render_trace_diff",
    "spans_from_dicts",
    "trace_paths",
]
