"""Fixed-bucket sliding windows: the *current* view of a live service.

The cumulative instruments in :mod:`repro.obs.metrics` answer "how much
since the process started" — the right shape for the paper's counters,
the wrong shape for an operator watching a server: a latency histogram
that has absorbed a week of traffic cannot show the last minute's p95,
and a lifetime error count cannot show an error-budget burn.

This module keeps the classic fixed-bucket sliding window: time is cut
into ``bucket_seconds``-wide buckets (1s by default), a window of
``horizon`` seconds is a ring of ``horizon / bucket_seconds`` buckets,
and a reading merges every bucket that is still inside the horizon.
Writes are O(1) (index into the ring, reset the slot if its epoch is
stale); reads are O(buckets), which is at most a few hundred and only
happens on ``/stats`` / ``/metrics`` scrapes.

Window semantics — the contract the property tests pin down:

* an observation at time ``t`` lands in bucket ``floor(t / width)``;
* a reading at time ``now`` covers the ``n`` bucket epochs
  ``(floor(now / width) - n, floor(now / width)]`` — the current
  (partial) bucket plus the ``n - 1`` before it;
* therefore an observation expires between ``horizon - width`` and
  ``horizon`` seconds after it was made, depending on where inside its
  bucket it fell.  With 1s buckets on a 60s horizon the window always
  covers between 59 and 60 seconds of wall time.

Two instruments ride the ring:

* :class:`WindowedCounter` — windowed totals and per-second rates
  (requests, errors);
* :class:`WindowedHistogram` — windowed distributions with the same
  power-of-two buckets and p50/p95/p99 snapshot as the cumulative
  :class:`~repro.obs.metrics.Histogram`.

:class:`WindowSet` bundles one counter-or-histogram per horizon (the
serve layer's 60s / 300s pair) behind a single ``observe``.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import DEFAULT_BUCKETS, quantile_from_buckets

#: The serve layer's standard horizons: one minute and five minutes.
DEFAULT_HORIZONS: Tuple[float, ...] = (60.0, 300.0)


class _Ring:
    """The shared epoch-stamped bucket ring.

    ``_epochs[slot]`` remembers which bucket epoch last wrote the slot;
    a write into a slot whose epoch moved on resets it first, and a read
    skips any slot whose epoch has left the horizon.  No timer, no
    background task — expiry happens lazily on access.
    """

    __slots__ = ("width", "size", "_epochs", "_clock")

    def __init__(
        self,
        horizon: float,
        bucket_seconds: float,
        clock: Callable[[], float],
    ):
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        if bucket_seconds <= 0:
            raise ValueError(
                f"bucket_seconds must be > 0, got {bucket_seconds}"
            )
        self.width = float(bucket_seconds)
        self.size = max(1, int(math.ceil(horizon / bucket_seconds)))
        self._epochs: List[Optional[int]] = [None] * self.size
        self._clock = clock

    def _now(self, now: Optional[float]) -> float:
        return self._clock() if now is None else now

    def _epoch(self, now: float) -> int:
        return int(now // self.width)

    def write_slot(self, now: Optional[float]) -> Tuple[int, bool]:
        """The slot for ``now``; ``True`` when the slot must be reset."""
        epoch = self._epoch(self._now(now))
        slot = epoch % self.size
        fresh = self._epochs[slot] != epoch
        self._epochs[slot] = epoch
        return slot, fresh

    def live_slots(self, now: Optional[float]) -> List[int]:
        """Slots whose epoch is still inside the horizon at ``now``."""
        epoch = self._epoch(self._now(now))
        return [
            slot
            for slot, stamp in enumerate(self._epochs)
            if stamp is not None and 0 <= epoch - stamp < self.size
        ]


class WindowedCounter:
    """A monotone total over a sliding window (requests, errors, sheds)."""

    __slots__ = ("name", "horizon", "_ring", "_values")

    def __init__(
        self,
        name: str,
        horizon: float = 60.0,
        bucket_seconds: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.name = name
        self.horizon = float(horizon)
        self._ring = _Ring(horizon, bucket_seconds, clock)
        self._values: List[float] = [0.0] * self._ring.size

    def inc(self, amount: float = 1.0, now: Optional[float] = None) -> None:
        slot, fresh = self._ring.write_slot(now)
        if fresh:
            self._values[slot] = 0.0
        self._values[slot] += amount

    def total(self, now: Optional[float] = None) -> float:
        return sum(self._values[s] for s in self._ring.live_slots(now))

    def rate(self, now: Optional[float] = None) -> float:
        """Per-second rate over the window (total / horizon)."""
        return self.total(now) / self.horizon

    def snapshot(self, now: Optional[float] = None) -> Dict[str, float]:
        total = self.total(now)
        return {"total": total, "rate": total / self.horizon}

    def __repr__(self) -> str:
        return (
            f"WindowedCounter({self.name!r}, horizon={self.horizon:g}s, "
            f"total={self.total():g})"
        )


class WindowedHistogram:
    """A distribution over a sliding window (latency, queue wait).

    Each ring slot holds its own count/sum/min/max plus the shared
    power-of-two bucket counts; a snapshot merges the live slots and
    estimates quantiles with the same bucket interpolation as the
    cumulative :class:`~repro.obs.metrics.Histogram`, so windowed and
    lifetime p95 readings are directly comparable.
    """

    __slots__ = (
        "name",
        "horizon",
        "bounds",
        "_ring",
        "_counts",
        "_sums",
        "_mins",
        "_maxs",
        "_buckets",
    )

    def __init__(
        self,
        name: str,
        horizon: float = 60.0,
        bucket_seconds: float = 1.0,
        bounds: Optional[Sequence[float]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.name = name
        self.horizon = float(horizon)
        self.bounds: Tuple[float, ...] = tuple(
            bounds if bounds is not None else DEFAULT_BUCKETS
        )
        self._ring = _Ring(horizon, bucket_seconds, clock)
        size = self._ring.size
        self._counts: List[int] = [0] * size
        self._sums: List[float] = [0.0] * size
        self._mins: List[Optional[float]] = [None] * size
        self._maxs: List[Optional[float]] = [None] * size
        self._buckets: List[List[int]] = [
            [0] * (len(self.bounds) + 1) for _ in range(size)
        ]

    def observe(self, value: float, now: Optional[float] = None) -> None:
        slot, fresh = self._ring.write_slot(now)
        if fresh:
            self._counts[slot] = 0
            self._sums[slot] = 0.0
            self._mins[slot] = None
            self._maxs[slot] = None
            bucket = self._buckets[slot]
            for index in range(len(bucket)):
                bucket[index] = 0
        self._counts[slot] += 1
        self._sums[slot] += value
        low, high = self._mins[slot], self._maxs[slot]
        if low is None or value < low:
            self._mins[slot] = value
        if high is None or value > high:
            self._maxs[slot] = value
        from bisect import bisect_left

        self._buckets[slot][bisect_left(self.bounds, value)] += 1

    def _merged(
        self, now: Optional[float]
    ) -> Tuple[int, float, Optional[float], Optional[float], List[int]]:
        merged = [0] * (len(self.bounds) + 1)
        count, total = 0, 0.0
        low: Optional[float] = None
        high: Optional[float] = None
        for slot in self._ring.live_slots(now):
            count += self._counts[slot]
            total += self._sums[slot]
            slot_min, slot_max = self._mins[slot], self._maxs[slot]
            if slot_min is not None and (low is None or slot_min < low):
                low = slot_min
            if slot_max is not None and (high is None or slot_max > high):
                high = slot_max
            bucket = self._buckets[slot]
            for index, n in enumerate(bucket):
                merged[index] += n
        return count, total, low, high, merged

    def count(self, now: Optional[float] = None) -> int:
        return self._merged(now)[0]

    def quantile(self, q: float, now: Optional[float] = None) -> float:
        count, _, low, high, merged = self._merged(now)
        return quantile_from_buckets(self.bounds, merged, count, low, high, q)

    def snapshot(self, now: Optional[float] = None) -> Dict[str, float]:
        count, total, low, high, merged = self._merged(now)

        def q(p: float) -> float:
            return quantile_from_buckets(self.bounds, merged, count, low, high, p)

        return {
            "count": count,
            "sum": total,
            "min": low if low is not None else 0.0,
            "max": high if high is not None else 0.0,
            "mean": total / count if count else 0.0,
            "p50": q(0.50),
            "p95": q(0.95),
            "p99": q(0.99),
        }

    def __repr__(self) -> str:
        return (
            f"WindowedHistogram({self.name!r}, horizon={self.horizon:g}s, "
            f"count={self.count()})"
        )


def horizon_label(horizon: float) -> str:
    """The stable label a horizon gets in snapshots and expositions."""
    if horizon == int(horizon):
        return f"{int(horizon)}s"
    return f"{horizon:g}s"


class WindowSet:
    """One instrument per horizon behind a single ``observe``.

    ``kind`` is ``"counter"`` or ``"histogram"``; snapshots key the
    per-horizon readings by :func:`horizon_label` (``"60s"``,
    ``"300s"``), which is also the ``horizon`` label value on the
    ``/metrics`` exposition.
    """

    __slots__ = ("name", "kind", "windows")

    def __init__(
        self,
        name: str,
        kind: str = "counter",
        horizons: Sequence[float] = DEFAULT_HORIZONS,
        bucket_seconds: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if kind not in ("counter", "histogram"):
            raise ValueError(f"kind must be counter|histogram, got {kind!r}")
        if not horizons:
            raise ValueError("WindowSet needs at least one horizon")
        self.name = name
        self.kind = kind
        factory = WindowedCounter if kind == "counter" else WindowedHistogram
        self.windows: Dict[str, object] = {
            horizon_label(h): factory(
                name, horizon=h, bucket_seconds=bucket_seconds, clock=clock
            )
            for h in horizons
        }

    def observe(self, value: float = 1.0, now: Optional[float] = None) -> None:
        for window in self.windows.values():
            if self.kind == "counter":
                window.inc(value, now=now)  # type: ignore[union-attr]
            else:
                window.observe(value, now=now)  # type: ignore[union-attr]

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Dict[str, float]]:
        return {
            label: window.snapshot(now)  # type: ignore[union-attr]
            for label, window in self.windows.items()
        }

    def __repr__(self) -> str:
        return (
            f"WindowSet({self.name!r}, {self.kind}, "
            f"horizons={sorted(self.windows)})"
        )


__all__ = [
    "DEFAULT_HORIZONS",
    "WindowSet",
    "WindowedCounter",
    "WindowedHistogram",
    "horizon_label",
]
