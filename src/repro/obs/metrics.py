"""A unified metrics registry: counters, gauges, and histograms.

Every quantity the paper bounds is a metric here.  The registry is the
single store behind :class:`~repro.core.interp.EvalStats` (Prop 3.1 /
Theorem 3.5 counters) and :class:`~repro.core.pfp_eval.SpaceMeter`
(Theorem 3.8 space gauges), so the classic stats objects keep their
attribute API while every reading is also available by name for export
and reporting.

Three instrument kinds:

``Counter``
    A monotone total (``table_ops``, ``fixpoint_iterations``,
    ``sat_clauses``).  Supports ``inc`` and — for the stats facades that
    expose settable attributes — a raw ``set``.
``Gauge``
    A last-value-or-peak reading (``max_intermediate_rows``,
    ``pfp.peak_live_tuples``).  ``set_max`` keeps the running maximum.
``Histogram``
    A distribution (per-iteration delta sizes, span durations), bucketed
    by powers of two.

All instruments are plain Python objects with no locks: the library is
single-threaded per evaluation, and a registry is cheap enough to create
per query.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError


class MetricsError(ReproError):
    """A metric name was reused with a different instrument kind."""


class Counter:
    """A monotone running total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def set(self, value: Union[int, float]) -> None:
        """Raw overwrite — for facades that expose settable attributes."""
        self.value = value

    def snapshot(self) -> Union[int, float]:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time reading, with an optional running-maximum helper."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def set_max(self, value: Union[int, float]) -> None:
        if value > self.value:
            self.value = value

    def snapshot(self) -> Union[int, float]:
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


#: Default histogram bucket upper bounds: powers of two, then overflow.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(2.0**i for i in range(0, 21))


class Histogram:
    """A bucketed distribution with count/sum/min/max."""

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(
            bounds if bounds is not None else DEFAULT_BUCKETS
        )
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.buckets[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from the buckets.

        Standard bucketed estimation: walk the cumulative counts to the
        bucket containing rank ``q·count``, then interpolate linearly
        inside it.  The observed ``min``/``max`` clamp the extreme
        buckets, so the estimate never leaves the observed range; the
        error is bounded by the bucket width (a factor of two with the
        default power-of-two bounds).
        """
        if self.count == 0:
            return 0.0
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile {q} outside (0, 1]")
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                low = self.bounds[index - 1] if index > 0 else 0.0
                high = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.max if self.max is not None else low
                )
                fraction = (rank - cumulative) / bucket_count
                estimate = low + fraction * (high - low)
                lo = self.min if self.min is not None else estimate
                hi = self.max if self.max is not None else estimate
                return min(max(estimate, lo), hi)
            cumulative += bucket_count
        return self.max if self.max is not None else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, count={self.count}, "
            f"mean={self.mean:.3g})"
        )


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Instruments are created on first access and shared thereafter;
    re-requesting a name with a different kind is an error (it would
    silently split one quantity across two stores).
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, kind: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise MetricsError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"requested as {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)  # type: ignore[return-value]

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """All readings as a plain name → value dict (JSON-friendly)."""
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
        }

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"
