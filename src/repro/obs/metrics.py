"""A unified metrics registry: counters, gauges, and histograms.

Every quantity the paper bounds is a metric here.  The registry is the
single store behind :class:`~repro.core.interp.EvalStats` (Prop 3.1 /
Theorem 3.5 counters) and :class:`~repro.core.pfp_eval.SpaceMeter`
(Theorem 3.8 space gauges), so the classic stats objects keep their
attribute API while every reading is also available by name for export
and reporting.

Three instrument kinds:

``Counter``
    A monotone total (``table_ops``, ``fixpoint_iterations``,
    ``sat_clauses``).  Supports ``inc`` and — for the stats facades that
    expose settable attributes — a raw ``set``.
``Gauge``
    A last-value-or-peak reading (``max_intermediate_rows``,
    ``pfp.peak_live_tuples``).  ``set_max`` keeps the running maximum.
``Histogram``
    A distribution (per-iteration delta sizes, span durations), bucketed
    by powers of two, with a bounded reservoir sample backing the
    quantile estimates so memory never grows with lifetime.

All instruments are plain Python objects with no locks: the library is
single-threaded per evaluation, and a registry is cheap enough to create
per query.
"""

from __future__ import annotations

import random
import zlib
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError


class MetricsError(ReproError):
    """A metric name was reused with a different instrument kind."""


class Counter:
    """A monotone running total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def set(self, value: Union[int, float]) -> None:
        """Raw overwrite — for facades that expose settable attributes."""
        self.value = value

    def snapshot(self) -> Union[int, float]:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time reading, with an optional running-maximum helper."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def set_max(self, value: Union[int, float]) -> None:
        if value > self.value:
            self.value = value

    def snapshot(self) -> Union[int, float]:
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


#: Default histogram bucket upper bounds: powers of two, then overflow.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(2.0**i for i in range(0, 21))

#: Bucket bounds tuned for request latencies in seconds (1ms – 60s):
#: the grid the serve layer's ``*_seconds`` histograms expose on
#: ``/metrics``, so scrape-side quantiles stay sharp below one second.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

#: Default bounded-reservoir size: enough for tight quantiles, small
#: enough that a histogram's memory is a fixed few KiB forever.
DEFAULT_RESERVOIR_SIZE = 1024


def quantile_from_buckets(
    bounds: Sequence[float],
    buckets: Sequence[int],
    count: int,
    minimum: Optional[float],
    maximum: Optional[float],
    q: float,
) -> float:
    """Estimate the ``q``-quantile (``0 < q <= 1``) from bucket counts.

    Standard bucketed estimation: walk the cumulative counts to the
    bucket containing rank ``q·count``, then interpolate linearly inside
    it.  The observed ``minimum``/``maximum`` clamp the extreme buckets,
    so the estimate never leaves the observed range; the error is
    bounded by the bucket width (a factor of two with the default
    power-of-two bounds).  Shared by the cumulative :class:`Histogram`
    fallback and the sliding windows of :mod:`repro.obs.rolling`.
    """
    if count == 0:
        return 0.0
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile {q} outside (0, 1]")
    rank = q * count
    cumulative = 0
    for index, bucket_count in enumerate(buckets):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= rank:
            low = bounds[index - 1] if index > 0 else 0.0
            high = (
                bounds[index]
                if index < len(bounds)
                else maximum if maximum is not None else low
            )
            fraction = (rank - cumulative) / bucket_count
            estimate = low + fraction * (high - low)
            lo = minimum if minimum is not None else estimate
            hi = maximum if maximum is not None else estimate
            return min(max(estimate, lo), hi)
        cumulative += bucket_count
    return maximum if maximum is not None else 0.0


class Histogram:
    """A bucketed distribution with count/sum/min/max.

    Memory is bounded for any lifetime: the bucket counts are a fixed
    array, and raw observations are kept only in a bounded reservoir
    (Vitter's Algorithm R, ``reservoir_size`` slots).  While the
    reservoir still holds *every* observation its quantiles are exact
    order statistics; once observations outnumber slots it degrades to
    a uniform sample, and the bucket interpolation of
    :func:`quantile_from_buckets` remains as the ``reservoir_size=0``
    fallback.  The replacement RNG is seeded from the metric name, so
    two histograms fed the same stream agree in any process.
    """

    __slots__ = (
        "name",
        "bounds",
        "buckets",
        "count",
        "total",
        "min",
        "max",
        "reservoir_size",
        "_reservoir",
        "_rng",
    )

    def __init__(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
    ):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(
            bounds if bounds is not None else DEFAULT_BUCKETS
        )
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.reservoir_size = max(0, reservoir_size)
        self._reservoir: List[float] = []
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: Union[int, float]) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.buckets[bisect_left(self.bounds, value)] += 1
        if self.reservoir_size > 0:
            if len(self._reservoir) < self.reservoir_size:
                self._reservoir.append(float(value))
            else:
                # int(random() * count) is a materially cheaper uniform
                # draw than randrange() on this per-observation hot path
                slot = int(self._rng.random() * self.count)
                if slot < self.reservoir_size:
                    self._reservoir[slot] = float(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def reservoir_exact(self) -> bool:
        """``True`` while the reservoir still holds every observation."""
        return 0 < self.count == len(self._reservoir)

    @staticmethod
    def _order_statistic(ordered: Sequence[float], q: float) -> float:
        """Linear interpolation between adjacent order statistics."""
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] + fraction * (ordered[high] - ordered[low])

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``).

        Uses the reservoir's order statistics when it is populated
        (exact until ``count`` exceeds ``reservoir_size``, a uniform
        sample after), and falls back to bucket interpolation when the
        reservoir is disabled.
        """
        if self.count == 0:
            return 0.0
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile {q} outside (0, 1]")
        if self._reservoir:
            return self._order_statistic(sorted(self._reservoir), q)
        return quantile_from_buckets(
            self.bounds, self.buckets, self.count, self.min, self.max, q
        )

    def snapshot(self) -> Dict[str, float]:
        if self._reservoir:
            ordered = sorted(self._reservoir)
            p50 = self._order_statistic(ordered, 0.50)
            p95 = self._order_statistic(ordered, 0.95)
            p99 = self._order_statistic(ordered, 0.99)
        else:
            p50 = self.quantile(0.50) if self.count else 0.0
            p95 = self.quantile(0.95) if self.count else 0.0
            p99 = self.quantile(0.99) if self.count else 0.0
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": p50,
            "p95": p95,
            "p99": p99,
        }

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, count={self.count}, "
            f"mean={self.mean:.3g})"
        )


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Instruments are created on first access and shared thereafter;
    re-requesting a name with a different kind is an error (it would
    silently split one quantity across two stores).
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, kind: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise MetricsError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"requested as {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The named histogram; ``bounds`` only applies on first creation
        (an existing instrument keeps its grid — the shared-store rule)."""
        metric = self._metrics.get(name)
        if metric is None and bounds is not None:
            metric = Histogram(name, bounds=bounds)
            self._metrics[name] = metric
            return metric
        return self._get(name, Histogram)  # type: ignore[return-value]

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """All readings as a plain name → value dict (JSON-friendly)."""
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
        }

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"
