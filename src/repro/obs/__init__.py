"""Observability: span-based tracing and a unified metrics registry.

The paper's headline claims are claims about internal quantities —
intermediate relation sizes (Prop 3.1), fixpoint iteration counts
(Theorem 3.5), live PFP space (Theorem 3.8), grounded CNF sizes
(Lemma 3.6 / Corollary 3.7).  This package makes them observable:

* :mod:`repro.obs.tracer` — nested, timed, attributed spans with JSONL
  export; the shared no-op :data:`NULL_TRACER` keeps disabled runs free.
* :mod:`repro.obs.metrics` — counters/gauges/histograms; the store
  behind ``EvalStats`` and ``SpaceMeter``.
* :mod:`repro.obs.report` — plain-text span-tree / hot-span / metrics
  rendering (the ``repro trace`` CLI output).
* :mod:`repro.obs.runstore` — machine-readable run records and the
  content-addressed archive under ``benchmarks/out/records/``.
* :mod:`repro.obs.regress` — the two-tier regression gate comparing a
  fresh record against its committed ``BENCH_<id>.json`` baseline.
* :mod:`repro.obs.profile` — cross-run span profiles: self-time by span
  name, keyed by sweep parameter.

See ``docs/observability.md`` for the span and metric catalogue and how
each maps back to a bound in the paper, and ``docs/benchmarking.md``
for the run-record / baseline / profile workflow.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.profile import (
    SpanProfile,
    parse_trace_jsonl,
    profile_record,
    profile_sweep,
    render_profile,
)
from repro.obs.regress import (
    Band,
    RegressionPolicy,
    RegressionReport,
    Violation,
    compare_records,
)
from repro.obs.report import (
    render_hot_spans,
    render_metrics,
    render_report,
    render_span_tree,
)
from repro.obs.runstore import (
    PointRecord,
    RunRecord,
    RunStore,
    RunStoreError,
    build_record,
    env_fingerprint,
    format_fingerprint,
    record_from_sweep,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    TracerLike,
    resolve_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "TracerLike",
    "resolve_tracer",
    "render_hot_spans",
    "render_metrics",
    "render_report",
    "render_span_tree",
    "Band",
    "PointRecord",
    "RegressionPolicy",
    "RegressionReport",
    "RunRecord",
    "RunStore",
    "RunStoreError",
    "SpanProfile",
    "Violation",
    "build_record",
    "compare_records",
    "env_fingerprint",
    "format_fingerprint",
    "parse_trace_jsonl",
    "profile_record",
    "profile_sweep",
    "record_from_sweep",
    "render_profile",
]
