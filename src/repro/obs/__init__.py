"""Observability: span-based tracing and a unified metrics registry.

The paper's headline claims are claims about internal quantities —
intermediate relation sizes (Prop 3.1), fixpoint iteration counts
(Theorem 3.5), live PFP space (Theorem 3.8), grounded CNF sizes
(Lemma 3.6 / Corollary 3.7).  This package makes them observable:

* :mod:`repro.obs.tracer` — nested, timed, attributed spans with JSONL
  export; the shared no-op :data:`NULL_TRACER` keeps disabled runs free.
* :mod:`repro.obs.metrics` — counters/gauges/histograms; the store
  behind ``EvalStats`` and ``SpaceMeter``.
* :mod:`repro.obs.report` — plain-text span-tree / hot-span / metrics
  rendering (the ``repro trace`` CLI output).

See ``docs/observability.md`` for the span and metric catalogue and how
each maps back to a bound in the paper.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.obs.report import (
    render_hot_spans,
    render_metrics,
    render_report,
    render_span_tree,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    TracerLike,
    resolve_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "TracerLike",
    "resolve_tracer",
    "render_hot_spans",
    "render_metrics",
    "render_report",
    "render_span_tree",
]
