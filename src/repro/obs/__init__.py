"""Observability: span-based tracing and a unified metrics registry.

The paper's headline claims are claims about internal quantities —
intermediate relation sizes (Prop 3.1), fixpoint iteration counts
(Theorem 3.5), live PFP space (Theorem 3.8), grounded CNF sizes
(Lemma 3.6 / Corollary 3.7).  This package makes them observable:

* :mod:`repro.obs.tracer` — nested, timed, attributed spans with JSONL
  export; the shared no-op :data:`NULL_TRACER` keeps disabled runs free.
* :mod:`repro.obs.metrics` — counters/gauges/histograms; the store
  behind ``EvalStats`` and ``SpaceMeter``.
* :mod:`repro.obs.report` — plain-text span-tree / hot-span / metrics
  rendering (the ``repro trace`` CLI output).
* :mod:`repro.obs.runstore` — machine-readable run records and the
  content-addressed archive under ``benchmarks/out/records/``.
* :mod:`repro.obs.regress` — the two-tier regression gate comparing a
  fresh record against its committed ``BENCH_<id>.json`` baseline.
* :mod:`repro.obs.profile` — cross-run span profiles: self-time by span
  name, keyed by sweep parameter.
* :mod:`repro.obs.provenance` — answer witnesses ("why is t an
  answer"), Kleene stage logs, and derivation chains for fixpoints.
* :mod:`repro.obs.explain` — annotated evaluation trees (spans merged
  with the formula AST and the ``n^k`` cost model), trace diffing, and
  the live fixpoint :class:`~repro.obs.explain.ProgressReporter`.
* :mod:`repro.obs.rolling` — fixed-bucket sliding windows (1s buckets,
  60s/300s horizons): the *current* latency/error view of a live server.
* :mod:`repro.obs.slo` — availability/latency objectives with
  error-budget burn-rate computation over the rolling windows.
* :mod:`repro.obs.expo` — Prometheus-style text exposition of the
  registry plus rolling/SLO readings (the ``GET /metrics`` document).
* :mod:`repro.obs.flight` — the always-on flight recorder: a bounded
  event ring dumped as a JSON post-mortem on failures.
* :mod:`repro.obs.correlate` — cross-process trace correlation:
  request ids, worker-span reassembly, and the recent-trace store
  behind ``GET /trace``.

See ``docs/observability.md`` for the span and metric catalogue and how
each maps back to a bound in the paper, and ``docs/benchmarking.md``
for the run-record / baseline / profile workflow.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    quantile_from_buckets,
)
from repro.obs.correlate import (
    TraceStore,
    assemble_trace,
    attempt_record,
    new_request_id,
    trace_jsonl,
)
from repro.obs.expo import (
    ExpositionError,
    gauge_family,
    metric_name,
    parse_exposition,
    registry_families,
    render_exposition,
    render_families,
)
from repro.obs.flight import FlightRecorder
from repro.obs.rolling import (
    WindowSet,
    WindowedCounter,
    WindowedHistogram,
    horizon_label,
)
from repro.obs.slo import SLOBoard, SLOPolicy, SLOTracker
from repro.obs.explain import (
    ExplainReport,
    NodeReport,
    PathDiff,
    ProgressReporter,
    annotate_evaluation,
    diff_traces,
    render_explain_report,
    render_trace_diff,
    spans_from_dicts,
    trace_paths,
)
from repro.obs.profile import (
    ProfileWarning,
    SpanProfile,
    parse_trace_jsonl,
    profile_record,
    profile_sweep,
    render_profile,
)
from repro.obs.provenance import (
    NULL_STAGE_LOG,
    NullStageLog,
    ProvenanceError,
    SolveRecord,
    StageLog,
    StageLogLike,
    Witness,
    check_witness,
    explain_answer,
    explain_membership,
)
from repro.obs.regress import (
    Band,
    RegressionPolicy,
    RegressionReport,
    Violation,
    compare_records,
)
from repro.obs.report import (
    render_hot_spans,
    render_metrics,
    render_report,
    render_span_tree,
)
from repro.obs.runstore import (
    PointRecord,
    RunRecord,
    RunStore,
    RunStoreError,
    build_record,
    env_fingerprint,
    format_fingerprint,
    record_from_sweep,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    TracerLike,
    resolve_tracer,
)

__all__ = [
    "Counter",
    "ExplainReport",
    "ExpositionError",
    "FlightRecorder",
    "SLOBoard",
    "SLOPolicy",
    "SLOTracker",
    "TraceStore",
    "WindowSet",
    "WindowedCounter",
    "WindowedHistogram",
    "assemble_trace",
    "attempt_record",
    "gauge_family",
    "horizon_label",
    "metric_name",
    "new_request_id",
    "parse_exposition",
    "quantile_from_buckets",
    "registry_families",
    "render_exposition",
    "render_families",
    "trace_jsonl",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "NULL_STAGE_LOG",
    "NULL_TRACER",
    "NodeReport",
    "NullStageLog",
    "PathDiff",
    "ProfileWarning",
    "ProgressReporter",
    "ProvenanceError",
    "SolveRecord",
    "StageLog",
    "StageLogLike",
    "Witness",
    "annotate_evaluation",
    "check_witness",
    "diff_traces",
    "explain_answer",
    "explain_membership",
    "render_explain_report",
    "render_trace_diff",
    "spans_from_dicts",
    "trace_paths",
    "NullTracer",
    "Span",
    "Tracer",
    "TracerLike",
    "resolve_tracer",
    "render_hot_spans",
    "render_metrics",
    "render_report",
    "render_span_tree",
    "Band",
    "PointRecord",
    "RegressionPolicy",
    "RegressionReport",
    "RunRecord",
    "RunStore",
    "RunStoreError",
    "SpanProfile",
    "Violation",
    "build_record",
    "compare_records",
    "env_fingerprint",
    "format_fingerprint",
    "parse_trace_jsonl",
    "profile_record",
    "profile_sweep",
    "record_from_sweep",
    "render_profile",
]
