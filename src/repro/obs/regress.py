"""The regression gate: compare a fresh run record against its baseline.

Two-tier policy, matching what is actually reproducible on shared
hardware:

* **Tier 1 — deterministic counters** (iterations, rows high-water,
  clauses, decisions, answer sizes).  Seeded workloads make these exact,
  so the default band is *exact match*; an experiment that legitimately
  varies a counter declares a per-counter tolerance instead.  Any drift
  here means the computation itself changed — a solver taking different
  steps, a cache no longer engaging — and is flagged no matter how fast
  the run was.
* **Tier 2 — noisy measurements**: wall-clock seconds and the fitted
  polynomial degree.  These get noise-tolerant bands (a per-point ratio
  for seconds, an absolute band for the degree) and can be disabled
  entirely (``RegressionPolicy.counters_only()``) for CI boxes whose
  timings mean nothing.

The output is a structured :class:`RegressionReport` — machine-readable
violations naming the drifted counter, the parameter it drifted at, and
both values — rendered as a plain-text diff for humans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.runstore import RunRecord

#: Seconds below this are treated as this for ratio purposes: at
#: sub-millisecond scales the scheduler, not the code, sets the number.
SECONDS_FLOOR = 1e-3


@dataclass(frozen=True)
class Band:
    """An allowed deviation: ``|fresh - base| <= abs_tol + rel_tol*|base|``.

    The default (both zero) is exact match — the tier-1 contract.
    """

    abs_tol: float = 0.0
    rel_tol: float = 0.0

    def allows(self, baseline: float, fresh: float) -> bool:
        return abs(fresh - baseline) <= (
            self.abs_tol + self.rel_tol * abs(baseline)
        )

    def describe(self) -> str:
        if self.abs_tol == 0.0 and self.rel_tol == 0.0:
            return "exact"
        parts = []
        if self.abs_tol:
            parts.append(f"±{self.abs_tol:g}")
        if self.rel_tol:
            parts.append(f"±{self.rel_tol:.0%}")
        return " and ".join(parts)


#: The tier-1 default: deterministic counters must match exactly.
EXACT = Band()


@dataclass(frozen=True)
class RegressionPolicy:
    """What the gate enforces and how tightly.

    ``counter_bands`` declares per-counter tolerances (by exact counter
    name); every undeclared counter uses ``default_counter_band``
    (exact, unless an experiment loosens it).  ``seconds_ratio`` is the
    tier-2 wall-clock band — a fresh point may take at most that
    multiple of its baseline point (``None`` disables the check).
    ``degree_band`` is the allowed absolute drift of any fitted model
    coefficient (poly degree / exp rate; ``None`` disables).
    """

    counter_bands: Mapping[str, Band] = field(default_factory=dict)
    default_counter_band: Band = EXACT
    seconds_ratio: Optional[float] = 2.0
    degree_band: Optional[float] = 0.5

    def band_for(self, counter: str) -> Band:
        return self.counter_bands.get(counter, self.default_counter_band)

    @classmethod
    def counters_only(
        cls, counter_bands: Optional[Mapping[str, Band]] = None
    ) -> "RegressionPolicy":
        """The CI policy: tier 1 only — timings carry no signal there."""
        return cls(
            counter_bands=counter_bands or {},
            seconds_ratio=None,
            degree_band=None,
        )


@dataclass(frozen=True)
class Violation:
    """One gate failure, precise enough to act on without rerunning."""

    kind: str  # 'experiment' | 'parameters' | 'outcome' | 'counter'
    #          | 'seconds' | 'fit'
    name: str  # counter/series name, or '' for structural kinds
    parameter: Optional[float]
    baseline: object
    fresh: object
    allowed: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "name": self.name,
            "parameter": self.parameter,
            "baseline": self.baseline,
            "fresh": self.fresh,
            "allowed": self.allowed,
            "message": self.message,
        }


@dataclass(frozen=True)
class RegressionReport:
    """The gate's verdict: violations, notes, and what was checked."""

    experiment_id: str
    violations: Tuple[Violation, ...]
    notes: Tuple[str, ...]
    counters_checked: int
    points_checked: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
            "notes": list(self.notes),
            "counters_checked": self.counters_checked,
            "points_checked": self.points_checked,
        }

    def format(self) -> str:
        """The human diff: verdict line, then one line per violation."""
        verdict = "PASS" if self.ok else "REGRESSION"
        lines = [
            f"[{self.experiment_id}] {verdict}: "
            f"{self.points_checked} point(s), "
            f"{self.counters_checked} counter comparison(s), "
            f"{len(self.violations)} violation(s)"
        ]
        for v in self.violations:
            where = f" @ param={v.parameter:g}" if v.parameter is not None else ""
            lines.append(
                f"  {v.kind}:{v.name or '-'}{where}  "
                f"baseline={v.baseline!r} fresh={v.fresh!r} "
                f"(allowed: {v.allowed})"
            )
            lines.append(f"    {v.message}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _compare_counters(
    parameter: float,
    base_counters: Mapping[str, float],
    fresh_counters: Mapping[str, float],
    policy: RegressionPolicy,
    violations: List[Violation],
    notes: List[str],
) -> int:
    checked = 0
    for name in sorted(base_counters):
        base_value = base_counters[name]
        if name not in fresh_counters:
            violations.append(
                Violation(
                    kind="counter",
                    name=name,
                    parameter=parameter,
                    baseline=base_value,
                    fresh=None,
                    allowed="present",
                    message=(
                        f"counter {name!r} present in the baseline is "
                        f"missing from the fresh run"
                    ),
                )
            )
            continue
        checked += 1
        fresh_value = fresh_counters[name]
        band = policy.band_for(name)
        if not band.allows(base_value, fresh_value):
            violations.append(
                Violation(
                    kind="counter",
                    name=name,
                    parameter=parameter,
                    baseline=base_value,
                    fresh=fresh_value,
                    allowed=band.describe(),
                    message=(
                        f"deterministic counter {name!r} drifted at "
                        f"param={parameter:g}: {base_value:g} -> "
                        f"{fresh_value:g}"
                    ),
                )
            )
    extra = sorted(set(fresh_counters) - set(base_counters))
    if extra:
        notes.append(
            f"param={parameter:g}: new counter(s) not in baseline: "
            + ", ".join(extra)
        )
    return checked


def compare_records(
    baseline: RunRecord,
    fresh: RunRecord,
    policy: Optional[RegressionPolicy] = None,
) -> RegressionReport:
    """Gate ``fresh`` against ``baseline`` under ``policy``.

    Structural drift (different experiment, missing/extra sweep points,
    flipped outcomes) is always a violation; counters follow tier 1,
    seconds and fitted shapes tier 2.  Environment-fingerprint drift is
    reported as a note so a reader knows when tier-2 numbers cross
    machines.
    """
    policy = policy if policy is not None else RegressionPolicy()
    violations: List[Violation] = []
    notes: List[str] = []
    counters_checked = 0
    points_checked = 0

    if baseline.experiment_id != fresh.experiment_id:
        violations.append(
            Violation(
                kind="experiment",
                name="",
                parameter=None,
                baseline=baseline.experiment_id,
                fresh=fresh.experiment_id,
                allowed="equal",
                message="records belong to different experiments",
            )
        )
        return RegressionReport(
            experiment_id=baseline.experiment_id,
            violations=tuple(violations),
            notes=tuple(notes),
            counters_checked=0,
            points_checked=0,
        )

    env_drift = sorted(
        key
        for key in set(baseline.env) | set(fresh.env)
        if baseline.env.get(key) != fresh.env.get(key)
    )
    if env_drift:
        notes.append(
            "environment drift (tier-2 bands may not be meaningful): "
            + ", ".join(
                f"{key}={baseline.env.get(key)!r}->{fresh.env.get(key)!r}"
                for key in env_drift
            )
        )

    base_params = baseline.parameters()
    fresh_params = fresh.parameters()
    if base_params != fresh_params:
        violations.append(
            Violation(
                kind="parameters",
                name="",
                parameter=None,
                baseline=base_params,
                fresh=fresh_params,
                allowed="equal",
                message="swept parameters differ from the baseline",
            )
        )

    for base_point in baseline.points:
        fresh_point = fresh.point(base_point.parameter)
        if fresh_point is None:
            continue  # already covered by the parameters violation
        points_checked += 1
        if base_point.outcome != fresh_point.outcome:
            violations.append(
                Violation(
                    kind="outcome",
                    name="",
                    parameter=base_point.parameter,
                    baseline=base_point.outcome,
                    fresh=fresh_point.outcome,
                    allowed="equal",
                    message=(
                        f"point outcome flipped at "
                        f"param={base_point.parameter:g}"
                        + (
                            f" ({fresh_point.error})"
                            if fresh_point.error
                            else ""
                        )
                    ),
                )
            )
            continue
        counters_checked += _compare_counters(
            base_point.parameter,
            base_point.counter_dict(),
            fresh_point.counter_dict(),
            policy,
            violations,
            notes,
        )
        if (
            policy.seconds_ratio is not None
            and base_point.outcome == "ok"
        ):
            allowed_seconds = policy.seconds_ratio * max(
                base_point.seconds, SECONDS_FLOOR
            )
            if fresh_point.seconds > allowed_seconds:
                violations.append(
                    Violation(
                        kind="seconds",
                        name="seconds",
                        parameter=base_point.parameter,
                        baseline=base_point.seconds,
                        fresh=fresh_point.seconds,
                        allowed=f"<= {policy.seconds_ratio:g}x baseline",
                        message=(
                            f"wall-clock at param="
                            f"{base_point.parameter:g} exceeded the "
                            f"noise band: {base_point.seconds:.6f}s -> "
                            f"{fresh_point.seconds:.6f}s"
                        ),
                    )
                )

    if policy.degree_band is not None:
        for series, base_fit in sorted(baseline.fits.items()):
            fresh_fit = fresh.fits.get(series)
            if fresh_fit is None or base_fit.get("model") == "none":
                continue
            if base_fit.get("model") != fresh_fit.get("model"):
                violations.append(
                    Violation(
                        kind="fit",
                        name=series,
                        parameter=None,
                        baseline=base_fit.get("model"),
                        fresh=fresh_fit.get("model"),
                        allowed="same model",
                        message=(
                            f"growth model for {series!r} flipped: "
                            f"{base_fit.get('model')} -> "
                            f"{fresh_fit.get('model')} — a shape "
                            f"assertion is about to follow"
                        ),
                    )
                )
                continue
            base_coef = float(base_fit.get("coefficient", 0.0))  # type: ignore[arg-type]
            fresh_coef = float(fresh_fit.get("coefficient", 0.0))  # type: ignore[arg-type]
            if abs(fresh_coef - base_coef) > policy.degree_band:
                violations.append(
                    Violation(
                        kind="fit",
                        name=series,
                        parameter=None,
                        baseline=base_coef,
                        fresh=fresh_coef,
                        allowed=f"±{policy.degree_band:g}",
                        message=(
                            f"fitted {base_fit.get('model')} coefficient "
                            f"for {series!r} drifted: {base_coef:.3f} -> "
                            f"{fresh_coef:.3f}"
                        ),
                    )
                )

    return RegressionReport(
        experiment_id=baseline.experiment_id,
        violations=tuple(violations),
        notes=tuple(notes),
        counters_checked=counters_checked,
        points_checked=points_checked,
    )
