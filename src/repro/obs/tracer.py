"""Span-based tracing for the query engines.

A :class:`Span` is one timed phase of an evaluation — a connective of the
bottom-up FO pass, one fixpoint iteration, one SAT stage — with attached
attributes (delta sizes, CNF sizes, ...).  Spans nest: the tracer keeps a
stack of open spans and links each new span to the innermost open one, so
an exported trace reconstructs the call tree exactly.

Two tracers exist:

* :class:`Tracer` — records spans with wall-clock timings and exports
  them as JSONL (one span per line, with ``name``, ``start``,
  ``duration``, ``attrs`` and ``span_id``/``parent_id`` linkage).
* :data:`NULL_TRACER` — the shared no-op singleton used by default
  everywhere.  Its ``span()`` returns one preallocated context manager,
  so the instrumented hot paths cost a guarded attribute check and
  nothing else when tracing is off.

Hot-path convention: every call site that computes attributes guards on
``tracer.enabled`` so a disabled run allocates nothing::

    if tracer.enabled:
        with tracer.span("fp.iteration") as span:
            after = step(current)
            span.set(size=len(after))
    else:
        after = step(current)
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, Iterator, List, Optional, Union


class Span:
    """One timed, attributed phase; nodes of the trace tree."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "start",
        "duration",
        "attrs",
        "children",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.duration: float = 0.0
        self.attrs: Dict[str, object] = {}
        self.children: List["Span"] = []

    def set(self, **attrs: object) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def self_duration(self) -> float:
        """Time spent in this span excluding its children."""
        return self.duration - sum(c.duration for c in self.children)

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"duration={self.duration:.6f}, attrs={self.attrs})"
        )


class _SpanContext:
    """Context manager wrapping one span's open/close."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        span = self._tracer._open(self._name)
        if self._attrs:
            span.attrs.update(self._attrs)
        self._span = span
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self._span)
        return False


class _NullSpan:
    """The no-op span/context-manager: one shared, attribute-immune object."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op with no allocation."""

    __slots__ = ()

    enabled = False
    spans: tuple = ()

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: object) -> None:
        return None

    def export_jsonl(self) -> str:
        return ""

    def roots(self) -> tuple:
        return ()

    def __repr__(self) -> str:
        return "NullTracer()"


#: The shared no-op tracer every engine defaults to.
NULL_TRACER = NullTracer()


class Tracer:
    """Records a tree of timed spans.

    ``clock`` is injectable for deterministic tests; it must be a
    monotonic seconds-valued callable.  Span ``start`` values are
    relative to the tracer's creation, so exported traces are
    self-contained.
    """

    __slots__ = ("_clock", "_epoch", "_stack", "_next_id", "spans")

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self._stack: List[Span] = []
        self._next_id = 1
        self.spans: List[Span] = []

    # -- recording -----------------------------------------------------

    def span(self, name: str, **attrs: object) -> _SpanContext:
        """Open a nested span for the duration of a ``with`` block."""
        return _SpanContext(self, name, attrs)

    def event(self, name: str, **attrs: object) -> Span:
        """A zero-duration span — a point-in-time snapshot (space, etc.)."""
        span = self._open(name)
        if attrs:
            span.attrs.update(attrs)
        self._close(span)
        return span

    def _open(self, name: str) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name,
            self._next_id,
            parent.span_id if parent is not None else None,
            self._clock() - self._epoch,
        )
        self._next_id += 1
        if parent is not None:
            parent.children.append(span)
        self.spans.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Optional[Span]) -> None:
        if span is None:
            return
        span.duration = (self._clock() - self._epoch) - span.start
        # pop back to the span being closed; tolerates a child left open
        # by an exception unwinding through several frames
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    # -- reading -------------------------------------------------------

    def roots(self) -> List[Span]:
        """Top-level spans, in start order."""
        return [s for s in self.spans if s.parent_id is None]

    def total_duration(self) -> float:
        return sum(s.duration for s in self.roots())

    def walk(self) -> Iterator[Span]:
        """All spans, depth-first in tree order."""

        def visit(span: Span) -> Iterator[Span]:
            yield span
            for child in span.children:
                yield from visit(child)

        for root in self.roots():
            yield from visit(root)

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-name totals: count, total/self wall-clock seconds."""
        out: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            agg = out.setdefault(
                span.name, {"count": 0, "total": 0.0, "self": 0.0}
            )
            agg["count"] += 1
            agg["total"] += span.duration
            agg["self"] += span.self_duration()
        return out

    def hot_spans(self, k: int = 10) -> List[Dict[str, object]]:
        """The ``k`` span names with the largest *self* time, descending."""
        rows = [
            {"name": name, **agg} for name, agg in self.aggregate().items()
        ]
        rows.sort(key=lambda r: r["self"], reverse=True)
        return rows[:k]

    # -- export --------------------------------------------------------

    def export_jsonl(self) -> str:
        """One JSON object per span, in span-id order.

        Each line carries ``span_id``, ``parent_id`` (``null`` for
        roots), ``name``, ``start`` (seconds since the tracer was
        created), ``duration`` (seconds), and ``attrs``.
        """
        return "\n".join(
            json.dumps(span.to_dict(), default=str) for span in self.spans
        )

    def __repr__(self) -> str:
        return f"Tracer({len(self.spans)} spans)"


TracerLike = Union[Tracer, NullTracer]


def resolve_tracer(trace: Union[bool, TracerLike, None]) -> TracerLike:
    """Normalize an ``EvalOptions.trace`` value to a tracer instance.

    ``None``/``False`` → the shared no-op tracer; ``True`` → a fresh
    recording tracer; a tracer instance is used as-is.
    """
    if trace is None or trace is False:
        return NULL_TRACER
    if trace is True:
        return Tracer()
    return trace
