"""Answer provenance: stage logs, witness trees, and witness checking.

Two complementary facilities live here:

* :class:`StageLog` — a zero-cost-when-disabled observer the fixpoint
  engines report their Kleene stages into (one :class:`SolveRecord` per
  solve, holding the stage iterates and semi-naive deltas by reference).
  From a record you can read the stage at which each tuple *first
  entered* an LFP/IFP iteration, or a tuple's full stage *trajectory*
  through a PFP iteration.  The observer follows the
  ``tracer.enabled`` hot-path convention: engines guard every call on
  ``observer.enabled``, and the shared :data:`NULL_STAGE_LOG` makes a
  disabled run cost one attribute check per solve.

* Witness trees — :func:`explain_membership` answers "why is tuple ``t``
  an answer" with a :class:`Witness`: a tree through the connectives
  recording the chosen disjunct of each ``∨``, the chosen value of each
  ``∃``, the database fact at each atom, and — for fixpoint nodes — the
  first-entry stage plus a *derivation chain* (the body witness at the
  previous stage, whose recursion-variable atoms recurse to strictly
  earlier stages, bottoming out at the database).  Witnesses are built
  by an independent reference semantics (direct recursive satisfaction
  plus naive Kleene stage computation — no engine code), so
  :func:`check_witness` can replay one against the database and detect
  any disagreement with the engines.

The module keeps its imports to the logic/database layers so the core
engines can import :data:`NULL_STAGE_LOG` without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.database.database import Database
from repro.errors import EvaluationError, ReproError
from repro.logic.printer import format_formula
from repro.logic.substitution import substitute
from repro.logic.syntax import (
    And,
    Const,
    Equals,
    Exists,
    Forall,
    Formula,
    GFP,
    IFP,
    LFP,
    Not,
    Or,
    PFP,
    RelAtom,
    SOExists,
    Truth,
    Var,
    _FixpointBase,
)
from repro.logic.variables import free_variables


class ProvenanceError(ReproError):
    """A witness could not be built or failed structural validation."""


# ---------------------------------------------------------------------------
# Stage observation (engine side)
# ---------------------------------------------------------------------------


class SolveRecord:
    """The stage iterates of one fixpoint solve, held by reference.

    ``stages[i]`` is the iterate after round ``i`` (round 0 is the first
    application of the operator); ``deltas[i]`` is the set of tuples new
    in that round when the engine knows it (semi-naive ascent), else
    ``None``.  Engines append whatever relation type they iterate —
    sparse or packed — so reading tuples out may materialize a packed
    mask; that cost is only paid by observer-enabled runs.
    """

    __slots__ = ("rel", "kind", "stages", "deltas", "limit")

    def __init__(self, rel: str, kind: str):
        self.rel = rel
        self.kind = kind
        self.stages: List[object] = []
        self.deltas: List[Optional[object]] = []
        self.limit: Optional[object] = None

    def stage_sizes(self) -> List[int]:
        return [len(stage) for stage in self.stages]

    def delta_sizes(self) -> List[Optional[int]]:
        return [None if d is None else len(d) for d in self.deltas]

    def _stage_tuples(self, stage: object, key: Optional[str]):
        if key is not None:
            stage = stage[key]
        return stage.tuples if hasattr(stage, "tuples") else stage

    def first_entry(self, key: Optional[str] = None) -> Dict[tuple, int]:
        """Tuple → index of the first stage containing it.

        Meaningful for ascending iterations (LFP/IFP, datalog rounds);
        ``key`` selects one predicate when the stages are per-predicate
        dicts (the datalog engine).
        """
        out: Dict[tuple, int] = {}
        for index, stage in enumerate(self.stages):
            for tup in self._stage_tuples(stage, key):
                if tup not in out:
                    out[tup] = index
        return out

    def trajectory(
        self, tup: tuple, key: Optional[str] = None
    ) -> List[int]:
        """Stage indices at which ``tup`` is present (PFP's quantity)."""
        return [
            index
            for index, stage in enumerate(self.stages)
            if tup in self._stage_tuples(stage, key)
        ]

    def __repr__(self) -> str:
        return (
            f"SolveRecord({self.rel!r}, kind={self.kind!r}, "
            f"stages={len(self.stages)})"
        )


class NullStageLog:
    """The disabled observer: every operation is a no-op."""

    __slots__ = ()

    enabled = False
    solves: tuple = ()

    def begin(self, rel: str, kind: str) -> None:
        return None

    def stage(self, index: int, relation: object, delta: object = None) -> None:
        return None

    def end(self, limit: object) -> None:
        return None

    def __repr__(self) -> str:
        return "NullStageLog()"


#: The shared no-op observer every engine defaults to.
NULL_STAGE_LOG = NullStageLog()


class StageLog:
    """Records the Kleene stages of every fixpoint solve in a run.

    Solves nest (an inner fixpoint re-solves per outer round), so the
    log keeps a stack; completed records land in ``solves`` in
    completion order.  Pass one via ``EvalOptions.stage_log`` (or the
    ``observer`` keyword of the solver layer) and read it back after
    the run.
    """

    __slots__ = ("solves", "_stack")

    enabled = True

    def __init__(self) -> None:
        self.solves: List[SolveRecord] = []
        self._stack: List[SolveRecord] = []

    def begin(self, rel: str, kind: str) -> None:
        self._stack.append(SolveRecord(rel, kind))

    def stage(self, index: int, relation: object, delta: object = None) -> None:
        if not self._stack:
            return
        record = self._stack[-1]
        record.stages.append(relation)
        record.deltas.append(delta)

    def end(self, limit: object) -> None:
        if not self._stack:
            return
        record = self._stack.pop()
        record.limit = limit
        self.solves.append(record)

    def records_for(self, rel: str) -> List[SolveRecord]:
        return [r for r in self.solves if r.rel == rel]

    def __repr__(self) -> str:
        return f"StageLog({len(self.solves)} solves)"


StageLogLike = Union[StageLog, NullStageLog]


# ---------------------------------------------------------------------------
# Reference satisfaction semantics (witness side)
# ---------------------------------------------------------------------------

Assignment = Dict[str, object]


def _term_value(term, assignment: Assignment):
    if isinstance(term, Var):
        try:
            return assignment[term.name]
        except KeyError:
            raise ProvenanceError(
                f"assignment does not bind variable {term.name!r}"
            ) from None
    if isinstance(term, Const):
        return term.value
    raise ProvenanceError(f"unknown term {term!r}")


class _StageCache:
    """Memoized naive Kleene stages per closed fixpoint formula.

    Keys are the *closed* node (all free individual variables already
    substituted to constants) — a frozen dataclass, hence hashable and
    structural.  Nested fixpoints recurse through :func:`_holds`, so the
    cache is threaded everywhere.
    """

    __slots__ = ("_stages",)

    def __init__(self) -> None:
        self._stages: Dict[tuple, Tuple[List[frozenset], bool]] = {}

    def stages(
        self, node: _FixpointBase, db: Database, rel_env: Dict[str, frozenset]
    ) -> Tuple[List[frozenset], bool]:
        """``(stages, diverged)`` for a closed fixpoint node.

        ``stages[0]`` is the start (∅, or the full relation for GFP);
        the last stage is the limit.  ``diverged`` is True only for a
        PFP whose sequence cycles without converging — its limit is
        then the empty relation by the paper's convention.
        """
        key = (node, tuple(sorted(rel_env.items())))
        cached = self._stages.get(key)
        if cached is not None:
            return cached
        result = _kleene_stages(node, db, rel_env, self)
        self._stages[key] = result
        return result


def _close_fixpoint(
    node: _FixpointBase, assignment: Assignment
) -> _FixpointBase:
    """Substitute the node's free individual variables to constants."""
    bound = {v.name for v in node.bound_vars}
    params = free_variables(node.body) - bound
    if not params:
        return node
    mapping = {
        name: Const(_term_value(Var(name), assignment)) for name in params
    }
    return type(node)(
        node.rel, node.bound_vars, substitute(node.body, mapping), node.args
    )


def _operator_image(
    node: _FixpointBase,
    db: Database,
    rel_env: Dict[str, frozenset],
    current: frozenset,
    cache: "_StageCache",
) -> frozenset:
    """``φ(current)`` over the bound-variable order, by direct checking."""
    order = [v.name for v in node.bound_vars]
    env = dict(rel_env)
    env[node.rel] = current
    image = set()
    for combo in db.domain.tuples(len(order)):
        assignment = dict(zip(order, combo))
        if _holds(node.body, db, assignment, env, cache):
            image.add(tuple(combo))
    return frozenset(image)


def _kleene_stages(
    node: _FixpointBase,
    db: Database,
    rel_env: Dict[str, frozenset],
    cache: "_StageCache",
) -> Tuple[List[frozenset], bool]:
    arity = node.arity
    if isinstance(node, GFP):
        current: frozenset = frozenset(db.domain.tuples(arity))
    else:
        current = frozenset()
    stages = [current]
    seen = {current}
    while True:
        image = _operator_image(node, db, rel_env, current, cache)
        if isinstance(node, IFP):
            after = current | image
        else:
            after = image
        if after == current:
            return stages, False
        if isinstance(node, PFP) and after in seen:
            # cycle without convergence: the partial fixpoint is empty
            stages.append(after)
            return stages, True
        stages.append(after)
        seen.add(after)
        current = after


def _holds(
    formula: Formula,
    db: Database,
    assignment: Assignment,
    rel_env: Dict[str, frozenset],
    cache: "_StageCache",
) -> bool:
    """Direct recursive satisfaction — the reference the witnesses cite."""
    if isinstance(formula, RelAtom):
        values = tuple(_term_value(t, assignment) for t in formula.terms)
        relation = rel_env.get(formula.name)
        if relation is None:
            relation = db.relation(formula.name).tuples
        return values in relation
    if isinstance(formula, Equals):
        return _term_value(formula.left, assignment) == _term_value(
            formula.right, assignment
        )
    if isinstance(formula, Truth):
        return formula.value
    if isinstance(formula, Not):
        return not _holds(formula.sub, db, assignment, rel_env, cache)
    if isinstance(formula, And):
        return all(
            _holds(sub, db, assignment, rel_env, cache)
            for sub in formula.subs
        )
    if isinstance(formula, Or):
        return any(
            _holds(sub, db, assignment, rel_env, cache)
            for sub in formula.subs
        )
    if isinstance(formula, Exists):
        name = formula.var.name
        saved = assignment.get(name, _MISSING)
        for value in db.domain:
            assignment[name] = value
            if _holds(formula.sub, db, assignment, rel_env, cache):
                _restore(assignment, name, saved)
                return True
        _restore(assignment, name, saved)
        return False
    if isinstance(formula, Forall):
        name = formula.var.name
        saved = assignment.get(name, _MISSING)
        for value in db.domain:
            assignment[name] = value
            if not _holds(formula.sub, db, assignment, rel_env, cache):
                _restore(assignment, name, saved)
                return False
        _restore(assignment, name, saved)
        return True
    if isinstance(formula, _FixpointBase):
        closed = _close_fixpoint(formula, assignment)
        stages, diverged = cache.stages(closed, db, rel_env)
        limit = frozenset() if diverged else stages[-1]
        values = tuple(_term_value(t, assignment) for t in formula.args)
        return values in limit
    if isinstance(formula, SOExists):
        raise ProvenanceError(
            "second-order quantifiers have no witness semantics here; "
            "provenance covers FO/FP/PFP formulas"
        )
    raise ProvenanceError(f"unknown formula node {formula!r}")


_MISSING = object()


def _restore(assignment: Assignment, name: str, saved: object) -> None:
    if saved is _MISSING:
        assignment.pop(name, None)
    else:
        assignment[name] = saved


# ---------------------------------------------------------------------------
# Witness trees
# ---------------------------------------------------------------------------


@dataclass
class Witness:
    """One node of a provenance tree.

    ``kind`` names the connective (``atom``, ``and``, ``or``,
    ``exists``, ``fixpoint``, ``derivation``, ...); ``detail`` carries
    the kind-specific payload (chosen value, first-entry stage, the
    cited database fact); ``holds`` is the claim — witnesses also
    explain *failures*, e.g. why no disjunct of an ``∨`` held.
    """

    kind: str
    formula: Optional[Formula]
    assignment: Dict[str, object]
    holds: bool
    detail: Dict[str, object] = field(default_factory=dict)
    children: Tuple["Witness", ...] = ()

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def format(self, indent: int = 0) -> str:
        """A readable indented rendering of the witness tree."""
        pad = "  " * indent
        mark = "+" if self.holds else "-"
        bits = []
        if self.formula is not None:
            bits.append(_clip(format_formula(self.formula)))
        for key, value in self.detail.items():
            bits.append(f"{key}={value!r}")
        line = f"{pad}[{mark}] {self.kind}: {', '.join(bits)}"
        parts = [line]
        for child in self.children:
            parts.append(child.format(indent + 1))
        return "\n".join(parts)

    def __repr__(self) -> str:
        return (
            f"Witness({self.kind!r}, holds={self.holds}, "
            f"children={len(self.children)})"
        )


def _clip(text: str, limit: int = 60) -> str:
    return text if len(text) <= limit else text[: limit - 3] + "..."


class _WitnessBuilder:
    """Builds witness trees by mirroring :func:`_holds` with recording."""

    def __init__(self, db: Database, cache: Optional[_StageCache] = None):
        self.db = db
        self.cache = cache if cache is not None else _StageCache()

    def explain(
        self,
        formula: Formula,
        assignment: Assignment,
        rel_env: Dict[str, frozenset],
        fixpoints: Dict[str, Tuple[_FixpointBase, List[frozenset]]],
    ) -> Witness:
        db, cache = self.db, self.cache
        snap = dict(assignment)
        if isinstance(formula, RelAtom):
            values = tuple(_term_value(t, assignment) for t in formula.terms)
            if formula.name in fixpoints:
                return self._explain_stage_atom(
                    formula, values, snap, rel_env, fixpoints
                )
            relation = rel_env.get(formula.name)
            if relation is None:
                relation = db.relation(formula.name).tuples
            holds = values in relation
            return Witness(
                "atom",
                formula,
                snap,
                holds,
                {"rel": formula.name, "tuple": values},
            )
        if isinstance(formula, Equals):
            left = _term_value(formula.left, assignment)
            right = _term_value(formula.right, assignment)
            return Witness(
                "equals",
                formula,
                snap,
                left == right,
                {"left": left, "right": right},
            )
        if isinstance(formula, Truth):
            return Witness("truth", formula, snap, formula.value)
        if isinstance(formula, Not):
            child = self.explain(formula.sub, assignment, rel_env, fixpoints)
            return Witness(
                "not", formula, snap, not child.holds, {}, (child,)
            )
        if isinstance(formula, And):
            children = []
            holds = True
            for sub in formula.subs:
                child = self.explain(sub, assignment, rel_env, fixpoints)
                children.append(child)
                if not child.holds:
                    # one failing conjunct refutes the conjunction
                    holds = False
                    break
            return Witness("and", formula, snap, holds, {}, tuple(children))
        if isinstance(formula, Or):
            children = []
            for sub in formula.subs:
                child = self.explain(sub, assignment, rel_env, fixpoints)
                children.append(child)
                if child.holds:
                    return Witness(
                        "or",
                        formula,
                        snap,
                        True,
                        {"chosen": len(children) - 1},
                        (child,),
                    )
            return Witness("or", formula, snap, False, {}, tuple(children))
        if isinstance(formula, Exists):
            return self._explain_quantifier(
                formula, assignment, rel_env, fixpoints, existential=True
            )
        if isinstance(formula, Forall):
            return self._explain_quantifier(
                formula, assignment, rel_env, fixpoints, existential=False
            )
        if isinstance(formula, _FixpointBase):
            closed = _close_fixpoint(formula, assignment)
            stages, diverged = cache.stages(closed, db, rel_env)
            limit = frozenset() if diverged else stages[-1]
            values = tuple(_term_value(t, assignment) for t in formula.args)
            holds = values in limit
            detail: Dict[str, object] = {
                "rel": formula.rel,
                "tuple": values,
                "kind": type(formula).__name__.lower(),
                "stages": len(stages) - 1,
            }
            children: Tuple[Witness, ...] = ()
            if isinstance(formula, PFP):
                detail["diverged"] = diverged
                detail["trajectory"] = tuple(
                    i for i, stage in enumerate(stages) if values in stage
                )
            elif holds and isinstance(formula, (LFP, IFP)):
                children = (
                    self._explain_derivation(
                        closed, values, stages, rel_env, fixpoints
                    ),
                )
                detail["stage"] = children[0].detail["stage"]
            return Witness("fixpoint", formula, snap, holds, detail, children)
        if isinstance(formula, SOExists):
            raise ProvenanceError(
                "second-order quantifiers have no witness semantics here; "
                "provenance covers FO/FP/PFP formulas"
            )
        raise ProvenanceError(f"unknown formula node {formula!r}")

    def _explain_quantifier(
        self, formula, assignment, rel_env, fixpoints, existential: bool
    ) -> Witness:
        name = formula.var.name
        snap = dict(assignment)
        saved = assignment.get(name, _MISSING)
        children = []
        kind = "exists" if existential else "forall"
        for value in self.db.domain:
            assignment[name] = value
            child = self.explain(formula.sub, assignment, rel_env, fixpoints)
            if existential and child.holds:
                _restore(assignment, name, saved)
                return Witness(
                    kind, formula, snap, True, {"value": value}, (child,)
                )
            if not existential and not child.holds:
                _restore(assignment, name, saved)
                return Witness(
                    kind,
                    formula,
                    snap,
                    False,
                    {"counterexample": value},
                    (child,),
                )
            children.append(child)
        _restore(assignment, name, saved)
        if existential:
            # no value worked: the children enumerate every failure
            return Witness(kind, formula, snap, False, {}, tuple(children))
        return Witness(kind, formula, snap, True, {}, tuple(children))

    def _explain_stage_atom(
        self, formula, values, snap, rel_env, fixpoints
    ) -> Witness:
        """An atom on a recursion variable inside a derivation chain.

        A *positive* occurrence recurses to the tuple's own derivation
        at its (strictly earlier) first-entry stage; a negative one —
        possible in IFP bodies — records the stage-absence claim, which
        the checker verifies against recomputed stages.
        """
        node, stages = fixpoints[formula.name]
        stage_bound = len(stages) - 1  # derive against stages[stage_bound]
        present = values in stages[stage_bound]
        if not present:
            return Witness(
                "stage-absent",
                formula,
                snap,
                False,
                {"rel": formula.name, "tuple": values, "stage": stage_bound},
            )
        derivation = self._explain_derivation(
            node, values, stages, rel_env, fixpoints, bound=stage_bound
        )
        return Witness(
            "stage-member",
            formula,
            snap,
            True,
            {
                "rel": formula.name,
                "tuple": values,
                "stage": derivation.detail["stage"],
            },
            (derivation,),
        )

    def _explain_derivation(
        self,
        node: _FixpointBase,
        values: tuple,
        stages: List[frozenset],
        rel_env: Dict[str, frozenset],
        fixpoints: Dict[str, Tuple[_FixpointBase, List[frozenset]]],
        bound: Optional[int] = None,
    ) -> Witness:
        """Why ``values`` entered the iteration: the body witness at the
        stage before its first entry, recursion-variable atoms recursing
        to strictly earlier stages (they terminate at stage 0 = ∅)."""
        entry = None
        limit = bound if bound is not None else len(stages) - 1
        for index, stage in enumerate(stages[: limit + 1]):
            if values in stage:
                entry = index
                break
        if entry is None or entry == 0:
            raise ProvenanceError(
                f"tuple {values!r} has no derivation in {node.rel} "
                f"(never entered the iteration)"
            )
        previous = stages[entry - 1]
        order = [v.name for v in node.bound_vars]
        assignment: Assignment = dict(zip(order, values))
        inner_env = dict(rel_env)
        inner_env[node.rel] = previous
        inner_fixpoints = dict(fixpoints)
        inner_fixpoints[node.rel] = (node, stages[: entry])
        body = self.explain(
            node.body, assignment, inner_env, inner_fixpoints
        )
        if not body.holds:
            # cannot happen for a first-entry tuple (IFP included: new
            # tuples come from the operator image), so any failure here
            # is a stage-recording inconsistency worth surfacing
            raise ProvenanceError(
                f"stage inconsistency: {values!r} entered {node.rel} at "
                f"stage {entry} but the body witness fails"
            )
        return Witness(
            "derivation",
            node,
            dict(assignment),
            True,
            {"rel": node.rel, "tuple": values, "stage": entry},
            (body,),
        )


def explain_membership(
    formula: Formula,
    db: Database,
    assignment: Assignment,
    rel_env: Optional[Dict[str, frozenset]] = None,
) -> Witness:
    """Why ``formula`` holds (or fails) under ``assignment`` on ``db``.

    ``assignment`` must bind every free individual variable;
    ``rel_env`` optionally binds free relation variables to tuple sets.
    """
    builder = _WitnessBuilder(db)
    env = {
        name: frozenset(rel) for name, rel in (rel_env or {}).items()
    }
    missing = free_variables(formula) - set(assignment)
    if missing:
        raise ProvenanceError(
            f"assignment does not bind free variables {sorted(missing)}"
        )
    return builder.explain(formula, dict(assignment), env, {})


def explain_answer(
    formula: Formula,
    db: Database,
    output_vars: Sequence[str],
    values: Sequence[object],
    rel_env: Optional[Dict[str, frozenset]] = None,
) -> Witness:
    """Why tuple ``values`` is (or is not) in the answer of the query."""
    out = tuple(output_vars)
    if len(out) != len(values):
        raise ProvenanceError(
            f"tuple has {len(values)} values for {len(out)} output variables"
        )
    for value in values:
        if value not in db.domain:
            raise ProvenanceError(
                f"value {value!r} is not in the database domain"
            )
    assignment = dict(zip(out, values))
    return explain_membership(formula, db, assignment, rel_env)


# ---------------------------------------------------------------------------
# Witness checking (replay against the database)
# ---------------------------------------------------------------------------


def check_witness(
    witness: Witness,
    db: Database,
    rel_env: Optional[Dict[str, frozenset]] = None,
) -> List[str]:
    """Replay a witness against ``db``; the list of problems (empty = ok).

    Every leaf claim is re-verified against the database (fixpoint stage
    claims against independently recomputed Kleene stages), and every
    connective's claim is re-checked against its children's.  An empty
    result means the witness is a sound certificate for its root claim.
    """
    checker = _WitnessChecker(
        db, {name: frozenset(r) for name, r in (rel_env or {}).items()}
    )
    checker.check(witness)
    return checker.problems


class _WitnessChecker:
    def __init__(self, db: Database, rel_env: Dict[str, frozenset]):
        self.db = db
        self.rel_env = rel_env
        self.cache = _StageCache()
        self.problems: List[str] = []

    def _flag(self, witness: Witness, message: str) -> None:
        self.problems.append(f"{witness.kind}: {message}")

    def _stages_for(self, witness: Witness) -> Optional[List[frozenset]]:
        node = witness.formula
        if not isinstance(node, _FixpointBase):
            self._flag(witness, "fixpoint claim on a non-fixpoint node")
            return None
        closed = _close_fixpoint(node, witness.assignment)
        try:
            stages, diverged = self.cache.stages(closed, self.db, self.rel_env)
        except ReproError as exc:
            # e.g. a nested fixpoint citing an outer recursion variable
            # the checker has no value for
            self._flag(witness, f"stages not recomputable: {exc}")
            return None
        if diverged and not isinstance(node, PFP):
            self._flag(witness, "non-PFP iteration reported divergent")
        return stages

    def check(self, witness: Witness) -> None:
        handler = getattr(self, f"_check_{witness.kind.replace('-', '_')}", None)
        if handler is None:
            self._flag(witness, "unknown witness kind")
            return
        handler(witness)

    # -- leaves --------------------------------------------------------

    def _check_atom(self, w: Witness) -> None:
        name = w.detail.get("rel")
        values = w.detail.get("tuple")
        relation = self.rel_env.get(name)
        if relation is None:
            try:
                relation = self.db.relation(name).tuples
            except Exception:
                self._flag(w, f"unknown relation {name!r}")
                return
        if (values in relation) != w.holds:
            self._flag(
                w, f"{name}{values!r} membership is {values in relation}, "
                f"witness claims {w.holds}"
            )

    def _check_equals(self, w: Witness) -> None:
        if (w.detail.get("left") == w.detail.get("right")) != w.holds:
            self._flag(w, "equality claim disagrees with its values")

    def _check_truth(self, w: Witness) -> None:
        if not isinstance(w.formula, Truth) or w.formula.value != w.holds:
            self._flag(w, "truth constant claim mismatch")

    # -- connectives ---------------------------------------------------

    def _check_not(self, w: Witness) -> None:
        if len(w.children) != 1:
            self._flag(w, "negation needs exactly one child")
            return
        if w.children[0].holds == w.holds:
            self._flag(w, "negation claim equals its child's")
        self.check(w.children[0])

    def _check_and(self, w: Witness) -> None:
        if w.holds:
            subs = w.formula.subs if isinstance(w.formula, And) else ()
            if len(w.children) != len(subs):
                self._flag(w, "a true conjunction must witness every conjunct")
            if not all(c.holds for c in w.children):
                self._flag(w, "true conjunction with a failing child")
        else:
            if not any(not c.holds for c in w.children):
                self._flag(w, "false conjunction without a failing child")
        for child in w.children:
            self.check(child)

    def _check_or(self, w: Witness) -> None:
        if w.holds:
            if not any(c.holds for c in w.children):
                self._flag(w, "true disjunction without a holding child")
        else:
            subs = w.formula.subs if isinstance(w.formula, Or) else ()
            if len(w.children) != len(subs):
                self._flag(w, "a false disjunction must refute every disjunct")
            if any(c.holds for c in w.children):
                self._flag(w, "false disjunction with a holding child")
        for child in w.children:
            self.check(child)

    def _check_exists(self, w: Witness) -> None:
        var = w.formula.var.name if isinstance(w.formula, Exists) else None
        if w.holds:
            if len(w.children) != 1 or not w.children[0].holds:
                self._flag(w, "a true ∃ needs one holding child")
                return
            value = w.detail.get("value")
            if var and w.children[0].assignment.get(var) != value:
                self._flag(w, "chosen value not bound in the child witness")
        else:
            if len(w.children) != len(self.db.domain):
                self._flag(w, "a false ∃ must refute every domain value")
            if any(c.holds for c in w.children):
                self._flag(w, "false ∃ with a holding child")
        for child in w.children:
            self.check(child)

    def _check_forall(self, w: Witness) -> None:
        if w.holds:
            if len(w.children) != len(self.db.domain):
                self._flag(w, "a true ∀ must witness every domain value")
            if any(not c.holds for c in w.children):
                self._flag(w, "true ∀ with a failing child")
        else:
            if len(w.children) != 1 or w.children[0].holds:
                self._flag(w, "a false ∀ needs one failing child")
        for child in w.children:
            self.check(child)

    # -- fixpoints -----------------------------------------------------

    def _check_fixpoint(self, w: Witness) -> None:
        stages = self._stages_for(w)
        if stages is None:
            return
        node = w.formula
        closed = _close_fixpoint(node, w.assignment)
        _, diverged = self.cache.stages(closed, self.db, self.rel_env)
        limit = frozenset() if diverged else stages[-1]
        values = w.detail.get("tuple")
        if (values in limit) != w.holds:
            self._flag(
                w,
                f"{node.rel}{values!r} limit membership is "
                f"{values in limit}, witness claims {w.holds}",
            )
        if isinstance(node, PFP):
            expected = tuple(
                i for i, stage in enumerate(stages) if values in stage
            )
            if tuple(w.detail.get("trajectory", ())) != expected:
                self._flag(w, "PFP trajectory disagrees with recomputation")
        elif w.holds and isinstance(node, (LFP, IFP)):
            if len(w.children) != 1:
                self._flag(w, "membership witness needs a derivation child")
            else:
                self._check_derivation_against(w.children[0], stages)

    def _check_derivation(self, w: Witness) -> None:
        stages = self._stages_for(w)
        if stages is not None:
            self._check_derivation_against(w, stages)

    def _check_derivation_against(
        self, w: Witness, stages: List[frozenset]
    ) -> None:
        values = w.detail.get("tuple")
        stage = w.detail.get("stage")
        if not isinstance(stage, int) or not (1 <= stage < len(stages)):
            self._flag(w, f"derivation stage {stage!r} out of range")
            return
        if values not in stages[stage]:
            self._flag(w, f"{values!r} not in stage {stage}")
        if values in stages[stage - 1]:
            self._flag(w, f"{values!r} already present before stage {stage}")
        if len(w.children) != 1:
            self._flag(w, "derivation needs exactly one body witness")
            return
        body = w.children[0]
        if not body.holds:
            self._flag(w, "derivation cites a failing body witness")
        self.check(body)

    def _check_stage_member(self, w: Witness) -> None:
        if len(w.children) != 1 or w.children[0].kind != "derivation":
            self._flag(w, "stage membership needs a derivation child")
            return
        self.check(w.children[0])
        inner = w.children[0].detail.get("stage")
        claimed = w.detail.get("stage")
        if inner != claimed:
            self._flag(w, "stage claim disagrees with its derivation")

    def _check_stage_absent(self, w: Witness) -> None:
        node = w.formula
        # the claim cites a recursion variable; recompute its stages via
        # the enclosing derivation's node, carried as the witness formula
        if not isinstance(node, RelAtom):
            self._flag(w, "stage absence on a non-atom")
            return
        # absence claims are bounded by construction (stage index within
        # the recorded prefix); a full recheck happens through the
        # enclosing derivation's stage recomputation
        if w.holds:
            self._flag(w, "absence claim marked as holding")


__all__ = [
    "NULL_STAGE_LOG",
    "NullStageLog",
    "ProvenanceError",
    "SolveRecord",
    "StageLog",
    "StageLogLike",
    "Witness",
    "check_witness",
    "explain_answer",
    "explain_membership",
]
