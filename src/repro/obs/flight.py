"""The flight recorder: a bounded ring of recent events, dumped on failure.

Lifetime counters say *how often* things fail; a post-mortem needs to
know *what just happened*.  The :class:`FlightRecorder` is the black box
between the two: an always-on, fixed-size ring buffer of recent serve
events (admissions, retries, worker crashes, degradations, sheds) that
costs one dict append per event and nothing more — cheap enough to run
under full production load forever.

When something goes wrong the ring is snapshotted:

* structured failure responses (``Overloaded`` 429, ``ResourceExhausted``
  503) carry a compact snapshot filtered to the failing request plus the
  surrounding context, so a single error body is already a post-mortem;
* a worker crash or terminal failure *dumps* the whole ring as one JSON
  file into the configured dump directory — the artifact the CI smoke
  drill asserts and uploads.

Events are plain dicts with a monotone sequence number and a relative
timestamp; the ring never blocks, never allocates beyond its capacity,
and drops the oldest events first (the ``dropped`` count in every
snapshot says how many are gone).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional


#: Default ring capacity; at one event per request phase this is a few
#: hundred requests of context, ~100 KiB at worst.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """An always-on bounded event ring with JSON snapshot/dump.

    ``record`` is safe to call from any thread (the serve layer is
    asyncio-single-threaded, but telemetry and tests are not always);
    it holds a lock for one append.  ``clock`` readings are stored
    relative to the recorder's creation so dumps are self-contained.
    """

    __slots__ = (
        "capacity",
        "_clock",
        "_epoch",
        "_events",
        "_lock",
        "_seq",
        "last_dump",
    )

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._epoch = clock()
        self._events: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.last_dump: Optional[str] = None

    def record(self, kind: str, **fields: object) -> Dict[str, object]:
        """Append one event; oldest events fall off a full ring."""
        with self._lock:
            self._seq += 1
            event: Dict[str, object] = {
                "seq": self._seq,
                "t": round(self._clock() - self._epoch, 6),
                "kind": kind,
            }
            event.update(fields)
            self._events.append(event)
        return event

    @property
    def recorded(self) -> int:
        """Total events ever recorded (including dropped ones)."""
        return self._seq

    @property
    def captured(self) -> int:
        """Events currently held in the ring."""
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events that have fallen off the ring."""
        return self._seq - len(self._events)

    def events(
        self,
        limit: Optional[int] = None,
        kind: Optional[str] = None,
        request_id: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """The newest matching events, oldest first.

        ``kind`` and ``request_id`` filter; ``limit`` keeps only the
        newest matches (a 429 body wants the tail, not the whole ring).
        """
        with self._lock:
            items = list(self._events)
        if kind is not None:
            items = [e for e in items if e.get("kind") == kind]
        if request_id is not None:
            items = [e for e in items if e.get("request_id") == request_id]
        if limit is not None and limit >= 0:
            items = items[-limit:]
        return items

    def snapshot(
        self,
        limit: Optional[int] = None,
        request_id: Optional[str] = None,
    ) -> Dict[str, object]:
        """A JSON-friendly view: ring accounting plus recent events."""
        return {
            "captured": self.captured,
            "dropped": self.dropped,
            "recorded": self.recorded,
            "events": self.events(limit=limit, request_id=request_id),
        }

    def dump(
        self,
        directory: str,
        reason: str,
        request_id: Optional[str] = None,
        extra: Optional[Dict[str, object]] = None,
    ) -> str:
        """Write the full ring as one JSON file; returns its path.

        Filenames are ``flight-<reason>-<seq>.json`` — the sequence
        number makes consecutive dumps distinct without wall-clock
        stamps, and sorts them in incident order.
        """
        os.makedirs(directory, exist_ok=True)
        safe_reason = "".join(
            ch if ch.isalnum() or ch in "-_" else "-" for ch in reason
        )
        path = os.path.join(
            directory, f"flight-{safe_reason}-{self._seq:08d}.json"
        )
        document: Dict[str, object] = {
            "reason": reason,
            "request_id": request_id,
            **self.snapshot(),
        }
        if extra:
            document["context"] = dict(extra)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True, default=repr)
            handle.write("\n")
        self.last_dump = path
        return path

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(captured={self.captured}/{self.capacity}, "
            f"dropped={self.dropped})"
        )


__all__ = ["DEFAULT_CAPACITY", "FlightRecorder"]
