"""Alternation-aware fixpoint evaluation with certificates (Theorem 3.5).

The paper's key idea — approximate both least *and* greatest fixpoints
from below — rests on two lemmas:

* Lemma 3.3 — ``a ∈ gfp(f)`` iff some ``Q ∋ a`` satisfies ``Q ⊆ f'(Q)``
  for an under-approximation ``f' ⊑ f`` (Tarski-Knaster);
* Lemma 3.4 — ``a ∈ lfp(f)`` iff ``a`` appears in an increasing chain
  ``Q_0 = ∅``, ``Q_i ⊆ f_i(Q_{i-1})`` with monotone ``f_i ⊑ f``.

In the proof sketch of Theorem 3.5 these compose *hierarchically*: the
evaluator guesses a post-fixpoint for each greatest fixpoint, pushes that
guess into the environment of the fixpoints nested inside it, and builds
increasing chains for the least fixpoints, guessing fresh (but only ever
growing) inner approximations for each chain step.  The certificate
produced here mirrors that structure exactly:

* a :class:`Cert` for a GFP node carries the guessed relation ``value``
  and certificates for the immediate inner fixpoints *computed under that
  guess*; its local condition (checked by
  :mod:`repro.core.certificates`) is Lemma 3.3's ``value ⊆ Φ(value)``
  with inner fixpoints replaced by their certified finals;
* a :class:`Cert` for an LFP node carries the Lemma 3.4 chain as
  :class:`LfpStep` records; step ``i``'s inner certificates are computed
  under the *previous* iterate, and its condition is
  ``Q_i ⊆ Φ(Q_{i-1})``.  Steps whose inner finals did not change reuse
  the previous step's sub-certificates (``children=None``) — this is the
  paper's "the f_i only grow" economy that keeps certificates at
  ``l·n^k`` guessed relations instead of ``n^{k·l}``.

Extraction (the deterministic stand-in for nondeterministic guessing)
computes the true nested values with the abstracted operators and records
the history; it may take ``n^{k·l}`` *time* — finding certificates in
polynomial time would put FP^k in PTIME, which the paper leaves open —
but the certificates themselves verify in polynomial time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.database.database import Database
from repro.database.relation import Relation
from repro.errors import EvaluationError
from repro.core.abstraction import AbstractedQuery, AbstractFixpoint, abstract_query
from repro.core.fo_eval import BoundedEvaluator
from repro.core.interp import EvalStats
from repro.logic.analysis import check_positivity
from repro.logic.syntax import Formula
from repro.logic.variables import free_variables


@dataclass(frozen=True)
class Cert:
    """Certificate for one fixpoint node in one environment context.

    ``value`` is the claimed (under-approximation of the) fixpoint.  For a
    GFP node ``children`` certify the immediate inner fixpoints under the
    guess; for an LFP node ``steps`` is the Lemma 3.4 chain and ``children``
    is empty.
    """

    node_index: int
    value: Relation
    children: Tuple["Cert", ...] = ()
    steps: Tuple["LfpStep", ...] = ()

    def guessed_tuples(self) -> int:
        """Total tuples across all guessed relations (certificate size)."""
        total = len(self.value)
        for child in self.children:
            total += child.guessed_tuples()
        for step in self.steps:
            total += len(step.value)
            if step.children is not None:
                for child in step.children:
                    total += child.guessed_tuples()
        return total


@dataclass(frozen=True)
class LfpStep:
    """One Lemma 3.4 chain link ``Q_{i-1} → Q_i``.

    ``children`` certify the immediate inner fixpoints under
    ``self = Q_{i-1}``; ``None`` means "inherit the previous step's
    children" — sound because the environment only grew and every
    recursion atom occurs positively, so the inherited conditions hold a
    fortiori.
    """

    value: Relation
    children: Optional[Tuple[Cert, ...]] = None


@dataclass(frozen=True)
class FixpointCertificate:
    """The full Theorem 3.5 certificate for a query evaluation."""

    query: AbstractedQuery
    top_certs: Tuple[Cert, ...]

    def final_state(self) -> Dict[str, Relation]:
        """Values for the skeleton's fixpoint atoms (top-level nodes)."""
        return {
            self.query.nodes[cert.node_index].name: cert.value
            for cert in self.top_certs
        }

    def total_guessed_tuples(self) -> int:
        return sum(cert.guessed_tuples() for cert in self.top_certs)


Env = Dict[str, Relation]


def apply_operator(
    evaluator: BoundedEvaluator,
    node: AbstractFixpoint,
    env: Env,
) -> Relation:
    """One application of node's abstracted operator under ``env``.

    ``env`` must bind the node's own name (the self value), every enclosing
    fixpoint name free in the body, and every immediate child's name.
    """
    table = evaluator._eval(node.body, env)
    columns = node.columns
    extra = set(table.variables) - set(columns)
    if extra:
        raise EvaluationError(
            f"operator body of {node.name} produced unexpected free "
            f"variables {sorted(extra)}"
        )
    table = table.cylindrify(columns, evaluator.domain)
    return table.to_relation(columns)


class AlternationEvaluator:
    """Nested evaluation over the abstracted system, with certificates."""

    def __init__(
        self,
        aq: AbstractedQuery,
        db: Database,
        stats: Optional[EvalStats] = None,
    ):
        self.aq = aq
        self.db = db
        self.stats = stats if stats is not None else EvalStats()
        self._evaluator = BoundedEvaluator(db, fixpoint_solver=None, stats=self.stats)
        self._value_memo: Dict[Tuple[int, Tuple[Tuple[str, Relation], ...]], Relation] = {}

    # -- true values -----------------------------------------------------

    def solve_value(self, node: AbstractFixpoint, env: Env) -> Relation:
        """The true nested value of ``node`` given enclosing values ``env``."""
        key = (node.index, tuple(sorted(env.items())))
        cached = self._value_memo.get(key)
        if cached is not None:
            return cached
        if node.kind == "lfp":
            current = Relation.empty(node.value_arity)
        else:
            current = Relation(
                node.value_arity, self.db.domain.tuples(node.value_arity)
            )
        while True:
            self.stats.fixpoint_iterations += 1
            after = self._step(node, env, current)
            if after == current:
                break
            current = after
        self._value_memo[key] = current
        return current

    def _step(self, node: AbstractFixpoint, env: Env, current: Relation) -> Relation:
        """One true Kleene step: inner fixpoints re-solved under ``current``."""
        inner_env = dict(env)
        inner_env[node.name] = current
        for child_index in node.children:
            child = self.aq.nodes[child_index]
            inner_env[child.name] = self.solve_value(child, dict(inner_env))
        return apply_operator(self._evaluator, node, inner_env)

    # -- certificate extraction ----------------------------------------

    def extract(self, node: AbstractFixpoint, env: Env) -> Cert:
        """A verifying certificate for ``node`` in context ``env``."""
        if node.kind == "gfp":
            value = self.solve_value(node, env)
            inner_env = dict(env)
            inner_env[node.name] = value
            children = []
            for child_index in node.children:
                child = self.aq.nodes[child_index]
                child_cert = self.extract(child, dict(inner_env))
                inner_env[child.name] = child_cert.value
                children.append(child_cert)
            return Cert(node.index, value, children=tuple(children))
        # lfp: record the Kleene chain with per-step inner certificates
        steps: List[LfpStep] = []
        current = Relation.empty(node.value_arity)
        previous_finals: Optional[Tuple[Relation, ...]] = None
        previous_children: Optional[Tuple[Cert, ...]] = None
        while True:
            inner_env = dict(env)
            inner_env[node.name] = current
            children = []
            for child_index in node.children:
                child = self.aq.nodes[child_index]
                child_cert = self.extract(child, dict(inner_env))
                inner_env[child.name] = child_cert.value
                children.append(child_cert)
            after = apply_operator(self._evaluator, node, inner_env)
            if after == current:
                break
            finals = tuple(c.value for c in children)
            if previous_finals is not None and finals == previous_finals:
                step_children: Optional[Tuple[Cert, ...]] = None
            else:
                step_children = tuple(children)
                previous_children = step_children
            previous_finals = finals
            steps.append(LfpStep(after, step_children))
            current = after
        return Cert(node.index, current, steps=tuple(steps))

    def answer_with_certificate(
        self, output_vars: Sequence[str]
    ) -> Tuple[Relation, FixpointCertificate]:
        top_certs = []
        state: Env = {}
        for index in self.aq.top:
            node = self.aq.nodes[index]
            cert = self.extract(node, {})
            state[node.name] = cert.value
            top_certs.append(cert)
        out = tuple(output_vars)
        missing = free_variables(self.aq.skeleton) - set(out)
        if missing:
            raise EvaluationError(
                f"output variables {out} do not cover free variables "
                f"{sorted(missing)}"
            )
        table = self._evaluator.evaluate(self.aq.skeleton, rel_env=state)
        table = table.cylindrify(out, self.db.domain)
        relation = table.to_relation(out)
        return relation, FixpointCertificate(self.aq, tuple(top_certs))


def alternation_answer_with_trace(
    formula: Formula,
    db: Database,
    output_vars: Sequence[str],
    k_limit: Optional[int] = None,
    stats: Optional[EvalStats] = None,
    require_positive: bool = True,
) -> Tuple[Relation, FixpointCertificate]:
    """Evaluate an FP query from below, returning the certificate too."""
    stats = stats if stats is not None else EvalStats()
    if require_positive:
        check_positivity(formula)
    aq = abstract_query(formula)
    evaluator = AlternationEvaluator(aq, db, stats)
    return evaluator.answer_with_certificate(output_vars)


def alternation_answer(
    formula: Formula,
    db: Database,
    output_vars: Sequence[str],
    k_limit: Optional[int] = None,
    stats: Optional[EvalStats] = None,
    require_positive: bool = True,
) -> Relation:
    """Evaluate an FP query by the Theorem 3.5 from-below method."""
    relation, _ = alternation_answer_with_trace(
        formula,
        db,
        output_vars,
        k_limit=k_limit,
        stats=stats,
        require_positive=require_positive,
    )
    return relation
