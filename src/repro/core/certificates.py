"""Polynomial-time certificate verification (Lemmas 3.3/3.4, Theorem 3.5).

Theorem 3.5 puts the combined complexity of FP^k in NP ∩ co-NP.  The NP
half means: membership ``t ∈ Q_φ(B)`` has a polynomial-size certificate
checkable in polynomial time.  The certificate structure
(:class:`~repro.core.alternation.FixpointCertificate`) follows the
paper's proof; this module is its verifier.  Per node the verifier checks:

* **GFP node** (Lemma 3.3): the guessed ``value`` satisfies
  ``value ⊆ Φ(value)``, where ``Φ`` interprets the immediate inner
  fixpoints by their certified finals — certified *under the guess* —
  and every enclosing fixpoint by the ambient environment.  Since all
  recursion atoms occur positively (NNF + the positivity requirement of
  Section 2.2), using under-approximations for the inner parts yields an
  operator ``f' ⊑ f``, exactly the lemma's hypothesis.

* **LFP node** (Lemma 3.4): the chain starts at ``∅``, grows monotonically,
  and each link satisfies ``Q_i ⊆ Φ(Q_{i-1})`` with the step's inner
  certificates (or inherited ones — sound by monotonicity, because the
  environment only grew along the chain).

* finally, the claimed answer tuple must satisfy the abstracted query
  skeleton under the certified top-level values.

Every check is a single bounded-FO evaluation — polynomial time.  A
verified certificate soundly establishes membership (each certified value
is below the true nested value, by structural induction with
Tarski-Knaster at the GFP steps and Kleene at the LFP steps);
completeness holds because extraction produces a verifying certificate
for every true member.

The co-NP half is the paper's closing remark of Section 3.2:
``t ∉ φ(B)`` iff ``t ∈ (¬φ)(B)``, and ``¬φ`` normalizes to an FP^k query
with the same variable bound (NNF dualizes the fixpoints), so
non-membership is certified by a membership certificate for the negation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.database.database import Database
from repro.database.relation import Relation
from repro.errors import CertificateError
from repro.core.abstraction import AbstractFixpoint, abstract_query
from repro.core.alternation import (
    Cert,
    FixpointCertificate,
    alternation_answer_with_trace,
    apply_operator,
)
from repro.core.fo_eval import BoundedEvaluator
from repro.core.interp import EvalStats
from repro.logic.syntax import Formula, Not
from repro.logic.variables import free_variables

Row = Tuple[object, ...]


@dataclass(frozen=True)
class MembershipCertificate:
    """An NP certificate for ``row ∈ Q_(output_vars)formula(B)``."""

    output_vars: Tuple[str, ...]
    row: Row
    certificate: FixpointCertificate


def extract_membership(
    formula: Formula,
    db: Database,
    output_vars: Sequence[str],
    row: Row,
    stats: Optional[EvalStats] = None,
) -> Optional[MembershipCertificate]:
    """Produce a certificate for ``row``, or ``None`` if it is not a member.

    This is the deterministic stand-in for the paper's nondeterministic
    guessing: the Theorem 3.5 evaluator computes the approximations and
    their growth history *is* the certificate.  (Extraction may take more
    than polynomial time — a polynomial-time extractor would put FP^k in
    PTIME, which the paper leaves open — but verification never does.)
    """
    answer, certificate = alternation_answer_with_trace(
        formula, db, output_vars, stats=stats
    )
    if tuple(row) not in answer:
        return None
    return MembershipCertificate(tuple(output_vars), tuple(row), certificate)


def extract_non_membership(
    formula: Formula,
    db: Database,
    output_vars: Sequence[str],
    row: Row,
    stats: Optional[EvalStats] = None,
) -> Optional[MembershipCertificate]:
    """Certificate that ``row`` is *not* in the answer (the co-NP half)."""
    return extract_membership(Not(formula), db, output_vars, row, stats=stats)


class _Verifier:
    def __init__(self, certificate: FixpointCertificate, db: Database, stats: EvalStats):
        self._aq = certificate.query
        self._db = db
        self._evaluator = BoundedEvaluator(db, fixpoint_solver=None, stats=stats)

    def verify_cert(self, cert: Cert, env: Dict[str, Relation]) -> None:
        node = self._node(cert.node_index)
        if cert.value.arity != node.value_arity:
            raise CertificateError(
                f"{node.name}: certified value has arity {cert.value.arity}, "
                f"expected {node.value_arity}"
            )
        if node.kind == "gfp":
            self._verify_gfp(cert, node, env)
        else:
            self._verify_lfp(cert, node, env)

    def _node(self, index: int) -> AbstractFixpoint:
        if not 0 <= index < len(self._aq.nodes):
            raise CertificateError(f"node index {index} out of range")
        return self._aq.nodes[index]

    def _verify_children(
        self,
        node: AbstractFixpoint,
        children: Tuple[Cert, ...],
        env: Dict[str, Relation],
    ) -> Dict[str, Relation]:
        """Verify inner certificates; returns env extended with their finals."""
        if tuple(c.node_index for c in children) != node.children:
            raise CertificateError(
                f"{node.name}: inner certificates do not match the node's "
                f"immediate nested fixpoints"
            )
        extended = dict(env)
        for child_cert in children:
            self.verify_cert(child_cert, dict(extended))
            child = self._node(child_cert.node_index)
            extended[child.name] = child_cert.value
        return extended

    def _verify_gfp(
        self, cert: Cert, node: AbstractFixpoint, env: Dict[str, Relation]
    ) -> None:
        if cert.steps:
            raise CertificateError(f"{node.name}: gfp certificate carries a chain")
        inner_env = dict(env)
        inner_env[node.name] = cert.value
        inner_env = self._verify_children(node, cert.children, inner_env)
        bound = apply_operator(self._evaluator, node, inner_env)
        if not cert.value.issubset(bound):
            raise CertificateError(
                f"{node.name}: Lemma 3.3 post-fixpoint condition violated"
            )

    def _verify_lfp(
        self, cert: Cert, node: AbstractFixpoint, env: Dict[str, Relation]
    ) -> None:
        if cert.children:
            raise CertificateError(
                f"{node.name}: lfp certificate carries gfp-style children"
            )
        previous = Relation.empty(node.value_arity)
        inherited: Optional[Tuple[Cert, ...]] = None
        for position, step in enumerate(cert.steps):
            if step.value.arity != node.value_arity:
                raise CertificateError(
                    f"{node.name} step {position}: value arity mismatch"
                )
            if not previous.issubset(step.value):
                raise CertificateError(
                    f"{node.name} step {position}: Lemma 3.4 chain is not "
                    f"increasing"
                )
            children = step.children
            if children is None:
                if inherited is None:
                    raise CertificateError(
                        f"{node.name} step {position}: nothing to inherit"
                    )
                # Inherited children were verified under a smaller self
                # value; positivity makes their conditions hold a fortiori,
                # so re-verification is unnecessary (and would still pass).
                children = inherited
                inner_env = dict(env)
                inner_env[node.name] = previous
                for child_cert in children:
                    child = self._node(child_cert.node_index)
                    inner_env[child.name] = child_cert.value
            else:
                inner_env = dict(env)
                inner_env[node.name] = previous
                inner_env = self._verify_children(node, children, inner_env)
                inherited = children
            bound = apply_operator(self._evaluator, node, inner_env)
            if not step.value.issubset(bound):
                raise CertificateError(
                    f"{node.name} step {position}: Lemma 3.4 chain link "
                    f"violated"
                )
            previous = step.value
        if cert.value != previous:
            raise CertificateError(
                f"{node.name}: certified value is not the end of its chain"
            )


def verify_membership(
    certificate: MembershipCertificate,
    formula: Formula,
    db: Database,
    stats: Optional[EvalStats] = None,
) -> bool:
    """Check a certificate in polynomial time.

    Raises :class:`~repro.errors.CertificateError` describing the first
    violated condition; returns ``True`` when every condition holds.  The
    verifier re-derives the abstraction from ``formula`` itself, so a
    certificate cannot smuggle in a different query.
    """
    stats = stats if stats is not None else EvalStats()
    expected = abstract_query(formula)
    aq = certificate.certificate.query
    if expected != aq:
        raise CertificateError(
            "certificate abstraction does not match the query"
        )
    verifier = _Verifier(certificate.certificate, db, stats)
    if tuple(c.node_index for c in certificate.certificate.top_certs) != aq.top:
        raise CertificateError(
            "top-level certificates do not match the query's outermost "
            "fixpoints"
        )
    state: Dict[str, Relation] = {}
    for cert in certificate.certificate.top_certs:
        verifier.verify_cert(cert, dict(state))
        state[aq.nodes[cert.node_index].name] = cert.value
    out = certificate.output_vars
    if len(certificate.row) != len(out):
        raise CertificateError("certificate row does not match output arity")
    missing = free_variables(aq.skeleton) - set(out)
    if missing:
        raise CertificateError(
            f"output variables do not cover free variables {sorted(missing)}"
        )
    evaluator = BoundedEvaluator(db, fixpoint_solver=None, stats=stats)
    table = evaluator.evaluate(aq.skeleton, rel_env=state)
    table = table.cylindrify(out, db.domain)
    answer = table.to_relation(out)
    if tuple(certificate.row) not in answer:
        raise CertificateError(
            "claimed tuple is not derivable from the certified "
            "approximations"
        )
    return True


def verify_non_membership(
    certificate: MembershipCertificate,
    formula: Formula,
    db: Database,
    stats: Optional[EvalStats] = None,
) -> bool:
    """Verify a non-membership certificate (a certificate for ``¬formula``)."""
    return verify_membership(certificate, Not(formula), db, stats=stats)


def certificate_size(certificate: MembershipCertificate) -> int:
    """Total tuples across all guessed relations — poly in ``|B| + |e|``."""
    return certificate.certificate.total_guessed_tuples()
