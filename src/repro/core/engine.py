"""The uniform front door: :class:`Query` objects and :func:`evaluate`.

A query in the paper's sense is ``(x̄)φ(ȳ)`` — a formula plus an output
variable tuple (Section 2.2).  :func:`evaluate` classifies the formula
into FO / FP / PFP / ESO and routes it to the right engine:

=========  ==========================================================
FO         bounded bottom-up evaluation (Prop 3.1)
FP         fixpoint strategies (Section 3.2 / Theorem 3.5)
PFP        space-metered iteration (Theorem 3.8)
ESO        Lemma 3.6 rewriting + grounding + SAT (Corollary 3.7)
=========  ==========================================================

Example::

    from repro import Database, Query

    db = Database.from_tuples(range(4), {"E": (2, [(0, 1), (1, 2), (2, 3)])})
    reach = Query.parse("[lfp S(x). x = y | exists z. (E(z, x) & S(z))](x)",
                        output_vars=("x", "y"))
    print(reach.run(db).relation)   # the reachability relation
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from repro.database.database import Database
from repro.database.relation import Relation
from repro.errors import EvaluationError
from repro.core.fo_eval import BoundedEvaluator
from repro.core.fp_eval import FixpointStrategy, solve_query
from repro.core.interp import EvalStats
from repro.core.pfp_eval import SpaceMeter, pfp_answer
from repro.guard.budget import Budget, GuardLike, resolve_guard
from repro.guard.chaos import ChaosPolicy
from repro.obs.provenance import NULL_STAGE_LOG, StageLog, StageLogLike
from repro.obs.tracer import Tracer, TracerLike, resolve_tracer
from repro.logic.analysis import Language, check_positivity, classify_language
from repro.logic.parser import parse_formula
from repro.logic.printer import format_formula
from repro.logic.syntax import Formula
from repro.logic.variables import free_variables, variable_width
from repro.perf.cache import SubqueryCache, resolve_subquery_cache
from repro.perf.compile import PlanCache


@dataclass
class EvalOptions:
    """Knobs for :func:`evaluate`.

    ``strategy`` selects the FP scheduling (Section 3.2); ``k_limit``
    enforces the variable bound; ``use_eso_rewrite`` toggles the Lemma 3.6
    arity reduction; ``strict_pfp_space`` selects the textbook PSPACE
    iteration for partial fixpoints.

    ``trace`` turns on span tracing: ``True`` records into a fresh
    :class:`~repro.obs.tracer.Tracer` (returned on the result), a tracer
    instance records into that tracer, and ``None``/``False`` (default)
    uses the shared no-op tracer — the engines then skip all span work.

    ``budget`` bounds the evaluation (see :class:`~repro.guard.Budget`);
    exhausting a limit raises the matching
    :class:`~repro.errors.ResourceExhausted` subclass.  ``degrade``
    (default on) lets the ESO engine walk its fallback ladder and PFP
    switch to strict counting instead of failing outright where a sound
    cheaper mode exists.  ``chaos`` installs a deterministic
    fault-injection policy — testing only.

    ``subquery_cache`` memoizes subformula tables in the FO/FP engines
    (see :mod:`repro.perf.cache`): ``True`` uses a fresh private cache
    for the evaluation, a :class:`~repro.perf.cache.SubqueryCache`
    instance shares cached tables across evaluations, and
    ``None``/``False`` (default) disables caching — the reference
    configuration the differential tests compare against.

    ``backend`` selects the table representation for the FO/FP/PFP
    engines: ``"sparse"`` (reference frozensets), ``"packed"`` (the
    :mod:`repro.kernel` ``n^k``-bit masks), or ``None`` (default) to
    consult the ``REPRO_BENCH_BACKEND`` environment variable.  Backends
    never change answers or the representation-independent stats
    counters.  The ESO engine grounds to SAT rather than iterating
    tables, so it ignores the backend.

    ``stage_log`` optionally records every fixpoint solve's Kleene
    stages into a :class:`~repro.obs.provenance.StageLog` (answer
    provenance: first-entry stages, semi-naive deltas, PFP
    trajectories).  Like ``trace``, the default ``None`` costs the
    engines nothing.

    ``compile`` routes pure-FO subtrees (including FP/PFP iteration
    bodies) through the straight-line query compiler
    (:mod:`repro.perf.compile`): ``True``/``False`` force it, ``None``
    (default) consults the ``REPRO_COMPILE`` environment variable.
    Compiled evaluation is observationally identical to the interpreter
    — answers, stats counters, guard charges, structured errors.
    ``plan_cache`` optionally shares compiled plans across evaluations
    (a :class:`~repro.perf.compile.PlanCache` instance); ``None`` gives
    each compiled evaluation a private cache.  The ESO engine grounds
    to SAT and ignores both.
    """

    strategy: FixpointStrategy = FixpointStrategy.MONOTONE
    k_limit: Optional[int] = None
    use_eso_rewrite: bool = True
    strict_pfp_space: bool = False
    check_positive: bool = True
    trace: Union[bool, Tracer, None] = None
    budget: Optional[Budget] = None
    chaos: Optional[ChaosPolicy] = None
    degrade: bool = True
    subquery_cache: Union[bool, "SubqueryCache", None] = None
    backend: Union[str, None] = None
    stage_log: Optional[StageLog] = None
    compile: Union[bool, None] = None
    plan_cache: Union[bool, "PlanCache", None] = None


@dataclass
class EvalResult:
    """The answer plus the audit trail of how it was computed.

    ``stats.registry`` is the unified metrics registry for the run;
    ``tracer`` is the recording tracer when tracing was requested
    (``None`` otherwise).
    """

    relation: Relation
    language: Language
    strategy: Optional[FixpointStrategy]
    stats: EvalStats
    space: Optional[SpaceMeter] = None
    tracer: Optional[Tracer] = None
    guard: Optional[GuardLike] = None
    stage_log: Optional[StageLog] = None

    def as_bool(self) -> bool:
        """Boolean answer, for sentence queries (0-ary output)."""
        return self.relation.as_bool()


def evaluate(
    formula: Formula,
    db: Database,
    output_vars: Sequence[str] = (),
    options: Optional[EvalOptions] = None,
) -> EvalResult:
    """Evaluate ``(output_vars)formula`` against ``db``.

    Output variables must cover the free variables of the formula; extra
    output variables range over the whole domain (the paper's convention).
    """
    options = options if options is not None else EvalOptions()
    tracer = resolve_tracer(options.trace)
    stats = EvalStats()
    guard = resolve_guard(
        options.budget, chaos=options.chaos, registry=stats.registry
    )
    language = classify_language(formula)
    if tracer.enabled:
        with tracer.span(
            "evaluate",
            language=language.value,
            width=variable_width(formula),
        ) as span:
            result = _dispatch(
                formula, db, output_vars, options, language, stats, tracer, guard
            )
            span.set(answer_rows=len(result.relation))
        return result
    return _dispatch(
        formula, db, output_vars, options, language, stats, tracer, guard
    )


def _dispatch(
    formula: Formula,
    db: Database,
    output_vars: Sequence[str],
    options: EvalOptions,
    language: Language,
    stats: EvalStats,
    tracer: TracerLike,
    guard: GuardLike,
) -> EvalResult:
    recorded = tracer if tracer.enabled else None
    watched = guard if guard.enabled else None
    observer: StageLogLike = (
        options.stage_log if options.stage_log is not None else NULL_STAGE_LOG
    )
    logged = observer if observer.enabled else None
    cache = resolve_subquery_cache(options.subquery_cache)
    if language == Language.FO:
        evaluator = BoundedEvaluator(
            db,
            k_limit=options.k_limit,
            stats=stats,
            tracer=tracer,
            guard=guard,
            subquery_cache=cache,
            backend=options.backend,
            compile=options.compile,
            plan_cache=options.plan_cache,
        )
        relation = evaluator.answer(formula, tuple(output_vars))
        return EvalResult(
            relation,
            language,
            None,
            stats,
            tracer=recorded,
            guard=watched,
            stage_log=logged,
        )
    if language == Language.ESO:
        from repro.core.eso_eval import eso_answer

        relation = eso_answer(
            formula,
            db,
            tuple(output_vars),
            use_rewrite=options.use_eso_rewrite,
            stats=stats,
            tracer=tracer,
            guard=guard,
            degrade=options.degrade,
        )
        return EvalResult(
            relation,
            language,
            None,
            stats,
            tracer=recorded,
            guard=watched,
            stage_log=logged,
        )
    if language == Language.PFP:
        if options.check_positive:
            check_positivity(formula)
        meter = SpaceMeter(registry=stats.registry)
        relation = pfp_answer(
            formula,
            db,
            tuple(output_vars),
            stats=stats,
            meter=meter,
            strict_space=options.strict_pfp_space,
            k_limit=options.k_limit,
            tracer=tracer,
            guard=guard,
            degrade=options.degrade,
            backend=options.backend,
            observer=observer,
            compile=options.compile,
            plan_cache=options.plan_cache,
        )
        return EvalResult(
            relation,
            language,
            None,
            stats,
            space=meter,
            tracer=recorded,
            guard=watched,
            stage_log=logged,
        )
    # FP: pure lfp/gfp formulas — any strategy applies (pfp/ifp mixtures
    # classify as Language.PFP above and never reach this branch)
    strategy = options.strategy
    relation = solve_query(
        formula,
        db,
        tuple(output_vars),
        strategy=strategy,
        k_limit=options.k_limit,
        stats=stats,
        require_positive=options.check_positive,
        tracer=tracer,
        guard=guard,
        subquery_cache=cache,
        backend=options.backend,
        observer=observer,
        compile=options.compile,
        plan_cache=options.plan_cache,
    )
    return EvalResult(
        relation,
        language,
        strategy,
        stats,
        tracer=recorded,
        guard=watched,
        stage_log=logged,
    )


@dataclass(frozen=True)
class Query:
    """A named query ``(output_vars)formula`` — the paper's query objects.

    >>> q = Query.parse("exists y. E(x, y)", output_vars=("x",))
    >>> q.width
    2
    """

    formula: Formula
    output_vars: Tuple[str, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        missing = free_variables(self.formula) - set(self.output_vars)
        if missing:
            raise EvaluationError(
                f"output variables {self.output_vars} do not cover free "
                f"variables {sorted(missing)}"
            )

    @classmethod
    def parse(
        cls,
        text: str,
        output_vars: Sequence[str] = (),
        name: str = "",
    ) -> "Query":
        return cls(parse_formula(text), tuple(output_vars), name)

    @property
    def width(self) -> int:
        """The number of distinct individual variables — the query's k."""
        return variable_width(self.formula)

    @property
    def language(self) -> Language:
        return classify_language(self.formula)

    @property
    def arity(self) -> int:
        return len(self.output_vars)

    def text(self) -> str:
        """The concrete syntax (its length is the ``|e|`` of the paper)."""
        return format_formula(self.formula)

    def run(
        self, db: Database, options: Optional[EvalOptions] = None
    ) -> EvalResult:
        """Evaluate against a database."""
        return evaluate(self.formula, db, self.output_vars, options)

    def holds(
        self, db: Database, options: Optional[EvalOptions] = None
    ) -> bool:
        """Boolean answer for sentence queries."""
        if self.output_vars:
            raise EvaluationError(
                "holds() is for sentence queries; this query has output "
                f"variables {self.output_vars}"
            )
        return self.run(db, options).as_bool()

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"Query{label}(({', '.join(self.output_vars)})"
            f"{format_formula(self.formula)})"
        )
