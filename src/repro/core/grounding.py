"""Grounding: first-order structure + second-order guesses → SAT.

Given a database ``B`` and a formula whose only "unknowns" are positively
occurring second-order quantified relations, grounding unfolds the
first-order quantifiers over the (finite) domain and turns every atom over
a quantified relation into a propositional variable named by the relation
and the ground tuple.  The result is a propositional formula whose
satisfiability is exactly the ESO query's truth — the NP upper bound of
Corollary 3.7 made executable: after the Lemma 3.6 rewriting every
quantified relation has arity ≤ k, so at most ``n^k`` propositional
variables per relation and ``O(|e| · n^k)`` formula nodes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.database.database import Database
from repro.database.domain import Value
from repro.errors import EvaluationError
from repro.guard.budget import GuardLike, NULL_GUARD
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.logic.syntax import (
    And,
    Const,
    Equals,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    RelAtom,
    SOExists,
    Term,
    Truth,
    Var,
    _FixpointBase,
)
from repro.sat.cnf import (
    BoolAnd,
    BoolConst,
    BoolNot,
    BoolOr,
    BoolVar,
    PropFormula,
)

GroundAtomName = Tuple[str, Tuple[Value, ...]]


def _term_value(term: Term, assignment: Dict[str, Value]) -> Value:
    if isinstance(term, Var):
        try:
            return assignment[term.name]
        except KeyError:
            raise EvaluationError(
                f"grounding reached unbound variable {term.name!r}"
            ) from None
    if isinstance(term, Const):
        return term.value
    raise EvaluationError(f"unknown term {term!r}")


def ground_formula(
    formula: Formula,
    db: Database,
    assignment: Optional[Dict[str, Value]] = None,
    tracer: TracerLike = NULL_TRACER,
    guard: GuardLike = NULL_GUARD,
) -> PropFormula:
    """Ground ``formula`` over ``db`` into a propositional formula.

    Second-order quantifiers must occur *positively* (under an even number
    of negations) — satisfiability handles the existential guessing; a
    negative occurrence would need QBF and is rejected.  Fixpoints are
    rejected too: the paper's ESO matrices are first-order.

    ``guard`` charges one clause per grounded node, so a clause budget
    bounds the Corollary 3.7 output size *while it is being built* — the
    grounding stops with :class:`~repro.errors.ClauseBudgetExceeded`
    instead of materializing an oversized formula.
    """
    if tracer.enabled:
        with tracer.span("eso.ground", domain_size=len(db.domain)) as span:
            prop = _ground(
                formula,
                db,
                dict(assignment or {}),
                positive=True,
                bound=set(),
                guard=guard,
            )
            span.set(prop_nodes=_prop_size(prop))
            return prop
    return _ground(
        formula,
        db,
        dict(assignment or {}),
        positive=True,
        bound=set(),
        guard=guard,
    )


def _prop_size(formula: PropFormula) -> int:
    """Node count of a grounded formula, respecting shared subterms.

    This is the ``O(|e| · n^k)`` quantity of Corollary 3.7; only computed
    when tracing is on (the walk is not free).
    """
    seen: set = set()
    stack = [formula]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, BoolNot):
            stack.append(node.sub)
        elif isinstance(node, (BoolAnd, BoolOr)):
            stack.extend(node.subs)
    return len(seen)


def _ground(
    formula: Formula,
    db: Database,
    assignment: Dict[str, Value],
    positive: bool,
    bound: set,
    guard: GuardLike = NULL_GUARD,
) -> PropFormula:
    if guard.enabled:
        # one grounded node = one unit of the O(|e| · n^k) output size
        guard.charge_clauses(node=type(formula).__name__)
    if isinstance(formula, RelAtom):
        row = tuple(_term_value(t, assignment) for t in formula.terms)
        if formula.name in bound:
            return BoolVar((formula.name, row))
        relation = db.relation(formula.name)
        if len(row) != relation.arity:
            raise EvaluationError(
                f"atom {formula.name} has {len(row)} arguments, relation "
                f"has arity {relation.arity}"
            )
        return BoolConst(row in relation)
    if isinstance(formula, Equals):
        return BoolConst(
            _term_value(formula.left, assignment)
            == _term_value(formula.right, assignment)
        )
    if isinstance(formula, Truth):
        return BoolConst(formula.value)
    if isinstance(formula, Not):
        return BoolNot(
            _ground(formula.sub, db, assignment, not positive, bound, guard)
        )
    if isinstance(formula, And):
        return BoolAnd(
            tuple(
                _ground(s, db, assignment, positive, bound, guard)
                for s in formula.subs
            )
        )
    if isinstance(formula, Or):
        return BoolOr(
            tuple(
                _ground(s, db, assignment, positive, bound, guard)
                for s in formula.subs
            )
        )
    if isinstance(formula, (Exists, Forall)):
        name = formula.var.name
        saved = assignment.get(name, _MISSING)
        parts = []
        try:
            for value in db.domain:
                assignment[name] = value
                parts.append(
                    _ground(formula.sub, db, assignment, positive, bound, guard)
                )
        finally:
            if saved is _MISSING:
                assignment.pop(name, None)
            else:
                assignment[name] = saved  # type: ignore[assignment]
        if isinstance(formula, Exists):
            return BoolOr(tuple(parts))
        return BoolAnd(tuple(parts))
    if isinstance(formula, SOExists):
        if not positive:
            raise EvaluationError(
                "second-order quantifier under negation cannot be grounded "
                "to SAT (it would require QBF)"
            )
        inner_bound = set(bound)
        inner_bound.add(formula.rel)
        return _ground(
            formula.body, db, assignment, positive, inner_bound, guard
        )
    if isinstance(formula, _FixpointBase):
        raise EvaluationError(
            "fixpoint operators cannot be grounded; ESO matrices are "
            "first-order (evaluate FP queries with repro.core.fp_eval)"
        )
    raise EvaluationError(f"unknown formula node {formula!r}")


_MISSING = object()
