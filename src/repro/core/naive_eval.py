"""Reference semantics: a slow, obviously-correct recursive evaluator.

This module is the testing oracle for every other engine in the library.  It
evaluates formulas by direct recursion over assignments, with no sharing, no
tables, and no cleverness:

* quantifiers loop over the domain;
* LFP/GFP run the textbook Kleene iterations from ``∅`` / ``D^m``;
* PFP iterates from ``∅`` and returns the limit, or ``∅`` when the sequence
  cycles without converging (Section 2.2's convention);
* IFP iterates ``S ∪ φ(S)``;
* ``∃S`` enumerates *all* ``2^(n^arity)`` relations — exponential, exactly
  the naive approach Section 3.3 says "does not work"; it is guarded by an
  explicit budget so tests cannot hang.

Everything here favours clarity over speed.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Mapping, Optional

from repro.database.database import Database
from repro.database.domain import Value
from repro.database.relation import Relation
from repro.errors import EvaluationError
from repro.logic.syntax import (
    And,
    Const,
    Equals,
    Exists,
    Forall,
    Formula,
    GFP,
    IFP,
    LFP,
    Not,
    Or,
    PFP,
    RelAtom,
    SOExists,
    Term,
    Truth,
    Var,
    _FixpointBase,
)
from repro.logic.variables import free_variables

RelEnv = Mapping[str, Relation]

#: Default budget on ``n^arity`` for naive second-order enumeration: the
#: enumeration visits ``2^(n^arity)`` candidate relations per quantifier.
DEFAULT_SO_BUDGET = 16


def _term_value(term: Term, assignment: Mapping[str, Value]) -> Value:
    if isinstance(term, Var):
        try:
            return assignment[term.name]
        except KeyError:
            raise EvaluationError(
                f"unbound variable {term.name!r}"
            ) from None
    if isinstance(term, Const):
        return term.value
    raise EvaluationError(f"unknown term {term!r}")


def holds(
    formula: Formula,
    db: Database,
    assignment: Optional[Mapping[str, Value]] = None,
    rel_env: Optional[RelEnv] = None,
    so_budget: int = DEFAULT_SO_BUDGET,
) -> bool:
    """Does ``(B, assignment) ⊨ formula``?

    ``assignment`` must bind every free individual variable; ``rel_env``
    binds relation variables (innermost fixpoint/second-order bindings
    shadow database relations of the same name).
    """
    a = dict(assignment or {})
    env = dict(rel_env or {})
    return _holds(formula, db, a, env, so_budget)


def _lookup_relation(name: str, db: Database, env: Dict[str, Relation]) -> Relation:
    if name in env:
        return env[name]
    return db.relation(name)


def _holds(
    formula: Formula,
    db: Database,
    assignment: Dict[str, Value],
    env: Dict[str, Relation],
    so_budget: int,
) -> bool:
    if isinstance(formula, RelAtom):
        rel = _lookup_relation(formula.name, db, env)
        row = tuple(_term_value(t, assignment) for t in formula.terms)
        if len(row) != rel.arity:
            raise EvaluationError(
                f"atom {formula.name} has {len(row)} arguments, relation "
                f"has arity {rel.arity}"
            )
        return row in rel
    if isinstance(formula, Equals):
        return _term_value(formula.left, assignment) == _term_value(
            formula.right, assignment
        )
    if isinstance(formula, Truth):
        return formula.value
    if isinstance(formula, Not):
        return not _holds(formula.sub, db, assignment, env, so_budget)
    if isinstance(formula, And):
        return all(
            _holds(s, db, assignment, env, so_budget) for s in formula.subs
        )
    if isinstance(formula, Or):
        return any(
            _holds(s, db, assignment, env, so_budget) for s in formula.subs
        )
    if isinstance(formula, Exists):
        name = formula.var.name
        saved = assignment.get(name, _MISSING)
        try:
            for value in db.domain:
                assignment[name] = value
                if _holds(formula.sub, db, assignment, env, so_budget):
                    return True
            return False
        finally:
            _restore(assignment, name, saved)
    if isinstance(formula, Forall):
        name = formula.var.name
        saved = assignment.get(name, _MISSING)
        try:
            for value in db.domain:
                assignment[name] = value
                if not _holds(formula.sub, db, assignment, env, so_budget):
                    return False
            return True
        finally:
            _restore(assignment, name, saved)
    if isinstance(formula, _FixpointBase):
        limit = _fixpoint_limit(formula, db, assignment, env, so_budget)
        row = tuple(_term_value(t, assignment) for t in formula.args)
        return row in limit
    if isinstance(formula, SOExists):
        return _so_exists(formula, db, assignment, env, so_budget)
    raise EvaluationError(f"unknown formula node {formula!r}")


_MISSING = object()


def _restore(assignment: Dict[str, Value], name: str, saved: object) -> None:
    if saved is _MISSING:
        assignment.pop(name, None)
    else:
        assignment[name] = saved  # type: ignore[assignment]


def _apply_operator(
    node: _FixpointBase,
    db: Database,
    assignment: Dict[str, Value],
    env: Dict[str, Relation],
    current: Relation,
    so_budget: int,
) -> Relation:
    """One application of the operator ``φ``: ``{t̄ : φ(t̄, current)}``."""
    inner_env = dict(env)
    inner_env[node.rel] = current
    names = [v.name for v in node.bound_vars]
    saved = {name: assignment.get(name, _MISSING) for name in names}
    rows = []
    try:
        for combo in db.domain.tuples(node.arity):
            for name, value in zip(names, combo):
                assignment[name] = value
            if _holds(node.body, db, assignment, inner_env, so_budget):
                rows.append(combo)
    finally:
        for name in names:
            _restore(assignment, name, saved[name])
    return Relation(node.arity, rows)


def _fixpoint_limit(
    node: _FixpointBase,
    db: Database,
    assignment: Dict[str, Value],
    env: Dict[str, Relation],
    so_budget: int,
) -> Relation:
    arity = node.arity
    if isinstance(node, LFP):
        current = Relation.empty(arity)
        while True:
            after = _apply_operator(node, db, assignment, env, current, so_budget)
            if after == current:
                return current
            current = after
    if isinstance(node, GFP):
        current = Relation(arity, db.domain.tuples(arity))
        while True:
            after = _apply_operator(node, db, assignment, env, current, so_budget)
            if after == current:
                return current
            current = after
    if isinstance(node, IFP):
        current = Relation.empty(arity)
        while True:
            step = _apply_operator(node, db, assignment, env, current, so_budget)
            after = current.union(step)
            if after == current:
                return current
            current = after
    if isinstance(node, PFP):
        current = Relation.empty(arity)
        seen = {current}
        while True:
            after = _apply_operator(node, db, assignment, env, current, so_budget)
            if after == current:
                return current
            if after in seen:
                # the sequence entered a non-trivial cycle: no limit exists,
                # and the partial fixpoint is the empty relation by convention
                return Relation.empty(arity)
            seen.add(after)
            current = after
    raise EvaluationError(f"unknown fixpoint node {node!r}")


def _so_exists(
    node: SOExists,
    db: Database,
    assignment: Dict[str, Value],
    env: Dict[str, Relation],
    so_budget: int,
) -> bool:
    universe = list(db.domain.tuples(node.arity))
    if len(universe) > so_budget:
        raise EvaluationError(
            f"naive second-order enumeration over {len(universe)} potential "
            f"tuples exceeds the budget of {so_budget} "
            f"(2^{len(universe)} candidate relations); use the ESO^k engine"
        )
    for size in range(len(universe) + 1):
        for chosen in itertools.combinations(universe, size):
            inner_env = dict(env)
            inner_env[node.rel] = Relation(node.arity, chosen)
            if _holds(node.body, db, assignment, inner_env, so_budget):
                return True
    return False


def naive_answer(
    formula: Formula,
    db: Database,
    output_vars: Iterable[str],
    rel_env: Optional[RelEnv] = None,
    so_budget: int = DEFAULT_SO_BUDGET,
) -> Relation:
    """The query answer ``{t̄ : B ⊨ φ(t̄)}`` by brute force.

    ``output_vars`` fixes the column order and must cover every free
    variable of the formula (extra output variables range over the domain,
    matching the paper's ``(x)φ(y)`` notation where ``y ⊆ x``).
    """
    out = tuple(output_vars)
    missing = free_variables(formula) - set(out)
    if missing:
        raise EvaluationError(
            f"output variables {out} do not cover free variables {missing}"
        )
    rows = []
    for combo in db.domain.tuples(len(out)):
        assignment = dict(zip(out, combo))
        if holds(formula, db, assignment, rel_env, so_budget):
            rows.append(combo)
    return Relation(len(out), rows)
