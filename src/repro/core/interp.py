"""Assignment tables: the intermediate results of bounded evaluation.

Prop 3.1 evaluates an FO^k query bottom-up, one subformula at a time, with
every intermediate result a relation of arity at most ``k``.  A
:class:`VarTable` is that intermediate result made concrete: a set of
assignments to the subformula's free variables, stored as a relation with
*named*, canonically-ordered columns.

The logical connectives become the obvious table operations:

==============  =============================================
``φ ∧ ψ``        natural join on shared variables
``φ ∨ ψ``        cylindrify both sides to the union of their
                 variables, then set union
``¬φ``           complement relative to ``D^{vars}``
``∃x φ``         project out column ``x``
``∀x φ``         complement–project–complement (or directly:
                 keep rows whose x-section is all of ``D``)
==============  =============================================

Because a subformula of an ``L^k`` query has at most ``k`` free variables,
every table here has at most ``n^k`` rows — the paper's polynomial bound on
intermediate results.  :class:`EvalStats` audits that bound at runtime.
"""

from __future__ import annotations

import itertools
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.database.domain import Domain, Value
from repro.database.relation import Relation
from repro.errors import EvaluationError
from repro.obs.metrics import MetricsRegistry

Row = Tuple[Value, ...]
Assignment = Mapping[str, Value]

#: Registry names behind each ``EvalStats`` attribute (see
#: ``docs/observability.md`` for the full catalogue).
_NOTE_PREFIX = "note."


def _counter_attr(metric: str, slot: str):
    def getter(self):
        return getattr(self, slot).value

    def setter(self, value):
        getattr(self, slot).value = value

    return property(getter, setter, doc=f"backed by counter {metric!r}")


def _gauge_attr(metric: str, slot: str):
    def getter(self):
        return getattr(self, slot).value

    def setter(self, value):
        getattr(self, slot).value = value

    return property(getter, setter, doc=f"backed by gauge {metric!r}")


class EvalStats:
    """Runtime audit of an evaluation: the quantities the paper bounds.

    ``max_intermediate_rows``/``max_intermediate_arity`` verify Prop 3.1's
    ``n^k`` bound; ``fixpoint_iterations`` is the quantity Theorem 3.5
    reduces from ``n^{k·l}`` to ``l·n^k``; ``table_ops`` counts elementary
    relation operations (each polynomial-time, per Prop 3.1).

    Every attribute is backed by an instrument in a
    :class:`~repro.obs.metrics.MetricsRegistry` (attribute reads/writes
    are views onto it), so the same numbers are exportable by name; pass
    a shared ``registry`` to aggregate several evaluations into one
    store.  The classic ``stats.field += n`` call sites work unchanged.
    """

    __slots__ = (
        "registry",
        "_table_ops",
        "_max_rows",
        "_max_arity",
        "_fixpoint_iterations",
        "_body_evaluations",
        "_sat_variables",
        "_sat_clauses",
        "_rows_hist",
        "_note_cache",
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._table_ops = self.registry.counter("eval.table_ops")
        self._max_rows = self.registry.gauge("eval.max_intermediate_rows")
        self._max_arity = self.registry.gauge("eval.max_intermediate_arity")
        self._fixpoint_iterations = self.registry.counter(
            "eval.fixpoint_iterations"
        )
        self._body_evaluations = self.registry.counter("eval.body_evaluations")
        self._sat_variables = self.registry.counter("sat.variables")
        self._sat_clauses = self.registry.counter("sat.clauses")
        self._rows_hist = self.registry.histogram("eval.table_rows")
        self._note_cache: Dict[str, object] = {}

    table_ops = _counter_attr("eval.table_ops", "_table_ops")
    max_intermediate_rows = _gauge_attr(
        "eval.max_intermediate_rows", "_max_rows"
    )
    max_intermediate_arity = _gauge_attr(
        "eval.max_intermediate_arity", "_max_arity"
    )
    fixpoint_iterations = _counter_attr(
        "eval.fixpoint_iterations", "_fixpoint_iterations"
    )
    body_evaluations = _counter_attr(
        "eval.body_evaluations", "_body_evaluations"
    )
    sat_variables = _counter_attr("sat.variables", "_sat_variables")
    sat_clauses = _counter_attr("sat.clauses", "_sat_clauses")

    @property
    def notes(self) -> Dict[str, int]:
        """Ad-hoc named counters, as a plain dict (read-only view)."""
        prefix = _NOTE_PREFIX
        return {
            metric.name[len(prefix) :]: metric.value
            for metric in self.registry
            if metric.name.startswith(prefix)
        }

    def observe_table(self, table) -> None:
        """Audit one intermediate table (``VarTable`` or any backend's).

        Uses ``len(table)`` rather than ``len(table.rows)`` so a packed
        table answers with a popcount instead of decoding its rows.
        """
        self._table_ops.value += 1
        rows = len(table)
        self._rows_hist.observe(rows)
        if rows > self._max_rows.value:
            self._max_rows.value = rows
        if len(table.variables) > self._max_arity.value:
            self._max_arity.value = len(table.variables)

    def observe_rows(self, rows: int, arity: int) -> None:
        """Audit one intermediate result by its dimensions alone.

        The compiled evaluation path (:mod:`repro.perf.compile`) works on
        raw backend values with no table wrapper to hand to
        :meth:`observe_table`; this records the identical counters.
        """
        self._table_ops.value += 1
        self._rows_hist.observe(rows)
        if rows > self._max_rows.value:
            self._max_rows.value = rows
        if arity > self._max_arity.value:
            self._max_arity.value = arity

    def bump(self, key: str, amount: int = 1) -> None:
        counter = self._note_cache.get(key)
        if counter is None:
            counter = self.registry.counter(_NOTE_PREFIX + key)
            self._note_cache[key] = counter
        counter.value += amount

    def as_dict(self) -> Dict[str, int]:
        """The classic audit fields as a flat dict (for reports/benches)."""
        return {
            "table_ops": self.table_ops,
            "max_intermediate_rows": self.max_intermediate_rows,
            "max_intermediate_arity": self.max_intermediate_arity,
            "fixpoint_iterations": self.fixpoint_iterations,
            "body_evaluations": self.body_evaluations,
            "sat_variables": self.sat_variables,
            "sat_clauses": self.sat_clauses,
            **self.notes,
        }

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"EvalStats({fields})"


class VarTable:
    """An immutable relation with named columns over a fixed domain.

    Columns are kept in sorted order so two tables over the same variables
    have identical layouts and row-sets compare directly.
    """

    __slots__ = ("_vars", "_rows")

    def __init__(self, variables: Sequence[str], rows: Iterable[Row]):
        ordered = tuple(sorted(variables))
        if len(set(ordered)) != len(ordered):
            raise EvaluationError(f"duplicate table columns: {variables}")
        if tuple(variables) != ordered:
            # reorder the incoming rows to canonical column order; one
            # position map instead of an O(k^2) .index() scan per column
            pos = {v: i for i, v in enumerate(variables)}
            positions = [pos[v] for v in ordered]
            rows = (tuple(row[p] for p in positions) for row in rows)
        frozen = frozenset(tuple(r) for r in rows)
        width = len(ordered)
        for row in frozen:
            if len(row) != width:
                raise EvaluationError(
                    f"row {row!r} does not match columns {ordered}"
                )
        self._vars = ordered
        self._rows = frozen

    # -- constructors --------------------------------------------------

    @classmethod
    def _trusted(
        cls, variables: Tuple[str, ...], rows: FrozenSet[Row]
    ) -> "VarTable":
        """Internal constructor for operator results.

        Skips all validation: ``variables`` must already be canonically
        sorted and duplicate-free, ``rows`` a frozenset of tuples of the
        right width.  Every public path still goes through ``__init__``.
        """
        table = cls.__new__(cls)
        table._vars = variables
        table._rows = rows
        return table

    @classmethod
    def tautology(cls) -> "VarTable":
        """The table of the always-true 0-variable formula: one empty row."""
        return cls((), [()])

    @classmethod
    def contradiction(cls) -> "VarTable":
        """The table of the always-false 0-variable formula: no rows."""
        return cls((), [])

    @classmethod
    def full(cls, variables: Sequence[str], domain: Domain) -> "VarTable":
        """``D^{variables}`` — every assignment to the given variables."""
        ordered = tuple(sorted(variables))
        if len(set(ordered)) != len(ordered):
            raise EvaluationError(f"duplicate table columns: {variables}")
        return cls._trusted(
            ordered,
            frozenset(itertools.product(domain.values, repeat=len(ordered))),
        )

    @classmethod
    def from_assignments(
        cls, variables: Sequence[str], assignments: Iterable[Assignment]
    ) -> "VarTable":
        """Build from explicit variable→value mappings."""
        ordered = tuple(sorted(variables))
        return cls(
            ordered, (tuple(a[v] for v in ordered) for a in assignments)
        )

    # -- basic accessors -------------------------------------------------

    @property
    def variables(self) -> Tuple[str, ...]:
        return self._vars

    @property
    def rows(self) -> FrozenSet[Row]:
        return self._rows

    def assignments(self) -> Iterator[Dict[str, Value]]:
        """Iterate rows as variable→value dictionaries."""
        for row in self._rows:
            yield dict(zip(self._vars, row))

    def contains(self, assignment: Assignment) -> bool:
        """Does the table contain (the restriction of) this assignment?"""
        try:
            row = tuple(assignment[v] for v in self._vars)
        except KeyError as missing:
            raise EvaluationError(
                f"assignment missing variable {missing}"
            ) from None
        return row in self._rows

    def is_empty(self) -> bool:
        return not self._rows

    # -- relational operations ---------------------------------------

    def join(self, other: "VarTable") -> "VarTable":
        """Natural join (the table operation behind conjunction)."""
        other_vars = set(other._vars)
        shared = [v for v in self._vars if v in other_vars]
        if not shared:
            merged = self._vars + other._vars
            order = sorted(range(len(merged)), key=merged.__getitem__)
            out_vars = tuple(merged[i] for i in order)
            rows = frozenset(
                tuple((left + right)[i] for i in order)
                for left in self._rows
                for right in other._rows
            )
            return VarTable._trusted(out_vars, rows)
        # hash join on the shared columns; probe the smaller side
        if len(self._rows) > len(other._rows):
            return other.join(self)
        shared_set = set(shared)
        left_pos = [self._vars.index(v) for v in shared]
        right_pos = [other._vars.index(v) for v in shared]
        right_only = [
            i for i, v in enumerate(other._vars) if v not in shared_set
        ]
        index: Dict[Row, list] = {}
        for row in self._rows:
            index.setdefault(tuple(row[p] for p in left_pos), []).append(row)
        merged = self._vars + tuple(other._vars[i] for i in right_only)
        order = sorted(range(len(merged)), key=merged.__getitem__)
        out_vars = tuple(merged[i] for i in order)
        rows = set()
        for row in other._rows:
            key = tuple(row[p] for p in right_pos)
            extras = tuple(row[i] for i in right_only)
            for match in index.get(key, ()):
                combined = match + extras
                rows.add(tuple(combined[i] for i in order))
        return VarTable._trusted(out_vars, frozenset(rows))

    def cylindrify(self, variables: Iterable[str], domain: Domain) -> "VarTable":
        """Extend with the given (new) variables, free over the domain."""
        extra = sorted(set(variables) - set(self._vars))
        if not extra:
            return self
        merged = self._vars + tuple(extra)
        order = sorted(range(len(merged)), key=merged.__getitem__)
        out_vars = tuple(merged[i] for i in order)
        combos = tuple(itertools.product(domain.values, repeat=len(extra)))
        rows = set()
        for row in self._rows:
            for combo in combos:
                combined = row + combo
                rows.add(tuple(combined[i] for i in order))
        return VarTable._trusted(out_vars, frozenset(rows))

    def union(self, other: "VarTable", domain: Domain) -> "VarTable":
        """Set union after cylindrifying both sides to a common schema."""
        target = set(self._vars) | set(other._vars)
        left = self.cylindrify(target, domain)
        right = other.cylindrify(target, domain)
        return VarTable._trusted(left._vars, left._rows | right._rows)

    def intersect(self, other: "VarTable", domain: Domain) -> "VarTable":
        """Set intersection after cylindrifying to a common schema."""
        target = set(self._vars) | set(other._vars)
        left = self.cylindrify(target, domain)
        right = other.cylindrify(target, domain)
        return VarTable._trusted(left._vars, left._rows & right._rows)

    def complement(self, domain: Domain) -> "VarTable":
        """``D^{vars}`` minus this table (the semantics of negation)."""
        universe = itertools.product(domain.values, repeat=len(self._vars))
        rows = frozenset(row for row in universe if row not in self._rows)
        return VarTable._trusted(self._vars, rows)

    def project_out(self, variable: str) -> "VarTable":
        """Existential quantification: drop one column, dedupe rows."""
        if variable not in self._vars:
            return self
        keep = [i for i, v in enumerate(self._vars) if v != variable]
        return VarTable._trusted(
            tuple(self._vars[i] for i in keep),
            frozenset(tuple(row[i] for i in keep) for row in self._rows),
        )

    def forall_out(self, variable: str, domain: Domain) -> "VarTable":
        """Universal quantification over one column.

        Keeps those reduced rows whose ``variable``-section covers the whole
        domain — equivalent to complement/project/complement but direct.
        """
        if variable not in self._vars:
            return self
        idx = self._vars.index(variable)
        keep = [i for i in range(len(self._vars)) if i != idx]
        if len(domain) == 0:
            # vacuously true over an empty domain; with other variables
            # remaining there are no assignments at all
            remaining = tuple(self._vars[i] for i in keep)
            return VarTable._trusted(
                remaining, frozenset([()]) if not remaining else frozenset()
            )
        sections: Dict[Row, set] = {}
        for row in self._rows:
            sections.setdefault(
                tuple(row[i] for i in keep), set()
            ).add(row[idx])
        n = len(domain)
        rows = frozenset(
            base for base, seen in sections.items() if len(seen) == n
        )
        return VarTable._trusted(tuple(self._vars[i] for i in keep), rows)

    def select_eq(self, var_a: str, var_b: str) -> "VarTable":
        """Rows where two columns are equal (for repeated variables)."""
        if var_a not in self._vars or var_b not in self._vars:
            raise EvaluationError(
                f"select_eq: {var_a!r}/{var_b!r} not in {self._vars}"
            )
        ia, ib = self._vars.index(var_a), self._vars.index(var_b)
        return VarTable._trusted(
            self._vars,
            frozenset(row for row in self._rows if row[ia] == row[ib]),
        )

    def rename(self, mapping: Mapping[str, str]) -> "VarTable":
        """Rename columns; the result is re-sorted canonically."""
        new_vars = tuple(mapping.get(v, v) for v in self._vars)
        if len(set(new_vars)) != len(new_vars):
            raise EvaluationError(
                f"rename would merge columns: {self._vars} via {dict(mapping)}"
            )
        return VarTable(new_vars, self._rows)

    def to_relation(self, output_vars: Sequence[str]) -> Relation:
        """Read the table out as a plain relation in the given column order.

        Columns must be exactly the table's variables (this is the final
        projection/permutation step of Prop 3.1's proof).
        """
        if set(output_vars) != set(self._vars) or len(output_vars) != len(
            self._vars
        ):
            raise EvaluationError(
                f"output variables {tuple(output_vars)} must be a permutation "
                f"of table columns {self._vars}"
            )
        positions = [self._vars.index(v) for v in output_vars]
        return Relation(
            len(positions),
            (tuple(row[p] for p in positions) for row in self._rows),
        )

    # -- dunder ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VarTable):
            return NotImplemented
        return self._vars == other._vars and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._vars, self._rows))

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"VarTable(vars={self._vars}, rows={len(self._rows)})"
