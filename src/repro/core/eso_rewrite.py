"""The Lemma 3.6 arity reduction for ESO^k.

The difficulty with ESO^k (Section 3.3): bounding the *individual*
variables does not bound the arity of the quantified *relation* variables,
so naively guessing a quantified relation may take exponential space.  The
lemma's observation: an atom ``S(u_1, ..., u_l)`` can only mention the k
individual variables, so each occurrence of ``S`` is really a "view"
selected by the pattern of variables/equalities among ``u_1..u_l``.  Only
linearly many patterns occur, so ``S`` can be replaced by one ≤k-ary view
relation per pattern plus quadratically many consistency axioms.

Example (the paper's, k = 2, S 4-ary): atoms ``S(x1,x1,x2,x2)`` and
``S(x1,x2,x1,x2)`` become views ``S_p0(x1,x2)`` and ``S_p1(x1,x2)`` with
the consistency axiom ``∀x1 (S_p0(x1,x1) ↔ S_p1(x1,x1))`` — both encode
``S(a,a,a,a)``.

The rewriting preserves the query: from a model of the original one reads
off the views; from consistent views one reconstructs (a sufficient
fragment of) ``S`` (:func:`reconstruct_relation`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.database.domain import Domain
from repro.database.relation import Relation
from repro.errors import EvaluationError, SyntaxError_
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.logic.builders import and_, forall, iff
from repro.logic.syntax import (
    And,
    Const,
    Equals,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    RelAtom,
    SOExists,
    Term,
    Truth,
    Var,
    _FixpointBase,
)

Pattern = Tuple[Term, ...]


def _pattern_vars(pattern: Pattern) -> Tuple[str, ...]:
    """Distinct variable names of a pattern, in first-occurrence order."""
    seen: List[str] = []
    for term in pattern:
        if isinstance(term, Var) and term.name not in seen:
            seen.append(term.name)
    return tuple(seen)


@dataclass(frozen=True)
class ViewInfo:
    """One pattern-view of a quantified relation."""

    original: str
    pattern: Pattern
    view_name: str

    @property
    def variables(self) -> Tuple[str, ...]:
        return _pattern_vars(self.pattern)

    @property
    def arity(self) -> int:
        return len(self.variables)


@dataclass(frozen=True)
class RewriteResult:
    """Outcome of the Lemma 3.6 rewriting of one ``∃S`` quantifier block."""

    formula: Formula
    views: Tuple[ViewInfo, ...]


def rewrite_eso(
    formula: Formula, tracer: TracerLike = NULL_TRACER
) -> RewriteResult:
    """Rewrite every second-order quantifier to ≤k-ary view quantifiers.

    Works on arbitrarily placed ``∃S`` nodes (each is rewritten in its own
    scope); the paper's prenex ``(∃S̄)ψ`` is the common case.
    """
    if tracer.enabled:
        with tracer.span("eso.rewrite") as span:
            rewriter = _Rewriter()
            rewritten = rewriter.rewrite(formula)
            span.set(
                views=len(rewriter.views),
                max_view_arity=max(
                    (v.arity for v in rewriter.views), default=0
                ),
            )
            return RewriteResult(rewritten, tuple(rewriter.views))
    rewriter = _Rewriter()
    rewritten = rewriter.rewrite(formula)
    return RewriteResult(rewritten, tuple(rewriter.views))


class _Rewriter:
    def __init__(self) -> None:
        self.views: List[ViewInfo] = []
        self._counter = 0

    def rewrite(self, formula: Formula) -> Formula:
        if isinstance(formula, (RelAtom, Equals, Truth)):
            return formula
        if isinstance(formula, Not):
            return Not(self.rewrite(formula.sub))
        if isinstance(formula, And):
            return And(tuple(self.rewrite(s) for s in formula.subs))
        if isinstance(formula, Or):
            return Or(tuple(self.rewrite(s) for s in formula.subs))
        if isinstance(formula, Exists):
            return Exists(formula.var, self.rewrite(formula.sub))
        if isinstance(formula, Forall):
            return Forall(formula.var, self.rewrite(formula.sub))
        if isinstance(formula, _FixpointBase):
            return type(formula)(
                formula.rel,
                formula.bound_vars,
                self.rewrite(formula.body),
                formula.args,
            )
        if isinstance(formula, SOExists):
            return self._rewrite_so(formula)
        raise SyntaxError_(f"unknown formula node {formula!r}")

    def _rewrite_so(self, node: SOExists) -> Formula:
        body = self.rewrite(node.body)
        patterns = _collect_patterns(body, node.rel, node.arity)
        if not patterns:
            # the relation is never used: the quantifier is vacuous
            return body
        views: Dict[Pattern, ViewInfo] = {}
        for pattern in patterns:
            view = ViewInfo(
                original=node.rel,
                pattern=pattern,
                view_name=f"_view_{node.rel}_{self._counter}",
            )
            self._counter += 1
            views[pattern] = view
            self.views.append(view)
        replaced = _replace_atoms(body, node.rel, views)
        axioms = _consistency_axioms(list(views.values()))
        matrix = and_(replaced, *axioms) if axioms else replaced
        for view in views.values():
            matrix = SOExists(view.view_name, view.arity, matrix)
        return matrix


def _collect_patterns(formula: Formula, rel: str, arity: int) -> List[Pattern]:
    """Distinct argument patterns of free ``rel``-atoms, in occurrence order."""
    patterns: List[Pattern] = []
    seen: Set[Pattern] = set()

    def visit(node: Formula, shadowed: bool) -> None:
        if isinstance(node, RelAtom):
            if node.name == rel and not shadowed:
                if len(node.terms) != arity:
                    raise EvaluationError(
                        f"atom {rel} has {len(node.terms)} arguments, "
                        f"quantifier declares arity {arity}"
                    )
                if node.terms not in seen:
                    seen.add(node.terms)
                    patterns.append(node.terms)
            return
        inner_shadowed = shadowed
        if isinstance(node, _FixpointBase) and node.rel == rel:
            inner_shadowed = True
        if isinstance(node, SOExists) and node.rel == rel:
            inner_shadowed = True
        for child in node.children():
            visit(child, inner_shadowed)

    visit(formula, False)
    return patterns


def _replace_atoms(
    formula: Formula, rel: str, views: Dict[Pattern, ViewInfo]
) -> Formula:
    if isinstance(formula, RelAtom):
        if formula.name != rel:
            return formula
        view = views[formula.terms]
        return RelAtom(view.view_name, tuple(Var(v) for v in view.variables))
    if isinstance(formula, (Equals, Truth)):
        return formula
    if isinstance(formula, Not):
        return Not(_replace_atoms(formula.sub, rel, views))
    if isinstance(formula, And):
        return And(tuple(_replace_atoms(s, rel, views) for s in formula.subs))
    if isinstance(formula, Or):
        return Or(tuple(_replace_atoms(s, rel, views) for s in formula.subs))
    if isinstance(formula, Exists):
        return Exists(formula.var, _replace_atoms(formula.sub, rel, views))
    if isinstance(formula, Forall):
        return Forall(formula.var, _replace_atoms(formula.sub, rel, views))
    if isinstance(formula, _FixpointBase):
        if formula.rel == rel:
            return formula
        return type(formula)(
            formula.rel,
            formula.bound_vars,
            _replace_atoms(formula.body, rel, views),
            formula.args,
        )
    if isinstance(formula, SOExists):
        if formula.rel == rel:
            return formula
        return SOExists(
            formula.rel, formula.arity, _replace_atoms(formula.body, rel, views)
        )
    raise SyntaxError_(f"unknown formula node {formula!r}")


def _term_equality(left: Term, right: Term) -> Optional[Formula]:
    """The premise atom ``p_i ≈ q_i``; None when trivially true."""
    if isinstance(left, Var) and isinstance(right, Var):
        if left.name == right.name:
            return None
        return Equals(left, right)
    if isinstance(left, Const) and isinstance(right, Const):
        return None if left.value == right.value else Truth(False)
    return Equals(left, right)


def _consistency_axioms(views: Sequence[ViewInfo]) -> List[Formula]:
    """All pairwise view-consistency axioms (quadratic in #views).

    For patterns ``p, q``: whenever the argument tuples coincide, the views
    must agree — ``∀(vars) (⋀ p_i = q_i) → (S_p(p̄vars) ↔ S_q(q̄vars))``.
    """
    axioms: List[Formula] = []
    for i, left in enumerate(views):
        for right in views[i + 1:]:
            premises: List[Formula] = []
            impossible = False
            for lt, rt in zip(left.pattern, right.pattern):
                premise = _term_equality(lt, rt)
                if premise == Truth(False):
                    impossible = True
                    break
                if premise is not None:
                    premises.append(premise)
            if impossible:
                continue
            left_atom = RelAtom(
                left.view_name, tuple(Var(v) for v in left.variables)
            )
            right_atom = RelAtom(
                right.view_name, tuple(Var(v) for v in right.variables)
            )
            agreement = iff(left_atom, right_atom)
            body = (
                Or((Not(And(tuple(premises))), agreement))
                if premises
                else agreement
            )
            quantified_vars = sorted(
                set(left.variables) | set(right.variables)
            )
            axioms.append(forall(quantified_vars, body))
    return axioms


def reconstruct_relation(
    views: Sequence[ViewInfo],
    view_values: Dict[str, Relation],
    arity: int,
    domain: Domain,
) -> Relation:
    """Rebuild (the used fragment of) the original relation from its views.

    A ground tuple belongs to the reconstruction when some view pattern
    matches it and that view holds of the matched variable values.  On
    consistent views this agrees with every view's selection, which is all
    the rewritten formula ever observes.
    """
    rows: Set[Tuple[object, ...]] = set()
    for view in views:
        value = view_values.get(view.view_name)
        if value is None:
            continue
        variables = view.variables
        for assignment_row in value.tuples:
            binding = dict(zip(variables, assignment_row))
            ground: List[object] = []
            for term in view.pattern:
                if isinstance(term, Var):
                    ground.append(binding[term.name])
                else:
                    ground.append(term.value)
            rows.add(tuple(ground))
    return Relation(arity, rows)
