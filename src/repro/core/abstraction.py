"""Fixpoint abstraction: the simultaneous (product) view of nested fixpoints.

Theorem 3.5 evaluates a nested fixpoint query by maintaining one
under-approximation per fixpoint *subformula* and growing them all from
below.  To make that concrete we rewrite the query so that every fixpoint
subformula — and every occurrence of every recursion variable — becomes a
plain relation atom over a fresh name:

* fixpoint node ``j`` = ``[σ S(x̄). φ](t̄)`` with parameters ``p̄``
  (the free individual variables of ``φ`` outside ``x̄``) becomes the atom
  ``_fp<j>(t̄, p̄)``;
* inside the body, the recursion atom ``S(ū)`` becomes ``_fp<j>(ū, p̄)``
  (parameters ride along as extra columns, so one relation per node covers
  all parameter values);
* the same happens recursively for nested fixpoints.

The result is a pure-FO *skeleton* for the query and one pure-FO *operator
body* per fixpoint node; both are evaluated by the ordinary bounded
evaluator under a relation environment holding the current
approximations.  Bound-variable shadowing would corrupt the parameter
columns, so the input is renamed apart first; this does not change the
number of free variables of any subformula, keeping intermediate arities
within the paper's bounds (``≤ 2k`` columns per abstracted atom).

Only LFP/GFP nodes are abstracted (the Theorem 3.5 machinery is about
monotone fixpoints); PFP/IFP nodes cause a rejection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import EvaluationError, SyntaxError_
from repro.logic.normal_form import to_nnf
from repro.logic.substitution import rename_bound_apart
from repro.logic.syntax import (
    And,
    Equals,
    Exists,
    Forall,
    Formula,
    GFP,
    IFP,
    LFP,
    Not,
    Or,
    PFP,
    RelAtom,
    SOExists,
    Truth,
    Var,
    _FixpointBase,
)
from repro.logic.variables import free_variables


@dataclass(frozen=True)
class AbstractFixpoint:
    """One fixpoint subformula in the simultaneous system."""

    index: int
    name: str                      # the fresh relation name ``_fp<index>``
    kind: str                      # 'lfp' | 'gfp'
    rel: str                       # the original recursion variable
    bound_vars: Tuple[str, ...]    # x̄ (names, in binding order)
    params: Tuple[str, ...]        # p̄ (sorted)
    body: Formula                  # abstracted operator body (pure FO)
    children: Tuple[int, ...] = () # indices of immediate nested fixpoints

    @property
    def value_arity(self) -> int:
        """Arity of the node's approximation relation: ``|x̄| + |p̄|``."""
        return len(self.bound_vars) + len(self.params)

    @property
    def columns(self) -> Tuple[str, ...]:
        """Column names of the approximation, bound variables first."""
        return self.bound_vars + self.params


@dataclass(frozen=True)
class AbstractedQuery:
    """A query with all LFP/GFP subformulas abstracted away."""

    skeleton: Formula                       # pure FO, mentions _fp<i> atoms
    nodes: Tuple[AbstractFixpoint, ...]     # in pre-order (outermost first)
    top: Tuple[int, ...] = ()               # indices of outermost fixpoints

    def node_named(self, name: str) -> AbstractFixpoint:
        for node in self.nodes:
            if node.name == name:
                return node
        raise EvaluationError(f"unknown abstract fixpoint {name!r}")


def abstract_query(formula: Formula, normalize: bool = True) -> AbstractedQuery:
    """Build the simultaneous system for ``formula``.

    ``normalize`` applies NNF (dualizing negated fixpoints so every
    fixpoint sits in a positive context — required for the soundness of
    from-below approximation) and renames bound variables apart.
    """
    if normalize:
        formula = rename_bound_apart(to_nnf(formula))
    builder = _Abstractor()
    skeleton = builder.rewrite(formula, {})
    return AbstractedQuery(
        skeleton, tuple(builder.nodes), tuple(builder.top)
    )


class _Abstractor:
    def __init__(self) -> None:
        self.nodes: List[AbstractFixpoint] = []
        self.top: List[int] = []
        self._child_stack: List[List[int]] = [self.top]

    def rewrite(
        self, formula: Formula, recursion_atoms: Dict[str, Tuple[str, Tuple[str, ...]]]
    ) -> Formula:
        """Rewrite ``formula``; ``recursion_atoms`` maps in-scope recursion
        variables to their ``(_fp name, params)`` extension."""
        if isinstance(formula, RelAtom):
            extension = recursion_atoms.get(formula.name)
            if extension is None:
                return formula
            fp_name, params = extension
            return RelAtom(
                fp_name, formula.terms + tuple(Var(p) for p in params)
            )
        if isinstance(formula, (Equals, Truth)):
            return formula
        if isinstance(formula, Not):
            return Not(self.rewrite(formula.sub, recursion_atoms))
        if isinstance(formula, And):
            return And(
                tuple(self.rewrite(s, recursion_atoms) for s in formula.subs)
            )
        if isinstance(formula, Or):
            return Or(
                tuple(self.rewrite(s, recursion_atoms) for s in formula.subs)
            )
        if isinstance(formula, Exists):
            return Exists(formula.var, self.rewrite(formula.sub, recursion_atoms))
        if isinstance(formula, Forall):
            return Forall(formula.var, self.rewrite(formula.sub, recursion_atoms))
        if isinstance(formula, (LFP, GFP)):
            return self._abstract_fixpoint(formula, recursion_atoms)
        if isinstance(formula, (PFP, IFP)):
            raise EvaluationError(
                "the simultaneous/alternation machinery handles lfp/gfp "
                "only; evaluate pfp/ifp queries with the NAIVE or MONOTONE "
                "strategy"
            )
        if isinstance(formula, SOExists):
            raise EvaluationError(
                "second-order quantification cannot be abstracted; route "
                "ESO queries through repro.core.eso_eval"
            )
        raise SyntaxError_(f"unknown formula node {formula!r}")

    def _abstract_fixpoint(
        self,
        node: _FixpointBase,
        recursion_atoms: Dict[str, Tuple[str, Tuple[str, ...]]],
    ) -> Formula:
        from repro.logic.variables import free_relation_variables

        index = len(self.nodes)
        name = f"_fp{index}"
        # reserve the slot so nested nodes number after this one (pre-order)
        self.nodes.append(None)  # type: ignore[arg-type]
        bound = tuple(v.name for v in node.bound_vars)
        # Parameters: the body's own free variables outside x̄, plus the
        # parameters of every enclosing fixpoint whose recursion variable
        # occurs (however deeply) in this body — the inner value genuinely
        # depends on those ambient bindings through the outer relation.
        param_set = set(free_variables(node.body)) - set(bound)
        body_rels = free_relation_variables(node.body)
        for rel_name, (_, outer_params) in recursion_atoms.items():
            if rel_name in body_rels:
                param_set |= set(outer_params)
        params = tuple(sorted(param_set))
        inner_atoms = dict(recursion_atoms)
        inner_atoms[node.rel] = (name, params)
        self._child_stack[-1].append(index)
        child_list: List[int] = []
        self._child_stack.append(child_list)
        body = self.rewrite(node.body, inner_atoms)
        self._child_stack.pop()
        kind = "lfp" if isinstance(node, LFP) else "gfp"
        self.nodes[index] = AbstractFixpoint(
            index=index,
            name=name,
            kind=kind,
            rel=node.rel,
            bound_vars=bound,
            params=params,
            body=body,
            children=tuple(child_list),
        )
        return RelAtom(
            name, node.args + tuple(Var(p) for p in params)
        )
