"""ESO^k evaluation through SAT (Section 3.3, Corollary 3.7).

Pipeline per output tuple:

1. **Lemma 3.6 rewriting** (optional but on by default): every quantified
   relation is replaced by ≤k-ary pattern views plus consistency axioms,
   so the grounded instance has polynomially many propositional variables;
2. **grounding** over the database (first-order quantifiers unfold over
   the domain, quantified-relation atoms become propositional variables);
3. **Tseitin + DPLL**: the instance is satisfiable iff the tuple is in the
   answer.

The grounded CNF size is the observable content of Corollary 3.7: with the
rewriting it is polynomial in ``|B| + |e|``; without it, exponential in
the quantified arities (benchmark ``F6`` measures exactly this gap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.database.database import Database
from repro.database.domain import Value
from repro.database.relation import Relation
from repro.errors import ClauseBudgetExceeded, EvaluationError
from repro.core.eso_rewrite import RewriteResult, rewrite_eso
from repro.core.grounding import ground_formula
from repro.core.interp import EvalStats
from repro.core.naive_eval import DEFAULT_SO_BUDGET, holds as naive_holds
from repro.guard.budget import GuardLike, NULL_GUARD
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.logic.syntax import Formula
from repro.logic.variables import free_variables
from repro.sat.cnf import CNF
from repro.sat.dpll import solve
from repro.sat.tseitin import to_cnf


@dataclass
class EsoOutcome:
    """Decision for one ground query instance, with SAT-side accounting."""

    truth: bool
    num_vars: int
    num_clauses: int
    model: Optional[Dict[object, bool]]


def _decide_ground(
    working: Formula,
    db: Database,
    assignment: Optional[Dict[str, Value]],
    stats: EvalStats,
    tracer: TracerLike,
    guard: GuardLike,
) -> EsoOutcome:
    """One rung of the ladder: ground → Tseitin → DPLL."""
    prop = ground_formula(working, db, assignment, tracer=tracer, guard=guard)
    cnf, _root = to_cnf(prop, tracer=tracer)
    if guard.enabled:
        guard.charge_clauses(cnf.num_clauses, stage="tseitin")
    stats.sat_variables += cnf.num_vars
    stats.sat_clauses += cnf.num_clauses
    result = solve(cnf, tracer=tracer, guard=guard)
    model = result.named_assignment(cnf) if result.satisfiable else None
    return EsoOutcome(
        truth=result.satisfiable,
        num_vars=cnf.num_vars,
        num_clauses=cnf.num_clauses,
        model=model,
    )


def eso_decide(
    sentence: Formula,
    db: Database,
    assignment: Optional[Dict[str, Value]] = None,
    use_rewrite: bool = True,
    stats: Optional[EvalStats] = None,
    tracer: TracerLike = NULL_TRACER,
    guard: GuardLike = NULL_GUARD,
    degrade: bool = False,
    so_budget: int = DEFAULT_SO_BUDGET,
) -> EsoOutcome:
    """Decide one ESO instance: ``(B, assignment) ⊨ sentence``?

    With tracing on, the pipeline shows up as the four stages of
    Corollary 3.7: ``eso.rewrite`` → ``eso.ground`` → ``eso.tseitin`` →
    ``eso.dpll``, each annotated with its size numbers.

    The guard's clause budget bounds each grounding *stage*.  With
    ``degrade`` set, exceeding it walks down a ladder instead of failing:

    1. Lemma 3.6 rewrite + grounding (polynomial, but the consistency
       axioms cost a constant factor);
    2. naive grounding of the original sentence (no view axioms — smaller
       for tiny instances, exponential in the quantified arities);
    3. the reference model checker (:mod:`repro.core.naive_eval`) under
       its own ``so_budget``, which grounds nothing at all.

    Each rung restarts the stage budget (the metrics registry keeps the
    cumulative total under ``guard.clauses``).  If the last rung fails
    too, the *original* :class:`~repro.errors.ClauseBudgetExceeded` is
    re-raised — the degradation never misreports a budget failure as
    success.  Fallbacks are counted in ``stats`` under
    ``eso_fallback_naive_ground`` / ``eso_fallback_naive_eval``.
    """
    stats = stats if stats is not None else EvalStats()
    if guard.enabled:
        # each decision instance is its own clause-budget stage
        guard.reset_clauses()
    working = sentence
    if use_rewrite:
        working = rewrite_eso(sentence, tracer=tracer).formula
        stats.bump("eso_rewrites")
    try:
        return _decide_ground(working, db, assignment, stats, tracer, guard)
    except ClauseBudgetExceeded as first:
        if not degrade:
            raise
        if use_rewrite:
            # rung 2: ground the original sentence without the view axioms
            guard.reset_clauses()
            stats.bump("eso_fallback_naive_ground")
            if tracer.enabled:
                tracer.event("eso.fallback", stage="naive_ground")
            try:
                return _decide_ground(
                    sentence, db, assignment, stats, tracer, guard
                )
            except ClauseBudgetExceeded:
                pass
        # rung 3: no grounding at all — the reference model checker with
        # its own second-order enumeration budget
        guard.reset_clauses()
        stats.bump("eso_fallback_naive_eval")
        if tracer.enabled:
            tracer.event("eso.fallback", stage="naive_eval")
        try:
            truth = naive_holds(sentence, db, assignment, so_budget=so_budget)
        except EvaluationError:
            # the last rung is out of budget too: report the original
            # exhaustion truthfully rather than a converted error
            raise first
        return EsoOutcome(truth=truth, num_vars=0, num_clauses=0, model=None)


def eso_answer(
    formula: Formula,
    db: Database,
    output_vars: Sequence[str],
    use_rewrite: bool = True,
    stats: Optional[EvalStats] = None,
    tracer: TracerLike = NULL_TRACER,
    guard: GuardLike = NULL_GUARD,
    degrade: bool = False,
    so_budget: int = DEFAULT_SO_BUDGET,
) -> Relation:
    """The answer relation of an ESO^k query, one SAT call per tuple.

    Every tuple boundary is a cooperative checkpoint, so a deadline can
    interrupt the sweep between SAT calls; ``guard``/``degrade`` are
    threaded into each :func:`eso_decide` (see its ladder).
    """
    stats = stats if stats is not None else EvalStats()
    out = tuple(output_vars)
    missing = free_variables(formula) - set(out)
    if missing:
        raise EvaluationError(
            f"output variables {out} do not cover free variables "
            f"{sorted(missing)}"
        )
    rows = []
    for combo in db.domain.tuples(len(out)):
        assignment = dict(zip(out, combo))
        if guard.enabled:
            guard.checkpoint("eso.tuple", answered_rows=len(rows))
        if tracer.enabled:
            with tracer.span(
                "eso.tuple", tuple=",".join(str(v) for v in combo)
            ) as span:
                outcome = eso_decide(
                    formula,
                    db,
                    assignment,
                    use_rewrite=use_rewrite,
                    stats=stats,
                    tracer=tracer,
                    guard=guard,
                    degrade=degrade,
                    so_budget=so_budget,
                )
                span.set(truth=outcome.truth)
        else:
            outcome = eso_decide(
                formula,
                db,
                assignment,
                use_rewrite=use_rewrite,
                stats=stats,
                guard=guard,
                degrade=degrade,
                so_budget=so_budget,
            )
        if outcome.truth:
            rows.append(combo)
    return Relation(len(out), rows)


def grounded_cnf(
    sentence: Formula,
    db: Database,
    assignment: Optional[Dict[str, Value]] = None,
    use_rewrite: bool = True,
) -> Tuple[CNF, Optional[RewriteResult]]:
    """The grounded CNF (and rewrite metadata) without solving.

    Exposed for the encoding-size experiments: ``cnf.num_vars`` /
    ``cnf.num_clauses`` are the quantities Corollary 3.7 bounds.
    """
    rewrite = rewrite_eso(sentence) if use_rewrite else None
    working = rewrite.formula if rewrite is not None else sentence
    prop = ground_formula(working, db, assignment)
    cnf, _root = to_cnf(prop)
    return cnf, rewrite
