"""FP^k / PFP^k evaluation strategies (Sections 3.2 and 3.4).

Three interchangeable ways to evaluate fixpoint queries:

``NAIVE``
    The straightforward nested-loop program from Section 3.2: every
    iteration of an outer fixpoint recomputes every inner fixpoint from
    scratch.  With alternation depth ``l`` this needs ``n^{k·l}``
    iterations — the exponential behaviour the paper warns about.

``MONOTONE``
    Warm-started nested iteration (the footnote-5 observation generalized,
    in the spirit of Emerson-Lei): each fixpoint remembers its previous
    limit together with the relation environment it was computed under and
    reuses it whenever monotonicity makes that sound — an inner least
    fixpoint restarts from its old limit when the environment only grew, an
    inner greatest fixpoint when the environment only shrank.  For
    alternation-free queries this yields ``l·n^k`` total iterations.

``ALTERNATION``
    The Theorem 3.5 approach: approximate *both* least and greatest
    fixpoints from below with one global, monotonically increasing
    under-approximation per fixpoint subformula, and emit the
    Lemma 3.3/3.4 certificate trace as a by-product
    (see :mod:`repro.core.alternation`).

``SEMINAIVE``
    Delta-driven least-fixpoint ascent: each round evaluates a
    *differential* of the body against only the tuples derived last
    round instead of recomputing ``φ(S)`` in full, generalizing the
    Datalog semi-naive trick to arbitrary positive FO bodies.  GFP,
    IFP, PFP, and non-monotone bodies fall back to naive iteration
    (see :mod:`repro.perf.seminaive`).

All strategies are property-tested equal to each other and to the naive
reference semantics.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.database.database import Database
from repro.database.domain import Domain
from repro.database.relation import Relation
from repro.errors import EvaluationError
from repro.core.fo_eval import BoundedEvaluator
from repro.core.interp import EvalStats
from repro.guard.budget import GuardLike, NULL_GUARD
from repro.obs.provenance import NULL_STAGE_LOG, StageLogLike
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.logic.analysis import check_positivity, polarity_of
from repro.logic.syntax import (
    Formula,
    GFP,
    IFP,
    LFP,
    PFP,
    _FixpointBase,
)
from repro.logic.variables import free_relation_variables


class FixpointStrategy(enum.Enum):
    """How nested/alternating fixpoints are scheduled."""

    NAIVE = "naive"
    MONOTONE = "monotone"
    ALTERNATION = "alternation"
    SEMINAIVE = "seminaive"


StepFunction = Callable[[Relation], Relation]


def _traced_step(
    step: StepFunction,
    current: Relation,
    index: int,
    tracer: TracerLike,
) -> Relation:
    """One iteration under a ``fp.iteration`` span with the delta size."""
    with tracer.span("fp.iteration") as span:
        after = step(current)
        span.set(index=index, size=len(after), delta=len(after) - len(current))
    return after


def iterate_ascending(
    step: StepFunction,
    start: Relation,
    stats: EvalStats,
    tracer: TracerLike = NULL_TRACER,
    guard: GuardLike = NULL_GUARD,
    observer: StageLogLike = NULL_STAGE_LOG,
) -> Relation:
    """Kleene iteration upward from ``start`` until a fixpoint.

    Ascending iteration only converges for monotone operators; a step
    that loses tuples is reported as an error rather than looping
    forever (it can only happen when positivity checking was disabled
    on a genuinely non-monotone body).  ``observer`` optionally records
    the stage iterates (see :class:`repro.obs.provenance.StageLog`);
    stage ``i`` is the ``i``-th Kleene iterate, stage 0 the start.
    """
    current = start
    index = 0
    if observer.enabled:
        observer.stage(0, current)
    while True:
        stats.fixpoint_iterations += 1
        if guard.enabled:
            guard.charge_iteration(index=index, size=len(current))
        if tracer.enabled:
            after = _traced_step(step, current, index, tracer)
        else:
            after = step(current)
        index += 1
        if after == current:
            return current
        if not current.issubset(after):
            raise EvaluationError(
                "ascending fixpoint iteration regressed: the operator is "
                "not monotone (a lfp/gfp body must bind its recursion "
                "variable positively)"
            )
        if observer.enabled:
            observer.stage(index, after, delta=after.difference(current))
        current = after


def iterate_descending(
    step: StepFunction,
    start: Relation,
    stats: EvalStats,
    tracer: TracerLike = NULL_TRACER,
    guard: GuardLike = NULL_GUARD,
    observer: StageLogLike = NULL_STAGE_LOG,
) -> Relation:
    """Kleene iteration downward from ``start`` until a fixpoint.

    The descending dual of :func:`iterate_ascending`, with the same
    non-monotonicity guard.  An observer's recorded ``delta`` is the
    set of tuples *removed* in the round.
    """
    current = start
    index = 0
    if observer.enabled:
        observer.stage(0, current)
    while True:
        stats.fixpoint_iterations += 1
        if guard.enabled:
            guard.charge_iteration(index=index, size=len(current))
        if tracer.enabled:
            after = _traced_step(step, current, index, tracer)
        else:
            after = step(current)
        index += 1
        if after == current:
            return current
        if not after.issubset(current):
            raise EvaluationError(
                "descending fixpoint iteration grew: the operator is "
                "not monotone (a lfp/gfp body must bind its recursion "
                "variable positively)"
            )
        if observer.enabled:
            observer.stage(index, after, delta=current.difference(after))
        current = after


def iterate_inflationary(
    step: StepFunction,
    arity: int,
    stats: EvalStats,
    tracer: TracerLike = NULL_TRACER,
    guard: GuardLike = NULL_GUARD,
    empty: Optional[Relation] = None,
    observer: StageLogLike = NULL_STAGE_LOG,
) -> Relation:
    """IFP iteration ``S ← S ∪ φ(S)`` from empty; always converges.

    The converging round exits on ``derived ⊆ current`` *before* taking
    the union: re-materializing the full relation just to discover the
    delta was empty would do ``O(|S|)`` extra work on every solve (the
    ``empty_delta_exits`` note counts these exits for the regression
    test).  ``empty`` optionally supplies the backend's empty relation
    so packed iterates stay packed end-to-end.
    """
    current = empty if empty is not None else Relation.empty(arity)
    index = 0
    if observer.enabled:
        observer.stage(0, current)
    while True:
        stats.fixpoint_iterations += 1
        if guard.enabled:
            guard.charge_iteration(index=index, size=len(current))
        if tracer.enabled:
            derived = _traced_step(step, current, index, tracer)
        else:
            derived = step(current)
        index += 1
        if derived.issubset(current):
            stats.bump("empty_delta_exits")
            return current
        if observer.enabled:
            observer.stage(
                index,
                current.union(derived),
                delta=derived.difference(current),
            )
        current = current.union(derived)


def iterate_partial(
    step: StepFunction,
    arity: int,
    stats: EvalStats,
    iteration_limit: Optional[int] = None,
    tracer: TracerLike = NULL_TRACER,
    guard: GuardLike = NULL_GUARD,
    empty: Optional[Relation] = None,
    observer: StageLogLike = NULL_STAGE_LOG,
) -> Relation:
    """PFP iteration from empty (Section 2.2's convention).

    Returns the limit when the sequence converges; the empty relation when
    it enters a cycle without converging.  ``iteration_limit`` optionally
    bounds the work for space-restricted experiments (Theorem 3.8 allows
    counting to ``2^{n^k}`` instead of remembering states; we remember
    hashes for speed but the live state is still one relation).  The
    seen-set stores :meth:`~repro.database.relation.Relation.state_key`
    tokens, so packed iterates are remembered by mask without ever
    materializing their tuple sets.
    """
    current = empty if empty is not None else Relation.empty(arity)
    seen = {current.state_key()}
    steps = 0
    if observer.enabled:
        observer.stage(0, current)
    while True:
        stats.fixpoint_iterations += 1
        if guard.enabled:
            guard.charge_iteration(index=steps, size=len(current))
        if tracer.enabled:
            after = _traced_step(step, current, steps, tracer)
        else:
            after = step(current)
        if observer.enabled and after != current:
            observer.stage(steps + 1, after)
        if after == current:
            return current
        if after.state_key() in seen:
            return empty if empty is not None else Relation.empty(arity)
        if guard.enabled:
            guard.charge_state(index=steps, states=len(seen))
        seen.add(after.state_key())
        current = after
        steps += 1
        if iteration_limit is not None and steps > iteration_limit:
            raise EvaluationError(
                f"partial fixpoint exceeded the iteration limit "
                f"{iteration_limit}"
            )


def _full_relation(arity: int, domain: Domain) -> Relation:
    return Relation(arity, domain.tuples(arity))


def _step_function(
    evaluator: BoundedEvaluator,
    node: _FixpointBase,
    env: Dict[str, Relation],
    stats: EvalStats,
) -> StepFunction:
    """One application of the operator φ for a *closed* fixpoint node."""
    order = [v.name for v in node.bound_vars]

    def step(current: Relation) -> Relation:
        stats.body_evaluations += 1
        inner_env = dict(env)
        inner_env[node.rel] = current
        table = evaluator._eval(node.body, inner_env)
        extra = set(table.variables) - set(order)
        if extra:
            raise EvaluationError(
                f"fixpoint body has unexpected free variables {sorted(extra)}"
            )
        table = table.cylindrify(order, evaluator.domain)
        return table.to_relation(order)

    return step


class NaiveSolver:
    """Restart-everything nested evaluation — the ``n^{k·l}`` baseline."""

    def __init__(
        self,
        stats: EvalStats,
        pfp_iteration_limit: Optional[int] = None,
        tracer: TracerLike = NULL_TRACER,
        guard: GuardLike = NULL_GUARD,
        observer: StageLogLike = NULL_STAGE_LOG,
    ):
        self._stats = stats
        self._pfp_limit = pfp_iteration_limit
        self._tracer = tracer
        self._guard = guard
        self._observer = observer

    def __call__(
        self,
        evaluator: BoundedEvaluator,
        node: _FixpointBase,
        env: Dict[str, Relation],
    ) -> Relation:
        observer = self._observer
        if observer.enabled:
            observer.begin(node.rel, type(node).__name__.lower())
        limit = None
        try:
            if self._tracer.enabled:
                with self._tracer.span(
                    "fp.solve",
                    rel=node.rel,
                    kind=type(node).__name__.lower(),
                    arity=node.arity,
                ) as span:
                    limit = self._solve(evaluator, node, env)
                    span.set(limit_size=len(limit))
            else:
                limit = self._solve(evaluator, node, env)
        finally:
            if observer.enabled:
                observer.end(limit)
        return limit

    def _solve(
        self,
        evaluator: BoundedEvaluator,
        node: _FixpointBase,
        env: Dict[str, Relation],
    ) -> Relation:
        step = _step_function(evaluator, node, env, self._stats)
        tracer = self._tracer
        guard = self._guard
        observer = self._observer
        backend = evaluator.backend
        if isinstance(node, LFP):
            return iterate_ascending(
                step,
                backend.empty_relation(node.arity),
                self._stats,
                tracer,
                guard,
                observer,
            )
        if isinstance(node, GFP):
            return iterate_descending(
                step,
                backend.full_relation(node.arity),
                self._stats,
                tracer,
                guard,
                observer,
            )
        if isinstance(node, IFP):
            return iterate_inflationary(
                step,
                node.arity,
                self._stats,
                tracer,
                guard,
                empty=backend.empty_relation(node.arity),
                observer=observer,
            )
        if isinstance(node, PFP):
            return iterate_partial(
                step,
                node.arity,
                self._stats,
                self._pfp_limit,
                tracer,
                guard,
                empty=backend.empty_relation(node.arity),
                observer=observer,
            )
        raise EvaluationError(f"unknown fixpoint node {node!r}")


class MonotoneSolver:
    """Warm-started nested evaluation.

    Remembers, per closed fixpoint subformula, the last computed limit and
    the relation environment it was computed under.  A new solve reuses the
    old limit as its starting point whenever the environment moved in the
    direction that keeps the old limit on the sound side of the new one:

    * LFP: old limit stays a pre-fixpoint when every environment relation
      moved in the direction of its polarity in the body (positively
      occurring relations grew, negatively occurring ones shrank);
    * GFP: old limit stays a post-fixpoint start when the environment moved
      the opposite way.

    PFP/IFP nodes are never warm-started (their bodies need not be
    monotone) and always recompute.
    """

    def __init__(
        self,
        stats: EvalStats,
        pfp_iteration_limit: Optional[int] = None,
        tracer: TracerLike = NULL_TRACER,
        guard: GuardLike = NULL_GUARD,
        observer: StageLogLike = NULL_STAGE_LOG,
    ):
        self._stats = stats
        self._pfp_limit = pfp_iteration_limit
        self._tracer = tracer
        self._guard = guard
        self._observer = observer
        self._memory: Dict[_FixpointBase, Tuple[Dict[str, Relation], Relation]] = {}
        # keyed by the node itself (structural): id()-keys would alias
        # recycled transient closed-node objects
        self._polarity_cache: Dict[Tuple[_FixpointBase, str], Optional[str]] = {}

    def __call__(
        self,
        evaluator: BoundedEvaluator,
        node: _FixpointBase,
        env: Dict[str, Relation],
    ) -> Relation:
        observer = self._observer
        if observer.enabled:
            observer.begin(node.rel, type(node).__name__.lower())
        limit = None
        try:
            if self._tracer.enabled:
                with self._tracer.span(
                    "fp.solve",
                    rel=node.rel,
                    kind=type(node).__name__.lower(),
                    arity=node.arity,
                ) as span:
                    limit = self._solve(evaluator, node, env)
                    span.set(limit_size=len(limit))
            else:
                limit = self._solve(evaluator, node, env)
        finally:
            if observer.enabled:
                observer.end(limit)
        return limit

    def _solve(
        self,
        evaluator: BoundedEvaluator,
        node: _FixpointBase,
        env: Dict[str, Relation],
    ) -> Relation:
        step = _step_function(evaluator, node, env, self._stats)
        tracer = self._tracer
        guard = self._guard
        observer = self._observer
        backend = evaluator.backend
        if isinstance(node, IFP):
            return iterate_inflationary(
                step,
                node.arity,
                self._stats,
                tracer,
                guard,
                empty=backend.empty_relation(node.arity),
                observer=observer,
            )
        if isinstance(node, PFP):
            return iterate_partial(
                step,
                node.arity,
                self._stats,
                self._pfp_limit,
                tracer,
                guard,
                empty=backend.empty_relation(node.arity),
                observer=observer,
            )
        relevant = {
            name: env[name]
            for name in free_relation_variables(node.body)
            if name in env and name != node.rel
        }
        ascending = isinstance(node, LFP)
        start = self._warm_start(node, relevant, ascending, evaluator.domain)
        if start is None:
            self._stats.bump("cold_starts")
            start = (
                backend.empty_relation(node.arity)
                if ascending
                else backend.full_relation(node.arity)
            )
        else:
            self._stats.bump("warm_starts")
        if ascending:
            limit = iterate_ascending(
                step, start, self._stats, tracer, guard, observer
            )
        else:
            limit = iterate_descending(
                step, start, self._stats, tracer, guard, observer
            )
        self._memory[node] = (relevant, limit)
        return limit

    def _warm_start(
        self,
        node: _FixpointBase,
        env: Dict[str, Relation],
        ascending: bool,
        domain: Domain,
    ) -> Optional[Relation]:
        cached = self._memory.get(node)
        if cached is None:
            return None
        old_env, old_limit = cached
        if set(old_env) != set(env):
            return None
        for name, new_rel in env.items():
            old_rel = old_env[name]
            if old_rel == new_rel:
                continue
            polarity = self._polarity(node, name)
            if polarity == "both" or polarity is None:
                return None
            grew = old_rel.issubset(new_rel)
            shrank = new_rel.issubset(old_rel)
            if not grew and not shrank:
                return None
            # direction of the fixpoint's movement for this env change
            moved_up = (grew and polarity == "positive") or (
                shrank and polarity == "negative"
            )
            if ascending and not moved_up:
                return None
            if not ascending and moved_up:
                return None
        return old_limit

    def _polarity(self, node: _FixpointBase, rel: str) -> Optional[str]:
        key = (node, rel)
        if key not in self._polarity_cache:
            self._polarity_cache[key] = polarity_of(node.body, rel)
        return self._polarity_cache[key]


def make_solver(
    strategy: FixpointStrategy,
    stats: EvalStats,
    pfp_iteration_limit: Optional[int] = None,
    tracer: TracerLike = NULL_TRACER,
    guard: GuardLike = NULL_GUARD,
    observer: StageLogLike = NULL_STAGE_LOG,
):
    """Build the fixpoint-solver callback for the bounded evaluator."""
    if strategy == FixpointStrategy.NAIVE:
        return NaiveSolver(stats, pfp_iteration_limit, tracer, guard, observer)
    if strategy == FixpointStrategy.MONOTONE:
        return MonotoneSolver(
            stats, pfp_iteration_limit, tracer, guard, observer
        )
    if strategy == FixpointStrategy.SEMINAIVE:
        # imported lazily: repro.perf.seminaive imports this module
        from repro.perf.seminaive import SemiNaiveSolver

        return SemiNaiveSolver(
            stats, pfp_iteration_limit, tracer, guard, observer
        )
    if strategy == FixpointStrategy.ALTERNATION:
        raise EvaluationError(
            "the ALTERNATION strategy evaluates whole queries; use "
            "repro.core.alternation.alternation_answer (the engine does "
            "this automatically)"
        )
    raise EvaluationError(f"unknown strategy {strategy!r}")


def solve_query(
    formula: Formula,
    db: Database,
    output_vars: Sequence[str],
    strategy: FixpointStrategy = FixpointStrategy.MONOTONE,
    k_limit: Optional[int] = None,
    stats: Optional[EvalStats] = None,
    pfp_iteration_limit: Optional[int] = None,
    require_positive: bool = True,
    tracer: TracerLike = NULL_TRACER,
    guard: GuardLike = NULL_GUARD,
    subquery_cache=None,
    backend=None,
    observer: StageLogLike = NULL_STAGE_LOG,
    compile=None,
    plan_cache=None,
) -> Relation:
    """Evaluate an FO/FP/PFP query under the chosen strategy.

    ``subquery_cache`` optionally threads a
    :class:`repro.perf.cache.SubqueryCache` into the bounded evaluator
    (shared-table memoization across subformulas and evaluations);
    ``backend`` selects the table representation (see
    :func:`repro.kernel.backend.resolve_backend`); ``observer``
    optionally records every fixpoint solve's Kleene stages (see
    :class:`repro.obs.provenance.StageLog` — ignored by the
    ALTERNATION strategy, which does not iterate per-node stages).
    """
    stats = stats if stats is not None else EvalStats()
    if require_positive:
        check_positivity(formula)
    if strategy == FixpointStrategy.ALTERNATION:
        from repro.core.alternation import alternation_answer

        if tracer.enabled:
            with tracer.span("fp.alternation"):
                return alternation_answer(
                    formula, db, output_vars, k_limit=k_limit, stats=stats
                )
        return alternation_answer(
            formula, db, output_vars, k_limit=k_limit, stats=stats
        )
    solver = make_solver(
        strategy, stats, pfp_iteration_limit, tracer, guard, observer
    )
    evaluator = BoundedEvaluator(
        db,
        fixpoint_solver=solver,
        k_limit=k_limit,
        stats=stats,
        tracer=tracer,
        guard=guard,
        subquery_cache=subquery_cache,
        backend=backend,
        compile=compile,
        plan_cache=plan_cache,
    )
    return evaluator.answer(formula, output_vars)
