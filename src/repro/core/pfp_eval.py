"""PFP^k evaluation with space accounting (Theorem 3.8).

Theorem 3.8: ``Answer_{PFP^k}`` is in PSPACE — the straightforward
evaluation keeps only the *current* iterate of each partial fixpoint,
a relation of arity ≤ k and hence of size ≤ n^k, even though the number
of iterations may be as large as ``2^{n^k}``.

:class:`SpaceMeter` makes that separation observable: it tracks the peak
number of *live* tuples (the polynomial quantity) separately from the
iteration count (the possibly-exponential quantity).  The library's
default PFP iteration additionally remembers state hashes to detect cycles
early; that is a time optimization outside the PSPACE budget, so the
metered evaluator here offers a ``strict_space`` mode that instead counts
iterations up to the ``2^{n^k}`` bound with O(1) extra memory, exactly as
the theorem's proof does.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.database.database import Database
from repro.database.relation import Relation
from repro.errors import EvaluationError
from repro.core.fo_eval import BoundedEvaluator
from repro.core.fp_eval import (
    NaiveSolver,
    _step_function,
    iterate_ascending,
    iterate_descending,
    iterate_inflationary,
)
from repro.core.interp import EvalStats
from repro.guard.budget import GuardLike, NULL_GUARD
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import NULL_STAGE_LOG, StageLogLike
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.logic.syntax import Formula, GFP, IFP, LFP, PFP, _FixpointBase


class SpaceMeter:
    """Peak live-state accounting for the PSPACE bound of Theorem 3.8.

    Backed by gauges/counters in a
    :class:`~repro.obs.metrics.MetricsRegistry` (``pfp.peak_live_tuples``,
    ``pfp.peak_live_relations``, ``pfp.iterations``); pass the registry of
    the evaluation's :class:`~repro.core.interp.EvalStats` to keep one
    unified store per query.
    """

    __slots__ = ("registry", "_peak_tuples", "_peak_relations", "_iterations", "_live")

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._peak_tuples = self.registry.gauge("pfp.peak_live_tuples")
        self._peak_relations = self.registry.gauge("pfp.peak_live_relations")
        self._iterations = self.registry.counter("pfp.iterations")
        self._live: Dict[int, int] = {}

    @property
    def peak_live_tuples(self) -> int:
        return self._peak_tuples.value

    @property
    def peak_live_relations(self) -> int:
        return self._peak_relations.value

    @property
    def total_iterations(self) -> int:
        return self._iterations.value

    @property
    def live_tuples(self) -> int:
        """The current total of live tuples across open fixpoints."""
        return sum(self._live.values())

    @property
    def live_relations(self) -> int:
        return len(self._live)

    def enter(self, key: int, tuples: int) -> None:
        self._live[key] = tuples
        self._observe()

    def update(self, key: int, tuples: int) -> None:
        self._live[key] = tuples
        self._iterations.inc()
        self._observe()

    def leave(self, key: int) -> None:
        self._live.pop(key, None)

    def _observe(self) -> None:
        self._peak_tuples.set_max(sum(self._live.values()))
        self._peak_relations.set_max(len(self._live))

    def __repr__(self) -> str:
        return (
            f"SpaceMeter(peak_live_tuples={self.peak_live_tuples}, "
            f"peak_live_relations={self.peak_live_relations}, "
            f"total_iterations={self.total_iterations})"
        )


class MeteredPFPSolver(NaiveSolver):
    """Naive nested solving with per-fixpoint live-state metering.

    ``strict_space``: when true, partial fixpoints never store a "seen
    states" set; they count iterations up to ``2^{n^k}`` (the number of
    distinct k-ary relations) and declare divergence when the bound is
    exceeded without convergence — the textbook PSPACE algorithm.  When
    false (the default), cycles are detected by hashing previous states,
    trading space for time.

    The guard's state budget caps the non-strict mode's ``seen`` set
    (worst case ``2^{n^k}`` stored relations): exhausting it does not
    fail the query — the evaluator discards the set and *degrades* to
    the strict counting mode mid-iteration, which is sound because the
    stage sequence from ``∅`` is deterministic (no convergence within
    ``2^{n^k}`` total steps implies a cycle).  Fallbacks are counted in
    ``stats`` under ``pfp_strict_fallbacks``.
    """

    def __init__(
        self,
        stats: EvalStats,
        meter: SpaceMeter,
        strict_space: bool = False,
        tracer: TracerLike = NULL_TRACER,
        guard: GuardLike = NULL_GUARD,
        degrade: bool = True,
        observer: StageLogLike = NULL_STAGE_LOG,
    ):
        super().__init__(stats, tracer=tracer, guard=guard, observer=observer)
        self._meter = meter
        self._strict = strict_space
        self._degrade = degrade
        self._next_key = 0

    def _solve(
        self,
        evaluator: BoundedEvaluator,
        node: _FixpointBase,
        env: Dict[str, Relation],
    ) -> Relation:
        key = self._next_key
        self._next_key += 1
        step = _step_function(evaluator, node, env, self._stats)
        meter = self._meter
        tracer = self._tracer

        def metered_step(current: Relation) -> Relation:
            after = step(current)
            meter.update(key, len(after))
            if tracer.enabled:
                # snapshot of the *live* state — the Theorem 3.8 quantity
                tracer.event(
                    "pfp.space",
                    live_tuples=meter.live_tuples,
                    live_relations=meter.live_relations,
                )
            return after

        backend = evaluator.backend
        observer = self._observer
        meter.enter(key, 0)
        try:
            if isinstance(node, LFP):
                return iterate_ascending(
                    metered_step,
                    backend.empty_relation(node.arity),
                    self._stats,
                    tracer,
                    observer=observer,
                )
            if isinstance(node, GFP):
                return iterate_descending(
                    metered_step,
                    backend.full_relation(node.arity),
                    self._stats,
                    tracer,
                    observer=observer,
                )
            if isinstance(node, IFP):
                return iterate_inflationary(
                    metered_step,
                    node.arity,
                    self._stats,
                    tracer,
                    empty=backend.empty_relation(node.arity),
                    observer=observer,
                )
            if isinstance(node, PFP):
                return self._partial(metered_step, node, evaluator)
            raise EvaluationError(f"unknown fixpoint node {node!r}")
        finally:
            meter.leave(key)

    def _partial(
        self,
        step,
        node: _FixpointBase,
        evaluator: BoundedEvaluator,
    ) -> Relation:
        arity = node.arity
        empty = evaluator.backend.empty_relation(arity)
        current = empty
        tracer = self._tracer
        guard = self._guard
        observer = self._observer
        if observer.enabled:
            observer.stage(0, current)
        # 2^{n^k} distinct k-ary relations: past this many steps the
        # deterministic stage sequence must have revisited a state, so it
        # cycles and the partial fixpoint is empty by convention
        n = len(evaluator.domain)
        distinct_relations = 2 ** (n**arity)
        seen: Optional[set] = None if self._strict else {current.state_key()}
        index = 0
        while index < distinct_relations:
            self._stats.fixpoint_iterations += 1
            if guard.enabled:
                guard.charge_iteration(index=index, live_rows=len(current))
            if tracer.enabled:
                with tracer.span("fp.iteration") as span:
                    after = step(current)
                    span.set(
                        index=index,
                        size=len(after),
                        delta=len(after) - len(current),
                    )
            else:
                after = step(current)
            index += 1
            if after == current:
                return current
            if observer.enabled:
                observer.stage(index, after)
            if seen is not None:
                if after.state_key() in seen:
                    return empty
                if guard.try_charge_state():
                    seen.add(after.state_key())
                elif self._degrade:
                    # state budget exhausted: degrade to the strict
                    # O(1)-memory counting mode (sound — see class doc)
                    seen = None
                    self._stats.bump("pfp_strict_fallbacks")
                    if tracer.enabled:
                        tracer.event("pfp.strict_fallback", index=index)
                else:
                    guard.charge_state(0, index=index, states=len(seen))
            current = after
        return empty


def pfp_answer(
    formula: Formula,
    db: Database,
    output_vars: Sequence[str],
    stats: Optional[EvalStats] = None,
    meter: Optional[SpaceMeter] = None,
    strict_space: bool = False,
    k_limit: Optional[int] = None,
    tracer: TracerLike = NULL_TRACER,
    guard: GuardLike = NULL_GUARD,
    degrade: bool = True,
    backend=None,
    observer: StageLogLike = NULL_STAGE_LOG,
    compile=None,
    plan_cache=None,
) -> Relation:
    """Evaluate a PFP^k query with live-space accounting.

    Returns the answer relation; peak-space/iteration numbers accumulate in
    ``meter`` (pass one in to read them back).  ``guard`` bounds the work:
    iterations/deadline exhaustion raises, while the state budget only
    degrades cycle detection to strict counting (see
    :class:`MeteredPFPSolver`).  The meter is released on the way out even
    when a budget trips mid-fixpoint.
    """
    stats = stats if stats is not None else EvalStats()
    meter = meter if meter is not None else SpaceMeter(registry=stats.registry)
    solver = MeteredPFPSolver(
        stats,
        meter,
        strict_space=strict_space,
        tracer=tracer,
        guard=guard,
        degrade=degrade,
        observer=observer,
    )
    evaluator = BoundedEvaluator(
        db,
        fixpoint_solver=solver,
        k_limit=k_limit,
        stats=stats,
        tracer=tracer,
        guard=guard,
        backend=backend,
        compile=compile,
        plan_cache=plan_cache,
    )
    return evaluator.answer(formula, output_vars)
