"""The paper's primary contribution: bounded-variable query evaluation.

Modules:

* :mod:`~repro.core.interp` — assignment tables (named-column k-ary
  relations), the intermediate-result representation of Prop 3.1;
* :mod:`~repro.core.naive_eval` — slow, obviously-correct reference
  semantics used as the testing oracle;
* :mod:`~repro.core.fo_eval` — bottom-up FO^k evaluation (Prop 3.1);
* :mod:`~repro.core.fp_eval` — FP^k evaluation under three strategies
  (naive ``n^{k·l}``, monotone warm-start ``l·n^k``, alternation-aware with
  certificate emission — Theorem 3.5);
* :mod:`~repro.core.certificates` — Lemma 3.3/3.4 certificates: extraction
  and polynomial-time verification;
* :mod:`~repro.core.pfp_eval` — PFP^k evaluation (Theorem 3.8);
* :mod:`~repro.core.eso_rewrite` — the Lemma 3.6 arity reduction;
* :mod:`~repro.core.grounding` — FO^k → CNF grounding over a finite database;
* :mod:`~repro.core.eso_eval` — ESO^k evaluation through the SAT solver
  (Corollary 3.7);
* :mod:`~repro.core.engine` — the uniform front door (:class:`Query`,
  :func:`evaluate`).
"""

from repro.core.engine import EvalOptions, EvalResult, Query, evaluate
from repro.core.fp_eval import FixpointStrategy
from repro.core.interp import EvalStats, VarTable

__all__ = [
    "Query",
    "evaluate",
    "EvalOptions",
    "EvalResult",
    "FixpointStrategy",
    "VarTable",
    "EvalStats",
]
