"""Bottom-up bounded-variable evaluation (Proposition 3.1).

The evaluator views every subformula as a subquery and computes its value —
a :class:`~repro.core.interp.VarTable` over the subformula's free variables —
bottom-up.  For a query in ``FO^k`` every such table has at most ``k``
columns, hence at most ``n^k`` rows: this is the paper's polynomial bound on
intermediate results, and :class:`~repro.core.interp.EvalStats` checks it at
runtime.

Fixpoint subformulas are delegated to a pluggable solver (see
:mod:`repro.core.fp_eval`); second-order quantifiers are rejected here and
handled by :mod:`repro.core.eso_eval`.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.database.database import Database
from repro.database.domain import Domain
from repro.database.relation import Relation
from repro.errors import EvaluationError, VariableBoundError
from repro.core.interp import EvalStats, VarTable
from repro.kernel.backend import resolve_backend
from repro.perf.compile import (
    UNCOMPILABLE,
    compile_program,
    resolve_compile,
    resolve_plan_cache,
    subformula_at,
)
from repro.guard.budget import GuardLike, NULL_GUARD
from repro.obs.tracer import NULL_TRACER, TracerLike
from repro.logic.syntax import (
    And,
    Const,
    Equals,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    RelAtom,
    SOExists,
    Term,
    Truth,
    Var,
    _FixpointBase,
)
from repro.logic.variables import free_variables, variable_width

RelEnv = Mapping[str, Relation]
FixpointSolver = Callable[
    ["BoundedEvaluator", _FixpointBase, Dict[str, Relation]], Relation
]


def atom_table(
    relation: Relation, terms: Sequence[Term], domain: Domain
) -> VarTable:
    """The table of an atom ``R(t_1, ..., t_m)``.

    Columns are the distinct variables among the terms; constants select,
    repeated variables impose equality — the "selection condition on S_i
    according to the pattern of equalities" of Lemma 3.6's proof.
    """
    if len(terms) != relation.arity:
        raise EvaluationError(
            f"atom has {len(terms)} arguments for a relation of arity "
            f"{relation.arity}"
        )
    var_positions: Dict[str, list] = {}
    const_positions = []
    for i, term in enumerate(terms):
        if isinstance(term, Var):
            var_positions.setdefault(term.name, []).append(i)
        elif isinstance(term, Const):
            const_positions.append((i, term.value))
        else:
            raise EvaluationError(f"unknown term {term!r}")
    columns = sorted(var_positions)
    rows = []
    for tup in relation.tuples:
        if any(tup[i] != value for i, value in const_positions):
            continue
        ok = True
        for positions in var_positions.values():
            first = tup[positions[0]]
            if any(tup[p] != first for p in positions[1:]):
                ok = False
                break
        if ok:
            rows.append(tuple(tup[var_positions[v][0]] for v in columns))
    return VarTable(tuple(columns), rows)


class BoundedEvaluator:
    """Evaluates formulas bottom-up with bounded-arity intermediates.

    Parameters
    ----------
    db:
        The database ``B``.
    fixpoint_solver:
        Callback ``(evaluator, node, rel_env) -> Relation`` computing the
        limit of a fixpoint subformula whose free individual variables have
        already been substituted away (the engine evaluates parameterized
        fixpoints one parameter assignment at a time).  ``None`` rejects
        fixpoints (pure FO^k mode).
    k_limit:
        Optional hard bound ``k``; queries of larger variable width raise
        :class:`~repro.errors.VariableBoundError` instead of silently
        building wide intermediates.
    stats:
        Shared audit object; a fresh one is created when omitted.
    tracer:
        Span tracer; the shared no-op tracer by default.  When enabled,
        every subformula evaluation is a ``fo.<Connective>`` span
        annotated with the resulting table's rows and arity.
    guard:
        Resource guard; the shared no-op guard by default.  When enabled,
        every subformula evaluation is a cooperative checkpoint and every
        intermediate table is charged against the row budget (the
        enforced version of Prop 3.1's ``n^k`` invariant).
    subquery_cache:
        Optional :class:`repro.perf.cache.SubqueryCache`.  Unlike the
        internal per-evaluation memo (which keys on formula *identity*),
        the cache keys on formula *structure* plus the relevant relation
        environment, so it also serves repeated subtrees, fixpoint
        parameter assignments, and — when one instance is shared —
        entirely separate evaluations.  Served tables are charged to the
        guard's row budget and counted in ``stats`` like computed ones.
    backend:
        Table representation: ``"sparse"`` (reference), ``"packed"``
        (the :mod:`repro.kernel` bitmask kernel), an already-built
        backend instance, or ``None`` to consult ``REPRO_BENCH_BACKEND``
        (see :func:`repro.kernel.backend.resolve_backend`).  Backends
        change only the representation of intermediate tables — answers
        and all :class:`EvalStats` counters are identical.
    compile:
        ``True`` routes every pure-FO subtree through the straight-line
        query compiler (:mod:`repro.perf.compile`) — same answers, same
        counters, same guard charges, no per-node dispatch.  ``None``
        (default) consults the ``REPRO_COMPILE`` environment variable;
        formulas the compiler declines fall back to this interpreter
        node by node.
    plan_cache:
        Optional :class:`repro.perf.compile.PlanCache` shared across
        evaluators/requests; ``None`` gives each compiled evaluator a
        private cache (carrying the ``compile.*`` counters), ``False``
        disables plan caching.
    """

    def __init__(
        self,
        db: Database,
        fixpoint_solver: Optional[FixpointSolver] = None,
        k_limit: Optional[int] = None,
        stats: Optional[EvalStats] = None,
        tracer: TracerLike = NULL_TRACER,
        guard: GuardLike = NULL_GUARD,
        subquery_cache=None,
        backend=None,
        compile=None,
        plan_cache=None,
    ):
        self.db = db
        self.domain = db.domain
        self.fixpoint_solver = fixpoint_solver
        self.k_limit = k_limit
        self.stats = stats if stats is not None else EvalStats()
        self.backend = resolve_backend(
            backend, db.domain, registry=self.stats.registry, tracer=tracer
        )
        self.tracer = tracer
        self.guard = guard
        self.subquery_cache = subquery_cache
        self._compile = resolve_compile(compile)
        self.plan_cache = (
            resolve_plan_cache(plan_cache, registry=self.stats.registry)
            if self._compile
            else None
        )
        # compiled-program entries per (formula identity, dynamic rel
        # set): [formula, Program-or-None, warm]; the formula reference
        # keeps the id()-based key alive
        self._programs: Dict[tuple, list] = {}
        # memo entries keep a strong reference to their formula so the
        # id()-based key can never alias a recycled object
        self._memo: Dict[tuple, Tuple[Formula, VarTable]] = {}
        # free-relation-variable sets per formula, same strong-ref scheme
        self._free_rels: Dict[int, tuple] = {}
        # clipped formula renderings for span `expr` attributes, keyed by
        # id() with the usual strong-reference scheme; only populated
        # when tracing is on
        self._expr_labels: Dict[int, Tuple[Formula, str]] = {}

    # -- public API --------------------------------------------------------

    def evaluate(
        self, formula: Formula, rel_env: Optional[RelEnv] = None
    ) -> VarTable:
        """The table ``{assignments a : (B, a) ⊨ formula}``."""
        if self.k_limit is not None:
            width = variable_width(formula)
            if width > self.k_limit:
                raise VariableBoundError(
                    f"query uses {width} variables, engine bound is "
                    f"k={self.k_limit}"
                )
        env = dict(rel_env or {})
        return self._eval(formula, env)

    def answer(
        self,
        formula: Formula,
        output_vars: Sequence[str],
        rel_env: Optional[RelEnv] = None,
    ) -> Relation:
        """The query answer as a relation with the given column order.

        Per the paper's Prop 3.1 proof: compute the table, then project and
        permute — extra output variables not free in the formula range over
        the whole domain.
        """
        out = tuple(output_vars)
        if len(set(out)) != len(out):
            raise EvaluationError(f"duplicate output variables: {out}")
        missing = free_variables(formula) - set(out)
        if missing:
            raise EvaluationError(
                f"output variables {out} do not cover free variables "
                f"{sorted(missing)}"
            )
        table = self.evaluate(formula, rel_env)
        table = table.cylindrify(out, self.domain)
        if self.guard.enabled:
            self.guard.charge_rows(len(table), node="answer")
        self.stats.observe_table(table)
        self.backend.observe(table)
        return table.to_relation(out)

    # -- recursive evaluation ------------------------------------------

    def _eval(self, formula: Formula, env: Dict[str, Relation]) -> VarTable:
        key = self._memo_key(formula, env)
        cached = self._memo.get(key)
        if cached is not None:
            # the entry holds a strong reference to its formula, so an
            # id() match on a *live* object guarantees identity — without
            # the reference CPython could reuse the id of a dead formula
            self.stats.bump("memo_hits")
            return cached[1]
        cache = self.subquery_cache
        ckey = None
        if cache is not None and cache.cacheable(formula):
            ckey = cache.key_for(formula, env, self.db, self.backend.name)
            if ckey is not None:
                hit = cache.get(ckey)
                if hit is not None:
                    self.stats.bump("subquery_cache_hits")
                    if self.guard.enabled:
                        self.guard.charge_rows(
                            len(hit), node=type(formula).__name__
                        )
                    self.stats.observe_table(hit)
                    self.backend.observe(hit)
                    self._memo[key] = (formula, hit)
                    return hit
                self.stats.bump("subquery_cache_misses")
        if self._compile:
            entry = self._program_for(formula, env)
            if entry[1] is not None:
                table = self._run_program(entry, env)
                if ckey is not None:
                    cache.put(ckey, table)
                self._memo[key] = (formula, table)
                return table
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span(
                f"fo.{type(formula).__name__}", expr=self._expr_label(formula)
            ) as span:
                table = self._eval_node(formula, env)
                span.set(rows=len(table), arity=len(table.variables))
        else:
            table = self._eval_node(formula, env)
        guard = self.guard
        if guard.enabled:
            guard.charge_rows(len(table), node=type(formula).__name__)
        self.stats.observe_table(table)
        self.backend.observe(table)
        if ckey is not None:
            cache.put(ckey, table)
        self._memo[key] = (formula, table)
        return table

    def _expr_label(self, formula: Formula) -> str:
        cached = self._expr_labels.get(id(formula))
        if cached is None:
            from repro.logic.printer import formula_label

            cached = (formula, formula_label(formula))
            self._expr_labels[id(formula)] = cached
        return cached[1]

    def _rel_names(self, formula: Formula) -> tuple:
        cached = self._free_rels.get(id(formula))
        if cached is None:
            from repro.logic.variables import free_relation_variables

            cached = (formula, tuple(sorted(free_relation_variables(formula))))
            self._free_rels[id(formula)] = cached
        return cached[1]

    def _memo_key(self, formula: Formula, env: Dict[str, Relation]):
        rels = self._rel_names(formula)
        # state_key lets packed relations key by mask instead of hashing
        # their materialized tuple sets
        bound_here = tuple(
            (name, env[name].state_key()) for name in rels if name in env
        )
        return (id(formula), bound_here)

    # -- compiled plans -----------------------------------------------

    def _program_for(self, formula: Formula, env: Dict[str, Relation]) -> list:
        """The ``[formula, Program-or-None, warm, nodes]`` entry for this node.

        Programs are specialized to the *dynamic* relation set — the free
        relation names bound in ``env`` (fixpoint recursion relations)
        rather than resolved from the immutable database.  The entry's
        ``warm`` flag flips after the first successful run, switching the
        replayed charge schedule from the interpreter's first-visit
        behaviour to its memo-served steady state.  ``nodes`` holds the
        program's static-segment subtrees resolved against *this*
        formula object (cached plans are shared across structurally
        equal formulas, but the memo keys on object identity).
        """
        dyn = tuple(
            name for name in self._rel_names(formula) if name in env
        )
        pkey = (id(formula), dyn)
        entry = self._programs.get(pkey)
        if entry is None:
            program = self._build_program(formula, frozenset(dyn))
            nodes = None
            if program is not None:
                nodes = [
                    subformula_at(formula, seg[0])
                    for seg in program.segments
                ]
            entry = [formula, program, False, nodes]
            self._programs[pkey] = entry
        return entry

    def _build_program(self, formula: Formula, dyn: frozenset):
        cache = self.plan_cache
        key = None
        if cache is not None:
            key = cache.key_for(formula, dyn, self.db, self.backend.name)
            if key is not None:
                hit = cache.get(key)
                if hit is not None:
                    return None if hit is UNCOMPILABLE else hit
        from time import perf_counter

        start = perf_counter()
        program = compile_program(formula, dyn, self.db, self.backend)
        if cache is not None:
            cache.record_build(perf_counter() - start)
            if key is not None:
                cache.put(key, program)
        return program

    def _run_program(self, entry: list, env: Dict[str, Relation]) -> VarTable:
        program = entry[1]
        tracer = self.tracer
        if tracer.enabled:
            value = program.run_traced(
                env, self.stats, self.guard, tracer, entry[2],
                memo=self._memo, nodes=entry[3],
            )
        else:
            value = program.run(
                env, self.stats, self.guard, entry[2],
                memo=self._memo, nodes=entry[3], tracer=tracer,
            )
        entry[2] = True
        return program.wrap(value, tracer)

    def _eval_node(self, formula: Formula, env: Dict[str, Relation]) -> VarTable:
        if isinstance(formula, RelAtom):
            relation = env.get(formula.name)
            if relation is None:
                relation = self.db.relation(formula.name)
            return self.backend.atom_table(relation, formula.terms)
        if isinstance(formula, Equals):
            return self._eval_equals(formula)
        if isinstance(formula, Truth):
            return (
                self.backend.tautology()
                if formula.value
                else self.backend.contradiction()
            )
        if isinstance(formula, Not):
            sub = self._eval(formula.sub, env)
            return sub.complement(self.domain)
        if isinstance(formula, And):
            if not formula.subs:
                return self.backend.tautology()
            table = self._eval(formula.subs[0], env)
            for part in formula.subs[1:]:
                table = table.join(self._eval(part, env))
                if self.guard.enabled:
                    self.guard.charge_rows(len(table), node="And")
                self.stats.observe_table(table)
            return table
        if isinstance(formula, Or):
            if not formula.subs:
                return self.backend.contradiction()
            table = self._eval(formula.subs[0], env)
            for part in formula.subs[1:]:
                table = table.union(self._eval(part, env), self.domain)
                if self.guard.enabled:
                    self.guard.charge_rows(len(table), node="Or")
                self.stats.observe_table(table)
            return table
        if isinstance(formula, Exists):
            sub = self._eval(formula.sub, env)
            if formula.var.name in sub.variables:
                return sub.project_out(formula.var.name)
            # vacuous quantification: true iff the domain is non-empty
            if len(self.domain) == 0:
                return self.backend.table(sub.variables, [])
            return sub
        if isinstance(formula, Forall):
            sub = self._eval(formula.sub, env)
            if formula.var.name in sub.variables:
                return sub.forall_out(formula.var.name, self.domain)
            if len(self.domain) == 0:
                # vacuously true; with free variables present there are no
                # assignments at all, otherwise the single empty assignment
                return self.backend.table(
                    sub.variables, [()] if not sub.variables else []
                )
            return sub
        if isinstance(formula, _FixpointBase):
            return self._eval_fixpoint(formula, env)
        if isinstance(formula, SOExists):
            raise EvaluationError(
                "second-order quantification reached the bounded FO/FP "
                "evaluator; route ESO queries through repro.core.eso_eval"
            )
        raise EvaluationError(f"unknown formula node {formula!r}")

    def _eval_equals(self, formula: Equals) -> VarTable:
        left, right = formula.left, formula.right
        if isinstance(left, Var) and isinstance(right, Var):
            if left.name == right.name:
                return self.backend.full((left.name,))
            return self.backend.table(
                (left.name, right.name),
                ((v, v) for v in self.domain),
            )
        if isinstance(left, Const) and isinstance(right, Var):
            left, right = right, left
        if isinstance(left, Var) and isinstance(right, Const):
            if right.value not in self.domain:
                return self.backend.table((left.name,), [])
            return self.backend.table((left.name,), [(right.value,)])
        if isinstance(left, Const) and isinstance(right, Const):
            return (
                self.backend.tautology()
                if left.value == right.value
                else self.backend.contradiction()
            )
        raise EvaluationError(f"malformed equality {formula!r}")

    # -- fixpoints ----------------------------------------------------

    def _eval_fixpoint(
        self, node: _FixpointBase, env: Dict[str, Relation]
    ) -> VarTable:
        if self.fixpoint_solver is None:
            raise EvaluationError(
                "fixpoint operator reached a pure-FO evaluator; use the FP "
                "engine (repro.core.fp_eval) for fixpoint queries"
            )
        from repro.logic.substitution import substitute

        bound_names = {v.name for v in node.bound_vars}
        params = tuple(sorted(free_variables(node.body) - bound_names))
        arg_vars = sorted(
            {t.name for t in node.args if isinstance(t, Var)}
        )
        out_columns = tuple(sorted(set(arg_vars) | set(params)))
        rows = []
        for combo in self.domain.tuples(len(params)):
            if params:
                mapping = {p: Const(v) for p, v in zip(params, combo)}
                closed = type(node)(
                    node.rel,
                    node.bound_vars,
                    substitute(node.body, mapping),
                    node.args,
                )
            else:
                closed = node
            limit = self.fixpoint_solver(self, closed, dict(env))
            self.stats.bump("fixpoint_solves")
            # rows of the node's table: assignments to arg variables (and
            # the parameters) whose argument tuple lands in the limit
            param_assignment = dict(zip(params, combo))
            member_table = self.backend.atom_table(limit, node.args)
            member_table = member_table.cylindrify(arg_vars, self.domain)
            if not params:
                # no parameters: the member table over the (sorted) arg
                # variables IS the node's table — skip the per-row merge
                return member_table
            for assignment in member_table.assignments():
                merged = dict(param_assignment)
                consistent = True
                for var, value in assignment.items():
                    # an argument variable that is also a parameter must
                    # agree with the parameter's current value
                    if var in merged and merged[var] != value:
                        consistent = False
                        break
                    merged[var] = value
                if consistent:
                    rows.append(tuple(merged[c] for c in out_columns))
        return self.backend.table(out_columns, rows)
