"""The ``repro serve`` subcommand: run, and smoke-test, the service.

Two modes share one flag surface:

* **server mode** (default) — register databases from standard-encoding
  files (``--db NAME=PATH``), prepare queries
  (``--prepare NAME=OUTVARS=QUERY``), then listen until interrupted::

      python -m repro serve --db g=graph.db \\
          --prepare "tc=u,v=[lfp S(x, y). E(x, y) | exists z. (E(x, z) & S(z, y))](u, v)" \\
          --port 8080 --workers 2

* **smoke mode** (``--smoke N``) — the CI resilience drill: start the
  server on an ephemeral port, fire ``N`` concurrent HTTP clients at it
  across four tenants, inject one worker crash mid-run
  (``--crash-at``), and assert that every response is either a correct
  answer (differentially checked against a direct in-process
  evaluation) or a structured 429/503.  Exit 0 only if that holds and
  the injected crash was actually retried.

The smoke drill auto-provisions a seeded random graph database
(``smoke``) and the transitive-closure query (``tc``) so it needs no
files; ``--telemetry PATH`` writes the per-request JSONL log CI uploads
as an artifact.

The drill also exercises the observability pipeline end to end: every
request runs traced (cross-process span reassembly), ``GET /metrics``
is scraped *while the workload is in flight* and must parse
(``--metrics-out`` saves the scrape), the last assembled trace is
written as JSONL ready for ``repro explain --trace-file``
(``--trace-out``), and when a crash is injected with ``--flight-dump``
set the drill asserts the crash left a JSON post-mortem on disk.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
from typing import Dict, List, Optional, Tuple

from repro.core.engine import Query
from repro.database.database import Database
from repro.errors import ReproError
from repro.guard.budget import Budget
from repro.guard.chaos import ChaosPolicy
from repro.obs.correlate import trace_jsonl
from repro.obs.expo import ExpositionError, parse_exposition
from repro.serve.admission import TenantPolicy
from repro.serve.http import ServeHTTP
from repro.serve.service import ChaosSpec, QueryService

#: The smoke drill's workload: transitive closure, the paper's canonical
#: bounded-variable fixpoint query.
TC_QUERY = "[lfp S(x, y). E(x, y) | exists z. (E(x, z) & S(z, y))](u, v)"


def _smoke_db(seed: int, size: int = 12, edges: int = 30) -> Database:
    rng = random.Random(seed)
    tuples = set()
    while len(tuples) < edges:
        tuples.add((rng.randrange(size), rng.randrange(size)))
    return Database.from_tuples(range(size), {"E": (2, sorted(tuples))})


def _parse_prepare(spec: str) -> Tuple[str, Tuple[str, ...], str]:
    parts = spec.split("=", 2)
    if len(parts) != 3:
        raise ReproError(
            f"--prepare expects NAME=OUTVARS=QUERY, got {spec!r}"
        )
    name, outvars, text = parts
    out = tuple(v.strip() for v in outvars.split(",") if v.strip())
    return name, out, text


def _build_service(args: argparse.Namespace) -> QueryService:
    injector = None
    if args.smoke is not None and args.crash_at > 0:
        crash = ChaosPolicy(
            seed=args.seed, fail_at=2, fault_kinds=("crash",)
        )

        def injector(index: int) -> ChaosSpec:
            # one transient crash: the first attempt of request
            # `crash_at` dies, its retry runs clean
            return [crash, None] if index == args.crash_at else None

    service = QueryService(
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        workers=args.workers,
        telemetry_path=args.telemetry,
        fault_injector=injector,
        flight_dump_dir=args.flight_dump,
        compile=args.compile,
    )
    for tenant, weight in (("t0", 1.0), ("t1", 1.0), ("t2", 2.0), ("t3", 4.0)):
        service.set_tenant(
            tenant,
            TenantPolicy(
                weight=weight,
                budget=Budget(deadline_seconds=args.request_deadline),
            ),
        )
    for spec in args.db or ():
        name, _, path = spec.partition("=")
        if not path:
            raise ReproError(f"--db expects NAME=PATH, got {spec!r}")
        from repro.database.encoding import decode_database

        with open(path) as handle:
            service.register_database(name, decode_database(handle.read().strip()))
    for spec in args.prepare or ():
        name, out, text = _parse_prepare(spec)
        service.prepare(name, text, out)
    return service


async def _http_json(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[Dict[str, object]] = None,
) -> Tuple[int, Dict[str, object]]:
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    # parse Content-Length rather than reading to EOF: a worker process
    # forked while this connection is open would hold its fd and delay
    # the FIN indefinitely
    head_bytes = await reader.readuntil(b"\r\n\r\n")
    status = int(head_bytes.split()[1])
    length = 0
    for line in head_bytes.decode("latin-1").split("\r\n"):
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body_bytes = await reader.readexactly(length) if length else b""
    writer.close()
    return status, json.loads(body_bytes.decode() or "{}")


async def _http_text(host: str, port: int, path: str) -> Tuple[int, str]:
    """GET a raw text document (the ``/metrics`` exposition)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Connection: close\r\n\r\n".encode()
    )
    await writer.drain()
    head_bytes = await reader.readuntil(b"\r\n\r\n")
    status = int(head_bytes.split()[1])
    length = 0
    for line in head_bytes.decode("latin-1").split("\r\n"):
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body_bytes = await reader.readexactly(length) if length else b""
    writer.close()
    return status, body_bytes.decode("utf-8")


async def _run_smoke(args: argparse.Namespace) -> int:
    service = _build_service(args)
    db = _smoke_db(args.seed)
    service.register_database("smoke", db)
    service.prepare("tc", TC_QUERY, ("u", "v"))
    expected = sorted(
        Query.parse(TC_QUERY, ("u", "v")).run(db).relation.tuples
    )
    server = ServeHTTP(service, args.host, args.port)
    host, port = await server.start()
    print(f"smoke: serving on {host}:{port}, firing {args.smoke} requests "
          f"(crash injected at request {args.crash_at})")

    async def one_call(i: int) -> Tuple[int, Dict[str, object]]:
        try:
            return await _http_json(
                host, port, "POST", "/call",
                {"tenant": f"t{i % 4}", "query": "tc", "db": "smoke",
                 "trace": True},
            )
        except Exception as exc:  # a hang/connection bug = drill failure
            return -1, {"error": "client", "detail": repr(exc)}

    async def mid_drill_scrape() -> Tuple[int, str]:
        # scrape /metrics while the workload is in flight — the
        # exposition must render and parse under live traffic
        await asyncio.sleep(0.01)
        try:
            return await _http_text(host, port, "/metrics")
        except Exception as exc:
            return -1, repr(exc)

    gathered = await asyncio.gather(
        mid_drill_scrape(), *[one_call(i) for i in range(args.smoke)]
    )
    scrape_status, scrape_text = gathered[0]
    results = gathered[1:]
    _, stats = await _http_json(host, port, "GET", "/stats")
    trace_status, trace_body = await _http_json(host, port, "GET", "/trace")
    await server.close()
    service.close()

    counts: Dict[int, int] = {}
    wrong: List[int] = []
    for i, (status, body) in enumerate(results):
        counts[status] = counts.get(status, 0) + 1
        if status == 200:
            rows = sorted(tuple(row) for row in body["rows"])
            if rows != expected:
                wrong.append(i)
    metrics = stats.get("metrics", {})
    retries = metrics.get("serve.retries", 0)
    crashes = metrics.get("serve.worker_crashes", 0)
    print(f"smoke: statuses={dict(sorted(counts.items()))} "
          f"retries={retries} worker_crashes={crashes} "
          f"shed={metrics.get('serve.shed', 0)}")
    latency = metrics.get("serve.latency_seconds", {})
    if isinstance(latency, dict) and latency.get("count"):
        print(f"smoke: latency p50={latency.get('p50', 0):.4f}s "
              f"p95={latency.get('p95', 0):.4f}s "
              f"p99={latency.get('p99', 0):.4f}s")
    slo_total = stats.get("slo", {}).get("total", {}).get("60s", {})
    if slo_total:
        print(f"smoke: slo(60s) availability="
              f"{slo_total.get('availability', 0):.4f} "
              f"burn_rate={slo_total.get('burn_rate', 0):.2f} "
              f"latency={slo_total.get('latency', 0):.4f}s")
    ok = True
    bad_statuses = [s for s in counts if s not in (200, 429, 503)]
    if bad_statuses:
        print(f"smoke: FAIL — unexpected statuses {bad_statuses}")
        ok = False
    if wrong:
        print(f"smoke: FAIL — {len(wrong)} responses had wrong rows")
        ok = False
    if args.crash_at > 0 and args.crash_at <= args.smoke and retries < 1:
        print("smoke: FAIL — injected crash was never retried")
        ok = False
    ok = _check_observability(
        args, scrape_status, scrape_text, trace_status, trace_body, crashes
    ) and ok
    if ok:
        print(f"smoke: OK — all {args.smoke} requests answered correctly "
              "or shed with structured errors")
    return 0 if ok else 1


def _check_observability(
    args: argparse.Namespace,
    scrape_status: int,
    scrape_text: str,
    trace_status: int,
    trace_body: Dict[str, object],
    crashes: float,
) -> bool:
    """The drill's observability assertions (and artifact writing)."""
    ok = True
    if scrape_status != 200:
        print(f"smoke: FAIL — mid-drill /metrics scrape returned "
              f"{scrape_status}: {scrape_text[:200]}")
        ok = False
    else:
        try:
            samples = parse_exposition(scrape_text)
        except ExpositionError as exc:
            print(f"smoke: FAIL — /metrics did not parse: {exc}")
            ok = False
        else:
            names = {name for name, _, _ in samples}
            if "repro_serve_requests_total" not in names:
                print("smoke: FAIL — /metrics lacks "
                      "repro_serve_requests_total")
                ok = False
            else:
                print(f"smoke: /metrics scraped mid-drill "
                      f"({len(samples)} samples)")
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(scrape_text)
    if trace_status != 200 or not trace_body.get("spans"):
        print(f"smoke: FAIL — no assembled trace (status {trace_status})")
        ok = False
    else:
        spans = trace_body["spans"]
        print(f"smoke: trace {trace_body.get('request_id')} assembled "
              f"({len(spans)} spans)")
        if args.trace_out:
            with open(args.trace_out, "w", encoding="utf-8") as handle:
                handle.write(trace_jsonl(spans) + "\n")
    if args.flight_dump and args.crash_at > 0 and crashes >= 1:
        dumps = sorted(
            name for name in os.listdir(args.flight_dump)
            if name.startswith("flight-") and name.endswith(".json")
        ) if os.path.isdir(args.flight_dump) else []
        crash_dumps = [n for n in dumps if "worker-crash" in n]
        if not crash_dumps:
            print(f"smoke: FAIL — injected crash left no flight dump "
                  f"in {args.flight_dump} (found {dumps})")
            ok = False
        else:
            with open(
                os.path.join(args.flight_dump, crash_dumps[-1]),
                encoding="utf-8",
            ) as handle:
                dump = json.load(handle)
            kinds = {e.get("kind") for e in dump.get("events", [])}
            if "crash" not in kinds:
                print(f"smoke: FAIL — flight dump {crash_dumps[-1]} has "
                      f"no crash event (kinds={sorted(kinds)})")
                ok = False
            else:
                print(f"smoke: flight dump {crash_dumps[-1]} captured "
                      f"{dump.get('captured', 0)} events")
    return ok


async def _run_server(args: argparse.Namespace) -> int:
    service = _build_service(args)
    server = ServeHTTP(service, args.host, args.port)
    host, port = await server.start()
    print(f"repro serve: listening on http://{host}:{port} "
          f"(workers={args.workers}, concurrency={args.max_concurrency}, "
          f"queue={args.max_queue})")
    try:
        while True:
            await asyncio.sleep(3600)
    except asyncio.CancelledError:
        raise
    finally:
        await server.close()
        service.close()


def cmd_serve(args: argparse.Namespace) -> int:
    try:
        if args.smoke is not None:
            return asyncio.run(_run_smoke(args))
        return asyncio.run(_run_server(args))
    except KeyboardInterrupt:
        print("repro serve: interrupted, shut down cleanly")
        return 0


def add_serve_parser(sub) -> None:
    p = sub.add_parser(
        "serve",
        help="run the multi-tenant query service (HTTP)",
        description="Serve prepared bounded-variable queries over HTTP "
        "with admission control, retries, and load shedding.",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = ephemeral)")
    p.add_argument("--workers", type=int, default=0,
                   help="worker processes (0 = evaluate inline)")
    p.add_argument("--max-concurrency", type=int, default=2,
                   help="requests evaluated at once")
    p.add_argument("--max-queue", type=int, default=16,
                   help="queued requests before shedding")
    p.add_argument("--request-deadline", type=float, default=30.0,
                   help="per-request tenant deadline (seconds)")
    p.add_argument("--db", action="append", metavar="NAME=PATH",
                   help="register a database file (repeatable)")
    p.add_argument("--prepare", action="append", metavar="NAME=OUTVARS=QUERY",
                   help="prepare a named query (repeatable)")
    compile_group = p.add_mutually_exclusive_group()
    compile_group.add_argument(
        "--compile", dest="compile", action="store_true", default=None,
        help="compile prepared queries into specialized plans at "
        "prepare() time (default: REPRO_COMPILE env)")
    compile_group.add_argument(
        "--no-compile", dest="compile", action="store_false",
        help="force interpreted evaluation")
    p.add_argument("--telemetry", default=None, metavar="PATH",
                   help="append per-request JSONL telemetry to PATH")
    p.add_argument("--flight-dump", default=None, metavar="DIR",
                   help="dump flight-recorder post-mortems into DIR on "
                   "worker crashes and terminal failures")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="smoke drill: save the mid-drill /metrics scrape")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="smoke drill: save the last assembled trace as "
                   "JSONL (repro explain --trace-file consumes it)")
    p.add_argument("--smoke", type=int, default=None, metavar="N",
                   help="smoke drill: N concurrent requests, then exit")
    p.add_argument("--crash-at", type=int, default=7, metavar="K",
                   help="smoke drill: inject a worker crash at request K "
                   "(0 = none)")
    p.add_argument("--seed", type=int, default=0,
                   help="smoke drill: database/chaos seed")
    p.set_defaults(func=cmd_serve)


__all__ = ["TC_QUERY", "add_serve_parser", "cmd_serve"]
