"""Admission control: bounded queue, weighted fairness, load shedding.

The paper's PTIME data-complexity bound is what makes bounded-variable
queries *servable* at all — but a server also has to survive the moments
when demand outruns that polynomial.  This module is the front door of
:mod:`repro.serve`: every request passes through one
:class:`AdmissionController`, which either grants a concurrency slot,
parks the request in a bounded weighted-fair queue, or *sheds* it with a
structured :class:`~repro.errors.Overloaded` carrying a retry-after
estimate.

Shedding is deadline-aware in three places:

* **enqueue, queue full** — the bounded queue refuses a request the
  moment the backlog hits ``max_queue`` (``"queue-full"``);
* **enqueue, deadline unreachable** — if the predicted queue wait
  (backlog × EWMA service time / concurrency) already exceeds the
  request's deadline, admitting it would only burn a slot on an answer
  nobody is waiting for (``"deadline-unreachable"``);
* **dispatch, expired** — a request whose deadline passed while queued
  is dropped at dispatch instead of evaluated (``"expired"``).

Fairness is classic weighted fair queueing over virtual time: each
tenant's next request is tagged ``max(vclock, last_tag[tenant]) +
cost/weight`` and the smallest tag dispatches first, so a tenant with
weight 4 drains roughly four requests for every one of a weight-1 tenant
under contention, while an idle tenant's first request is never starved.

Everything is asyncio-single-threaded and deterministic given a
deterministic clock — the chaos tests rely on that.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import Overloaded
from repro.guard.budget import Budget
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant admission currency: weight, budgets, retry allowance.

    ``budget`` is the evaluation budget every request of this tenant
    runs under (the Chen–Elberfeld-style space/row admission currency:
    deadline, rows high-water, iterations).  ``weight`` scales the
    tenant's share of the fair queue.  ``max_attempts`` bounds the
    retry loop; ``breaker_threshold`` consecutive backend failures trip
    the tenant's circuit breaker for ``breaker_cooldown`` seconds.
    """

    weight: float = 1.0
    budget: Budget = field(
        default_factory=lambda: Budget(deadline_seconds=30.0)
    )
    max_attempts: int = 3
    breaker_threshold: int = 5
    breaker_cooldown: float = 30.0

    def deadline(self) -> Optional[float]:
        return self.budget.deadline_seconds


class _Ticket:
    """One queued request: a future the dispatcher resolves or sheds."""

    __slots__ = ("future", "tenant", "enqueued", "expires", "cancelled")

    def __init__(
        self,
        future: "asyncio.Future[None]",
        tenant: str,
        enqueued: float,
        expires: Optional[float],
    ):
        self.future = future
        self.tenant = tenant
        self.enqueued = enqueued
        self.expires = expires
        self.cancelled = False


class AdmissionController:
    """Bounded, weighted-fair, deadline-aware request admission.

    Parameters
    ----------
    max_concurrency:
        Requests evaluated at once (the size of the worker pool, or the
        serial-inline slot count).
    max_queue:
        Requests parked beyond the running ones before shedding.
    expected_service_seconds:
        Seed for the EWMA service-time estimate behind retry-after and
        deadline-unreachable predictions; updated from real completions.
    clock:
        Injectable monotonic clock for deterministic tests.
    registry:
        Metrics registry; admission counters land under ``serve.*``.
    """

    def __init__(
        self,
        max_concurrency: int = 4,
        max_queue: int = 64,
        expected_service_seconds: float = 0.02,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
    ):
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self._clock = clock
        self.registry = registry if registry is not None else MetricsRegistry()
        self._admitted = self.registry.counter("serve.admitted")
        self._shed = self.registry.counter("serve.shed")
        self._expired = self.registry.counter("serve.shed_expired")
        self._queue_depth = self.registry.gauge("serve.queue_depth")
        self._inflight = self.registry.gauge("serve.inflight")
        self._queue_wait = self.registry.histogram(
            "serve.queue_wait_seconds", bounds=LATENCY_BUCKETS
        )
        self._heap: List[Tuple[float, int, _Ticket]] = []
        self._seq = 0
        self._queued = 0
        self._running = 0
        self._vclock = 0.0
        self._last_tag: Dict[str, float] = {}
        self._ewma_service = max(1e-6, expected_service_seconds)

    # -- readings --------------------------------------------------------

    @property
    def queued(self) -> int:
        return self._queued

    @property
    def running(self) -> int:
        return self._running

    def predicted_wait(self) -> float:
        """Expected queue wait for a request arriving now."""
        backlog = self._queued + max(0, self._running - self.max_concurrency + 1)
        return backlog * self._ewma_service / self.max_concurrency

    def retry_after(self) -> float:
        """The shed hint: when the backlog should have drained."""
        drain = (self._queued + self._running) * self._ewma_service
        return max(0.001, drain / self.max_concurrency)

    # -- admission -------------------------------------------------------

    async def admit(
        self,
        tenant: str,
        weight: float = 1.0,
        deadline: Optional[float] = None,
    ) -> float:
        """Wait for a concurrency slot; returns the queue wait in seconds.

        Raises :class:`~repro.errors.Overloaded` when the request is
        shed instead of admitted.  Every successful ``admit`` must be
        paired with exactly one :meth:`release`.
        """
        now = self._clock()
        if self._queued >= self.max_queue and self._running >= self.max_concurrency:
            self._shed.inc()
            raise Overloaded(
                f"queue full ({self._queued} waiting); retry in "
                f"{self.retry_after():.3f}s",
                retry_after=self.retry_after(),
                reason="queue-full",
                tenant=tenant,
            )
        predicted = self.predicted_wait()
        if deadline is not None and predicted > deadline:
            self._shed.inc()
            raise Overloaded(
                f"predicted queue wait {predicted:.3f}s exceeds the "
                f"request deadline of {deadline:g}s",
                retry_after=predicted,
                reason="deadline-unreachable",
                tenant=tenant,
            )
        tag = max(self._vclock, self._last_tag.get(tenant, 0.0)) + (
            self._ewma_service / max(weight, 1e-9)
        )
        self._last_tag[tenant] = tag
        loop = asyncio.get_running_loop()
        ticket = _Ticket(
            loop.create_future(),
            tenant,
            now,
            now + deadline if deadline is not None else None,
        )
        heapq.heappush(self._heap, (tag, self._seq, ticket))
        self._seq += 1
        self._queued += 1
        self._queue_depth.set(self._queued)
        self._dispatch()
        try:
            await ticket.future
        except asyncio.CancelledError:
            ticket.cancelled = True
            raise
        wait = self._clock() - ticket.enqueued
        self._queue_wait.observe(wait)
        return wait

    def release(self, service_seconds: Optional[float] = None) -> None:
        """Return a slot; feeds the EWMA and dispatches the next ticket."""
        self._running = max(0, self._running - 1)
        self._inflight.set(self._running)
        if service_seconds is not None and service_seconds >= 0.0:
            self._ewma_service = (
                0.8 * self._ewma_service + 0.2 * max(1e-6, service_seconds)
            )
        self._dispatch()

    # -- internals -------------------------------------------------------

    def _dispatch(self) -> None:
        while self._running < self.max_concurrency and self._heap:
            tag, _, ticket = heapq.heappop(self._heap)
            self._queued -= 1
            if ticket.cancelled or ticket.future.done():
                continue
            self._vclock = max(self._vclock, tag)
            if ticket.expires is not None and self._clock() > ticket.expires:
                self._expired.inc()
                self._shed.inc()
                ticket.future.set_exception(
                    Overloaded(
                        "deadline passed while queued",
                        retry_after=self.retry_after(),
                        reason="expired",
                        tenant=ticket.tenant,
                    )
                )
                continue
            self._running += 1
            self._admitted.inc()
            ticket.future.set_result(None)
        self._queue_depth.set(self._queued)
        self._inflight.set(self._running)

    def __repr__(self) -> str:
        return (
            f"AdmissionController(running={self._running}/"
            f"{self.max_concurrency}, queued={self._queued}/"
            f"{self.max_queue})"
        )


__all__ = ["AdmissionController", "TenantPolicy"]
